#!/usr/bin/env python3
"""Quickstart: build the paper's AModule from its MIND description, run it
under the dataflow debugger, and poke at it.

Run:  python examples/quickstart.py
"""

from repro.apps.amodule import ADL_SOURCE, CONTROLLER_SOURCE, FILTER_SOURCE
from repro.core import DataflowSession
from repro.dbg import CommandCli, Debugger
from repro.mind import compile_adl
from repro.p2012.soc import P2012Platform, PlatformConfig
from repro.pedf.runtime import PedfRuntime
from repro.sim import Scheduler


def main() -> None:
    # 1. compile the architecture description (the paper's §IV-A excerpt)
    program = compile_adl(
        ADL_SOURCE,
        sources={"the_source.c": FILTER_SOURCE, "ctrl_source.c": CONTROLLER_SOURCE},
        program_name="quickstart",
    )
    program.modules["AModule"].controller.max_steps = 4

    # 2. elaborate it onto a P2012 platform with a host-side test bench
    sched = Scheduler()
    platform = P2012Platform(sched, PlatformConfig(n_clusters=2, pes_per_cluster=4))
    runtime = PedfRuntime(sched, platform, program)
    runtime.add_source("stim", "AModule", "module_in", [1, 2, 3, 4])
    sink = runtime.add_sink("capture", "AModule", "module_out", expect=4)

    # 3. attach the debugger + the dataflow extension
    dbg = Debugger(sched, runtime)
    cli = CommandCli(dbg)
    DataflowSession(dbg, cli=cli, stop_on_init=True)

    # 4. a scripted session
    script = [
        "run",                      # stops once the graph is reconstructed
        "dataflow info",
        "dataflow graph",           # the Fig. 2-style DOT text
        "filter filter_1 catch work",
        "continue",                 # stops when filter_1 fires
        "filter filter_1 info state",
        "break the_source.c:6",     # classic source breakpoint (two-level)
        "continue",
        "print v",
        "print v * 2 + pedf.attribute.an_attribute",
        "info locals",
        "delete 1",
        "delete 2",
        "continue",                 # runs to completion
    ]
    for line in cli.execute_script(script):
        print(line)

    print()
    print(f"decoded output: {sink.values}")
    assert sink.values == [(v * 2) * 2 for v in [1, 2, 3, 4]]  # attribute defaults to 0
    print("quickstart OK")


if __name__ == "__main__":
    main()
