// ctrl_source.c — AModule controller
void work() {
    pedf.io.cmd_out_1[0] = STEP_COUNT();
    pedf.io.cmd_out_2[0] = STEP_COUNT();
    ACTOR_START(filter_1);
    ACTOR_START(filter_2);
    WAIT_FOR_ACTOR_INIT();
    ACTOR_SYNC(filter_1);
    ACTOR_SYNC(filter_2);
    WAIT_FOR_ACTOR_SYNC();
}
