// the_source.c — AFilter WORK method
void work() {
    U32 cmd = pedf.io.cmd_in[0];
    U32 v = pedf.io.an_input[0];
    pedf.data.a_private_data = v;
    U32 r = v * 2 + pedf.attribute.an_attribute;
    pedf.io.an_output[0] = r + cmd * 0;
}
