#!/usr/bin/env python3
"""Following the information flow: token recording and provenance.

Runs the correct decoder with recording enabled on two links and
demonstrates how a token's history is walked across actors
(``filter ... info last_token``) under the different communication
behaviours (default vs. splitter).

Run:  python examples/token_tracing.py
"""

from repro.apps.h264 import decode_golden
from repro.apps.h264.app import build_decoder
from repro.core import DataflowSession
from repro.dbg import CommandCli, Debugger


def main() -> None:
    sched, platform, runtime, source, sink, mbs = build_decoder(n_mbs=4)
    dbg = Debugger(sched, runtime)
    cli = CommandCli(dbg)
    DataflowSession(dbg, cli=cli, stop_on_init=True)
    golden = decode_golden(mbs)

    print("=== record two links, stop at the third decoded macroblock ==============")
    for line in cli.execute_script([
        "run",
        "iface hwcfg::pipe_MbType_out record",
        "iface ipf::decoded_out record",
        "filter red configure splitter",
        "iface display::in catch if value == " + str(golden[2].decoded),
        "continue",
    ]):
        print(line)

    print()
    print("=== recorded traffic ====================================================")
    for line in cli.execute_script([
        "iface hwcfg::pipe_MbType_out print",
        "iface ipf::decoded_out print",
    ]):
        print(line)

    print()
    print("=== provenance walks ====================================================")
    for line in cli.execute_script([
        "filter ipf info last_token",     # where did ipf's last input come from?
        "filter pipe info last_token",    # pipe's chain passes through red (splitter)
        "filter mc info last_token",
    ]):
        print(line)

    print()
    print("=== finish ==============================================================")
    for line in cli.execute_script(["dataflow capture none", "continue"]):
        print(line)
    assert sink.values == [g.decoded for g in golden]
    print("all macroblocks decoded correctly — OK")


if __name__ == "__main__":
    main()
