#!/usr/bin/env python3
"""The paper's §VI case study, replayed command for command.

Debugs the H.264-like decoder with the corrupted-token fault injected in
filter ``bh``: the observable error is a wrong macroblock at the output;
the dataflow commands localize it in four interactions.

Run:  python examples/h264_debug_session.py
"""

from repro.apps.h264 import decode_golden
from repro.apps.h264.bugs import build_corrupted_token
from repro.core import DataflowSession
from repro.dbg import CommandCli, Debugger


def main() -> None:
    corrupt_at = 5
    sched, platform, runtime, source, sink, mbs = build_corrupted_token(
        n_mbs=8, corrupt_at=corrupt_at
    )
    dbg = Debugger(sched, runtime)
    cli = CommandCli(dbg)
    DataflowSession(dbg, cli=cli, stop_on_init=True)

    golden = decode_golden(mbs)
    bad_addr = 0x1400 + corrupt_at

    print("=== §VI-A graph-based architecture ======================================")
    for line in cli.execute_script(["run", "dataflow graph"]):
        print(line)

    print()
    print("=== §VI-B token-based execution firing ==================================")
    for line in cli.execute_script([
        "filter pipe catch work",
        "continue",
        "delete 1",
        "filter ipred catch Pipe_in=1, Hwcfg_in=1",
        "continue",
        "delete 2",
    ]):
        print(line)

    print()
    print("=== §VI-C non-linear execution (step_both) ==============================")
    for line in cli.execute_script([
        "tbreak ipred.c:7",
        "continue",
        "list",
        "step_both",
        "continue",
    ]):
        print(line)

    print()
    print("=== §VI-D token-based state and information flow ========================")
    for line in cli.execute_script([
        "iface hwcfg::pipe_MbType_out record",
        "filter red configure splitter",
        f"filter pipe catch Red2PipeCbMB_in if Addr == {bad_addr}",
        "continue",
        "iface hwcfg::pipe_MbType_out print",
        "filter pipe info last_token",
    ]):
        print(line)

    print()
    print("=== §VI-E two-level debugging ===========================================")
    for line in cli.execute_script([
        "filter pipe print last_token",
        "print $1",
        "print $1.Izz",
        "info actors",
    ]):
        print(line)

    print()
    print("=== wrap up =============================================================")
    for line in cli.execute_script(["dataflow capture none", "continue"]):
        print(line)
    wrapped = sum(mbs[corrupt_at].residuals) & 0xFF
    print()
    print(f"verdict: filter `bh' produced {wrapped} (8-bit wraparound) instead of "
          f"{golden[corrupt_at].rsum} for macroblock {corrupt_at} — the bug is in bh.c")
    buggy = decode_golden(mbs, corrupt_bh_at=range(corrupt_at, len(mbs)))
    assert sink.values == [g.decoded for g in buggy]
    print("session transcript verified against the golden model — OK")


if __name__ == "__main__":
    main()
