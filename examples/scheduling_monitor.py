#!/usr/bin/env python3
"""Contribution #2 in action: monitoring PEDF controller scheduling.

Stops the decoder at controller step boundaries and on individual filter
scheduling events, showing which filters are ready / running / finished —
plus the per-actor source line and blocked status of §III.

Run:  python examples/scheduling_monitor.py
"""

from repro.apps.h264.app import build_decoder
from repro.core import DataflowSession
from repro.dbg import CommandCli, Debugger


def main() -> None:
    sched, platform, runtime, source, sink, mbs = build_decoder(n_mbs=3)
    dbg = Debugger(sched, runtime)
    cli = CommandCli(dbg)
    DataflowSession(dbg, cli=cli, stop_on_init=True)

    print("=== stop at the first pred-module step ==================================")
    for line in cli.execute_script([
        "run",
        "sched catch step-begin pred_controller",
        "continue",
        "sched status pred",
    ]):
        print(line)

    print()
    print("=== stop when the controller schedules ipf ==============================")
    for line in cli.execute_script([
        "delete 1",
        "sched catch start ipf",
        "continue",
        "sched status pred",
        "filter ipf info state",
    ]):
        print(line)

    print()
    print("=== watch a step complete ===============================================")
    for line in cli.execute_script([
        "delete 2",
        "sched catch step-end pred_controller",
        "continue",
        "sched status",
        "info actors",
    ]):
        print(line)

    print()
    print("=== run to completion ===================================================")
    for line in cli.execute_script(["delete 3", "continue"]):
        print(line)
    assert len(sink.values) == 3
    print("scheduling monitor session complete — OK")


if __name__ == "__main__":
    main()
