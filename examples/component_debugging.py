#!/usr/bin/env python3
"""Future work, demonstrated: the same debugger base hosting a *second*
programming model — component-based software engineering (paper §VII-B /
conclusion: "We expect our debugger to be able to easily encompass new
models, thanks to a generic code base").

A three-component calculator assembly is debugged with the unmodified
base debugger (source breakpoints, prints, backtraces inside component
code) plus the component-aware extension (message catchpoints, request/
response tracing, runtime *rebinding* — the dynamic-architecture feature
dataflow graphs lack).

Run:  python examples/component_debugging.py
"""

from repro.ccm import AssemblyDecl, AssemblyRuntime, ComponentDecl, ComponentSession
from repro.dbg import CommandCli, Debugger
from repro.p2012.soc import P2012Platform, PlatformConfig
from repro.sim import Scheduler

STORAGE = """\
U32 total = 0;
U32 serve_get(U32 unused) { return total; }
U32 serve_set(U32 v) { total = v; return v; }
"""

ADDER = """\
U32 serve_accumulate(U32 x) {
    U32 cur = CALL(store_get, 0);
    U32 next = cur + x;
    CALL(store_set, next);
    return next;
}
"""


def main() -> None:
    asm = AssemblyDecl(name="calc")
    asm.add_component(ComponentDecl(name="storage", source=STORAGE, provides=["get", "set"]))
    asm.add_component(ComponentDecl(
        name="storage_b", source=STORAGE, provides=["get", "set"], source_name="storage_b.c"))
    asm.add_component(ComponentDecl(
        name="adder", source=ADDER, provides=["accumulate"],
        requires=["store_get", "store_set"]))
    asm.bind("adder", "store_get", "storage", "get")
    asm.bind("adder", "store_set", "storage", "set")

    sched = Scheduler()
    platform = P2012Platform(sched, PlatformConfig(n_clusters=1, pes_per_cluster=8))
    runtime = AssemblyRuntime(sched, platform, asm)
    dbg = Debugger(sched, runtime)
    cli = CommandCli(dbg)
    session = ComponentSession(dbg, cli=cli, stop_on_init=True)

    r1 = runtime.invoke("adder", "accumulate", 5)
    r2 = runtime.invoke("adder", "accumulate", 7)

    print("=== architecture reconstruction =========================================")
    for line in cli.execute_script(["run", "ccm info", "ccm graph"]):
        print(line)

    print()
    print("=== message catchpoint + two-level debugging ============================")
    for line in cli.execute_script([
        "component adder catch request set",
        "continue",
        "ccm pending",
        "break adder.c:3",
        "continue",
        "print cur",
        "print x",
        "backtrace",
        "delete 2",
    ]):
        print(line)

    print()
    print("=== runtime rebinding (dynamic architecture) ============================")
    for line in cli.execute_script([
        "ccm rebind adder store_get storage_b get",
        "ccm rebind adder store_set storage_b set",
        "ccm delete 1",
        "continue",
        "ccm messages",
    ]):
        print(line)

    print()
    print(f"results: first accumulate -> {r1}, second (rebound storage) -> {r2}")
    assert r1 == [5]
    # the rebind happened while the second request was mid-service, so the
    # exact total depends on which storage served its get — both are shown
    assert r2 and r2[0] in (7, 12)
    print("component debugging session complete — OK")


if __name__ == "__main__":
    main()
