#!/usr/bin/env python3
"""Untying a deadlock by injecting a token (paper §III, "Altering the
Normal Execution").

The dropped-token decoder variant: ``hwcfg`` silently drops the last
macroblock's configuration token, so ``ipred`` blocks forever reading its
``Hwcfg_in`` interface.  A runtime-verification ``deadlock-free`` check
runs the wait-for-cycle analysis the moment the platform stalls and names
the starving actor and the dry link directly — no manual walk over
``sched status`` / ``filter info state`` / ``dataflow links`` needed.
The debugger then injects the missing token and lets the program finish —
with output verified against the golden model.

Run:  python examples/deadlock_untie.py
"""

from repro.apps.h264 import decode_golden
from repro.apps.h264.bugs import build_dropped_token
from repro.core import DataflowSession
from repro.dbg import CommandCli, Debugger, StopKind


def main() -> None:
    n_mbs = 6
    sched, platform, runtime, source, sink, mbs = build_dropped_token(n_mbs=n_mbs)
    dbg = Debugger(sched, runtime)
    cli = CommandCli(dbg)
    DataflowSession(dbg, stop_on_init=True, cli=cli)

    print("=== arm the deadlock check and run to the hang ==========================")
    for line in cli.execute_script([
        "run",  # stops right after init, with the graph reconstructed
        "check add log deadlock-free",
        "continue",
    ]):
        print(line)
    assert dbg.last_stop.kind == StopKind.DEADLOCK

    print()
    print("=== diagnose: the check's verdict names the culprit =====================")
    for line in cli.execute_script(["info verdict"]):
        print(line)
    verdict = cli.dataflow_handler.session.checks.verdicts[0]
    assert "pred.ipred" in verdict.actors and "front.hwcfg" in verdict.actors
    assert "hwcfg::HwCfg_out->ipred::Hwcfg_in" in verdict.links

    print()
    print("=== untie: inject the missing configuration token =======================")
    missing = mbs[n_mbs - 1].header
    for line in cli.execute_script([
        f"iface hwcfg::HwCfg_out insert {missing}",
        "continue",
    ]):
        print(line)

    golden = decode_golden(mbs)
    assert sink.values == [g.decoded for g in golden]
    print()
    print(f"decoded all {len(sink.values)} macroblocks correctly after the injection — OK")


if __name__ == "__main__":
    main()
