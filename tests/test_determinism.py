"""End-to-end determinism: the invariant the paper's approach rests on.

"The deterministic nature of dataflow communications fades away the
intrusiveness brought by debugger breakpoints and user interactions.
Indeed, the execution semantic is not altered by the slowdown they
introduce."  Two identical runs must match event for event; a run under a
(non-intervening) debugger must match a native run cycle for cycle.
"""

from repro.apps.h264.app import build_decoder
from repro.core import DataflowSession
from repro.dbg import Debugger


def run_once(with_debugger: bool, n_mbs: int = 12):
    sched, platform, runtime, source, sink, mbs = build_decoder(n_mbs=n_mbs)
    events = []
    runtime.bus.subscribe(
        "*",
        lambda e: events.append((e.phase, e.symbol, e.actor, repr(sorted(e.args.items())))) or None,
    )
    if with_debugger:
        dbg = Debugger(sched, runtime)
        session = DataflowSession(dbg)
        dbg.run()
    else:
        runtime.load()
        sched.run()
    return sink.values, sched.now, events


def test_identical_runs_produce_identical_event_streams():
    out1, t1, ev1 = run_once(False)
    out2, t2, ev2 = run_once(False)
    assert out1 == out2
    assert t1 == t2
    assert ev1 == ev2  # every framework event, in order, identical


def test_debugger_attachment_is_cycle_transparent():
    native_out, native_t, native_ev = run_once(False)
    dbg_out, dbg_t, dbg_ev = run_once(True)
    assert dbg_out == native_out
    assert dbg_t == native_t
    assert dbg_ev == native_ev


def test_debugger_stops_and_resumes_preserve_semantics():
    """Even with many stops along the way, the final state matches a
    straight-through run exactly."""
    from repro.dbg import StopKind

    native_out, native_t, _ = run_once(False)

    sched, platform, runtime, source, sink, mbs = build_decoder(n_mbs=12)
    dbg = Debugger(sched, runtime)
    session = DataflowSession(dbg)
    session.catch_step("begin")  # stop at every step of both controllers
    stops = 0
    ev = dbg.run()
    while ev.kind == StopKind.DATAFLOW:
        stops += 1
        ev = dbg.cont()
    assert ev.kind == StopKind.EXITED
    assert stops == 24  # 12 steps x 2 controllers
    assert sink.values == native_out
    assert sched.now == native_t
