"""Property layer: builders, text-form round-trip, compile errors."""

import pytest

from repro.apps.rle import build_rle_pipeline
from repro.core import DataflowSession
from repro.core.model import DataflowModel
from repro.dbg import Debugger
from repro.errors import RvError
from repro.rv import (
    DeadlockFreeProp,
    GraphView,
    OccupancyProp,
    OrderProp,
    ProgressProp,
    RateProp,
    bounded,
    compile_property,
    deadlock_free,
    ordered,
    parse_property,
    progress,
    rate,
)


# ------------------------------------------------------------- text form


@pytest.mark.parametrize("text,expected", [
    ("occupancy a::o->b::i <= 4", OccupancyProp("a::o->b::i", "<=", 4)),
    ("occupancy a::o >= 1", OccupancyProp("a::o", ">=", 1)),
    ("rate f::out == 2 * g::in tol 3", RateProp("f::out", "g::in", 2, 1, 3)),
    ("rate f::out == 1/2 * g::in", RateProp("f::out", "g::in", 1, 2, 0)),
    ("order a::o before b::o", OrderProp("a::o", "b::o")),
    ("progress ipred every 3", ProgressProp("ipred", 3)),
    ("deadlock-free", DeadlockFreeProp()),
])
def test_parse_property(text, expected):
    assert parse_property(text) == expected


@pytest.mark.parametrize("prop", [
    OccupancyProp("a::o->b::i", "<=", 4),
    OccupancyProp("a::o", ">=", 1),
    RateProp("f::out", "g::in", 2, 1, 3),
    RateProp("f::out", "g::in", 1, 2, 0),
    OrderProp("a::o", "b::o"),
    ProgressProp("ipred", 3),
    DeadlockFreeProp(),
])
def test_text_round_trips(prop):
    assert parse_property(prop.text()) == prop


def test_whitespace_is_normalised():
    assert parse_property("  occupancy   a::o   <=  4 ") == OccupancyProp("a::o", "<=", 4)


@pytest.mark.parametrize("bad", [
    "",
    "occupancy a::o < 4",          # only <= / >= are in the grammar
    "occupancy a::o <= many",
    "rate f::out == 0 * g::in",    # factor must be positive
    "rate f::out = 2 * g::in",
    "order a::o after b::o",
    "progress ipred every 0",
    "liveness ipred",
])
def test_parse_rejects_garbage(bad):
    with pytest.raises(RvError):
        parse_property(bad)


# ------------------------------------------------------------ builder API


def test_builders_match_text_form():
    assert bounded("a::o->b::i", max=4) == parse_property("occupancy a::o->b::i <= 4")
    assert bounded("a::o", min=1) == parse_property("occupancy a::o >= 1")
    assert rate("f::out", "g::in", k="1/2", tol=2) == parse_property(
        "rate f::out == 1/2 * g::in tol 2")
    assert ordered("a::o", "b::o") == parse_property("order a::o before b::o")
    assert progress("ipred", 3) == parse_property("progress ipred every 3")
    assert deadlock_free() == parse_property("deadlock-free")


def test_builder_validation():
    with pytest.raises(RvError):
        bounded("a::o")  # neither bound
    with pytest.raises(RvError):
        bounded("a::o", max=1, min=1)  # both bounds
    with pytest.raises(RvError):
        rate("f::out", "g::in", k="2/0")
    with pytest.raises(RvError):
        progress("ipred", 0)


# ---------------------------------------------------------- compile errors


def rle_session():
    sched, runtime, sink = build_rle_pipeline([5, 5, 5, 2, 7, 7])
    session = DataflowSession(Debugger(sched, runtime), stop_on_init=True)
    session.dbg.run()  # stops right after init, graph reconstructed
    return session


def test_compile_on_empty_graph_is_a_clean_error():
    graph = GraphView(DataflowModel())
    for text in ("occupancy a::o <= 4", "progress a every 1", "deadlock-free"):
        with pytest.raises(RvError, match="not been reconstructed"):
            compile_property(parse_property(text), graph, 1)


def test_compile_missing_actor_lists_known_names():
    session = rle_session()
    with pytest.raises(RvError, match="expand"):
        session.checks.add("progress nosuch every 2")


def test_compile_missing_link_lists_known_links():
    session = rle_session()
    with pytest.raises(RvError, match="pack::o->expand::i"):
        session.checks.add("occupancy nosuch::o->expand::i <= 4")
    with pytest.raises(RvError):
        session.checks.add("rate expand::o == 1 * nosuch::i")


def test_compile_resolves_interface_spec_to_its_link():
    session = rle_session()
    check = session.checks.add("occupancy pack::o <= 100", action="log")
    assert check.monitor.link == "pack::o->expand::i"


def test_unknown_check_id_and_action_are_clean_errors():
    session = rle_session()
    with pytest.raises(RvError, match="no check 7"):
        session.checks.remove(7)
    with pytest.raises(RvError, match="unknown on-violation action"):
        session.checks.add("deadlock-free", action="explode")
