"""Live verdicts vs. journal-derived re-verification: byte-identical.

Monitors consume only journal-derivable event fields, and live checks
index verdicts by the recorder's journal position, so re-running the
same properties over the recorded journal (``rv.derive``) must
reproduce the live verdict stream exactly — same Verdict objects, same
rendered bytes — on both interpreter tiers, for healthy runs, seeded
bugs and deadlocks alike.
"""

import pytest

from repro.apps.amodule import build_demo
from repro.apps.h264.bugs import build_dropped_token, build_rate_mismatch
from repro.apps.rle import build_rle_pipeline
from repro.core import DataflowSession
from repro.dbg import Debugger, StopKind
from repro.rv import GraphView, derive_verdicts, parse_property


def _set_tier(runtime, tier):
    runtime.config.interp_tier = tier
    for actor in runtime.all_actors():
        interp = getattr(actor, "interp", None)
        if interp is not None:
            interp.tier = tier


def rle_session(tier="auto"):
    sched, runtime, sink = build_rle_pipeline([5, 5, 5, 2, 7, 7])
    _set_tier(runtime, tier)
    return DataflowSession(Debugger(sched, runtime), stop_on_init=True)


def amodule_session(tier="auto"):
    sched, platform, runtime, source, sink = build_demo()
    _set_tier(runtime, tier)
    return DataflowSession(Debugger(sched, runtime), stop_on_init=True)


# properties chosen so each app trips at least one check (occupancy 0 is
# violated by the very first token) and holds at least one other
APP_CHECKS = {
    "rle": [
        ("occupancy pack::o->expand::i <= 0", "log"),
        ("rate expand::o == 1 * pack::i tol 6", "log"),
        ("progress pack every 64", "log"),
    ],
    "amodule": [
        ("occupancy filter_1::an_output->filter_2::an_input <= 0", "log"),
        ("order stim::out before capture::in", "log"),
    ],
}

BUILDERS = {"rle": rle_session, "amodule": amodule_session}


def run_to_end(dbg):
    ev = dbg.cont()
    while ev.kind not in (StopKind.EXITED, StopKind.DEADLOCK, StopKind.ERROR):
        ev = dbg.cont()
    return ev


def rendered(verdicts):
    return "\n".join(line for v in verdicts for line in v.render())


@pytest.mark.parametrize("tier", ["auto", "vm", "slow"])
@pytest.mark.parametrize("app", ["rle", "amodule"])
def test_live_and_derived_verdicts_byte_identical(app, tier):
    session = BUILDERS[app](tier)
    session.replay.record_on()
    session.dbg.run()  # stop after framework init: graph reconstructed
    for text, action in APP_CHECKS[app]:
        session.checks.add(text, action=action)
    assert run_to_end(session.dbg).kind == StopKind.EXITED

    live = session.checks.verdicts
    assert live, "expected at least one violation in the chosen properties"
    derived = session.checks.derive()
    assert derived == live  # frozen dataclasses: field-for-field equality
    assert rendered(derived) == rendered(live)  # and byte-identical reports


def test_derivation_alone_judges_a_plain_recorded_run():
    """A run recorded *without* live checks is still verifiable post-hoc."""
    session = rle_session()
    session.replay.record_on()
    session.dbg.run()
    assert run_to_end(session.dbg).kind == StopKind.EXITED
    assert not session.checks.armed and session.checks.verdicts == []

    props = [parse_property("occupancy pack::o->expand::i <= 0")]
    verdicts = derive_verdicts(session.replay.master, props, GraphView(session.model))
    assert len(verdicts) == 1
    assert verdicts[0].kind == "occupancy"
    assert verdicts[0].links == ("pack::o->expand::i",)
    assert 0 < verdicts[0].index <= session.replay.master.total_events


@pytest.mark.parametrize("tier", ["auto", "vm", "slow"])
def test_h264_rate_mismatch_verdict_identity_and_relocalization(tier):
    """The seeded h264 rate bug: the live ``mark`` verdict, the derived
    verdict, and the ``replay to event N`` landing must all agree."""
    sched, platform, runtime, source, sink, mbs = build_rate_mismatch(n_mbs=24)
    _set_tier(runtime, tier)
    session = DataflowSession(Debugger(sched, runtime), stop_on_init=True)
    session.replay.record_on()
    session.dbg.run()
    session.checks.add(
        "occupancy pipe::Pipe_ipf_out->ipf::Pipe_cfg_in <= 16", action="mark"
    )
    run_to_end(session.dbg)

    (live,) = session.checks.verdicts
    ((mark_index, mark_verdict),) = session.checks.marks
    assert mark_index == live.index
    (derived,) = session.checks.derive()
    assert derived == live
    assert derived.render() == live.render()

    # the verdict's event position is addressable by the time-travel
    # machinery: replaying to it re-localizes the violation
    mgr = session.replay

    def fresh():
        s2, p2, r2, *_ = build_rate_mismatch(n_mbs=24)
        _set_tier(r2, tier)
        return DataflowSession(Debugger(s2, r2))

    mgr.builder = fresh
    ev = mgr.replay_to(f"event {live.index}")
    assert ev.kind == StopKind.REPLAY
    assert mgr.recorder.divergence is None


@pytest.mark.parametrize("tier", ["auto", "vm", "slow"])
def test_dropped_token_deadlock_verdict_identity(tier):
    """Deadlock stop analysis reconstructs identical wait-for verdicts
    live (stop callback) and from the journal's stop records."""
    sched, platform, runtime, source, sink, mbs = build_dropped_token(n_mbs=6)
    _set_tier(runtime, tier)
    session = DataflowSession(Debugger(sched, runtime), stop_on_init=True)
    session.replay.record_on()
    session.dbg.run()
    session.checks.add("deadlock-free", action="log")
    assert run_to_end(session.dbg).kind == StopKind.DEADLOCK

    (live,) = session.checks.verdicts
    assert live.kind == "deadlock"
    assert "starvation root(s)" in live.message
    (derived,) = session.checks.derive()
    assert derived == live
    assert derived.render() == live.render()
