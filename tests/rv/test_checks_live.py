"""Live check behaviour: violation stops, actions, arming, disarm mid-run."""

import pytest

from repro.apps.h264.bugs import build_dropped_token, build_rate_mismatch
from repro.apps.rle import build_rle_pipeline
from repro.core import DataflowSession
from repro.dbg import CAP_RV, CommandCli, Debugger, StopKind


def rle_session(**kw):
    sched, runtime, sink = build_rle_pipeline([5, 5, 5, 2, 7, 7])
    return DataflowSession(Debugger(sched, runtime), stop_on_init=True, **kw)


def run_to_end(dbg):
    ev = dbg.cont()
    while ev.kind not in (StopKind.EXITED, StopKind.DEADLOCK, StopKind.ERROR):
        ev = dbg.cont()
    return ev


def test_violation_raises_structured_stop():
    session = rle_session()
    session.dbg.run()  # stop after init
    session.checks.add("occupancy pack::o->expand::i <= 0")
    ev = session.dbg.cont()
    assert ev.kind == StopKind.VIOLATION
    v = ev.payload
    assert v is not None and v.kind == "occupancy"
    assert v.links == ("pack::o->expand::i",)
    assert v.actors == ("codec.pack", "codec.expand")
    assert ev.actor == "codec.pack"
    assert ev.message == v.headline()
    # the stop renders the full verdict, GDB-style
    text = "\n".join(ev.describe())
    assert "Check violated:" in text and "witness:" in text
    # ... and the program is resumable past the (one-shot) check
    assert run_to_end(session.dbg).kind == StopKind.EXITED


def test_log_action_keeps_running():
    session = rle_session()
    session.dbg.run()
    session.checks.add("occupancy pack::o->expand::i <= 0", action="log")
    assert run_to_end(session.dbg).kind == StopKind.EXITED
    assert len(session.checks.verdicts) == 1
    assert session.checks.marks == []


def test_mark_action_records_replay_position():
    session = rle_session()
    session.replay.record_on()
    session.dbg.run()
    session.checks.add("occupancy pack::o->expand::i <= 0", action="mark")
    assert run_to_end(session.dbg).kind == StopKind.EXITED
    assert len(session.checks.marks) == 1
    index, verdict = session.checks.marks[0]
    assert index == verdict.index > 0
    # the marked position is addressable by the time-travel machinery
    assert index <= session.replay.master.total_events


def test_arming_follows_enabled_checks():
    session = rle_session()
    session.dbg.run()
    dbg = session.dbg
    assert not session.checks.armed and not dbg.rv_armed
    check = session.checks.add("occupancy pack::o->expand::i <= 4", action="log")
    assert session.checks.armed and dbg.rv_armed
    session.checks.set_enabled(check.id, False)
    assert not session.checks.armed and not dbg.rv_armed
    session.checks.set_enabled(check.id, True)
    assert session.checks.armed
    session.checks.remove(check.id)
    assert not session.checks.armed and not dbg.rv_armed


def test_disarm_mid_run_stops_judging():
    session = rle_session()
    session.dbg.run()
    check = session.checks.add("occupancy pack::o->expand::i <= 0")
    ev = session.dbg.cont()
    assert ev.kind == StopKind.VIOLATION
    # a tripped one-shot check never re-fires; disabling it disarms CAP_RV
    session.checks.set_enabled(check.id, False)
    assert not session.dbg.hook.capabilities & CAP_RV
    assert run_to_end(session.dbg).kind == StopKind.EXITED
    assert len(session.checks.verdicts) == 1


def test_rate_property_holds_on_healthy_rle():
    session = rle_session()
    session.dbg.run()
    session.checks.add("rate expand::o == 1 * pack::i tol 6", action="log")
    assert run_to_end(session.dbg).kind == StopKind.EXITED
    assert session.checks.verdicts == []


def test_occupancy_check_catches_seeded_rate_mismatch_bug():
    """The h264 rate-mismatch bug (ipf never pops its cfg tokens) is
    caught by a plain occupancy bound, well before the link fills."""
    sched, platform, runtime, source, sink, mbs = build_rate_mismatch(n_mbs=24)
    session = DataflowSession(Debugger(sched, runtime), stop_on_init=True)
    session.dbg.run()
    session.checks.add("occupancy pipe::Pipe_ipf_out->ipf::Pipe_cfg_in <= 16")
    ev = session.dbg.cont()
    assert ev.kind == StopKind.VIOLATION
    assert ev.payload.links == ("pipe::Pipe_ipf_out->ipf::Pipe_cfg_in",)
    assert ev.payload.actors == ("pred.pipe", "pred.ipf")


def test_deadlock_free_check_diagnoses_dropped_token_bug():
    sched, platform, runtime, source, sink, mbs = build_dropped_token(n_mbs=6)
    session = DataflowSession(Debugger(sched, runtime), stop_on_init=True)
    session.dbg.run()
    session.checks.add("deadlock-free", action="log")
    ev = run_to_end(session.dbg)
    assert ev.kind == StopKind.DEADLOCK
    (verdict,) = session.checks.verdicts
    assert "starvation root(s)" in verdict.message
    assert "pred.ipred" in verdict.actors and "front.hwcfg" in verdict.actors
    assert verdict.links == ("hwcfg::HwCfg_out->ipred::Hwcfg_in",)


def test_check_command_round_trip():
    sched, runtime, sink = build_rle_pipeline([5, 5, 5, 2, 7, 7])
    dbg = Debugger(sched, runtime)
    cli = CommandCli(dbg)
    DataflowSession(dbg, stop_on_init=True, cli=cli)
    out = cli.execute_script([
        "run",
        "check add log occupancy pack::o->expand::i <= 0",
        "check list",
        "continue",
        "info checks",
        "info verdict",
    ])
    text = "\n".join(out)
    assert "armed check 1" in text
    assert "tripped" in text
    assert "occupancy of pack::o->expand::i reached 1" in text
    assert "witness:" in text


def test_check_completion_offers_verbs_then_graph_names():
    sched, runtime, sink = build_rle_pipeline([5, 5, 5, 2, 7, 7])
    dbg = Debugger(sched, runtime)
    cli = CommandCli(dbg)
    DataflowSession(dbg, stop_on_init=True, cli=cli)
    dbg.run()
    handler = cli.dataflow_handler
    assert handler.complete_check("ad") == ["add"]
    assert "occupancy" in handler.complete_check("add occ")[:1] or \
        handler.complete_check("add occ") == ["occupancy"]
    names = handler.complete_check("add occupancy pack")
    assert "pack" in names and "pack::o" in names


def test_deferred_checks_arm_at_first_post_init_stop():
    session = rle_session()
    session.checks.add_deferred("occupancy pack::o->expand::i <= 0", "stop")
    assert session.checks.pending and not session.checks.armed
    session.dbg.run()  # init stop compiles + arms the queued check
    assert not session.checks.pending and session.checks.armed
    ev = session.dbg.cont()
    assert ev.kind == StopKind.VIOLATION
