"""Monitor unit tests over synthetic event streams."""

from repro.pedf.api import (
    SYM_ACTOR_START,
    SYM_ACTOR_SYNC,
    SYM_POP,
    SYM_PUSH,
    SYM_STEP_BEGIN,
    SYM_WAIT_SYNC,
    SYM_WORK_ENTER,
)
from repro.rv.events import RvEvent
from repro.rv.monitors import (
    DeadlockMonitor,
    OccupancyMonitor,
    OrderMonitor,
    ProgressMonitor,
    RateMonitor,
)

L = "a::o->b::i"


def push(t, actor="m.a", link=L, phase="exit", seq=None):
    return RvEvent(t, phase, SYM_PUSH, actor, seq, link, None)


def pop(t, actor="m.b", link=L, phase="exit", seq=None):
    return RvEvent(t, phase, SYM_POP, actor, seq, link, None)


def step(t, ctl="m.ctl"):
    return RvEvent(t, "entry", SYM_STEP_BEGIN, ctl, None, None, None)


def work(t, actor, phase="entry"):
    return RvEvent(t, phase, SYM_WORK_ENTER, actor, None, None, None)


# ------------------------------------------------------------- occupancy


def test_occupancy_counts_only_exits_on_its_link():
    mon = OccupancyMonitor(1, "p", L, "<=", 1, "m.a", "m.b")
    assert mon.feed(push(1), 1) is None
    assert mon.feed(push(2, phase="entry"), 2) is None  # entries don't count
    assert mon.feed(push(3, link="x::o->y::i"), 3) is None  # other link
    assert mon.occupancy == 1
    v = mon.feed(push(4, seq=9), 4)
    assert v is not None and mon.tripped
    assert v.message == "occupancy of a::o->b::i reached 2 (bound: <= 1)"
    assert v.actors == ("m.a", "m.b") and v.links == (L,)
    assert v.witness == ("t=4 pedf_rt_push:exit [m.a] link=a::o->b::i seq=9",)
    # one-shot: further violations produce no new verdicts
    assert mon.feed(push(5), 5) is None


def test_occupancy_lower_bound():
    mon = OccupancyMonitor(1, "p", L, ">=", 0, "m.a", "m.b")
    assert mon.feed(push(1), 1) is None
    assert mon.feed(pop(2), 2) is None  # back to 0, still >= 0
    v = mon.feed(pop(3), 3)
    assert v is not None and "reached -1" in v.message


# ------------------------------------------------------------------ rate


def test_rate_with_fraction_and_tolerance():
    # produced == (1/2) * consumed, tol 1
    mon = RateMonitor(1, "p", "pl", SYM_PUSH, "cl", SYM_POP, 1, 2, 1, ("m.f", "m.g"))
    for t in range(4):  # trips at the 3rd consume: |0*2 - 1*3| = 3 > tol*den = 2
        v = mon.feed(pop(t, link="cl"), t)
        if v is not None:
            break
    assert v is not None
    assert mon.consumed == 3 and mon.produced == 0
    assert "invariant: produced == 1/2 * consumed, tol 1" in v.message


def test_rate_holds_within_tolerance():
    mon = RateMonitor(1, "p", "pl", SYM_PUSH, "cl", SYM_POP, 1, 1, 1, ("m.f", "m.g"))
    for t in range(50):
        assert mon.feed(pop(2 * t, link="cl"), 2 * t) is None
        assert mon.feed(push(2 * t + 1, link="pl"), 2 * t + 1) is None
    assert not mon.tripped


# ----------------------------------------------------------------- order


def test_order_trips_when_after_overtakes_before():
    mon = OrderMonitor(1, "p", "bl", SYM_PUSH, "al", SYM_PUSH, ("m.a", "m.b"))
    assert mon.feed(push(1, link="bl"), 1) is None
    assert mon.feed(push(2, link="al"), 2) is None  # 1 <= 1, fine
    v = mon.feed(push(3, link="al"), 3)
    assert v is not None
    assert "event #2 on al has only 1 preceding event(s) on bl" in v.message


# -------------------------------------------------------------- progress


def test_progress_trips_after_n_silent_steps():
    mon = ProgressMonitor(1, "p", "m.f", 2)
    assert mon.feed(work(1, "m.f"), 1) is None
    assert mon.feed(step(2), 2) is None
    assert mon.feed(step(3), 3) is None
    v = mon.feed(step(4), 4)
    assert v is not None
    assert "m.f has not fired for 3 controller step(s)" in v.message
    assert v.actors == ("m.f", "m.ctl")


def test_progress_resets_on_fire():
    mon = ProgressMonitor(1, "p", "m.f", 2)
    for t in range(12):
        assert mon.feed(step(3 * t), 3 * t) is None
        assert mon.feed(work(3 * t + 1, "m.f"), 3 * t + 1) is None
    assert not mon.tripped


# -------------------------------------------------------------- deadlock


def deadlock_monitor():
    link_ends = {
        "a::o->b::i": ("m.a", "m.b"),
        "b::o->a::i": ("m.b", "m.a"),
        "c::o->a::i2": ("m.c", "m.a"),
    }
    return DeadlockMonitor(1, "deadlock-free", link_ends, {"m.ctl": ("m.a", "m.b")})


def test_deadlock_finds_wait_for_cycle():
    mon = deadlock_monitor()
    # a inside a blocked push to b; b inside a blocked push back to a
    mon.feed(push(1, actor="m.a", phase="entry"), 1)
    mon.feed(push(2, actor="m.b", link="b::o->a::i", phase="entry"), 2)
    v = mon.at_stop("deadlock", 10, 99)
    assert v is not None
    assert v.message == (
        "wait-for cycle: m.a -[push via a::o->b::i]-> m.b; "
        "m.b -[push via b::o->a::i]-> m.a"
    )
    assert v.actors == ("m.a", "m.b")
    assert v.links == ("a::o->b::i", "b::o->a::i")
    assert v.index == 99 and v.time == 10


def test_deadlock_reports_starvation_root_when_no_cycle():
    mon = deadlock_monitor()
    # a blocked popping from c, but c is not blocked (it just never pushes)
    mon.feed(pop(1, actor="m.a", link="c::o->a::i2", phase="entry"), 1)
    v = mon.at_stop("deadlock", 5, 7)
    assert v is not None
    assert v.message == (
        "no wait-for cycle; starvation root(s): m.a blocked in pop "
        "c::o->a::i2, waiting on m.c (not blocked)"
    )
    assert v.actors == ("m.a", "m.c")


def test_deadlock_sees_through_matched_calls():
    mon = deadlock_monitor()
    # a's push completes (entry+exit): not blocked, no verdict material
    mon.feed(push(1, actor="m.a", phase="entry"), 1)
    mon.feed(push(2, actor="m.a", phase="exit"), 2)
    v = mon.at_stop("deadlock", 3, 3)
    assert v is not None  # platform said deadlock; nothing blocked on IO
    assert "no actor inside a blocking framework call" in v.message


def test_deadlock_wait_sync_edge():
    mon = deadlock_monitor()
    start = RvEvent(1, "exit", SYM_ACTOR_START, "m.ctl", None, None, "m.a")
    mon.feed(start, 1)  # ctl started a once
    sync = RvEvent(2, "exit", SYM_ACTOR_SYNC, "m.ctl", None, None, "m.a")
    mon.feed(sync, 2)  # ctl requested sync-up to a's 1 start
    wait = RvEvent(3, "entry", SYM_WAIT_SYNC, "m.ctl", None, None, None)
    mon.feed(wait, 3)  # ctl now waits; a has 0 of 1 works done
    mon.feed(pop(4, actor="m.a", link="c::o->a::i2", phase="entry"), 4)
    v = mon.at_stop("deadlock", 5, 5)
    assert v is not None
    # ctl waits on a, a waits on unblocked c: a is the starvation root
    assert "m.a blocked in pop c::o->a::i2, waiting on m.c (not blocked)" in v.message


def test_deadlock_only_trips_on_deadlock_stops():
    mon = deadlock_monitor()
    mon.feed(push(1, actor="m.a", phase="entry"), 1)
    assert mon.at_stop("breakpoint", 2, 2) is None
    assert not mon.tripped
