"""OpenMetrics exposition + the in-tree promtool-style validator.

The exposition must round-trip its own validator cleanly, stay
byte-deterministic across identical runs, and the validator must
actually catch malformed documents (it gates the CI scrape check, so a
vacuous parser would make that job meaningless).
"""

import pytest

from repro.apps.rle import build_rle_pipeline
from repro.core import DataflowSession
from repro.dbg import Debugger, StopKind
from repro.obs import parse_openmetrics, to_openmetrics


def _collected_metrics():
    sched, runtime, _sink = build_rle_pipeline([5, 5, 5, 2, 7, 7])
    session = DataflowSession(Debugger(sched, runtime))
    session.telemetry.enable()
    ev = session.dbg.run()
    while ev.kind not in (StopKind.EXITED, StopKind.DEADLOCK, StopKind.ERROR):
        ev = session.dbg.cont()
    assert ev.kind == StopKind.EXITED
    return session.telemetry.metrics


def test_exposition_passes_own_validator():
    text = to_openmetrics(_collected_metrics())
    assert parse_openmetrics(text) == []
    assert text.endswith("# EOF\n")


def test_exposition_is_deterministic_across_runs():
    assert to_openmetrics(_collected_metrics()) == to_openmetrics(_collected_metrics())


def test_exposition_shape():
    lines = to_openmetrics(_collected_metrics()).splitlines()
    # counters end _total, every family has HELP+TYPE, histograms carry
    # cumulative buckets ending at +Inf with matching _count
    assert any(l.startswith("# TYPE repro_actor_firings counter") for l in lines)
    assert any(l.startswith("repro_actor_firings_total{actor=") for l in lines)
    assert any(l.startswith("# TYPE repro_link_push_latency histogram") for l in lines)
    assert any('le="+Inf"' in l for l in lines)
    assert any(l.startswith("repro_link_push_latency_count{") for l in lines)
    assert any(l.startswith("repro_run_last_time ") for l in lines)


def test_prefix_is_configurable():
    text = to_openmetrics(_collected_metrics(), prefix="acme")
    assert parse_openmetrics(text) == []
    assert "acme_actor_firings_total" in text and "repro_" not in text


# ------------------------------------------------- validator negative cases


def _doc(*lines):
    return "\n".join(lines) + "\n"


GOOD = _doc(
    "# HELP t_x_total A counter.",
    "# TYPE t_x counter",
    't_x_total{a="1"} 3',
    "# EOF",
)


def test_validator_accepts_minimal_document():
    assert parse_openmetrics(GOOD) == []


def test_validator_requires_terminal_eof():
    broken = GOOD.replace("# EOF\n", "")
    assert any("EOF" in p for p in parse_openmetrics(broken))


def test_validator_rejects_counter_sample_without_total_suffix():
    doc = _doc(
        "# HELP t_x A counter.",
        "# TYPE t_x counter",
        't_x{a="1"} 3',
        "# EOF",
    )
    assert any("_total" in p for p in parse_openmetrics(doc))


def test_validator_rejects_unsorted_labels():
    doc = _doc(
        "# HELP t_x_total A counter.",
        "# TYPE t_x counter",
        't_x_total{b="2",a="1"} 3',
        "# EOF",
    )
    assert any("sorted" in p for p in parse_openmetrics(doc))


def test_validator_rejects_unknown_type():
    doc = _doc("# HELP t_x Something.", "# TYPE t_x widget", "t_x 1", "# EOF")
    assert any("type" in p.lower() for p in parse_openmetrics(doc))


def test_validator_rejects_non_cumulative_histogram():
    doc = _doc(
        "# HELP t_h A histogram.",
        "# TYPE t_h histogram",
        't_h_bucket{le="1"} 5',
        't_h_bucket{le="2"} 3',  # decreasing: not cumulative
        't_h_bucket{le="+Inf"} 5',
        "t_h_sum 9",
        "t_h_count 5",
        "# EOF",
    )
    assert parse_openmetrics(doc) != []


def test_validator_rejects_histogram_without_inf_bucket():
    doc = _doc(
        "# HELP t_h A histogram.",
        "# TYPE t_h histogram",
        't_h_bucket{le="1"} 5',
        "t_h_sum 9",
        "t_h_count 5",
        "# EOF",
    )
    assert any("+Inf" in p for p in parse_openmetrics(doc))


def test_validator_rejects_duplicate_samples():
    doc = _doc(
        "# HELP t_x_total A counter.",
        "# TYPE t_x counter",
        't_x_total{a="1"} 3',
        't_x_total{a="1"} 4',
        "# EOF",
    )
    assert any("duplicate" in p.lower() for p in parse_openmetrics(doc))


def test_validator_reports_malformed_sample_lines():
    doc = _doc(
        "# HELP t_x_total A counter.",
        "# TYPE t_x counter",
        "t_x_total{unclosed 3",
        "# EOF",
    )
    assert parse_openmetrics(doc) != []
