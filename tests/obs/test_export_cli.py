"""Export hygiene and CLI listing controls.

``write_artifact`` is the single choke point every observability export
goes through: parent directories are created, silent overwrite is
refused without ``force``, and the byte count is reported.  On top sit
the ``trace export``/``metrics export`` CLI verbs and the sort/limit
options of ``info spans``/``info metrics``.
"""

import pytest

from repro.apps.rle import build_rle_pipeline
from repro.core import DataflowSession
from repro.dbg import CommandCli, Debugger, StopKind
from repro.errors import DataflowDebugError
from repro.obs import parse_openmetrics, validate_chrome_trace, write_artifact


def rle_cli(values=(5, 5, 5, 2, 7, 7)):
    sched, runtime, _sink = build_rle_pipeline(list(values))
    dbg = Debugger(sched, runtime)
    cli = CommandCli(dbg)
    session = DataflowSession(dbg, cli=cli)
    return session, cli


def run_traced(session):
    session.telemetry.enable()
    ev = session.dbg.run()
    while ev.kind not in (StopKind.EXITED, StopKind.DEADLOCK, StopKind.ERROR):
        ev = session.dbg.cont()
    assert ev.kind == StopKind.EXITED


# ----------------------------------------------------------- write_artifact


def test_write_artifact_creates_parent_dirs_and_counts_bytes(tmp_path):
    target = tmp_path / "a" / "b" / "out.txt"
    nbytes = write_artifact(str(target), "hello\n")
    assert nbytes == 6 and target.read_text() == "hello\n"


def test_write_artifact_refuses_silent_overwrite(tmp_path):
    target = tmp_path / "out.txt"
    write_artifact(str(target), "first")
    with pytest.raises(DataflowDebugError, match="refusing to overwrite"):
        write_artifact(str(target), "second")
    assert target.read_text() == "first"
    assert write_artifact(str(target), "second", force=True) == 6
    assert target.read_text() == "second"


# ----------------------------------------------------------- trace export


def test_trace_export_reports_spans_and_bytes(tmp_path):
    session, cli = rle_cli()
    run_traced(session)
    target = tmp_path / "nested" / "trace.json"
    out = cli.execute(f"trace export {target}")
    assert len(out) == 1 and out[0].startswith("wrote ")
    assert "span(s)" in out[0] and "byte(s)" in out[0]
    nbytes = int(out[0].split("span(s), ")[1].split(" byte(s)")[0])
    assert nbytes == len(target.read_bytes())
    assert validate_chrome_trace(target.read_text()) == []


def test_trace_export_overwrite_needs_force(tmp_path):
    session, cli = rle_cli()
    run_traced(session)
    target = tmp_path / "trace.json"
    assert cli.execute(f"trace export {target}")[0].startswith("wrote ")
    out = cli.execute(f"trace export {target}")
    assert out and "refusing to overwrite" in out[0]
    assert cli.execute(f"trace export {target} force")[0].startswith("wrote ")


def test_metrics_export_and_show(tmp_path):
    session, cli = rle_cli()
    run_traced(session)
    target = tmp_path / "m" / "metrics.om"
    out = cli.execute(f"metrics export {target}")
    assert out[0].startswith("wrote ") and "OpenMetrics" in out[0]
    assert parse_openmetrics(target.read_text()) == []
    shown = cli.execute("metrics show")
    assert shown[-1] == "# EOF"
    # before any collection the verbs refuse with a hint
    fresh_session, fresh_cli = rle_cli()
    out = fresh_cli.execute("metrics show")
    assert out and "trace on" in out[0]


# ------------------------------------------------- info spans/metrics knobs


def test_info_spans_default_cap_and_footer():
    session, cli = rle_cli()
    run_traced(session)
    total = len(session.telemetry.sink)
    assert total > 20  # the default cap must actually bite
    out = cli.execute("info spans")
    assert out[0].endswith(f"lifetime by name: {_names_summary(session)}")
    footer = [l for l in out if "more span(s)" in l]
    assert len(footer) == 1 and "`info spans all` shows all" in footer[0]
    # default shows 20 spans (+ header + footer)
    assert len(out) == 22


def _names_summary(session):
    snap = session.telemetry.sink.snapshot()
    return ", ".join(f"{k}={v}" for k, v in sorted(snap.name_counts.items()))


def test_info_spans_limit_all_and_sorts():
    session, cli = rle_cli()
    run_traced(session)
    total = len(session.telemetry.sink)
    assert len(cli.execute("info spans all")) == total + 1  # no footer
    out = cli.execute("info spans 5")
    assert len(out) == 7
    # `sort dur` lists the longest spans first
    durs = _shown_durations(cli.execute("info spans 5 sort dur"))
    assert durs == sorted(durs, reverse=True)
    # time sort shows the *most recent* window: the exit-side spans
    assert cli.execute("info spans 1")[-1] == cli.execute("info spans all")[-1]


def _shown_durations(lines):
    durs = []
    for line in lines:
        line = line.strip()
        if "dur=" in line:
            durs.append(int(line.split("dur=")[1].split(")")[0]))
    return durs


def test_info_metrics_limit_and_footers():
    session, cli = rle_cli()
    run_traced(session)
    out = cli.execute("info metrics 1")
    assert sum("more actor(s)" in l for l in out) == 1
    assert sum("more link(s)" in l for l in out) == 1
    assert "`info metrics all` shows all" in "".join(out)
    full = cli.execute("info metrics all")
    assert not any("more actor(s)" in l or "more link(s)" in l for l in full)


def test_info_metrics_sort_busy_orders_actors():
    session, cli = rle_cli()
    run_traced(session)
    out = cli.execute("info metrics all sort busy")
    busy = []
    in_actors = False
    for line in out:
        if line == "actors:":
            in_actors = True
            continue
        if line == "links:":
            break
        if in_actors and "busy=" in line:
            busy.append(int(line.split("busy=")[1].split(" ")[0]))
    assert len(busy) >= 2 and busy == sorted(busy, reverse=True)


def test_listing_rejects_bad_options():
    session, cli = rle_cli()
    run_traced(session)
    out = cli.execute("info spans sort sideways")
    assert out and out[0].startswith("error:")
    out = cli.execute("info metrics nonsense")
    assert out and out[0].startswith("error:")
