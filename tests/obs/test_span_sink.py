"""SpanSink bounded-storage semantics (cap vs ring), Span basics."""

from repro.obs import Span, SpanSink


def span(i, name="s", track="a.f"):
    return Span(track, name, "io", begin=i, end=i + 2)


def fill(sink, n, name="s"):
    for i in range(n):
        sink.add(span(i, name))


def test_span_fields_and_duration():
    s = Span("a.f", "push", "io", 10, 14, (("link", "x->y"), ("seq", 3)))
    assert s.duration == 4
    text = s.describe()
    assert "[10..14]" in text and "a.f" in text and "link=x->y" in text and "seq=3" in text


def test_unbounded_keeps_everything():
    sink = SpanSink()
    fill(sink, 50)
    assert len(sink) == 50
    assert sink.dropped == 0
    assert sink.total("s") == 50


def test_cap_mode_keeps_first_spans():
    sink = SpanSink(limit=3)
    fill(sink, 10)
    assert [s.begin for s in sink.spans] == [0, 1, 2]
    assert sink.dropped == 7
    assert sink.total("s") == 10


def test_ring_mode_keeps_last_spans():
    sink = SpanSink(limit=3, ring=True)
    fill(sink, 10)
    assert [s.begin for s in sink.spans] == [7, 8, 9]
    assert sink.dropped == 7
    assert sink.total("s") == 10


def test_ring_limit_one():
    sink = SpanSink(limit=1, ring=True)
    for i in range(4):
        sink.add(span(i, name=f"n{i}"))
    assert [s.name for s in sink.spans] == ["n3"]
    assert sink.dropped == 3
    assert all(sink.total(f"n{i}") == 1 for i in range(4))


def test_zero_limit_stores_nothing():
    for ring in (False, True):
        sink = SpanSink(limit=0, ring=ring)
        fill(sink, 5)
        assert sink.spans == []
        assert sink.dropped == 5
        assert sink.total("s") == 5


def test_snapshot_is_atomic_copy():
    sink = SpanSink(limit=2, ring=True)
    fill(sink, 5)
    snap = sink.snapshot()
    assert [s.begin for s in snap.spans] == [3, 4]
    assert snap.name_counts == {"s": 5}
    assert snap.dropped == 3
    sink.add(span(9, "t"))
    sink.clear()
    assert [s.begin for s in snap.spans] == [3, 4]
    assert snap.name_counts == {"s": 5}


def test_clear_resets_everything():
    sink = SpanSink(limit=2, ring=True)
    fill(sink, 5)
    sink.clear()
    assert sink.spans == [] and sink.dropped == 0 and sink.name_counts == {}
    fill(sink, 1)
    assert len(sink) == 1


def test_iteration_order_is_close_order():
    sink = SpanSink()
    for i in (3, 1, 2):
        sink.add(span(i))
    assert [s.begin for s in sink] == [3, 1, 2]
