"""Live-collected vs. replay-derived telemetry must be byte-identical.

The ReplayJournal stores only (time, actor, symbol:phase, seq) per
framework event plus the seq->link side table; the span builder is
restricted to those fields by design, so deriving telemetry from the
journal of a recorded run must reproduce the live collection exactly —
same metrics report, same exported Chrome trace, byte for byte.
"""

import pytest

from repro.apps.amodule import build_demo
from repro.apps.rle import build_rle_pipeline
from repro.core import DataflowSession
from repro.dbg import Debugger, StopKind
from repro.obs import derive_telemetry, to_chrome_trace


def run_to_exit(dbg):
    ev = dbg.run()
    while ev.kind not in (StopKind.EXITED, StopKind.DEADLOCK, StopKind.ERROR):
        ev = dbg.cont()
    return ev


def rle_build():
    sched, runtime, sink = build_rle_pipeline([5, 5, 5, 2, 7, 7])
    return DataflowSession(Debugger(sched, runtime))


def amodule_build():
    sched, platform, runtime, source, sink = build_demo()
    return DataflowSession(Debugger(sched, runtime))


@pytest.mark.parametrize("build", [rle_build, amodule_build], ids=["rle", "amodule"])
def test_live_and_derived_telemetry_are_byte_identical(build):
    session = build()
    session.replay.record_on()
    session.telemetry.enable()
    assert run_to_exit(session.dbg).kind == StopKind.EXITED

    tel = session.telemetry
    assert tel.builder.events_fed > 0
    assert tel.sink.dropped == 0

    derived = derive_telemetry(session.replay.master)
    assert derived.complete
    assert derived.events_fed == tel.builder.events_fed

    # spans: identical sequence, field for field
    assert derived.sink.snapshot() == tel.sink.snapshot()
    # metrics: identical deterministic report
    assert derived.metrics.render() == tel.metrics.render()
    # export: byte-identical Chrome trace JSON
    live_json = to_chrome_trace(tel.sink.snapshot().spans, "app")
    derived_json = to_chrome_trace(derived.sink.snapshot().spans, "app")
    assert live_json == derived_json


def test_derivation_alone_profiles_a_plain_recorded_run():
    """A run recorded *without* live telemetry is still profilable."""
    session = rle_build()
    session.replay.record_on()
    assert run_to_exit(session.dbg).kind == StopKind.EXITED
    assert not session.telemetry.enabled

    derived = derive_telemetry(session.replay.master)
    assert derived.complete
    assert len(derived.sink) > 0
    # link attribution came from the journal's side table
    assert derived.metrics.links
    for lm in derived.metrics.links.values():
        assert lm.pushes > 0 and lm.pops > 0
    # filters fired; token counters line up with the fingerprint stream
    produced = sum(m.produced for m in derived.metrics.actors.values())
    assert produced == len(session.replay.master.token_stream())


def test_derivation_from_bounded_journal_reports_incomplete():
    session = rle_build()
    session.replay.record_on(limit=10)
    run_to_exit(session.dbg)
    derived = derive_telemetry(session.replay.master)
    assert not derived.complete
