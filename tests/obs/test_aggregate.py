"""Cross-shard telemetry stitching (the merge-determinism contract).

The canonical projection of the stitched sharded view — per-actor work
counters, per-link token counts and value-stream digests, per-track
ordinal-labelled span sequences — must be byte-identical to the same
projection of the single-kernel journal, at any shard count, on any
interpreter tier.  On top of that sit the cross-shard causal edges
(push ordinal N on the producer shard == pop ordinal N on the consumer
shard) and the merged multi-process Chrome trace export.
"""

import json

import pytest

from repro.apps.amodule.app import AMODULE_HOSTS, build_amodule_program, build_demo
from repro.apps.rle.app import RLE_HOSTS, build_rle_pipeline, build_rle_program
from repro.core import DataflowSession
from repro.core.shards import ShardedRun
from repro.dbg import Debugger, StopKind
from repro.obs import aggregate_journal, aggregate_sharded, validate_chrome_trace
from repro.sim.sharding import HostSpec, partition_program

VALUES = (1, 1, 2, 3, 3, 3, 3, 9, 9, 4)
AM_VALUES = (1, 2, 3, 4)


def _set_tier(runtime, tier):
    runtime.config.interp_tier = tier
    for actor in runtime.all_actors():
        interp = getattr(actor, "interp", None)
        if interp is not None:
            interp.tier = tier


def _run_to_exit(dbg):
    ev = dbg.run()
    while ev.kind not in (StopKind.EXITED, StopKind.DEADLOCK, StopKind.ERROR):
        ev = dbg.cont()
    return ev


def _single_rle(tier):
    sched, runtime, _sink = build_rle_pipeline(VALUES)
    _set_tier(runtime, tier)
    session = DataflowSession(Debugger(sched, runtime))
    session.replay.record_on(interval=16)
    assert _run_to_exit(session.dbg).kind == StopKind.EXITED
    return session


def _sharded_rle(n_shards, tier):
    plan = partition_program(
        build_rle_program(VALUES), n_shards, hosts=[HostSpec(*h) for h in RLE_HOSTS]
    )

    def build(ctx):
        sched, runtime, _sink = build_rle_pipeline(VALUES, shard=ctx)
        _set_tier(runtime, tier)
        return DataflowSession(Debugger(sched, runtime))

    run = ShardedRun(plan, build, record=True)
    assert run.run().kind == "exited"
    return run


def _single_amodule(tier):
    sched, _plat, runtime, _src, _sink = build_demo(AM_VALUES)
    _set_tier(runtime, tier)
    session = DataflowSession(Debugger(sched, runtime))
    session.replay.record_on(interval=16)
    assert _run_to_exit(session.dbg).kind == StopKind.EXITED
    return session


def _sharded_amodule(n_shards, tier):
    plan = partition_program(
        build_amodule_program(attribute=1, max_steps=len(AM_VALUES)),
        n_shards,
        hosts=[HostSpec(*h) for h in AMODULE_HOSTS],
    )

    def build(ctx):
        sched, _plat, runtime, _src, _sink = build_demo(AM_VALUES, shard=ctx)
        _set_tier(runtime, tier)
        return DataflowSession(Debugger(sched, runtime))

    run = ShardedRun(plan, build, record=True)
    assert run.run().kind == "exited"
    return run


# ------------------------------------------------ canonical byte-identity


@pytest.mark.parametrize("tier", ["auto", "vm"])
@pytest.mark.parametrize("n_shards", [1, 2, 4])
def test_rle_canonical_matches_single_kernel(tier, n_shards):
    single = aggregate_journal(_single_rle(tier).replay.master)
    sharded = aggregate_sharded(_sharded_rle(n_shards, tier))
    assert sharded.complete and not sharded.warnings
    assert sharded.canonical_lines() == single.canonical_lines()
    assert sharded.canonical_fingerprint() == single.canonical_fingerprint()


@pytest.mark.parametrize("tier", ["auto", "vm"])
@pytest.mark.parametrize("n_shards", [1, 2, 4])
def test_amodule_canonical_matches_single_kernel(tier, n_shards):
    single = aggregate_journal(_single_amodule(tier).replay.master)
    sharded = aggregate_sharded(_sharded_amodule(n_shards, tier))
    assert sharded.complete and not sharded.warnings
    assert sharded.canonical_lines() == single.canonical_lines()
    assert sharded.canonical_fingerprint() == single.canonical_fingerprint()


def test_canonical_projection_is_tier_invariant():
    """The projection only contains order-determined quantities, so the
    closure and bytecode tiers must agree line for line too."""
    assert (
        aggregate_journal(_single_rle("auto").replay.master).canonical_lines()
        == aggregate_journal(_single_rle("vm").replay.master).canonical_lines()
    )


# --------------------------------------------------- synthetic graphs

SYN_VALUES = (3, 1, 4, 1, 5)
SYN_SMALL = dict(chains=2, modules_per_chain=3, filters_per_module=2)


def _synthetic_single(values, **dims):
    from repro.apps.synthetic import build_synthetic_pipeline

    sched, runtime, _sinks = build_synthetic_pipeline(values, **dims)
    session = DataflowSession(Debugger(sched, runtime))
    session.replay.record_on(interval=64)
    assert _run_to_exit(session.dbg).kind == StopKind.EXITED
    return session


def _synthetic_sharded(n_shards, values, **dims):
    from repro.apps.synthetic import (
        build_synthetic_pipeline,
        build_synthetic_program,
        synthetic_hosts,
    )

    program = build_synthetic_program(
        chains=dims.get("chains", 4),
        modules_per_chain=dims.get("modules_per_chain", 25),
        filters_per_module=dims.get("filters_per_module", 9),
        steps=len(values),
        work_iters=dims.get("work_iters", 1),
    )
    hosts = synthetic_hosts(dims.get("chains", 4), dims.get("modules_per_chain", 25))
    plan = partition_program(program, n_shards, hosts=hosts)

    def build(ctx):
        sched, runtime, _sinks = build_synthetic_pipeline(values, shard=ctx, **dims)
        return DataflowSession(Debugger(sched, runtime))

    run = ShardedRun(plan, build, record=True)
    assert run.run().kind == "exited"
    return run


@pytest.mark.parametrize("n_shards", [2, 4])
def test_synthetic_small_canonical_matches_single_kernel(n_shards):
    single = aggregate_journal(_synthetic_single(SYN_VALUES, **SYN_SMALL).replay.master)
    sharded = aggregate_sharded(_synthetic_sharded(n_shards, SYN_VALUES, **SYN_SMALL))
    assert sharded.complete and not sharded.warnings
    assert sharded.canonical_fingerprint() == single.canonical_fingerprint()


def test_synthetic_1000_actor_canonical_matches_single_kernel():
    """The headline 1000-fabric-actor graph, stitched from 2 shards."""
    single = aggregate_journal(_synthetic_single(SYN_VALUES).replay.master)
    sharded = aggregate_sharded(_synthetic_sharded(2, SYN_VALUES))
    assert sharded.complete and not sharded.warnings
    assert sharded.canonical_fingerprint() == single.canonical_fingerprint()


# ------------------------------------------------------ cross-shard edges


def test_cross_shard_edges_cover_every_forwarded_token():
    run = _sharded_rle(2, "auto")
    agg = aggregate_sharded(run)
    assert agg.edges, "a 2-shard RLE run must cut at least one link"
    per_link = {}
    for edge in agg.edges:
        assert edge.link in run.channels
        assert edge.send_time <= edge.recv_time
        assert edge.src_shard != edge.dst_shard
        channel = run.channels[edge.link]
        assert (edge.src_shard, edge.dst_shard) == (
            channel.src_shard,
            channel.dst_shard,
        )
        per_link.setdefault(edge.link, []).append(edge.ordinal)
    for link, ordinals in per_link.items():
        # ordinals are contiguous FIFO positions, one per forwarded token
        assert ordinals == list(range(1, run.channels[link].total_forwarded + 1))


def test_aggregate_requires_recorded_run():
    from repro.errors import DataflowDebugError

    plan = partition_program(
        build_rle_program(VALUES), 2, hosts=[HostSpec(*h) for h in RLE_HOSTS]
    )

    def build(ctx):
        sched, runtime, _sink = build_rle_pipeline(VALUES, shard=ctx)
        return DataflowSession(Debugger(sched, runtime))

    run = ShardedRun(plan, build, record=False)
    assert run.run().kind == "exited"
    with pytest.raises(DataflowDebugError):
        aggregate_sharded(run)


# --------------------------------------------------- merged Chrome export


@pytest.mark.parametrize("n_shards", [2, 4])
def test_merged_chrome_trace_passes_validator(n_shards):
    agg = aggregate_sharded(_sharded_rle(n_shards, "auto"))
    text = agg.chrome_trace()
    assert validate_chrome_trace(text) == []
    events = json.loads(text)["traceEvents"]
    pids = {ev["pid"] for ev in events}
    assert pids == set(range(1, n_shards + 1))
    # every process lane is named after its shard
    names = {
        ev["pid"]: ev["args"]["name"]
        for ev in events
        if ev["ph"] == "M" and ev["name"] == "process_name"
    }
    assert names == {sid + 1: f"shard {sid}" for sid in range(n_shards)}
    # cut-link io spans carry their cross-shard edge annotation
    annotated = [ev for ev in events if ev["ph"] == "X" and "xshard" in ev.get("args", {})]
    assert len(annotated) == 2 * len(agg.edges)  # one push + one pop per edge


def test_merged_chrome_trace_is_stable_across_runs():
    """pid/tid assignment is a pure function of the plan and program:
    two identical sharded runs export byte-identical traces."""
    first = aggregate_sharded(_sharded_rle(2, "auto")).chrome_trace()
    second = aggregate_sharded(_sharded_rle(2, "auto")).chrome_trace()
    assert first == second
    # repeated export of the same aggregate is trivially stable too
    agg = aggregate_sharded(_sharded_rle(2, "auto"))
    assert agg.chrome_trace() == agg.chrome_trace()


def test_sharded_run_export_trace_writes_file(tmp_path):
    run = _sharded_rle(2, "auto")
    target = tmp_path / "nested" / "trace.json"
    nbytes = run.export_trace(str(target))
    assert target.exists() and nbytes == len(target.read_bytes())
    assert validate_chrome_trace(target.read_text()) == []
