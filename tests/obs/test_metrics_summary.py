"""Histogram percentile/summary edge cases (regression coverage).

The pow-2 bucketing makes percentiles coarse by design; the edge cases
that used to be undefined — zero samples, a single sample, everything
in one bucket — must be exact and total, never raise, and the summary
dict must carry a fixed key set for every shape.
"""

import pytest

from repro.obs.metrics import Histogram


def _hist(*values):
    h = Histogram()
    for v in values:
        h.add(v)
    return h


def test_empty_histogram_is_total():
    h = Histogram()
    assert h.bounds() == []
    for q in (0, 50, 99, 100):
        assert h.percentile(q) == 0
    assert h.summary() == {
        "count": 0, "sum": 0, "min": 0, "mean": 0.0,
        "p50": 0, "p90": 0, "p99": 0, "max": 0,
    }
    assert h.render() == "(empty)"


def test_single_sample_is_exact_at_every_percentile():
    h = _hist(7)
    # 7 lands in the <=8 pow-2 bucket, but the clamp keeps it exact
    for q in (0, 1, 50, 90, 99, 100):
        assert h.percentile(q) == 7
    s = h.summary()
    assert s["min"] == s["p50"] == s["p99"] == s["max"] == 7
    assert s["count"] == 1 and s["sum"] == 7


def test_single_bucket_many_samples_clamps_to_observed_range():
    h = _hist(5, 6, 7, 8)  # all in the <=8 bucket
    assert h.bounds() == [(8, 4)]
    assert h.percentile(0) == 5
    assert h.percentile(100) == 8
    # interior percentiles clamp the coarse bound into [min, max]
    for q in (25, 50, 90, 99):
        assert 5 <= h.percentile(q) <= 8


def test_zero_and_negative_samples_share_the_zero_bucket():
    h = _hist(0, 0, -3)
    assert h.bounds() == [(0, 3)]
    assert h.percentile(50) == 0
    assert h.summary()["min"] == -3  # min tracks the raw value


def test_percentile_edges_and_monotonicity():
    h = _hist(*range(1, 101))
    assert h.percentile(-5) == 1
    assert h.percentile(0) == 1
    assert h.percentile(100) == 100
    assert h.percentile(200) == 100
    values = [h.percentile(q) for q in range(0, 101, 5)]
    assert values == sorted(values)
    # p50 of 1..100: 51st sample = 51, bucket bound 64
    assert h.percentile(50) == 64


def test_bounds_are_cumulative_and_ascending():
    h = _hist(1, 2, 3, 4, 5, 100)
    bounds = h.bounds()
    assert [b for b, _ in bounds] == sorted(b for b, _ in bounds)
    counts = [c for _, c in bounds]
    assert counts == sorted(counts)
    assert counts[-1] == h.count


def test_summary_key_order_is_fixed():
    assert list(_hist(3).summary()) == [
        "count", "sum", "min", "mean", "p50", "p90", "p99", "max",
    ]
    assert list(Histogram().summary()) == list(_hist(1, 2, 3).summary())
