"""Chrome trace-event export: schema shape, determinism, CLI/flag paths."""

import json

from repro.__main__ import main
from repro.apps.rle import build_rle_pipeline
from repro.core import DataflowSession
from repro.dbg import Debugger, StopKind
from repro.obs import Span, to_chrome_trace, validate_chrome_trace


def run_to_exit(dbg):
    ev = dbg.run()
    while ev.kind not in (StopKind.EXITED, StopKind.DEADLOCK, StopKind.ERROR):
        ev = dbg.cont()
    return ev


def collected_session():
    sched, runtime, sink = build_rle_pipeline([5, 5, 5, 2, 7, 7])
    session = DataflowSession(Debugger(sched, runtime))
    session.telemetry.enable()
    run_to_exit(session.dbg)
    return session


# ------------------------------------------------------------- exporter


def test_export_shape_and_tracks():
    session = collected_session()
    text = session.telemetry.export_json("rle")
    assert validate_chrome_trace(text) == []
    doc = json.loads(text)
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    body = [e for e in events if e["ph"] == "X"]
    assert body, "no spans exported"
    # one process_name + one thread_name per track
    assert [e for e in meta if e["name"] == "process_name"][0]["args"]["name"] == "rle"
    threads = {e["args"]["name"]: e["tid"] for e in meta if e["name"] == "thread_name"}
    assert "codec.pack" in threads and "codec.controller" in threads
    # every complete event maps to a declared thread
    assert {e["tid"] for e in body} <= set(threads.values())
    # sorted: ts non-decreasing
    ts = [e["ts"] for e in body]
    assert ts == sorted(ts)


def test_export_is_deterministic():
    session = collected_session()
    assert session.telemetry.export_json("rle") == session.telemetry.export_json("rle")


def test_parent_sorts_before_child():
    spans = [
        Span("a.f", "work", "filterc", 10, 30),
        Span("a.f", "firing", "firing", 10, 40),
        Span("a.f", "push", "io", 12, 14),
    ]
    doc = json.loads(to_chrome_trace(spans))
    names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"]
    assert names == ["firing", "work", "push"]


# ------------------------------------------------------------ validator


def test_validator_rejects_malformed_documents():
    assert validate_chrome_trace("not json")
    assert validate_chrome_trace("[]")
    assert validate_chrome_trace('{"no": "traceEvents"}')
    assert validate_chrome_trace('{"traceEvents": 5}')
    bad_event = json.dumps({"traceEvents": [{"ph": "X", "name": "x", "pid": 1, "tid": 1}]})
    assert any("ts" in p for p in validate_chrome_trace(bad_event))
    bad_phase = json.dumps(
        {"traceEvents": [{"ph": "B", "name": "x", "pid": 1, "tid": 1, "ts": 0}]}
    )
    assert any("phase" in p for p in validate_chrome_trace(bad_phase))
    negative = json.dumps(
        {"traceEvents": [{"ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": 0, "dur": -1}]}
    )
    assert any("negative" in p for p in validate_chrome_trace(negative))


def test_validator_accepts_empty_trace():
    assert validate_chrome_trace(to_chrome_trace([])) == []


# ------------------------------------------------------- CLI integration


def test_main_trace_out_flag(tmp_path, capsys):
    script = tmp_path / "session.gdb"
    script.write_text("run\ncontinue\n")
    out_file = tmp_path / "trace.json"
    rc = main(["--demo", "rle", "--script", str(script), "--trace-out", str(out_file)])
    assert rc == 0
    text = out_file.read_text()
    assert validate_chrome_trace(text) == []
    doc = json.loads(text)
    assert any(e["ph"] == "X" for e in doc["traceEvents"])
    assert "wrote" in capsys.readouterr().out
