"""The always-on flight recorder: bounded rings, stop history, and the
automatic post-mortem bundle on violation stops.
"""

import json

import pytest

from repro.apps.rle import build_rle_pipeline
from repro.core import DataflowSession
from repro.dbg import CommandCli, Debugger, StopKind
from repro.obs.flight import AUTO_DUMP_KINDS, FlightRecorder


def rle_session(**kw):
    sched, runtime, _sink = build_rle_pipeline([5, 5, 5, 2, 7, 7])
    dbg = Debugger(sched, runtime)
    cli = CommandCli(dbg)
    return DataflowSession(dbg, cli=cli, **kw), cli


def run_to_exit(dbg):
    ev = dbg.run()
    while ev.kind not in (StopKind.EXITED, StopKind.DEADLOCK, StopKind.ERROR):
        ev = dbg.cont()
    return ev


def test_recorder_is_armed_from_construction():
    session, _ = rle_session()
    assert isinstance(session.flight, FlightRecorder)
    assert session.flight.auto_dump
    assert "armed (always on)" in session.flight.status_lines()[0]


def test_ring_bounds_span_capture():
    session, _ = rle_session()
    session.flight.sink.limit = 8  # shrink before anything is collected
    session.telemetry.enable()
    assert run_to_exit(session.dbg).kind == StopKind.EXITED
    snapshot = session.flight.sink.snapshot()
    assert len(snapshot.spans) <= 8
    assert session.flight.sink.dropped > 0  # ring evicted, never grew
    # the full telemetry sink kept everything — the ring is a copy tap
    assert len(session.telemetry.sink) > 8


def test_stop_history_and_deltas_accumulate():
    session, _ = rle_session()
    session.telemetry.enable()
    assert run_to_exit(session.dbg).kind == StopKind.EXITED
    kinds = [s["kind"] for s in session.flight.stops]
    assert kinds[-1] == "exited"
    assert len(session.flight.deltas) == len(session.flight.stops)
    # counters moved between init and exit, so the exit delta is non-empty
    assert session.flight.deltas[-1]["actors"]


def test_auto_dump_on_violation(tmp_path):
    session, cli = rle_session(stop_on_init=True)
    session.flight.dump_dir = str(tmp_path)
    session.telemetry.enable()
    session.dbg.run()  # stop after init
    session.checks.add("occupancy pack::o->expand::i <= 0")
    ev = session.dbg.cont()
    assert ev.kind == StopKind.VIOLATION
    assert StopKind.VIOLATION in AUTO_DUMP_KINDS
    dumps = list(tmp_path.glob("flight_violation_t*.json"))
    assert len(dumps) == 1
    bundle = json.loads(dumps[0].read_text())
    assert bundle["flight"]["reason"] == "auto:violation"
    assert bundle["stops"][-1]["kind"] == "violation"
    assert bundle["flight"]["telemetry_observed"] is True
    # the CLI stop banner surfaces the dump exactly once
    notice = session.flight.take_notice()
    assert notice is not None and str(dumps[0]) in notice
    assert session.flight.take_notice() is None


def test_auto_dump_can_be_disabled(tmp_path):
    session, cli = rle_session(stop_on_init=True)
    session.flight.dump_dir = str(tmp_path)
    assert cli.execute("flight auto off") == ["flight auto-dump off"]
    session.dbg.run()
    session.checks.add("occupancy pack::o->expand::i <= 0")
    assert session.dbg.cont().kind == StopKind.VIOLATION
    assert list(tmp_path.glob("*.json")) == []
    # the stop itself is still remembered
    assert session.flight.stops[-1]["kind"] == "violation"


def test_manual_dump_via_cli(tmp_path):
    session, cli = rle_session()
    session.telemetry.enable()
    assert run_to_exit(session.dbg).kind == StopKind.EXITED
    target = tmp_path / "deep" / "bundle.json"
    out = cli.execute(f"flight dump {target}")
    assert out == [f"flight bundle written to {target}"]
    bundle = json.loads(target.read_text())
    assert bundle["flight"]["reason"] == "manual"
    assert bundle["config"]["interp_tier"] == "auto"
    assert bundle["spans"] and bundle["metrics"]
    # a second dump to the same explicit path needs force
    out = cli.execute(f"flight dump {target}")
    assert out and out[0].startswith("error:")
    assert cli.execute(f"flight dump {target} force")[0].startswith(
        "flight bundle written"
    )


def test_bundle_without_telemetry_says_so(tmp_path):
    session, _ = rle_session()
    assert run_to_exit(session.dbg).kind == StopKind.EXITED
    bundle = session.flight.bundle("manual")
    assert bundle["flight"]["telemetry_observed"] is False
    assert bundle["spans"] == []
    assert bundle["stops"]  # the stop log is always there


def test_bundle_carries_recorded_token_content():
    session, cli = rle_session(stop_on_init=True)
    session.dbg.run()
    cli.execute("iface pack::o record")
    assert run_to_exit(session.dbg).kind == StopKind.EXITED
    tokens = session.flight.bundle("manual")["tokens"]
    assert tokens is not None
    assert any("iface pack::o" in line for line in tokens)
    # paper-style content lines ("#1 (U16) 5") ride along
    assert any(line.strip().startswith("#") for line in tokens)


def test_bundle_carries_journal_refs():
    session, _ = rle_session()
    session.replay.record_on()
    assert run_to_exit(session.dbg).kind == StopKind.EXITED
    refs = session.flight.bundle("manual")["journal"]
    assert refs is not None and refs["total_events"] > 0
