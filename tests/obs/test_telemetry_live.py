"""Live telemetry: counters vs. ground truth, cost attribution, CLI.

The strongest check here is busy-time exactness: the span builder never
sees the interpreters, yet the per-actor busy it derives (work-span
duration minus nested framework-call durations) must equal the cycles
the interpreter actually flushed — in both execution tiers.
"""

import pytest

from repro.apps.rle import build_rle_pipeline
from repro.cminus.interp import DebugHook
from repro.core import DataflowSession
from repro.dbg import CommandCli, Debugger, StopKind
from repro.obs import INIT_TRACK


def rle_session(values=(5, 5, 5, 2, 7, 7), tier="auto"):
    sched, runtime, sink = build_rle_pipeline(list(values))
    dbg = Debugger(sched, runtime)
    cli = CommandCli(dbg)
    session = DataflowSession(dbg, cli=cli)
    runtime.config.interp_tier = tier
    for actor in runtime.all_actors():
        if getattr(actor, "interp", None) is not None:
            actor.interp.tier = tier
    return session, cli, sink


def run_to_exit(dbg):
    ev = dbg.run()
    while ev.kind not in (StopKind.EXITED, StopKind.DEADLOCK, StopKind.ERROR):
        ev = dbg.cont()
    return ev


# ------------------------------------------------------------ arming model


def test_telemetry_off_by_default_and_armed_on_enable():
    session, _, _ = rle_session()
    dbg = session.dbg
    assert not session.telemetry.enabled
    assert not dbg.hook.capabilities & DebugHook.CAP_TELEMETRY
    session.telemetry.enable()
    assert dbg.hook.capabilities & DebugHook.CAP_TELEMETRY
    # the telemetry bit must NOT deoptimize: tier selection ignores it
    for actor in dbg.runtime.all_actors():
        interp = getattr(actor, "interp", None)
        if interp is not None:
            assert interp._fast_ok
            assert interp._count_cycles
    session.telemetry.disable()
    assert not dbg.hook.capabilities & DebugHook.CAP_TELEMETRY
    for actor in dbg.runtime.all_actors():
        interp = getattr(actor, "interp", None)
        if interp is not None:
            assert not interp._count_cycles


def test_telemetry_adds_exactly_one_wildcard_subscription():
    session, _, _ = rle_session()
    bus = session.dbg.runtime.bus

    def wildcard_subs():
        return len(bus._listeners.get("*", []))

    before = wildcard_subs()
    session.telemetry.enable()
    assert wildcard_subs() == before + 1
    session.telemetry.enable()  # idempotent
    assert wildcard_subs() == before + 1
    session.telemetry.disable()
    assert wildcard_subs() == before


# ---------------------------------------------------- counters vs. ground truth


@pytest.mark.parametrize("tier", ["auto", "vm", "slow"])
def test_live_metrics_match_runtime_totals(tier):
    session, _, sink = rle_session(tier=tier)
    session.telemetry.enable()
    assert run_to_exit(session.dbg).kind == StopKind.EXITED
    metrics = session.telemetry.metrics

    # per-link push/pop counters equal the model's reconstructed totals
    model_links = {l.name: (l.total_pushed, l.total_popped) for l in session.model.links}
    obs_links = {n: (m.pushes, m.pops) for n, m in metrics.links.items()}
    assert obs_links == model_links
    assert model_links, "run reconstructed no links"

    # per-actor firing/step counters equal the model's capture counters
    for actor in session.model.actors.values():
        m = metrics.actors.get(actor.qualname)
        assert m is not None, f"no metrics for {actor.qualname}"
        if actor.kind == "filter":
            assert m.firings == actor.works_done
        if actor.kind == "controller":
            assert m.steps == session.model.steps.get(actor.qualname)

    # busy-time exactness: derived busy == interpreter-flushed cycles
    cycles = session.telemetry.interp_cycles()
    assert cycles and any(cycles.values())
    for qualname, flushed in cycles.items():
        assert metrics.actors[qualname].busy == flushed, qualname

    # occupancy gauges drained back to zero, high-water saw traffic
    for name, lm in metrics.links.items():
        assert lm.occupancy == 0, name
        assert lm.high_water >= 1, name
        assert lm.push_latency.count == lm.pushes
        assert lm.pop_latency.count == lm.pops


def test_both_tiers_collect_identical_telemetry():
    """All execution tiers issue byte-identical kernel-request
    streams, so their telemetry must be byte-identical too."""
    by_tier = {}
    for tier in ("auto", "vm", "slow"):
        session, _, _ = rle_session(tier=tier)
        session.telemetry.enable()
        run_to_exit(session.dbg)
        by_tier[tier] = (
            session.telemetry.metrics.render(),
            session.telemetry.export_json("rle"),
        )
    assert by_tier["auto"] == by_tier["slow"]
    assert by_tier["vm"] == by_tier["slow"]


def test_span_hierarchy_shapes():
    session, _, _ = rle_session()
    session.telemetry.enable()
    run_to_exit(session.dbg)
    snap = session.telemetry.sink.snapshot()
    assert snap.dropped == 0
    names = snap.name_counts
    # firing spans pair one-to-one with their Filter-C work spans,
    # controller steps with their run spans
    assert names["firing"] == names["work"] > 0
    assert names["step"] == names["run"] > 0
    assert names["push"] == names["pop"] > 0
    # elaboration events landed on the init track
    assert any(s.track == INIT_TRACK for s in snap.spans)
    # every span is well-formed and all stacks drained (closed spans only)
    for s in snap.spans:
        assert s.end >= s.begin
    builder = session.telemetry.builder
    for actor in session.model.actors.values():
        assert builder.open_depth(actor.qualname) == 0


def test_dot_annotation_rides_graph_dot():
    session, _, _ = rle_session()
    plain = None
    session.telemetry.enable()
    run_to_exit(session.dbg)
    annotated = session.graph_dot()
    assert "firings" in annotated
    assert "peak" in annotated
    # a session without telemetry renders the classic output
    session2, _, _ = rle_session()
    run_to_exit(session2.dbg)
    plain = session2.graph_dot()
    assert "firings" not in plain and "peak" not in plain


# ------------------------------------------------------------------ CLI


def test_trace_command_lifecycle(tmp_path):
    session, cli, _ = rle_session()
    out = cli.execute("trace on")
    assert any("enabled" in line for line in out)
    run_to_exit(session.dbg)
    status = cli.execute("trace status")
    assert any("telemetry: on" in line for line in status)
    assert any("spans:" in line for line in status)

    metrics_out = cli.execute("info metrics")
    assert any("actors:" in line for line in metrics_out)
    assert any("codec.pack" in line for line in metrics_out)
    assert not any("warning" in line for line in metrics_out)

    spans_out = cli.execute("info spans 5")
    assert any("span(s) stored" in line for line in spans_out)

    trace_info = cli.execute("info trace")
    assert any("replay journal" in line for line in trace_info)

    path = tmp_path / "out.json"
    out = cli.execute(f"trace export {path}")
    assert any("wrote" in line for line in out)
    assert path.read_text().startswith("{")

    out = cli.execute("trace off")
    assert any("disabled" in line for line in out)
    # data survives disable
    assert cli.execute("info metrics")


def test_drop_warning_surfaces_on_bounded_sink():
    session, cli, _ = rle_session()
    cli.execute("trace on limit 5 ring")
    run_to_exit(session.dbg)
    assert session.telemetry.sink.dropped > 0
    for command in ("info metrics", "info spans", "trace status", "info trace"):
        out = cli.execute(command)
        assert any("warning" in line and "dropped" in line for line in out), command


def test_trace_clear_resets_collection():
    session, cli, _ = rle_session()
    cli.execute("trace on")
    run_to_exit(session.dbg)
    assert len(session.telemetry.sink) > 0
    cli.execute("trace clear")
    assert session.telemetry.enabled
    assert len(session.telemetry.sink) == 0
