"""Attributed cycle profiler: live attribution, tier labels, no-deopt
arming, replay-side derivation equality, and the export formats.
"""

import pytest

from repro.apps.rle import build_rle_pipeline
from repro.cminus.interp import DebugHook
from repro.core import DataflowSession
from repro.dbg import Debugger, StopKind
from repro.obs import derive_profile, flame_svg
from repro.obs.prof import Profile


def rle_session(values=(5, 5, 5, 2, 7, 7), tier="auto"):
    sched, runtime, _sink = build_rle_pipeline(list(values))
    session = DataflowSession(Debugger(sched, runtime))
    runtime.config.interp_tier = tier
    for actor in runtime.all_actors():
        if getattr(actor, "interp", None) is not None:
            actor.interp.tier = tier
    return session


def run_to_exit(dbg):
    ev = dbg.run()
    while ev.kind not in (StopKind.EXITED, StopKind.DEADLOCK, StopKind.ERROR):
        ev = dbg.cont()
    return ev


# ------------------------------------------------------------ arming model


def test_profiler_off_by_default_and_armed_on_enable():
    session = rle_session()
    dbg = session.dbg
    assert not session.prof.enabled
    assert not dbg.hook.capabilities & DebugHook.CAP_PROFILE
    session.prof.enable()
    assert dbg.hook.capabilities & DebugHook.CAP_PROFILE
    # CAP_PROFILE must NOT deoptimize: tier selection ignores it, the
    # only new work is the cycle-flush charge
    for actor in dbg.runtime.all_actors():
        interp = getattr(actor, "interp", None)
        if interp is not None:
            assert interp._fast_ok
            assert interp._count_cycles
            assert interp._profile is not None
    session.prof.disable()
    assert not dbg.hook.capabilities & DebugHook.CAP_PROFILE
    for actor in dbg.runtime.all_actors():
        interp = getattr(actor, "interp", None)
        if interp is not None:
            assert not interp._count_cycles
            assert interp._profile is None


# --------------------------------------------------- attribution exactness


@pytest.mark.parametrize("tier", ["auto", "vm", "slow"])
def test_profile_total_equals_flushed_cycles(tier):
    session = rle_session(tier=tier)
    session.prof.enable()
    assert run_to_exit(session.dbg).kind == StopKind.EXITED
    profile = session.prof.profile
    assert profile.total > 0
    flushed = sum(
        actor.interp.cycles_flushed
        for actor in session.dbg.runtime.all_actors()
        if getattr(actor, "interp", None) is not None
    )
    # every flushed cycle is charged to exactly one call-tree node
    assert profile.total == flushed
    assert sum(profile.nodes.values()) == flushed


@pytest.mark.parametrize(
    "tier,label", [("auto", "compiled"), ("vm", "vm"), ("slow", "tree")]
)
def test_tier_attribution_labels(tier, label):
    session = rle_session(tier=tier)
    session.prof.enable()
    assert run_to_exit(session.dbg).kind == StopKind.EXITED
    tiers = session.prof.profile.tier_cycles()
    assert label in tiers
    # the dominant tier is the forced one
    assert tiers[label] == max(tiers.values())


def test_profile_attributes_to_known_actors_and_functions():
    session = rle_session()
    session.prof.enable()
    assert run_to_exit(session.dbg).kind == StopKind.EXITED
    actors = {actor for (actor, _tier, _path) in session.prof.profile.nodes}
    assert "codec.pack" in actors and "codec.expand" in actors
    funcs = {
        path[-1] for (_actor, _tier, path) in session.prof.profile.nodes if path
    }
    assert "PackFilter_work_function" in funcs


# ---------------------------------------------------- replay-side deriving


@pytest.mark.parametrize("tier", ["auto", "vm"])
def test_derived_profile_equals_live_profile(tier):
    session = rle_session(tier=tier)
    session.replay.record_on()
    session.prof.enable()
    assert run_to_exit(session.dbg).kind == StopKind.EXITED
    live = session.prof.profile

    derived = derive_profile(session.replay.master, rle_session, tier=tier)
    assert derived.verified
    assert derived.profile.collapsed() == live.collapsed()
    assert derived.profile.total == live.total


def test_derive_profile_from_unprofiled_recording():
    """A run recorded *without* the profiler armed is still profilable
    after the fact — the deriver re-executes with only CAP_PROFILE on."""
    session = rle_session()
    session.replay.record_on()
    assert run_to_exit(session.dbg).kind == StopKind.EXITED
    assert not session.prof.enabled
    derived = derive_profile(session.replay.master, rle_session)
    assert derived.verified
    assert derived.profile.total > 0


# -------------------------------------------------------- profile algebra


def _toy_profile():
    p = Profile()
    p.add("a.x", "tree", ("main", "work"), 10)
    p.add("a.x", "tree", ("main",), 5)
    p.add("a.y", "vm", ("main", "work", "leaf"), 7)
    return p


def test_self_and_inclusive_cycles():
    p = _toy_profile()
    self_c = p.self_cycles()
    assert self_c[("a.x", "work")] == 10
    assert self_c[("a.x", "main")] == 5
    incl = p.inclusive_cycles()
    assert incl[("a.x", "main")] == 15  # main + its callee
    assert incl[("a.y", "work")] == 7
    assert p.total == 22


def test_recursive_paths_do_not_double_count_inclusive():
    p = Profile()
    p.add("a.r", "tree", ("f", "f", "f"), 9)
    assert p.inclusive_cycles()[("a.r", "f")] == 9


def test_top_zero_shows_all_rows():
    p = _toy_profile()
    assert len(p.top(2)) == 2
    assert len(p.top(0)) == len(p.top(10**6))


def test_collapsed_is_sorted_and_parseable():
    p = _toy_profile()
    lines = p.collapsed()
    assert lines == sorted(lines)
    for line in lines:
        stack, _, cycles = line.rpartition(" ")
        assert int(cycles) > 0
        parts = stack.split(";")
        assert len(parts) >= 2  # actor;tier[;frames...]


# ------------------------------------------------------------- exports


def test_flame_svg_renders_deterministically(tmp_path):
    session = rle_session()
    session.prof.enable()
    assert run_to_exit(session.dbg).kind == StopKind.EXITED
    svg = flame_svg(session.prof.profile)
    assert svg.startswith("<svg") or svg.startswith("<?xml")
    assert "PackFilter_work_function" in svg
    assert svg == flame_svg(session.prof.profile)  # pure function

    target = tmp_path / "deep" / "flame.svg"
    nbytes = session.prof.export_flamegraph(str(target))
    assert target.exists() and nbytes == len(target.read_bytes())

    stacks = tmp_path / "prof.collapsed"
    session.prof.export_collapsed(str(stacks))
    assert stacks.read_text().splitlines() == session.prof.profile.collapsed()
