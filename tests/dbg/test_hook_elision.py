"""Hook elision: an idle debugger must be invisible to the interpreters.

Satellite regression for the §V fast path — with nothing armed the
interpreter makes *zero* hook calls, and arming one source breakpoint
re-enables exactly the statement path (not calls/returns).
"""

from repro.cminus import DebugHook
from repro.dbg import StopKind

from .util import LINE_READ_INPUT, WORK_F1, make_session


def instrument(dbg):
    """Count actual invocations of the debugger's hook methods."""
    counts = {"stmt": 0, "call": 0, "ret": 0}
    hook = dbg.hook
    orig_stmt, orig_call, orig_ret = hook.on_statement, hook.on_call, hook.on_return

    def on_statement(interp, stmt):
        counts["stmt"] += 1
        return orig_stmt(interp, stmt)

    def on_call(interp, frame):
        counts["call"] += 1
        return orig_call(interp, frame)

    def on_return(interp, frame, value):
        counts["ret"] += 1
        return orig_ret(interp, frame, value)

    hook.on_statement = on_statement
    hook.on_call = on_call
    hook.on_return = on_return
    return counts


def test_zero_hook_calls_when_nothing_armed():
    dbg, _, _, sink = make_session([1, 2, 3])
    counts = instrument(dbg)
    assert dbg.hook.capabilities == 0
    assert not dbg.scheduler._pre_dispatch_armed
    ev = dbg.run()
    assert ev.kind == StopKind.EXITED
    assert len(sink.values) == 3  # the program really ran
    assert counts == {"stmt": 0, "call": 0, "ret": 0}


def test_source_bp_rearms_exactly_the_statement_path():
    dbg, _, _, sink = make_session([1, 2])
    counts = instrument(dbg)
    dbg.break_source(f"the_source.c:{LINE_READ_INPUT}")
    assert dbg.hook.capabilities == DebugHook.CAP_STATEMENTS
    ev = dbg.run()
    assert ev.kind == StopKind.BREAKPOINT
    assert counts["stmt"] > 0
    assert counts["call"] == 0 and counts["ret"] == 0
    while not dbg.finished:
        dbg.cont()
    assert len(sink.values) == 2


def test_removing_last_bp_disarms_again():
    dbg, *_ = make_session([1, 2])
    counts = instrument(dbg)
    bp = dbg.break_source(f"the_source.c:{LINE_READ_INPUT}")
    ev = dbg.run()
    assert ev.kind == StopKind.BREAKPOINT
    dbg.breakpoints.remove(bp.id)
    assert dbg.hook.capabilities == 0
    stmt_at_removal = counts["stmt"]
    ev = dbg.cont()
    assert ev.kind == StopKind.EXITED
    assert counts["stmt"] == stmt_at_removal  # fully elided after removal


def test_function_bp_arms_exactly_the_call_path():
    dbg, *_ = make_session([1])
    counts = instrument(dbg)
    dbg.break_function(WORK_F1)
    assert dbg.hook.capabilities == DebugHook.CAP_CALLS
    ev = dbg.run()
    assert ev.kind == StopKind.FUNCTION_BP
    assert counts["call"] > 0
    assert counts["stmt"] == 0 and counts["ret"] == 0


def test_disable_enable_toggles_capabilities():
    dbg, *_ = make_session([1])
    bp = dbg.break_source(f"the_source.c:{LINE_READ_INPUT}")
    assert dbg.hook.capabilities == DebugHook.CAP_STATEMENTS
    bp.enabled = False
    assert dbg.hook.capabilities == 0
    bp.enabled = True
    assert dbg.hook.capabilities == DebugHook.CAP_STATEMENTS


def test_stepping_arms_statements_then_disarms():
    dbg, *_ = make_session([1, 2])
    dbg.break_source(f"the_source.c:{LINE_READ_INPUT}")
    ev = dbg.run()
    assert ev.kind == StopKind.BREAKPOINT
    dbg.breakpoints.remove(ev.bp_id)
    assert dbg.hook.capabilities == 0
    ev = dbg.step()  # stepping needs the statement path even with no bps
    assert ev.kind == StopKind.STEP
    assert dbg.hook.capabilities == 0  # released once the step lands
