"""Run control, breakpoints, stepping, inspection."""

import pytest

from repro.dbg import Debugger, StopKind
from repro.errors import DebuggerError
from repro.pedf import SYM_PUSH, SYM_WORK_ENTER

from .util import (
    CTL_WORK,
    LINE_COMPUTE,
    LINE_PUSH,
    LINE_READ_INPUT,
    LINE_SET_DATA,
    WORK_F1,
    make_session,
)


def test_run_to_exit_without_breakpoints():
    dbg, runtime, source, sink = make_session([1, 2])
    ev = dbg.run()
    assert ev.kind == StopKind.EXITED
    assert dbg.finished
    assert len(sink.values) == 2


def test_source_breakpoint_stops_and_resumes():
    dbg, runtime, _, sink = make_session([1, 2])
    bp = dbg.break_source(f"the_source.c:{LINE_READ_INPUT}")
    ev = dbg.run()
    assert ev.kind == StopKind.BREAKPOINT
    assert ev.bp_id == bp.id
    assert ev.line == LINE_READ_INPUT
    assert ev.actor == "AModule.filter_1"
    # filter_2 uses its own source file, so only filter_1 triggers
    ev = dbg.cont()
    assert ev.kind == StopKind.BREAKPOINT  # step 2, filter_1 again
    ev = dbg.cont()
    assert ev.kind == StopKind.EXITED
    assert len(sink.values) == 2
    assert bp.hit_count == 2


def test_breakpoint_snaps_to_next_executable_line():
    dbg, *_ = make_session()
    bp = dbg.break_source("the_source.c:1")  # comment line
    assert bp.line >= 3


def test_breakpoint_invalid_location():
    dbg, *_ = make_session()
    with pytest.raises(DebuggerError):
        dbg.break_source("nowhere.c:10")
    with pytest.raises(DebuggerError):
        dbg.break_source("the_source.c:9999")


def test_conditional_breakpoint():
    dbg, _, _, sink = make_session([5, 6, 7])
    dbg.break_source(f"the_source.c:{LINE_SET_DATA}", condition="v == 6")
    ev = dbg.run()
    assert ev.kind == StopKind.BREAKPOINT
    assert dbg.eval_expr("v")[1] == 6
    ev = dbg.cont()
    assert ev.kind == StopKind.EXITED


def test_temporary_breakpoint_fires_once():
    dbg, *_ = make_session([1, 2, 3])
    bp = dbg.break_source(f"the_source.c:{LINE_READ_INPUT}", temporary=True)
    ev = dbg.run()
    assert ev.kind == StopKind.BREAKPOINT
    assert bp.id not in dbg.breakpoints.all
    ev = dbg.cont()
    assert ev.kind == StopKind.EXITED


def test_ignore_count():
    dbg, *_ = make_session([1, 2, 3])
    bp = dbg.break_source(f"the_source.c:{LINE_READ_INPUT}")
    bp.ignore_count = 2
    ev = dbg.run()
    assert ev.kind == StopKind.BREAKPOINT
    assert bp.hit_count == 3  # two ignored + one stopping


def test_disable_enable():
    dbg, *_ = make_session([1, 2])
    bp = dbg.break_source(f"the_source.c:{LINE_READ_INPUT}")
    bp.enabled = False
    ev = dbg.run()
    assert ev.kind == StopKind.EXITED


def test_function_breakpoint_on_mangled_symbol():
    dbg, *_ = make_session([1])
    bp = dbg.break_function(WORK_F1)
    ev = dbg.run()
    assert ev.kind == StopKind.FUNCTION_BP
    assert ev.actor == "AModule.filter_1"
    assert WORK_F1 in ev.message


def test_function_breakpoint_substring_resolution():
    dbg, *_ = make_session([1])
    bp = dbg.break_function("Filter1Filter")  # unique substring
    assert bp.symbol == WORK_F1


def test_function_breakpoint_ambiguous():
    dbg, *_ = make_session([1])
    with pytest.raises(DebuggerError) as e:
        dbg.break_function("work_function")  # matches both filters
    assert "ambiguous" in str(e.value)


def test_api_breakpoint_on_push_entry():
    dbg, runtime, _, _ = make_session([1])
    bp = dbg.break_api(SYM_PUSH, phase="entry", actor="AModule.filter_1")
    ev = dbg.run()
    assert ev.kind == StopKind.API_BP
    assert ev.actor == "AModule.filter_1"
    event = ev.payload
    assert event.symbol == SYM_PUSH
    assert event.phase == "entry"
    assert event.args["iface"] == "an_output"


def test_api_breakpoint_exit_phase_sees_retval():
    dbg, runtime, _, _ = make_session([9])
    bp = dbg.break_api(SYM_PUSH, phase="exit", actor="AModule.filter_1",
                       arg_filters={"iface": "an_output"})
    ev = dbg.run()
    assert ev.kind == StopKind.API_BP
    token = ev.payload.retval
    assert token is not None
    assert token.value == 9 * 2 + 1  # v*2 + attribute


def test_api_breakpoint_arg_filters():
    dbg, runtime, _, _ = make_session([1, 2])
    hits = []
    dbg.break_api(
        SYM_WORK_ENTER,
        arg_filters={"invocation": 2},
        stop_fn=lambda e: hits.append(e.args["actor"]) or True,
    )
    ev = dbg.run()
    assert ev.kind == StopKind.API_BP
    assert hits and all("2" not in h or True for h in hits)
    assert ev.payload.args["invocation"] == 2


def test_api_breakpoint_nonstop_action():
    """A function breakpoint whose action returns False never stops —
    the capture mechanism of the dataflow extension."""
    dbg, runtime, _, _ = make_session([1, 2])
    seen = []
    dbg.break_api(SYM_PUSH, internal=True, stop_fn=lambda e: (seen.append(e), False)[1])
    ev = dbg.run()
    assert ev.kind == StopKind.EXITED
    assert len(seen) > 0


def test_watchpoint_on_private_data():
    dbg, *_ = make_session([3, 4])
    dbg.break_function(WORK_F1, temporary=True)
    ev = dbg.run()
    wp = dbg.watch("pedf.data.a_private_data")
    ev = dbg.cont()
    assert ev.kind == StopKind.WATCHPOINT
    assert "old = 0" in ev.message
    assert "new = 3" in ev.message
    ev = dbg.cont()
    assert ev.kind == StopKind.WATCHPOINT
    assert "new = 4" in ev.message


def test_watchpoint_on_local_variable():
    dbg, *_ = make_session([5])
    dbg.break_source(f"the_source.c:{LINE_COMPUTE}", temporary=True)
    ev = dbg.run()
    wp = dbg.watch("r", actor="filter_1")
    ev = dbg.cont()
    # r is assigned at LINE_COMPUTE; watchpoint reports at the next stmt
    assert ev.kind == StopKind.WATCHPOINT
    assert "new = 11" in ev.message


def test_step_moves_one_line():
    dbg, *_ = make_session([1])
    dbg.break_source(f"the_source.c:{LINE_READ_INPUT}", temporary=True)
    ev = dbg.run()
    assert ev.line == LINE_READ_INPUT
    ev = dbg.step()
    assert ev.kind == StopKind.STEP
    assert ev.actor == "AModule.filter_1"
    assert ev.line == LINE_SET_DATA
    ev = dbg.step()
    assert ev.line == LINE_COMPUTE


def test_stepi_statement_granularity():
    dbg, *_ = make_session([1])
    dbg.break_source(f"the_source.c:{LINE_READ_INPUT}", temporary=True)
    dbg.run()
    ev = dbg.stepi()
    assert ev.kind == StopKind.STEP


def test_next_steps_over_call():
    # use a custom program with a helper call
    from repro.cminus.typesys import U32
    from repro.dbg import Debugger
    from repro.p2012.soc import P2012Platform, PlatformConfig
    from repro.pedf import ControllerDecl, FilterDecl, ModuleDecl, ProgramDecl
    from repro.pedf.runtime import PedfRuntime
    from repro.sim import Scheduler

    src = """\
U32 helper(U32 x) {
    U32 y = x + 1;
    return y;
}
void work() {
    U32 a = pedf.io.i[0];
    U32 b = helper(a);
    pedf.io.o[0] = b;
}
"""
    program = ProgramDecl(name="p")
    mod = ModuleDecl(name="m")
    ctl = ControllerDecl(name="controller", max_steps=1,
                         source="void work() { ACTOR_FIRE(f); WAIT_FOR_ACTOR_SYNC(); }")
    mod.set_controller(ctl)
    f = FilterDecl(name="f", source=src, source_name="f.c")
    f.add_iface("i", "input", U32)
    f.add_iface("o", "output", U32)
    mod.add_filter(f)
    mod.add_iface("min_", "input", U32)
    mod.add_iface("mout", "output", U32)
    mod.bind("this", "min_", "f", "i")
    mod.bind("f", "o", "this", "mout")
    program.add_module(mod)

    sched = Scheduler()
    platform = P2012Platform(sched, PlatformConfig(n_clusters=1, pes_per_cluster=4))
    runtime = PedfRuntime(sched, platform, program)
    runtime.add_source("s", "m", "min_", [10])
    sink = runtime.add_sink("k", "m", "mout", expect=1)
    dbg = Debugger(sched, runtime)

    dbg.break_source("f.c:6", temporary=True)  # U32 a = ...
    ev = dbg.run()
    assert ev.line == 6
    ev = dbg.next_()
    assert ev.line == 7  # at the call line
    ev = dbg.next_()
    assert ev.line == 8  # stepped over helper
    # now check `step` enters the helper
    dbg2_ev = None
    # restart scenario: step into on second run is covered by test below


def test_step_enters_call_and_finish_returns():
    from repro.cminus.typesys import U32
    from repro.dbg import Debugger
    from repro.p2012.soc import P2012Platform, PlatformConfig
    from repro.pedf import ControllerDecl, FilterDecl, ModuleDecl, ProgramDecl
    from repro.pedf.runtime import PedfRuntime
    from repro.sim import Scheduler

    src = """\
U32 twice(U32 x) {
    U32 y = x * 2;
    return y;
}
void work() {
    U32 a = pedf.io.i[0];
    U32 b = twice(a);
    pedf.io.o[0] = b;
}
"""
    program = ProgramDecl(name="p")
    mod = ModuleDecl(name="m")
    ctl = ControllerDecl(name="controller", max_steps=1,
                         source="void work() { ACTOR_FIRE(f); WAIT_FOR_ACTOR_SYNC(); }")
    mod.set_controller(ctl)
    f = FilterDecl(name="f", source=src, source_name="f.c")
    f.add_iface("i", "input", U32)
    f.add_iface("o", "output", U32)
    mod.add_filter(f)
    mod.add_iface("min_", "input", U32)
    mod.add_iface("mout", "output", U32)
    mod.bind("this", "min_", "f", "i")
    mod.bind("f", "o", "this", "mout")
    program.add_module(mod)

    sched = Scheduler()
    platform = P2012Platform(sched, PlatformConfig(n_clusters=1, pes_per_cluster=4))
    runtime = PedfRuntime(sched, platform, program)
    runtime.add_source("s", "m", "min_", [10])
    runtime.add_sink("k", "m", "mout", expect=1)
    dbg = Debugger(sched, runtime)

    dbg.break_source("f.c:7", temporary=True)  # U32 b = twice(a);
    ev = dbg.run()
    ev = dbg.step()  # into twice
    assert ev.line == 2
    frames = dbg.backtrace()
    assert [fr.name for fr in frames] == ["FFilter_twice", "FFilter_work_function"]
    ev = dbg.finish()
    assert ev.kind == StopKind.FINISH
    assert "returned 20" in ev.message
    assert len(dbg.backtrace()) == 1


def test_backtrace_and_locals():
    dbg, *_ = make_session([7])
    dbg.break_source(f"the_source.c:{LINE_PUSH}", temporary=True)
    ev = dbg.run()
    frames = dbg.backtrace()
    assert frames[0].name == WORK_F1
    out = dbg.print_expr("v")
    assert out == "$1 = 7"
    out = dbg.print_expr("r")
    assert out == "$2 = 15"
    # history recall
    out = dbg.print_expr("$1 + 1")
    assert out == "$3 = 8"


def test_print_pedf_data_and_attribute():
    dbg, *_ = make_session([7])
    dbg.break_source(f"the_source.c:{LINE_COMPUTE}", temporary=True)
    dbg.run()
    assert dbg.eval_expr("pedf.data.a_private_data")[1] == 7
    assert dbg.eval_expr("pedf.attribute.an_attribute")[1] == 1


def test_print_refuses_io_read():
    from repro.dbg.eval import EvalError

    dbg, *_ = make_session([7])
    dbg.break_source(f"the_source.c:{LINE_COMPUTE}", temporary=True)
    dbg.run()
    with pytest.raises(EvalError) as e:
        dbg.eval_expr("pedf.io.an_input[0]")
    assert "consume a token" in str(e.value)


def test_deadlock_reported():
    from repro.p2012.soc import P2012Platform, PlatformConfig
    from repro.pedf.runtime import PedfRuntime
    from repro.sim import Scheduler
    from repro.apps.amodule import build_amodule_program

    sched = Scheduler()
    platform = P2012Platform(sched, PlatformConfig(n_clusters=1, pes_per_cluster=8))
    program = build_amodule_program(max_steps=2)
    runtime = PedfRuntime(sched, platform, program)
    runtime.add_source("silent", "AModule", "module_in", [])
    dbg = Debugger(sched, runtime)
    ev = dbg.run()
    assert ev.kind == StopKind.DEADLOCK
    assert "filter_1" in ev.message


def test_runtime_error_becomes_error_stop():
    from repro.cminus.typesys import U32
    from repro.p2012.soc import P2012Platform, PlatformConfig
    from repro.pedf import ControllerDecl, FilterDecl, ModuleDecl, ProgramDecl
    from repro.pedf.runtime import PedfRuntime
    from repro.sim import Scheduler

    program = ProgramDecl(name="p")
    mod = ModuleDecl(name="m")
    mod.set_controller(ControllerDecl(
        name="controller", max_steps=1,
        source="void work() { ACTOR_FIRE(f); WAIT_FOR_ACTOR_SYNC(); }"))
    f = FilterDecl(name="f", source="""
        void work() {
            U32 x = pedf.io.i[0];
            U32 z = x / (x - x);
            pedf.io.o[0] = z;
        }
    """, source_name="f.c")
    f.add_iface("i", "input", U32)
    f.add_iface("o", "output", U32)
    mod.add_filter(f)
    mod.add_iface("min_", "input", U32)
    mod.add_iface("mout", "output", U32)
    mod.bind("this", "min_", "f", "i")
    mod.bind("f", "o", "this", "mout")
    program.add_module(mod)

    sched = Scheduler()
    platform = P2012Platform(sched, PlatformConfig(n_clusters=1, pes_per_cluster=4))
    runtime = PedfRuntime(sched, platform, program)
    runtime.add_source("s", "m", "min_", [5])
    dbg = Debugger(sched, runtime)
    ev = dbg.run()
    assert ev.kind == StopKind.ERROR
    assert "division by zero" in ev.message
    assert ev.actor == "m.f"


def test_trap_builtin_stops():
    from repro.cminus.typesys import U32
    from repro.p2012.soc import P2012Platform, PlatformConfig
    from repro.pedf import ControllerDecl, FilterDecl, ModuleDecl, ProgramDecl
    from repro.pedf.runtime import PedfRuntime
    from repro.sim import Scheduler

    program = ProgramDecl(name="p")
    mod = ModuleDecl(name="m")
    mod.set_controller(ControllerDecl(
        name="controller", max_steps=1,
        source="void work() { ACTOR_FIRE(f); WAIT_FOR_ACTOR_SYNC(); }"))
    f = FilterDecl(name="f", source="""
        void work() {
            U32 x = pedf.io.i[0];
            if (x > 3) trap();
            pedf.io.o[0] = x;
        }
    """, source_name="f.c")
    f.add_iface("i", "input", U32)
    f.add_iface("o", "output", U32)
    mod.add_filter(f)
    mod.add_iface("min_", "input", U32)
    mod.add_iface("mout", "output", U32)
    mod.bind("this", "min_", "f", "i")
    mod.bind("f", "o", "this", "mout")
    program.add_module(mod)

    sched = Scheduler()
    platform = P2012Platform(sched, PlatformConfig(n_clusters=1, pes_per_cluster=4))
    runtime = PedfRuntime(sched, platform, program)
    runtime.add_source("s", "m", "min_", [5])
    runtime.add_sink("k", "m", "mout", expect=1)
    dbg = Debugger(sched, runtime)
    ev = dbg.run()
    assert ev.kind == StopKind.TRAP
    assert ev.actor == "m.f"
    ev = dbg.cont()
    assert ev.kind == StopKind.EXITED


def test_select_actor_and_info():
    dbg, *_ = make_session([1])
    dbg.break_source(f"the_source.c:{LINE_READ_INPUT}", temporary=True)
    dbg.run()
    ctl = dbg.select_actor("controller")
    assert dbg.selected_actor is ctl
    f1 = dbg.select_actor("AModule.filter_1")
    assert f1.name == "filter_1"


def test_pause_request():
    dbg, *_ = make_session([1, 2, 3, 4])
    dbg.request_pause()
    ev = dbg.run()
    assert ev.kind == StopKind.PAUSED
    ev = dbg.cont()
    assert ev.kind == StopKind.EXITED


def test_cont_after_exit_is_stable():
    dbg, *_ = make_session([1])
    ev = dbg.run()
    assert ev.kind == StopKind.EXITED
    ev = dbg.cont()
    assert ev.kind == StopKind.EXITED
