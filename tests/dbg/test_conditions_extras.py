"""Breakpoint condition edge paths."""

from repro.dbg import StopKind

from .util import LINE_COMPUTE, LINE_READ_INPUT, WORK_F1, make_cli, make_session


def test_condition_eval_error_still_stops_with_warning():
    """GDB stops (and warns) when a condition cannot be evaluated."""
    dbg, *_ = make_session([1])
    bp = dbg.break_source(f"the_source.c:{LINE_READ_INPUT}", condition="nonexistent > 0")
    ev = dbg.run()
    assert ev.kind == StopKind.BREAKPOINT
    assert "condition error" in ev.message


def test_false_condition_never_stops():
    cli, dbg, *_ = make_cli([1, 2])
    # at LINE_COMPUTE `v` is in scope; the condition is simply never true
    cli.execute(f"break the_source.c:{LINE_COMPUTE} if v == 99")
    out = cli.execute("run")
    assert any("exited" in line.lower() for line in out)


def test_condition_set_then_cleared():
    cli, dbg, *_ = make_cli([1, 2])
    cli.execute(f"break the_source.c:{LINE_COMPUTE}")
    cli.execute("condition 1 v == 2")
    out = cli.execute("run")
    assert any("Breakpoint 1" in line for line in out)
    assert dbg.eval_expr("v")[1] == 2
    cli.execute("condition 1")  # clear
    bp = dbg.breakpoints.get(1)
    assert bp.condition is None


def test_function_breakpoint_with_condition_on_args():
    """Conditions on function breakpoints evaluate in the callee frame,
    so parameters are visible."""
    from repro.cminus.typesys import U32
    from repro.dbg import Debugger
    from repro.p2012.soc import P2012Platform, PlatformConfig
    from repro.pedf import ControllerDecl, FilterDecl, ModuleDecl, ProgramDecl
    from repro.pedf.runtime import PedfRuntime
    from repro.sim import Scheduler

    src = """
    U32 helper(U32 x) { return x * 2; }
    void work() {
        U32 v = pedf.io.i[0];
        pedf.io.o[0] = helper(v);
    }
    """
    program = ProgramDecl(name="p")
    mod = ModuleDecl(name="m")
    mod.set_controller(ControllerDecl(
        name="controller", max_steps=3,
        source="void work() { ACTOR_FIRE(f); WAIT_FOR_ACTOR_SYNC(); }"))
    f = FilterDecl(name="f", source=src, source_name="f.c")
    f.add_iface("i", "input", U32)
    f.add_iface("o", "output", U32)
    mod.add_filter(f)
    mod.add_iface("min_", "input", U32)
    mod.add_iface("mout", "output", U32)
    mod.bind("this", "min_", "f", "i")
    mod.bind("f", "o", "this", "mout")
    program.add_module(mod)
    sched = Scheduler()
    platform = P2012Platform(sched, PlatformConfig(n_clusters=1, pes_per_cluster=4))
    runtime = PedfRuntime(sched, platform, program)
    runtime.add_source("s", "m", "min_", [1, 5, 9])
    runtime.add_sink("k", "m", "mout", expect=3)
    dbg = Debugger(sched, runtime)
    dbg.break_function("FFilter_helper", condition="x == 5")
    ev = dbg.run()
    assert ev.kind == StopKind.FUNCTION_BP
    assert dbg.eval_expr("x")[1] == 5
    ev = dbg.cont()
    assert ev.kind == StopKind.EXITED


def test_breakpoint_actor_filter_via_kwarg():
    dbg, runtime, _, _ = make_session([1])
    bp = dbg.break_source(f"the_source.c:{LINE_READ_INPUT}", actor="AModule.filter_2")
    ev = dbg.run()
    # filter_2 uses its own source file name, so this never matches
    assert ev.kind == StopKind.EXITED
    assert bp.hit_count == 0
