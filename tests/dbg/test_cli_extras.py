"""until / display / undisplay / freeze completion / dataflow token."""

from repro.dbg import StopKind

from .util import LINE_COMPUTE, LINE_PUSH, LINE_READ_INPUT, make_cli


def test_until_runs_to_location_in_selected_actor():
    cli, dbg, *_ = make_cli([1])
    cli.execute(f"tbreak the_source.c:{LINE_READ_INPUT}")
    cli.execute("run")
    out = cli.execute(f"until {LINE_PUSH}")
    assert dbg.last_stop.kind == StopKind.BREAKPOINT
    assert dbg.last_stop.line == LINE_PUSH
    assert dbg.last_stop.actor == "AModule.filter_1"


def test_display_evaluated_at_each_stop():
    cli, dbg, *_ = make_cli([3, 4])
    cli.execute(f"break the_source.c:{LINE_COMPUTE}")
    out = cli.execute("display v")
    assert out[0].startswith("1: v = <not yet available>")
    out = cli.execute("run")
    assert "1: v = 3" in out
    out = cli.execute("continue")
    assert "1: v = 4" in out
    assert cli.execute("display") == ["1: v"]
    cli.execute("undisplay 1")
    assert cli.execute("display") == ["No auto-display expressions."]
    out = cli.execute("undisplay 1")
    assert "error" in out[0]


def test_dataflow_token_lookup():
    from repro.core import DataflowSession

    cli, dbg, runtime, sink = make_cli([5])
    session = DataflowSession(dbg, cli=cli, stop_on_init=True)
    dbg.run()
    session.catch_iface("filter_2::an_input", event="pop", temporary=True)
    dbg.cont()
    token = session.model.find_actor("filter_2").last_token_in
    out = cli.execute(f"dataflow token {token.seq}")
    assert out[0].startswith(f"#{token.seq}")
    assert any("consumed by filter_2" in line for line in out)
    assert any("parent[0]" in line for line in out)
    out = cli.execute("dataflow token 99999")
    assert "error" in out[0]
