"""The gdb-Python-style extension API."""

import pytest

from repro.dbg import StopKind
from repro.dbg.api import ExtensionAPI
from repro.dbg.cli import CommandCli
from repro.errors import DebuggerError
from repro.pedf import SYM_PUSH, SYM_WORK_ENTER

from .util import LINE_COMPUTE, LINE_READ_INPUT, WORK_F1, make_session


def make_api(values=(1, 2)):
    dbg, runtime, source, sink = make_session(values)
    cli = CommandCli(dbg)
    return ExtensionAPI(dbg, cli=cli), dbg, sink


def test_subclassed_source_breakpoint_stop_filtering():
    api, dbg, sink = make_api([1, 2, 3])
    seen = []

    class CountingBp(api.Breakpoint):
        def stop(self, frame):
            seen.append(frame.line)
            return len(seen) >= 2  # only stop on the second hit

    bp = CountingBp(f"the_source.c:{LINE_READ_INPUT}")
    ev = dbg.run()
    assert ev.kind == StopKind.BREAKPOINT
    assert seen == [LINE_READ_INPUT, LINE_READ_INPUT]
    assert bp.hit_count == 2
    assert bp.number > 0
    bp.delete()
    assert not bp.is_valid
    assert dbg.cont().kind == StopKind.EXITED


def test_subclassed_api_breakpoint_semantic_action():
    """The paper's function breakpoint: an action that updates state and
    never stops."""
    api, dbg, sink = make_api([1, 2])
    pushes = []

    class PushMonitor(api.Breakpoint):
        def stop(self, event):
            pushes.append((event.args["actor"], event.args["iface"]))
            return False

    PushMonitor(api_symbol=SYM_PUSH, internal=True)
    ev = dbg.run()
    assert ev.kind == StopKind.EXITED
    assert ("AModule.filter_1", "an_output") in pushes


def test_finish_breakpoint_class():
    api, dbg, sink = make_api([5])
    dbg.break_source(f"the_source.c:{LINE_COMPUTE}", temporary=True)
    dbg.run()

    captured = []

    class CatchReturn(api.FinishBreakpoint):
        def stop(self, value):
            captured.append(value)
            return True

    CatchReturn()
    ev = dbg.cont()
    assert ev.kind == StopKind.FINISH
    assert captured == [0]  # work() is void


def test_events_registry():
    api, dbg, sink = make_api([1])
    stops = []
    exits = []
    api.events.stop.connect(lambda ev: stops.append(ev.kind))
    api.events.exited.connect(lambda ev: exits.append(ev.kind))
    dbg.break_source(f"the_source.c:{LINE_READ_INPUT}", temporary=True)
    dbg.run()
    dbg.cont()
    assert stops == [StopKind.BREAKPOINT]
    assert exits == [StopKind.EXITED]


def test_parse_and_eval_and_execute():
    api, dbg, sink = make_api([7])
    api.execute(f"tbreak the_source.c:{LINE_COMPUTE}")
    api.execute("run")
    ctype, raw = api.parse_and_eval("v * 3")
    assert raw == 21
    assert api.format_value(ctype, raw) == "21"
    assert api.selected_frame().name == WORK_F1
    assert api.selected_actor().qualname == "AModule.filter_1"
    assert api.lookup_symbol(WORK_F1) is not None
    assert api.lookup_symbol("nope") is None


def test_breakpoint_requires_exactly_one_location():
    api, dbg, sink = make_api()
    with pytest.raises(DebuggerError):
        api.Breakpoint()
    with pytest.raises(DebuggerError):
        api.Breakpoint(spec="x.c:1", symbol="f")


def test_enabled_property_roundtrip():
    api, dbg, sink = make_api([1])
    bp = api.Breakpoint(f"the_source.c:{LINE_READ_INPUT}")
    bp.enabled = False
    assert dbg.run().kind == StopKind.EXITED
    assert bp.hit_count == 0
