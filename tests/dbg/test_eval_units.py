"""Unit tests for the debugger's dynamic-typed expression evaluator."""

import pytest

from repro.cminus.typesys import BOOL, S32, U8, U32, ArrayType, StructType
from repro.cminus.values import Value
from repro.dbg.eval import EvalError, Evaluator, ValueHistory, format_typed


class FakeFrame:
    def __init__(self, variables):
        self._vars = variables

    def lookup(self, name):
        return self._vars.get(name)

    def variables(self):
        return dict(self._vars)


def make_eval(**variables):
    history = ValueHistory()
    frame = FakeFrame({k: Value(*v) for k, v in variables.items()})
    return Evaluator(frame=frame, history=history), history


def test_scalar_arithmetic_and_types():
    ev, _ = make_eval(a=(U8, 200), b=(U8, 100))
    ctype, raw = ev.eval_text("a + b")
    assert raw == 300  # promoted to S32, no U8 wrap
    assert ctype is S32
    ctype, raw = ev.eval_text("(U8)(a + b)")
    assert raw == 44


def test_aggregate_equality_but_no_ordering():
    point = StructType("P", (("x", S32), ("y", S32)))
    ev, _ = make_eval(p=(point, {"x": 1, "y": 2}), q=(point, {"x": 1, "y": 2}))
    assert ev.eval_text("p == q")[1] is True
    assert ev.eval_text("p != q")[1] is False
    with pytest.raises(EvalError):
        ev.eval_text("p < q")


def test_array_indexing_and_bounds():
    arr = ArrayType(elem=U32, size=3)
    ev, _ = make_eval(a=(arr, [10, 20, 30]))
    assert ev.eval_text("a[1] + a[2]")[1] == 50
    with pytest.raises(EvalError):
        ev.eval_text("a[3]")
    with pytest.raises(EvalError):
        ev.eval_text("a[0][0]")


def test_member_access_errors():
    point = StructType("P", (("x", S32),))
    ev, _ = make_eval(p=(point, {"x": 5}))
    assert ev.eval_text("p.x")[1] == 5
    with pytest.raises(EvalError) as e:
        ev.eval_text("p.y")
    assert "fields: x" in str(e.value)
    ev2, _ = make_eval(n=(U32, 1))
    with pytest.raises(EvalError):
        ev2.eval_text("n.x")


def test_pure_builtins_allowed_others_rejected():
    ev, _ = make_eval(n=(S32, -7))
    assert ev.eval_text("abs(n)")[1] == 7
    assert ev.eval_text("clip(n, 0, 5)")[1] == 0
    with pytest.raises(EvalError) as e:
        ev.eval_text("print(n)")
    assert "pure builtins" in str(e.value)


def test_division_and_modulo_guards():
    ev, _ = make_eval(z=(S32, 0))
    with pytest.raises(EvalError):
        ev.eval_text("1 / z")
    with pytest.raises(EvalError):
        ev.eval_text("1 % z")
    assert ev.eval_text("-7 / 2")[1] == -3  # trunc toward zero


def test_short_circuit_avoids_errors():
    ev, _ = make_eval(z=(S32, 0))
    assert ev.eval_text("false && (1 / z > 0)")[1] is False
    assert ev.eval_text("true || (1 / z > 0)")[1] is True


def test_history_recall_with_members():
    point = StructType("P", (("x", S32),))
    ev, history = make_eval(p=(point, {"x": 9}))
    ctype, raw = ev.eval_text("p")
    history.record(ctype, raw)
    assert ev.eval_text("$1.x")[1] == 9
    assert ev.eval_text("$1")[1] == {"x": 9}
    with pytest.raises(EvalError):
        ev.eval_text("$7")


def test_unknown_symbol_message():
    ev, _ = make_eval()
    with pytest.raises(EvalError) as e:
        ev.eval_text("mystery")
    assert "no symbol 'mystery'" in str(e.value)


def test_format_typed():
    assert format_typed(BOOL, True) == "true"
    assert format_typed(U32, 7) == "7"
