"""`info platform` — processor/memory inspection (paper §III two-level)."""

from .util import make_cli


def test_info_platform_lists_topology_and_occupants():
    cli, dbg, runtime, sink = make_cli([1])
    dbg.run()
    out = cli.execute("info platform")
    joined = "\n".join(out)
    assert joined.startswith("host: host_arm")
    assert "cluster0:" in joined
    assert "memory traffic" in joined
    assert "AModule.filter_1" in joined  # occupied PE listing
    # traffic counters moved during the run
    assert any(
        line.strip().startswith(("cluster", "fabric_l2", "ext_l3")) and "/" in line
        for line in out
    )


def test_info_platform_completion():
    cli, *_ = make_cli([1])
    assert "platform" in cli.complete("info pl")
