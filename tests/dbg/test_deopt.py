"""Deoptimization of the compiled Filter-C tier under the debugger.

The §V mechanism applied to the substrate: with nothing armed, actors
run the closure-compiled tier; arming any statement/call/return
breakpoint pushes the capability change to every live interpreter
*immediately* (not one dispatch late) and the compiled tier falls back
into the resumable interpreter at the next statement boundary — so a
breakpoint planted while a compiled WORK body is mid-flight still hits
on the right line with a full backtrace.
"""

from repro.dbg import StopKind
from repro.pedf.api import SYM_POP

from .util import LINE_PUSH, LINE_READ_INPUT, WORK_F1, make_session


def live_interps(runtime):
    return [
        a.interp
        for a in runtime.all_actors()
        if getattr(a, "interp", None) is not None
    ]


def test_capability_changes_push_to_live_interpreters_eagerly():
    """Satellite regression: arm/disarm transitions refresh every live
    interpreter synchronously — no dispatch needed in between."""
    dbg, runtime, _, _ = make_session([1, 2, 3])
    interps = live_interps(runtime)
    assert interps and all(i._fast_ok for i in interps)

    bp = dbg.break_source(f"the_source.c:{LINE_READ_INPUT}")
    # no scheduler dispatch has happened, yet every interpreter deopted
    assert all(not i._fast_ok for i in interps)

    dbg.delete(bp.id)
    assert all(i._fast_ok for i in interps)


def test_overlapping_arms_keep_interpreters_deoptimized():
    dbg, runtime, _, _ = make_session([1, 2])
    interps = live_interps(runtime)
    bp1 = dbg.break_source(f"the_source.c:{LINE_READ_INPUT}")
    bp2 = dbg.break_source(f"the_source.c:{LINE_PUSH}")
    assert all(not i._fast_ok for i in interps)
    dbg.delete(bp1.id)
    # one statement breakpoint still armed: stay deoptimized
    assert all(not i._fast_ok for i in interps)
    dbg.delete(bp2.id)
    assert all(i._fast_ok for i in interps)


def test_data_breakpoints_do_not_deoptimize():
    """API/catch breakpoints ride the event bus — the compiled tier keeps
    running (that is the whole point of actor-specific capture)."""
    dbg, runtime, _, _ = make_session([1, 2])
    dbg.break_api(SYM_POP, phase="entry")
    assert all(i._fast_ok for i in live_interps(runtime))


def test_breakpoint_armed_mid_compiled_work_deopts_and_hits():
    """Arm a source breakpoint while a *compiled* WORK body is suspended
    mid-function: execution must deopt and stop on the right line with a
    correct backtrace."""
    dbg, runtime, _, sink = make_session([5, 6])

    # stop inside WORK at a genuine blocking point (a pop api event)
    # without arming any statement capability — WORK runs compiled
    api_bp = dbg.break_api(SYM_POP, phase="entry", actor="AModule.filter_1")
    ev = dbg.run()
    assert ev.kind == StopKind.API_BP
    actor = dbg.selected_actor
    assert actor is not None and actor.interp is not None
    interp = actor.interp
    assert interp._fast_ok, "tier should still be compiled at an api stop"
    assert interp._compiled is not None, "compiled tier never engaged"
    assert interp.frames, "stopped mid-WORK, a frame must be live"

    # now plant a source breakpoint further down the same WORK body
    dbg.delete(api_bp.id)
    dbg.break_source(f"the_source.c:{LINE_PUSH}")
    assert not interp._fast_ok, "arming must deoptimize the live interpreter"

    ev = dbg.cont()
    assert ev.kind == StopKind.BREAKPOINT
    frame = dbg.current_frame()
    assert frame is not None
    assert frame.line == LINE_PUSH
    assert frame.func.name == WORK_F1 or frame.func.name.endswith("work_function")

    # the deoptimized run still completes with the right outputs
    # (filter_1 then filter_2 each compute v*2 + attribute, attribute=1)
    while not dbg.finished:
        dbg.cont()
    assert sorted(sink.values) == [4 * 5 + 3, 4 * 6 + 3]


def test_deopt_reoptimizes_after_disarm():
    """After the breakpoint is deleted, the next WORK activation returns
    to the compiled tier."""
    dbg, runtime, _, sink = make_session([3, 4])
    bp = dbg.break_source(f"the_source.c:{LINE_READ_INPUT}")
    ev = dbg.run()
    assert ev.kind == StopKind.BREAKPOINT
    interp = dbg.selected_actor.interp
    assert not interp._fast_ok
    dbg.delete(bp.id)
    assert interp._fast_ok
    while not dbg.finished:
        dbg.cont()
    assert interp._compiled is not None, "fast tier did not re-engage"
    assert len(sink.values) == 2
