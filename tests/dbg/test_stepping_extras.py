"""Stepping across invocations, loops and actors."""

from repro.dbg import StopKind

from .util import LINE_READ_CMD, LINE_READ_INPUT, LINE_SET_DATA, make_session


def test_step_sequence_through_whole_work_method():
    dbg, *_ = make_session([1])
    dbg.break_source(f"the_source.c:{LINE_READ_CMD}", temporary=True,
                     actor="AModule.filter_1")
    dbg.run()
    lines = [dbg.last_stop.line]
    for _ in range(4):
        ev = dbg.step()
        if ev.kind != StopKind.STEP:
            break
        lines.append(ev.line)
    assert lines == [3, 4, 5, 6, 7]


def test_step_over_work_boundary_continues_to_next_invocation():
    """Stepping past the last statement of work() lands in the next
    invocation (or another stop), never crashes."""
    dbg, *_ = make_session([1, 2])
    dbg.break_source("the_source.c:7", temporary=True, actor="AModule.filter_1")
    dbg.run()
    ev = dbg.step()  # executes the push, leaves the frame
    assert ev.kind in (StopKind.STEP, StopKind.EXITED)
    if ev.kind == StopKind.STEP:
        assert ev.actor == "AModule.filter_1"


def test_step_in_loop_stops_each_iteration():
    from repro.cminus.typesys import U32
    from repro.dbg import Debugger
    from repro.p2012.soc import P2012Platform, PlatformConfig
    from repro.pedf import ControllerDecl, FilterDecl, ModuleDecl, ProgramDecl
    from repro.pedf.runtime import PedfRuntime
    from repro.sim import Scheduler

    src = """\
void work() {
    U32 s = 0;
    for (U32 i = 0; i < 3; i++) {
        s += pedf.io.i[0];
    }
    pedf.io.o[0] = s;
}
"""
    program = ProgramDecl(name="p")
    mod = ModuleDecl(name="m")
    mod.set_controller(ControllerDecl(
        name="controller", max_steps=1,
        source="void work() { ACTOR_FIRE(f); WAIT_FOR_ACTOR_SYNC(); }"))
    f = FilterDecl(name="f", source=src, source_name="loop.c")
    f.add_iface("i", "input", U32)
    f.add_iface("o", "output", U32)
    mod.add_filter(f)
    mod.add_iface("min_", "input", U32)
    mod.add_iface("mout", "output", U32)
    mod.bind("this", "min_", "f", "i")
    mod.bind("f", "o", "this", "mout")
    program.add_module(mod)
    sched = Scheduler()
    platform = P2012Platform(sched, PlatformConfig(n_clusters=1, pes_per_cluster=4))
    runtime = PedfRuntime(sched, platform, program)
    runtime.add_source("s", "m", "min_", [5])
    sink = runtime.add_sink("k", "m", "mout", expect=1)
    dbg = Debugger(sched, runtime)
    dbg.break_source("loop.c:4", temporary=True)
    dbg.run()
    visited = [dbg.last_stop.line]
    for _ in range(5):
        ev = dbg.step()
        if ev.kind != StopKind.STEP:
            break
        visited.append(ev.line)
    # body line 4 and for-header line 3 alternate; the same body token is
    # re-read from the io window each iteration (no blocking)
    assert visited[:4] == [4, 3, 4, 3]
    dbg.cont()
    assert sink.values == [15]


def test_stepping_is_confined_to_selected_actor():
    """While stepping filter_1, filter_2's statements never trigger the
    step stop (though its execution proceeds)."""
    dbg, *_ = make_session([1, 2])
    dbg.break_source(f"the_source.c:{LINE_READ_INPUT}", actor="AModule.filter_1")
    dbg.run()
    for _ in range(3):
        ev = dbg.step()
        if ev.kind == StopKind.STEP:
            assert ev.actor == "AModule.filter_1"
    # clean up: disable bp, run to end
    for bp in list(dbg.breakpoints.visible()):
        bp.enabled = False
    ev = dbg.cont()
    assert ev.kind == StopKind.EXITED
