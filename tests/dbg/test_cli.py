"""The GDB-flavoured command line."""

import pytest

from repro.dbg import StopKind

from .util import LINE_COMPUTE, LINE_READ_INPUT, WORK_F1, make_cli


def test_run_and_stop_rendering():
    cli, dbg, *_ = make_cli([1])
    out = cli.execute(f"break the_source.c:{LINE_READ_INPUT}")
    assert out == [f"Breakpoint 1 at the_source.c:{LINE_READ_INPUT}"]
    out = cli.execute("run")
    assert any("Breakpoint 1" in line for line in out)
    assert any("pedf.io.an_input" in line for line in out)  # source echo


def test_abbreviations_and_aliases():
    cli, dbg, *_ = make_cli([1])
    cli.execute(f"b the_source.c:{LINE_READ_INPUT}")
    cli.execute("r")
    out = cli.execute("c")
    assert any("exited" in line.lower() for line in out)


def test_ambiguous_prefix_reported():
    cli, *_ = make_cli()
    out = cli.execute("s")  # 's' is an alias of step — resolves
    # 'st' prefixes both 'step' and 'stepi'
    out = cli.execute("st")
    assert out and "ambiguous" in out[0]


def test_undefined_command():
    cli, *_ = make_cli()
    out = cli.execute("bogus")
    assert "undefined command" in out[0]


def test_print_and_locals():
    cli, dbg, *_ = make_cli([7])
    cli.execute(f"tbreak the_source.c:{LINE_COMPUTE}")
    cli.execute("run")
    assert cli.execute("print v") == ["$1 = 7"]
    assert cli.execute("p v * 10") == ["$2 = 70"]
    out = cli.execute("info locals")
    assert any(line.startswith("v = 7") for line in out)
    out = cli.execute("info args")
    assert out == ["No arguments."]


def test_info_breakpoints_listing():
    cli, *_ = make_cli()
    cli.execute(f"break the_source.c:{LINE_READ_INPUT}")
    cli.execute("watch pedf") and None  # invalid — no actor; error swallowed as message
    out = cli.execute("info breakpoints")
    assert out[0].startswith("Num")
    assert any("the_source.c" in line for line in out)


def test_info_actors_lists_everything():
    cli, dbg, runtime, _ = make_cli()
    out = cli.execute("info actors")
    names = "\n".join(out)
    assert "AModule.filter_1" in names
    assert "AModule.controller" in names
    assert "host.stim" in names
    assert "host.capture" in names


def test_actor_selection_and_completion():
    cli, dbg, *_ = make_cli()
    out = cli.execute("actor filter_2")
    assert "Switching to actor AModule.filter_2" in out[0]
    candidates = cli.complete("actor fil")
    assert "filter_1" in candidates and "filter_2" in candidates
    candidates = cli.complete("th")
    assert "thread" not in candidates  # thread is an alias, not a name
    candidates = cli.complete("b")
    assert "break" in candidates and "backtrace" in candidates


def test_break_completion_offers_symbols():
    cli, *_ = make_cli()
    candidates = cli.complete("break Filter1")
    assert WORK_F1 in candidates


def test_delete_enable_disable_ignore_condition():
    cli, dbg, *_ = make_cli([1, 2, 3])
    cli.execute(f"break the_source.c:{LINE_READ_INPUT}")
    assert cli.execute("ignore 1 1") == ["Will ignore next 1 crossings of breakpoint 1."]
    cli.execute("condition 1 v > 100")
    cli.execute("disable 1")
    out = cli.execute("run")
    assert any("exited" in line.lower() for line in out)
    cli.execute("delete 1")
    out = cli.execute("info breakpoints")
    assert out == ["No breakpoints or watchpoints."]


def test_backtrace_frame_navigation():
    cli, dbg, *_ = make_cli([1])
    cli.execute(f"tbreak the_source.c:{LINE_COMPUTE}")
    cli.execute("run")
    out = cli.execute("bt")
    assert out[0].startswith("*#0")
    assert WORK_F1 in out[0]
    out = cli.execute("frame 0")
    assert out[0].startswith("#0")
    out = cli.execute("down")
    assert "error" in out[0]  # already innermost


def test_list_shows_source_with_marker():
    cli, dbg, *_ = make_cli([1])
    cli.execute(f"tbreak the_source.c:{LINE_COMPUTE}")
    cli.execute("run")
    out = cli.execute("list")
    marked = [line for line in out if line.startswith("->")]
    assert len(marked) == 1
    assert str(LINE_COMPUTE) in marked[0]


def test_execute_script_transcript():
    cli, dbg, *_ = make_cli([1])
    out = cli.execute_script([f"tbreak the_source.c:{LINE_COMPUTE}", "run", "print v"])
    assert out[0].startswith("(gdb) tbreak")
    assert "$1 = 1" in out


def test_help():
    cli, *_ = make_cli()
    out = cli.execute("help")
    assert len(out) > 10
    out = cli.execute("help break")
    assert out[0].startswith("break ")


def test_comments_and_empty_lines_ignored():
    cli, *_ = make_cli()
    assert cli.execute("") == []
    assert cli.execute("# comment") == []
