"""Indexed BreakpointRegistry invariants (the hot-path lookup tables)."""

import pytest

from repro.dbg.breakpoints import (
    BreakpointRegistry,
    FinishBreakpoint,
    FunctionBreakpoint,
    SourceBreakpoint,
    Watchpoint,
)
from repro.errors import DebuggerError


def recount(reg, category):
    """Brute-force armed count for cross-checking the incremental one."""
    return sum(
        1
        for bp in reg.all.values()
        if bp.index_category == category and bp.enabled and not bp.deleted
    )


class _FakeFrame:
    name = "f"


class _FakeInterp:
    pass


def test_add_indexes_by_location():
    reg = BreakpointRegistry()
    a = reg.add(SourceBreakpoint("x.c", 5))
    b = reg.add(SourceBreakpoint("x.c", 9))
    assert [bp.id for bp in reg.source_bps_at("x.c", 5)] == [a.id]
    assert [bp.id for bp in reg.source_bps_at("x.c", 9)] == [b.id]
    assert not reg.source_bps_at("x.c", 7)
    assert not reg.source_bps_at("y.c", 5)


def test_duplicate_file_line_coexist():
    reg = BreakpointRegistry()
    a = reg.add(SourceBreakpoint("x.c", 5))
    b = reg.add(SourceBreakpoint("x.c", 5, condition="v == 1"))
    assert [bp.id for bp in reg.source_bps_at("x.c", 5)] == [a.id, b.id]
    assert reg.armed_count("source") == 2
    reg.remove(a.id)
    assert [bp.id for bp in reg.source_bps_at("x.c", 5)] == [b.id]
    assert reg.armed_count("source") == 1
    reg.remove(b.id)
    assert not reg.source_bps_at("x.c", 5)
    assert reg.armed_count("source") == 0


def test_disable_hides_from_lookup_but_not_from_all():
    reg = BreakpointRegistry()
    bp = reg.add(SourceBreakpoint("x.c", 5))
    bp.enabled = False
    assert not reg.source_bps_at("x.c", 5)
    assert bp.id in reg.all
    assert reg.armed_count("source") == 0
    bp.enabled = True
    assert [b.id for b in reg.source_bps_at("x.c", 5)] == [bp.id]
    assert reg.armed_count("source") == 1


def test_double_toggle_does_not_skew_counts():
    reg = BreakpointRegistry()
    bp = reg.add(SourceBreakpoint("x.c", 5))
    bp.enabled = False
    bp.enabled = False  # idempotent
    assert reg.armed_count("source") == 0
    bp.enabled = True
    bp.enabled = True
    assert reg.armed_count("source") == 1


def test_remove_disabled_breakpoint_keeps_counts_consistent():
    reg = BreakpointRegistry()
    bp = reg.add(SourceBreakpoint("x.c", 5))
    bp.enabled = False
    reg.remove(bp.id)
    assert reg.armed_count("source") == recount(reg, "source") == 0
    # toggling the removed breakpoint must not resurrect it in the index
    bp.enabled = True
    assert reg.armed_count("source") == 0
    assert not reg.source_bps_at("x.c", 5)


def test_interleaved_mutations_keep_armed_counts_consistent():
    reg = BreakpointRegistry()
    bps = [reg.add(SourceBreakpoint("x.c", 10 + i % 3)) for i in range(6)]
    bps += [reg.add(FunctionBreakpoint(f"sym{i}")) for i in range(4)]
    bps[0].enabled = False
    bps[7].enabled = False
    reg.remove(bps[1].id)
    reg.remove(bps[8].id)
    bps[0].enabled = True
    bps[2].enabled = False
    for cat in ("source", "function"):
        assert reg.armed_count(cat) == recount(reg, cat), cat
    # lookups agree with the legacy full scans
    assert sorted(bp.id for line in (10, 11, 12) for bp in reg.source_bps_at("x.c", line)) == sorted(
        bp.id for bp in reg.source_bps()
    )
    assert sorted(
        bp.id for i in range(4) for bp in reg.function_bps_for(f"sym{i}")
    ) == sorted(bp.id for bp in reg.function_bps())


def test_function_and_watch_indices():
    reg = BreakpointRegistry()
    f = reg.add(FunctionBreakpoint("work_fn"))
    w = reg.add(Watchpoint("x", actor="m.a"))
    assert [bp.id for bp in reg.function_bps_for("work_fn")] == [f.id]
    assert not reg.function_bps_for("other")
    assert [wp.id for wp in reg.watchpoints_for("m.a")] == [w.id]
    assert not reg.watchpoints_for("m.b")
    assert reg.armed_count("function") == reg.armed_count("watch") == 1


def test_finish_bp_keyed_by_interp():
    reg = BreakpointRegistry()
    i1, i2 = _FakeInterp(), _FakeInterp()
    fb = reg.add(FinishBreakpoint(_FakeFrame(), i1))
    assert fb.id < 0  # finish bps default to internal numbering
    assert [bp.id for bp in reg.finish_bps_for(i1)] == [fb.id]
    assert not reg.finish_bps_for(i2)
    assert reg.armed_count("finish") == 1
    reg.remove(fb.id)
    assert not reg.finish_bps_for(i1)
    assert reg.armed_count("finish") == 0


def test_remove_unknown_id_raises():
    reg = BreakpointRegistry()
    with pytest.raises(DebuggerError):
        reg.remove(42)


def test_generation_and_on_change_fire_on_every_mutation():
    reg = BreakpointRegistry()
    calls = []
    reg.on_change = lambda: calls.append(reg.generation)
    bp = reg.add(SourceBreakpoint("x.c", 5))
    bp.enabled = False
    bp.enabled = True
    reg.remove(bp.id)
    assert len(calls) == 4
    assert calls == sorted(calls)  # generation is monotone


def test_temporary_auto_removal_updates_index():
    from .util import LINE_READ_INPUT, make_session

    dbg, *_ = make_session([1, 2])
    reg = dbg.breakpoints
    bp = dbg.break_source(f"the_source.c:{LINE_READ_INPUT}", temporary=True)
    assert reg.armed_count("source") == 1
    dbg.run()  # hits once, auto-deletes
    assert bp.id not in reg.all
    assert reg.armed_count("source") == recount(reg, "source") == 0
    assert not reg.source_bps_at("the_source.c", LINE_READ_INPUT)


def test_finish_auto_removal_updates_index():
    from .util import LINE_COMPUTE, make_session

    dbg, *_ = make_session([1])
    dbg.break_source(f"the_source.c:{LINE_COMPUTE}")
    dbg.run()
    reg = dbg.breakpoints
    before = reg.armed_count("finish")
    ev = dbg.finish()
    assert reg.armed_count("finish") == before == 0
    assert reg.armed_count("finish") == recount(reg, "finish")


def test_internal_ids_negative_and_hidden():
    reg = BreakpointRegistry()
    user = reg.add(SourceBreakpoint("x.c", 5))
    internal = reg.add(SourceBreakpoint("x.c", 6, internal=True))
    assert user.id > 0 and internal.id < 0
    assert [bp.id for bp in reg.visible()] == [user.id]
    # both still count as armed source breakpoints
    assert reg.armed_count("source") == 2
