"""Debugger test harness around the AModule demo."""

from repro.apps.amodule import build_demo
from repro.dbg import Debugger
from repro.dbg.cli import CommandCli


def make_session(values=(1, 2, 3, 4), attribute=1):
    sched, platform, runtime, source, sink = build_demo(values, attribute)
    dbg = Debugger(sched, runtime)
    return dbg, runtime, source, sink


def make_cli(values=(1, 2, 3, 4)):
    dbg, runtime, source, sink = make_session(values)
    return CommandCli(dbg), dbg, runtime, sink


# line numbers inside FILTER_SOURCE (the_source.c)
LINE_READ_CMD = 3
LINE_READ_INPUT = 4
LINE_SET_DATA = 5
LINE_COMPUTE = 6
LINE_PUSH = 7

WORK_F1 = "Filter1Filter_work_function"
WORK_F2 = "Filter2Filter_work_function"
CTL_WORK = "_component_AModuleModule_anon_0_work"
