"""The hook-capability vocabulary: one definition, stable semantics.

Regression guard for the bitmask contract: ``CAP_TELEMETRY`` and
``CAP_RV`` must stay *outside* ``CAP_ALL`` (they are observation bits —
arming them must never flip tier selection or hook elision), all bits
must stay distinct, and the :mod:`repro.dbg` re-exports must be the
:class:`~repro.cminus.interp.DebugHook` constants themselves.
"""

from repro.apps.rle import build_rle_pipeline
from repro.cminus.interp import DebugHook
from repro.core import DataflowSession
from repro.dbg import (
    CAP_ALL,
    CAP_CALLS,
    CAP_DATA,
    CAP_RETURNS,
    CAP_RV,
    CAP_STATEMENTS,
    CAP_TELEMETRY,
    Debugger,
)

ALL_BITS = {
    "CAP_STATEMENTS": CAP_STATEMENTS,
    "CAP_CALLS": CAP_CALLS,
    "CAP_RETURNS": CAP_RETURNS,
    "CAP_DATA": CAP_DATA,
    "CAP_TELEMETRY": CAP_TELEMETRY,
    "CAP_RV": CAP_RV,
}


def test_observation_bits_stay_outside_cap_all():
    assert CAP_TELEMETRY & CAP_ALL == 0
    assert CAP_RV & CAP_ALL == 0
    # ... while the four tier-selection bits are exactly CAP_ALL
    assert CAP_STATEMENTS | CAP_CALLS | CAP_RETURNS | CAP_DATA == CAP_ALL


def test_bits_are_distinct_single_bit_powers_of_two():
    values = list(ALL_BITS.values())
    assert len(set(values)) == len(values)
    for name, bit in ALL_BITS.items():
        assert bit > 0 and bit & (bit - 1) == 0, name


def test_dbg_reexports_are_the_interp_constants():
    for name, bit in ALL_BITS.items():
        assert bit == getattr(DebugHook, name)
    assert CAP_ALL == DebugHook.CAP_ALL


def test_rv_arming_sets_cap_rv_but_keeps_fast_tier():
    sched, runtime, sink = build_rle_pipeline([5, 2, 7])
    session = DataflowSession(Debugger(sched, runtime), stop_on_init=True)
    dbg = session.dbg
    dbg.run()
    assert not dbg.hook.capabilities & CAP_RV
    session.checks.add("occupancy pack::o->expand::i <= 4", action="log")
    assert dbg.hook.capabilities & CAP_RV
    # the RV bit never deoptimizes: every live interpreter keeps _fast_ok
    checked = 0
    for actor in runtime.all_actors():
        interp = getattr(actor, "interp", None)
        if interp is not None:
            assert interp._fast_ok
            assert interp._rv_armed
            checked += 1
    assert checked > 0
