"""The bytecode tier under the debugger: ISA surface and tier descent.

Mirrors test_deopt.py for the third tier: ISA breakpoints, register
watchpoints and ``stepi`` ride CAP_ISA (never deoptimizing), while
statement-level arming forces the generalized vm → closure → tree
descent mid-function with correct lines and backtraces.
"""

from repro.dbg import StopKind
from repro.dbg.cli import CommandCli
from repro.pedf.api import SYM_POP

from .util import LINE_PUSH, LINE_READ_INPUT, WORK_F1, make_session


def make_vm_session(values=(1, 2, 3, 4)):
    dbg, runtime, source, sink = make_session(values)
    runtime.config.interp_tier = "vm"
    for a in runtime.all_actors():
        if getattr(a, "interp", None) is not None:
            a.interp.tier = "vm"
    return dbg, runtime, source, sink


def live_interps(runtime):
    return [
        a.interp
        for a in runtime.all_actors()
        if getattr(a, "interp", None) is not None
    ]


# --------------------------------------------------------- ISA breakpoints


def test_isa_breakpoint_stops_at_exact_pc():
    dbg, runtime, _, sink = make_vm_session()
    bp = dbg.break_isa(f"{WORK_F1}+4")
    ev = dbg.run()
    assert ev.kind == StopKind.ISA_BP
    assert ev.bp_id == bp.id
    act = dbg.vm_activation()
    assert act is not None and act.vmf.name == WORK_F1 and act.pc == 4

    # the frame behind the activation reports the right source line
    frame = dbg.current_frame()
    assert frame is not None and frame.line == act.line()

    dbg.delete(bp.id)
    while not dbg.finished:
        dbg.cont()
    assert len(sink.values) == 4


def test_isa_breakpoints_never_deoptimize():
    dbg, runtime, _, _ = make_vm_session()
    interps = live_interps(runtime)
    dbg.break_isa(f"{WORK_F1}+4")
    assert all(i._fast_ok for i in interps), "CAP_ISA must not drop the tier"
    assert all(i._isa_armed for i in interps)


def test_bad_isa_locations_rejected():
    import pytest

    from repro.errors import DebuggerError

    dbg, _, _, _ = make_vm_session()
    with pytest.raises(DebuggerError, match="FUNC\\+PC"):
        dbg.break_isa("no_plus_sign")
    with pytest.raises(DebuggerError, match="no function symbol"):
        dbg.break_isa("nosuchfunc+3")


# ------------------------------------------------------------------- stepi


def test_stepi_advances_one_instruction_on_vm_frames():
    dbg, _, _, _ = make_vm_session()
    bp = dbg.break_isa(f"{WORK_F1}+4")
    assert dbg.run().kind == StopKind.ISA_BP
    interp = dbg.selected_actor.interp

    ev = dbg.stepi()
    assert ev.kind == StopKind.STEP
    assert dbg.vm_activation().pc == 5
    ev = dbg.stepi()
    assert ev.kind == StopKind.STEP
    assert dbg.vm_activation().pc == 6
    # instruction stepping kept the bytecode tier resident throughout
    assert interp._fast_ok


def test_register_watchpoint_reports_old_and_new():
    dbg, _, _, _ = make_vm_session()
    wp = dbg.watch_register(WORK_F1, 3)
    ev = dbg.run()
    assert ev.kind == StopKind.REGISTER_WATCH
    assert ev.bp_id == wp.id
    assert "old = " in ev.message and "new = " in ev.message


# ----------------------------------------------------------- tier descent


def test_statement_breakpoint_mid_vm_work_descends_and_hits():
    """Arm a source breakpoint while a *bytecode* WORK body is suspended
    mid-function: the vm frame must materialize interpreter state and
    stop on the right line."""
    dbg, runtime, _, sink = make_vm_session((5, 6))

    api_bp = dbg.break_api(SYM_POP, phase="entry", actor="AModule.filter_1")
    ev = dbg.run()
    assert ev.kind == StopKind.API_BP
    interp = dbg.selected_actor.interp
    assert interp._fast_ok, "tier should still be vm at an api stop"
    assert interp._vm_unit is not None, "vm tier never engaged"
    assert interp.frames and getattr(interp.frame, "vm", None) is not None

    dbg.delete(api_bp.id)
    dbg.break_source(f"the_source.c:{LINE_PUSH}")
    assert not interp._fast_ok, "arming must deoptimize the live interpreter"

    ev = dbg.cont()
    assert ev.kind == StopKind.BREAKPOINT
    frame = dbg.current_frame()
    assert frame is not None and frame.line == LINE_PUSH
    assert frame.func.name == WORK_F1

    while not dbg.finished:
        dbg.cont()
    assert sorted(sink.values) == [4 * 5 + 3, 4 * 6 + 3]


def test_vm_reoptimizes_after_disarm():
    dbg, runtime, _, sink = make_vm_session((3, 4))
    bp = dbg.break_source(f"the_source.c:{LINE_READ_INPUT}")
    assert dbg.run().kind == StopKind.BREAKPOINT
    interp = dbg.selected_actor.interp
    assert not interp._fast_ok
    dbg.delete(bp.id)
    assert interp._fast_ok
    while not dbg.finished:
        dbg.cont()
    assert interp._vm_unit is not None, "vm tier did not re-engage"
    assert len(sink.values) == 2


# ------------------------------------------------------------- CLI surface


def test_cli_disas_info_registers_and_breaki():
    dbg, _, _, _ = make_vm_session()
    cli = CommandCli(dbg)
    assert cli.execute(f"breaki {WORK_F1}+4") == [
        f"ISA breakpoint 1 at {WORK_F1}+4"
    ]
    ev = dbg.run()
    assert ev.kind == StopKind.ISA_BP

    listing = cli.execute("disas")
    assert any(line.startswith("=>") for line in listing), listing
    assert any("; line" in line for line in listing), listing

    regs = cli.execute("info registers")
    assert any("r0" in line for line in regs)
    assert any("(" in line for line in regs), "named registers missing"

    out = cli.execute("stepi")
    assert any("Step" in line for line in out)


def test_cli_rwatch_and_errors():
    dbg, _, _, _ = make_vm_session()
    cli = CommandCli(dbg)
    out = cli.execute(f"rwatch {WORK_F1} r3")
    assert out == [f"Register watchpoint 1: r3 in {WORK_F1}"]
    ev = dbg.run()
    assert ev.kind == StopKind.REGISTER_WATCH

    bad = cli.execute("rwatch onlyonearg")
    assert bad and bad[0].startswith("error:")
    bad = cli.execute("breaki badspec")
    assert bad and bad[0].startswith("error:")
