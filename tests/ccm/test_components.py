"""The component model on the generic debugger base (paper future work)."""

import pytest

from repro.ccm import (
    AssemblyDecl,
    AssemblyRuntime,
    ComponentDecl,
    ComponentSession,
    install_component_commands,
)
from repro.ccm.decls import CcmError
from repro.dbg import CommandCli, Debugger, StopKind
from repro.p2012.soc import P2012Platform, PlatformConfig
from repro.sim import Scheduler

STORAGE = """\
U32 total = 0;
U32 serve_get(U32 unused) { return total; }
U32 serve_set(U32 v) { total = v; return v; }
"""

ADDER = """\
U32 serve_accumulate(U32 x) {
    U32 cur = CALL(store_get, 0);
    U32 next = cur + x;
    CALL(store_set, next);
    CALL(log_event, next);
    return next;
}
"""

LOGGER = """\
U32 events = 0;
U32 serve_log(U32 v) { events = events + 1; return events; }
"""


def build_assembly(extra_storage=False):
    asm = AssemblyDecl(name="calc")
    asm.add_component(ComponentDecl(
        name="storage", source=STORAGE, provides=["get", "set"]))
    asm.add_component(ComponentDecl(
        name="adder", source=ADDER, provides=["accumulate"],
        requires=["store_get", "store_set", "log_event"]))
    asm.add_component(ComponentDecl(
        name="logger", source=LOGGER, provides=["log"]))
    if extra_storage:
        asm.add_component(ComponentDecl(
            name="storage_b", source=STORAGE, provides=["get", "set"],
            source_name="storage_b.c"))
    asm.bind("adder", "store_get", "storage", "get")
    asm.bind("adder", "store_set", "storage", "set")
    asm.bind("adder", "log_event", "logger", "log")
    return asm


def make_runtime(extra_storage=False):
    sched = Scheduler()
    platform = P2012Platform(sched, PlatformConfig(n_clusters=1, pes_per_cluster=8))
    runtime = AssemblyRuntime(sched, platform, build_assembly(extra_storage))
    return sched, runtime


def test_assembly_runs_and_services_compose():
    sched, runtime = make_runtime()
    runtime.load()
    r1 = runtime.invoke("adder", "accumulate", 5)
    r2 = runtime.invoke("adder", "accumulate", 7)
    stop = sched.run()
    assert runtime.classify_stop(stop) == "exited"
    assert r1 == [5]
    assert r2 == [12]
    assert runtime.components["storage"].served == 4  # 2x get + 2x set
    assert runtime.components["logger"].served == 2


def test_validation_rejects_unbound_required():
    asm = build_assembly()
    del asm.bindings[("adder", "log_event")]
    sched = Scheduler()
    platform = P2012Platform(sched, PlatformConfig(n_clusters=1, pes_per_cluster=8))
    with pytest.raises(CcmError) as e:
        AssemblyRuntime(sched, platform, asm)
    assert "unbound" in str(e.value)


def test_missing_serve_function_rejected():
    asm = AssemblyDecl(name="bad")
    asm.add_component(ComponentDecl(name="c", source="U32 x;", provides=["svc"]))
    sched = Scheduler()
    platform = P2012Platform(sched, PlatformConfig(n_clusters=1, pes_per_cluster=8))
    with pytest.raises(CcmError) as e:
        AssemblyRuntime(sched, platform, asm)
    assert "serve_svc" in str(e.value)


def test_call_target_validated_at_compile_time():
    asm = AssemblyDecl(name="bad")
    asm.add_component(ComponentDecl(
        name="c", source="U32 serve_s(U32 x) { return CALL(nope, x); }",
        provides=["s"], requires=["other"]))
    sched = Scheduler()
    platform = P2012Platform(sched, PlatformConfig(n_clusters=1, pes_per_cluster=8))
    from repro.errors import CMinusTypeError

    with pytest.raises(CMinusTypeError) as e:
        AssemblyRuntime(sched, platform, asm)
    assert "unknown target" in str(e.value)


# --------------------------------------------------- debugger on components


def attach(sched, runtime, stop_on_init=False):
    dbg = Debugger(sched, runtime)
    cli = CommandCli(dbg)
    session = ComponentSession(dbg, cli=cli, stop_on_init=stop_on_init)
    return dbg, cli, session


def test_same_debugger_reconstructs_component_model():
    sched, runtime = make_runtime()
    dbg, cli, session = attach(sched, runtime, stop_on_init=True)
    runtime.invoke("adder", "accumulate", 5)
    ev = dbg.run()
    assert ev.kind == StopKind.DATAFLOW
    assert "assembly reconstructed" in ev.message
    assert set(session.components) == {"storage", "adder", "logger"}
    assert session.components["adder"].requires == ["store_get", "store_set", "log_event"]
    assert session.bindings[("adder", "store_get")] == ("storage", "get")
    dbg.cont()


def test_catch_request_and_message_trace():
    sched, runtime = make_runtime()
    dbg, cli, session = attach(sched, runtime)
    runtime.invoke("adder", "accumulate", 5)
    session.catch_message("adder", "request", service="set")
    ev = dbg.run()
    assert ev.kind == StopKind.DATAFLOW
    assert "issued request" in ev.message and "storage.set" in ev.message
    msg = ev.payload
    assert msg.arg == 5 and msg.pending
    ev = dbg.cont()
    assert ev.kind in (StopKind.EXITED, StopKind.DEADLOCK)
    # request/response pairing in the trace
    completed = [m for m in session.trace if not m.pending]
    get_msg = next(m for m in completed if m.service == "get")
    assert get_msg.result == 0


def test_two_level_debugging_inside_component_code():
    """Classic source breakpoints and prints work inside component code —
    the same base debugger, different model."""
    sched, runtime = make_runtime()
    dbg, cli, session = attach(sched, runtime)
    runtime.invoke("adder", "accumulate", 9)
    cli.execute("break adder.c:3")  # U32 next = cur + x;
    ev = dbg.run()
    assert ev.kind == StopKind.BREAKPOINT
    assert ev.actor == "ccm.adder"
    assert cli.execute("print cur") == ["$1 = 0"]
    assert cli.execute("print x") == ["$2 = 9"]
    out = cli.execute("backtrace")
    assert any("AdderComponent_serve_accumulate" in line for line in out)
    dbg.cont()


def test_runtime_rebind_changes_provider():
    sched, runtime = make_runtime(extra_storage=True)
    dbg, cli, session = attach(sched, runtime)
    runtime.invoke("adder", "accumulate", 5)
    session.catch_message("adder", "response", service="log", temporary=True)
    ev = dbg.run()
    assert ev.kind == StopKind.DATAFLOW  # first accumulate about to finish
    # rewire the storage dependency to the fresh storage_b instance
    out = cli.execute("ccm rebind adder store_get storage_b get")
    assert "Rebound" in out[0]
    cli.execute("ccm rebind adder store_set storage_b set")
    runtime.invoke("adder", "accumulate", 7)
    ev = dbg.cont()
    assert ev.kind in (StopKind.EXITED, StopKind.DEADLOCK)
    # the second accumulate started from storage_b's pristine total
    completed = [m for m in session.trace if m.service == "accumulate" and not m.pending]
    assert [m.result for m in completed] == [5, 7]
    assert session.bindings[("adder", "store_get")] == ("storage_b", "get")


def test_component_cli_commands():
    sched, runtime = make_runtime()
    dbg, cli, session = attach(sched, runtime)
    runtime.invoke("adder", "accumulate", 5)
    dbg.run()
    out = cli.execute("component adder info")
    assert any("provides: accumulate" in line for line in out)
    out = cli.execute("ccm graph")
    assert any("adder -> storage" in line for line in out)
    out = cli.execute("ccm messages")
    assert any("accumulate" in line for line in out)
    out = cli.execute("ccm info")
    assert any("components: 3" in line for line in out)
    out = cli.execute("ccm rebind bogus a b c")
    assert "error" in out[0]
