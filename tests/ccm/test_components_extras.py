"""Component-model extras: error attribution, nested chains, costs."""

import pytest

from repro.ccm import AssemblyDecl, AssemblyRuntime, ComponentDecl, ComponentSession
from repro.dbg import CommandCli, Debugger, StopKind
from repro.p2012.soc import P2012Platform, PlatformConfig
from repro.sim import Scheduler


def make(components, bindings):
    asm = AssemblyDecl(name="x")
    for c in components:
        asm.add_component(c)
    for b in bindings:
        asm.bind(*b)
    sched = Scheduler()
    platform = P2012Platform(sched, PlatformConfig(n_clusters=1, pes_per_cluster=8))
    runtime = AssemblyRuntime(sched, platform, asm)
    return sched, runtime


def test_service_runtime_error_attributed_to_component():
    sched, runtime = make(
        [ComponentDecl(name="div", provides=["invert"], source="""
            U32 serve_invert(U32 x) { return 100 / x; }
        """)],
        [],
    )
    dbg = Debugger(sched, runtime)
    runtime.invoke("div", "invert", 0)
    ev = dbg.run()
    assert ev.kind == StopKind.ERROR
    assert "division by zero" in ev.message
    assert ev.actor == "ccm.div"


def test_three_level_call_chain():
    sched, runtime = make(
        [
            ComponentDecl(name="a", provides=["top"], requires=["mid"], source="""
                U32 serve_top(U32 x) { return CALL(mid, x) + 1; }
            """),
            ComponentDecl(name="b", provides=["mid"], requires=["bot"], source="""
                U32 serve_mid(U32 x) { return CALL(bot, x) * 2; }
            """, source_name="b.c"),
            ComponentDecl(name="c", provides=["bot"], source="""
                U32 serve_bot(U32 x) { return x + 10; }
            """, source_name="c.c"),
        ],
        [("a", "mid", "b", "mid"), ("b", "bot", "c", "bot")],
    )
    dbg = Debugger(sched, runtime)
    session = ComponentSession(dbg)
    r = runtime.invoke("a", "top", 5)
    ev = dbg.run()
    assert ev.kind in (StopKind.EXITED, StopKind.DEADLOCK)
    assert r == [(5 + 10) * 2 + 1]
    # the trace pairs all three nested calls
    done = [m for m in session.trace if not m.pending]
    assert {m.service for m in done} == {"top", "mid", "bot"}


def test_component_state_persists_across_services():
    sched, runtime = make(
        [ComponentDecl(name="counter", provides=["bump", "read"], source="""
            U32 n = 0;
            U32 serve_bump(U32 by) { n = n + by; return n; }
            U32 serve_read(U32 unused) { return n; }
        """)],
        [],
    )
    r1 = runtime.invoke("counter", "bump", 3)
    r2 = runtime.invoke("counter", "bump", 4)
    runtime.load()
    sched.run()
    r3 = runtime.invoke("counter", "read", 0)
    sched.run()
    assert r1 == [3] and r2 == [7] and r3 == [7]


def test_self_request_would_deadlock_and_is_reported():
    """A component synchronously calling its own provided service blocks
    on itself — the debugger reports the deadlock, not a hang."""
    sched, runtime = make(
        [ComponentDecl(name="loopy", provides=["svc"], requires=["self_svc"], source="""
            U32 serve_svc(U32 x) {
                if (x == 0) return 0;
                return CALL(self_svc, x - 1);
            }
        """)],
        [("loopy", "self_svc", "loopy", "svc")],
    )
    dbg = Debugger(sched, runtime)
    runtime.invoke("loopy", "svc", 2)
    ev = dbg.run()
    assert ev.kind == StopKind.DEADLOCK
    assert "ccm.loopy" in ev.message
