"""The `python -m repro` entry point (script mode)."""

import os
import subprocess
import sys
import textwrap


def run_main(args, script_text=None, tmp_path=None):
    argv = [sys.executable, "-m", "repro"] + args
    if script_text is not None:
        script = tmp_path / "session.gdb"
        script.write_text(script_text)
        argv += ["--script", str(script)]
    # run inside tmp_path so artifacts the CLI writes into its cwd
    # (e.g. automatic flight-recorder dumps on a deadlock stop) land in
    # the test sandbox, not the repo root; absolutize PYTHONPATH entries
    # so a relative `PYTHONPATH=src` still resolves from there
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        os.path.abspath(p) for p in env.get("PYTHONPATH", "").split(os.pathsep) if p
    )
    return subprocess.run(
        argv,
        capture_output=True,
        text=True,
        timeout=180,
        cwd=str(tmp_path) if tmp_path is not None else None,
        env=env,
    )


def test_demo_amodule_scripted(tmp_path):
    result = run_main(
        ["--demo", "amodule"],
        script_text="run\ndataflow info\nfilter filter_1 catch work\ncontinue\n",
        tmp_path=tmp_path,
    )
    assert result.returncode == 0, result.stderr
    assert "reconstructed" in result.stdout
    assert "WORK method of filter `filter_1'" in result.stdout


def test_demo_h264_with_bug(tmp_path):
    result = run_main(
        ["--demo", "h264", "--bug", "rate-mismatch"],
        script_text="run\ncontinue\ndataflow links\n",
        tmp_path=tmp_path,
    )
    assert result.returncode == 0, result.stderr
    assert "injected bug" in result.stdout
    assert "20 token(s) queued" in result.stdout


def test_adl_file_loading(tmp_path):
    (tmp_path / "app.adl").write_text(textwrap.dedent("""
        @Filter
        primitive Inc {
            source inc.c;
            input U32 as i;
            output U32 as o;
        }
        @Module
        composite M {
            contains as controller { source ctl.c; maxsteps 3; }
            contains Inc as inc;
            input U32 as min_;
            output U32 as mout;
            binds this.min_ to inc.i;
            binds inc.o to this.mout;
        }
    """))
    (tmp_path / "inc.c").write_text("void work() { pedf.io.o[0] = pedf.io.i[0] + 1; }")
    (tmp_path / "ctl.c").write_text("void work() { ACTOR_FIRE(inc); WAIT_FOR_ACTOR_SYNC(); }")
    result = run_main(
        [
            "--adl", str(tmp_path / "app.adl"),
            "--src", str(tmp_path / "inc.c"),
            "--src", str(tmp_path / "ctl.c"),
            "--source-values", "10,20,30",
        ],
        script_text="run\ncontinue\ndataflow links\n",
        tmp_path=tmp_path,
    )
    assert result.returncode == 0, result.stderr
    assert "pushed 3, popped 3" in result.stdout


def test_unknown_bug_variant_errors():
    result = run_main(["--demo", "h264", "--bug", "nope"])
    assert result.returncode == 1
    assert "unknown bug variant" in result.stderr


def test_missing_arguments():
    result = run_main([])
    assert result.returncode == 2
