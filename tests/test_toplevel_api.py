"""The package-level convenience API (`repro.build_debug_session`)."""

import pytest

from repro import build_debug_session
from repro.dbg import StopKind

ADL = """
@Filter
primitive Inc {
    source inc.c;
    input U32 as i;
    output U32 as o;
}
@Module
composite M {
    contains as controller { source ctl.c; maxsteps 2; }
    contains Inc as inc;
    input U32 as min_;
    output U32 as mout;
    binds this.min_ to inc.i;
    binds inc.o to this.mout;
}
"""
SOURCES = {
    "inc.c": "void work() { pedf.io.o[0] = pedf.io.i[0] + 1; }",
    "ctl.c": "void work() { ACTOR_FIRE(inc); WAIT_FOR_ACTOR_SYNC(); }",
}


def test_build_debug_session_from_adl_text():
    dbg, cli, session, runtime = build_debug_session(ADL, SOURCES)
    runtime.add_source("s", "M", "min_", [1, 2])
    sink = runtime.add_sink("k", "M", "mout", expect=2)
    ev = dbg.run()
    assert ev.kind == StopKind.DATAFLOW  # stop_on_init default True
    assert session.model.program_name
    cli.execute("filter inc catch work")
    ev = dbg.cont()
    assert "WORK method of filter `inc'" in ev.message
    cli.execute("delete 1")
    ev = dbg.cont()
    assert ev.kind == StopKind.EXITED
    assert sink.values == [2, 3]


def test_build_debug_session_from_program_decl():
    from repro.apps.amodule import build_amodule_program

    program = build_amodule_program(max_steps=1)
    dbg, cli, session, runtime = build_debug_session(program, stop_on_init=False)
    runtime.add_source("s", "AModule", "module_in", [4])
    sink = runtime.add_sink("k", "AModule", "module_out", expect=1)
    ev = dbg.run()
    assert ev.kind == StopKind.EXITED
    assert sink.values == [(4 * 2 + 1) * 2 + 1]


def test_info_platform_works_on_component_runtime():
    """`info platform` is model-agnostic: it also reports the assembly's
    resource placement."""
    from repro.ccm import AssemblyDecl, AssemblyRuntime, ComponentDecl
    from repro.dbg import CommandCli, Debugger
    from repro.p2012.soc import P2012Platform, PlatformConfig
    from repro.sim import Scheduler

    asm = AssemblyDecl(name="a")
    asm.add_component(ComponentDecl(
        name="echo", provides=["e"], source="U32 serve_e(U32 x) { return x; }"))
    sched = Scheduler()
    platform = P2012Platform(sched, PlatformConfig(n_clusters=1, pes_per_cluster=4))
    runtime = AssemblyRuntime(sched, platform, asm)
    dbg = Debugger(sched, runtime)
    cli = CommandCli(dbg)
    out = cli.execute("info platform")
    assert any("ccm.echo" in line for line in out)
