"""The front-end compile cache: lex/parse/sema memoized by source digest.

Replay re-executions and timeline forks rebuild the whole application
from scratch — the cache makes the second and every later rebuild reuse
the analyzed program, and lets identical sources share one closure-
compiled unit (memoized per Program object).
"""

import pytest

from repro.cminus import frontend_cache
from repro.cminus.frontend import FrontendCache, type_signature
from repro.cminus.typesys import S32, U8, U32, ArrayType, StructType
from repro.pedf.compile import compile_actor
from repro.pedf.decls import FilterDecl, ModuleDecl


SRC = """\
void work() {
    U32 v = pedf.io.an_input[0];
    pedf.io.an_output[0] = v + 1;
}
"""


def make_decl(name="filt", source=SRC):
    decl = FilterDecl(name=name, source=source)
    decl.add_iface("an_input", "input", U32)
    decl.add_iface("an_output", "output", U32)
    return decl


def make_module(name="m"):
    return ModuleDecl(name=name)


@pytest.fixture(autouse=True)
def clean_cache():
    frontend_cache.clear()
    yield
    frontend_cache.clear()


def test_identical_sources_share_one_program():
    module = make_module()
    d1, d2 = make_decl("filt"), make_decl("filt")
    compile_actor(d1, module)
    compile_actor(d2, module)
    assert frontend_cache.hits == 1 and frontend_cache.misses == 1
    # same mangle + same source + same context → the same analyzed program
    assert d1.cprogram is d2.cprogram
    assert d1.debug_info is d2.debug_info
    assert d1.work_symbol == d2.work_symbol


def test_different_instance_names_do_not_collide():
    """Mangling differs per instance — the cache must key on it."""
    module = make_module()
    d1, d2 = make_decl("alpha"), make_decl("beta")
    compile_actor(d1, module)
    compile_actor(d2, module)
    assert frontend_cache.hits == 0 and frontend_cache.misses == 2
    assert d1.cprogram is not d2.cprogram
    assert d1.work_symbol != d2.work_symbol


def test_different_sources_do_not_collide():
    module = make_module()
    d1 = make_decl("filt")
    d2 = make_decl("filt", source=SRC.replace("v + 1", "v + 2"))
    compile_actor(d1, module)
    compile_actor(d2, module)
    assert frontend_cache.misses == 2
    assert d1.cprogram is not d2.cprogram


def test_rebuild_hits_the_cache():
    """The replay scenario: a fresh declaration tree, same sources."""
    compile_actor(make_decl(), make_module())
    assert frontend_cache.stats() == (1, 0, 1)
    compile_actor(make_decl(), make_module())
    compile_actor(make_decl(), make_module())
    assert frontend_cache.stats() == (1, 2, 1)


def test_clear_resets_everything():
    compile_actor(make_decl(), make_module())
    assert len(frontend_cache) == 1
    frontend_cache.clear()
    assert frontend_cache.stats() == (0, 0, 0)


def test_amodule_rebuild_reuses_programs():
    """End to end: rebuilding the demo app re-parses nothing."""
    from repro.apps.amodule import build_demo

    build_demo([1, 2])
    misses_first = frontend_cache.misses
    assert misses_first > 0
    hits_before = frontend_cache.hits
    build_demo([3, 4])
    assert frontend_cache.misses == misses_first, "rebuild re-parsed a source"
    assert frontend_cache.hits > hits_before


def test_type_signature_distinguishes_struct_layouts():
    a = StructType("Pt", [("x", S32), ("y", S32)])
    b = StructType("Pt", [("x", S32), ("y", U8)])
    assert type_signature(a) != type_signature(b)
    assert type_signature(ArrayType(S32, 4)) != type_signature(ArrayType(S32, 5))


def test_cache_is_a_plain_memo():
    cache = FrontendCache()
    key = cache.digest("src", "f.c", "salt")
    assert cache.get(key) is None
    cache.put(key, ("x",))
    assert cache.get(key) == ("x",)
    assert cache.stats() == (1, 1, 1)
    assert key != cache.digest("src", "f.c", "other-salt")
