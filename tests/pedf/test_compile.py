"""Actor compilation and symbol mangling."""

import pytest

from repro.apps.amodule import build_amodule_program
from repro.errors import PedfError
from repro.pedf import (
    ControllerDecl,
    FilterDecl,
    ModuleDecl,
    compile_actor,
    mangle_controller_symbol,
    mangle_filter_symbol,
)
from repro.pedf.compile import compile_program
from repro.cminus.typesys import U32


def test_mangling_matches_paper_examples():
    # paper §VI-F: "filter Ipf WORK method correspond to the symbol
    # IpfFilter_work_function whereas controller pred_controller WORK
    # method is _component_PredModule_anon_0_work"
    assert mangle_filter_symbol("ipf") == "IpfFilter_work_function"
    assert mangle_controller_symbol("pred") == "_component_PredModule_anon_0_work"
    assert mangle_filter_symbol("ipred") == "IpredFilter_work_function"


def test_compile_renames_work_and_helpers():
    module = ModuleDecl(name="m")
    f = FilterDecl(name="ipf", source="""
    U32 helper(U32 x) { return x + 1; }
    void work() {
        pedf.io.out[0] = helper(pedf.io.in_[0]);
    }
    """)
    f.add_iface("in_", "input", U32)
    f.add_iface("out", "output", U32)
    module.add_filter(f)
    compile_actor(f, module)
    assert f.work_symbol == "IpfFilter_work_function"
    names = {fn.name for fn in f.cprogram.functions}
    assert names == {"IpfFilter_work_function", "IpfFilter_helper"}
    # the call site was rewritten too: re-analysis found no undefined calls
    assert "IpfFilter_helper" in f.debug_info.functions


def test_controller_compiled_with_actor_validation():
    module = ModuleDecl(name="pred")
    ctl = ControllerDecl(name="ctl", source="void work() { ACTOR_FIRE(nope); }")
    module.set_controller(ctl)
    with pytest.raises(Exception) as e:
        compile_actor(ctl, module)
    assert "unknown actor" in str(e.value)


def test_missing_work_method_rejected():
    module = ModuleDecl(name="m")
    f = FilterDecl(name="f", source="void notwork() { }")
    module.add_filter(f)
    with pytest.raises(PedfError) as e:
        compile_actor(f, module)
    assert "no work()" in str(e.value)


def test_compile_is_idempotent():
    program = build_amodule_program()
    compile_program(program)
    before = program.modules["AModule"].filters["filter_1"].cprogram
    compile_program(program)
    assert program.modules["AModule"].filters["filter_1"].cprogram is before


def test_amodule_program_validates():
    program = build_amodule_program()
    compile_program(program)
    program.validate()  # no exception


def test_validation_rejects_type_mismatch():
    from repro.cminus.typesys import U8

    program = build_amodule_program()
    module = program.modules["AModule"]
    # sabotage: retype one end of a binding
    module.filters["filter_2"].ifaces["an_input"].ctype = U8
    compile_program(program)
    with pytest.raises(PedfError) as e:
        program.validate()
    assert "type mismatch" in str(e.value)


def test_validation_rejects_double_binding():
    program = build_amodule_program()
    module = program.modules["AModule"]
    module.bind("filter_1", "an_output", "filter_2", "an_input")  # duplicate
    compile_program(program)
    with pytest.raises(PedfError) as e:
        program.validate()
    assert "bound more than once" in str(e.value)


def test_module_without_controller_rejected():
    from repro.pedf import ProgramDecl

    program = ProgramDecl(name="p")
    program.add_module(ModuleDecl(name="m"))
    with pytest.raises(PedfError) as e:
        program.validate()
    assert "no controller" in str(e.value)
