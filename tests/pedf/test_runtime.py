"""End-to-end PEDF runtime tests on the AModule demo."""

import pytest

from repro.apps.amodule import build_amodule_program, build_demo
from repro.apps.amodule.app import expected_output
from repro.errors import PedfError
from repro.pedf import SYM_PUSH, SYM_STEP_BEGIN, SYM_WORK_ENTER
from repro.pedf.actors import ActorState
from repro.sim import StopKind


def run_demo(values=(1, 2, 3, 4), attribute=1):
    sched, platform, runtime, source, sink = build_demo(values, attribute)
    runtime.load()
    stop = sched.run()
    return sched, runtime, source, sink, stop


def test_pipeline_computes_expected_values():
    values = [1, 2, 3, 4]
    sched, runtime, source, sink, stop = run_demo(values)
    assert runtime.classify_stop(stop) == "exited"
    assert sink.values == expected_output(values)


def test_pipeline_with_attribute():
    values = [10, 20]
    _, _, _, sink, stop = run_demo(values, attribute=7)
    assert sink.values == expected_output(values, attribute=7)


def test_controller_steps_counted():
    sched, runtime, _, _, stop = run_demo([5, 6, 7])
    ctl = runtime.modules["AModule"].controller
    assert ctl.step_no == 3
    assert ctl.works_done == 3


def test_filter_work_invocations_counted():
    _, runtime, _, _, _ = run_demo([1, 2, 3])
    f1 = runtime.modules["AModule"].filters["filter_1"]
    assert f1.works_begun == 3
    assert f1.works_done == 3
    assert f1.state in (ActorState.FINISHED, ActorState.IDLE)


def test_private_data_updated():
    _, runtime, _, _, _ = run_demo([9])
    f1 = runtime.modules["AModule"].filters["filter_1"]
    assert f1.data_store["a_private_data"].data == 9


def test_framework_events_emitted():
    sched, platform, runtime, source, sink = build_demo([1, 2])
    events = []
    runtime.bus.subscribe("*", lambda e: events.append((e.phase, e.symbol)) or None)
    runtime.load()
    sched.run()
    symbols = {s for _, s in events}
    assert SYM_PUSH in symbols
    assert SYM_STEP_BEGIN in symbols
    assert SYM_WORK_ENTER in symbols
    # registration events happened before any step
    first_step = next(i for i, (p, s) in enumerate(events) if s == SYM_STEP_BEGIN)
    reg_after = [s for _, s in events[first_step:] if s.startswith("pedf_rt_register")]
    assert reg_after == []


def test_event_counts_match_traffic():
    sched, platform, runtime, source, sink = build_demo([1, 2, 3])
    pushes = []
    runtime.bus.subscribe(SYM_PUSH, lambda e: pushes.append(e) or None, phase="entry")
    runtime.load()
    sched.run()
    # per step: 2 cmd pushes + f1 out + f2 out = 4, plus 1 source push
    assert len(pushes) == 3 * 4 + 3


def test_actor_qualified_subscription():
    sched, platform, runtime, source, sink = build_demo([1, 2])
    f1_pushes = []
    runtime.bus.subscribe(
        SYM_PUSH, lambda e: f1_pushes.append(e) or None, actor="AModule.filter_1", phase="entry"
    )
    runtime.load()
    sched.run()
    assert len(f1_pushes) == 2  # one an_output push per step
    assert all(e.actor == "AModule.filter_1" for e in f1_pushes)


def test_link_counters_and_occupancy():
    _, runtime, _, sink, _ = run_demo([1, 2, 3, 4])
    link = next(l for l in runtime.links if "filter_1::an_output" in l.name)
    assert link.total_pushed == 4
    assert link.total_popped == 4
    assert link.occupancy == 0


def test_tokens_carry_provenance_fields():
    _, _, _, sink, _ = run_demo([1])
    tok = sink.received[0]
    assert tok.src_iface == "filter_2::an_output"
    assert tok.dst_iface == "capture::in"
    assert tok.seq > 0


def test_find_actor_and_iface():
    sched, platform, runtime, source, sink = build_demo()
    f1 = runtime.find_actor("filter_1")
    assert f1.qualname == "AModule.filter_1"
    assert runtime.find_actor("AModule.filter_1") is f1
    iface = runtime.find_iface("filter_1::an_output")
    assert iface.actor is f1
    with pytest.raises(PedfError):
        runtime.find_actor("nope")
    with pytest.raises(PedfError):
        runtime.find_iface("filter_1::nope")


def test_deadlock_when_source_missing():
    from repro.p2012.soc import P2012Platform, PlatformConfig
    from repro.pedf.runtime import PedfRuntime
    from repro.sim import Scheduler

    sched = Scheduler()
    platform = P2012Platform(sched, PlatformConfig(n_clusters=1, pes_per_cluster=8))
    program = build_amodule_program(max_steps=2)
    runtime = PedfRuntime(sched, platform, program)
    # a source that never produces: filter_1 blocks reading an_input forever
    runtime.add_source("silent", "AModule", "module_in", [])
    runtime.load()
    stop = sched.run()
    assert stop.kind == StopKind.DEADLOCK
    assert runtime.classify_stop(stop) == "deadlock"
    f1 = runtime.modules["AModule"].filters["filter_1"]
    assert f1.state == ActorState.RUNNING
    assert f1.blocked


def test_injection_unties_deadlock():
    """The §III 'altering the normal execution' scenario at runtime level."""
    from repro.p2012.soc import P2012Platform, PlatformConfig
    from repro.pedf.runtime import PedfRuntime
    from repro.sim import Scheduler

    sched = Scheduler()
    platform = P2012Platform(sched, PlatformConfig(n_clusters=1, pes_per_cluster=8))
    program = build_amodule_program(max_steps=1)
    runtime = PedfRuntime(sched, platform, program)
    runtime.add_source("silent", "AModule", "module_in", [])
    sink = runtime.add_sink("capture", "AModule", "module_out", expect=1)
    runtime.load()
    stop = sched.run()
    assert runtime.classify_stop(stop) == "deadlock"
    # inject the missing token on filter_1's input link
    link = next(l for l in runtime.links if l.dst and l.dst.qualname == "filter_1::an_input")
    link.inject(21)
    stop = sched.run()
    assert runtime.classify_stop(stop) == "exited"
    assert sink.values == expected_output([21])


def test_merged_debug_info_has_mangled_symbols():
    sched, platform, runtime, source, sink = build_demo()
    info = runtime.merged_debug_info()
    assert "Filter1Filter_work_function" in info.functions
    assert "_component_AModuleModule_anon_0_work" in info.functions


def test_actors_mapped_to_distinct_pes():
    sched, platform, runtime, source, sink = build_demo()
    resources = [a.resource for a in runtime.modules["AModule"].actors()]
    assert len({id(r) for r in resources}) == len(resources)
    assert all(r.occupant is not None for r in resources)


def test_source_sink_on_host_use_dma_links():
    sched, platform, runtime, source, sink = build_demo()
    src_link = source.out.link
    sink_link = sink.inp.link
    assert src_link.dma_assisted
    assert sink_link.dma_assisted
    inner = next(l for l in runtime.links if "filter_1::an_output" in l.name)
    assert not inner.dma_assisted


def test_simulated_time_advances():
    sched, runtime, _, _, _ = run_demo([1, 2, 3, 4])
    assert sched.now > 0


def test_cannot_add_source_after_load():
    sched, platform, runtime, source, sink = build_demo()
    runtime.load()
    with pytest.raises(PedfError):
        runtime.add_source("late", "AModule", "module_in", [1])
