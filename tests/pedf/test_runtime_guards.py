"""Runtime misuse guards: io discipline and link endpoint rules."""

import pytest

from repro.cminus.typesys import U32
from repro.errors import PedfError
from repro.p2012.soc import P2012Platform, PlatformConfig
from repro.pedf import ControllerDecl, FilterDecl, ModuleDecl, ProgramDecl
from repro.pedf.runtime import PedfRuntime
from repro.sim import Scheduler, StopKind


def build_single_filter(filter_src, max_steps=1, n_inputs=1, n_outputs=1):
    program = ProgramDecl(name="g")
    mod = ModuleDecl(name="m")
    mod.set_controller(ControllerDecl(
        name="controller", max_steps=max_steps,
        source="void work() { ACTOR_FIRE(f); WAIT_FOR_ACTOR_SYNC(); }"))
    f = FilterDecl(name="f", source=filter_src, source_name="f.c")
    for i in range(n_inputs):
        f.add_iface(f"i{i}", "input", U32)
    for i in range(n_outputs):
        f.add_iface(f"o{i}", "output", U32)
    mod.add_filter(f)
    for i in range(n_inputs):
        mod.add_iface(f"min{i}", "input", U32)
        mod.bind("this", f"min{i}", "f", f"i{i}")
    for i in range(n_outputs):
        mod.add_iface(f"mout{i}", "output", U32)
        mod.bind("f", f"o{i}", "this", f"mout{i}")
    program.add_module(mod)
    sched = Scheduler()
    platform = P2012Platform(sched, PlatformConfig(n_clusters=1, pes_per_cluster=4))
    runtime = PedfRuntime(sched, platform, program)
    return sched, runtime


def test_out_of_order_push_is_a_runtime_error():
    src = """
    void work() {
        U32 v = pedf.io.i0[0];
        pedf.io.o0[1] = v;   // skips index 0
    }
    """
    sched, runtime = build_single_filter(src)
    runtime.add_source("s", "m", "min0", [1])
    runtime.add_sink("k", "m", "mout0", expect=1)
    runtime.load()
    stop = sched.run()
    assert stop.kind == StopKind.PROCESS_ERROR
    assert "out-of-order push" in str(stop.payload)


def test_reread_of_consumed_index_is_stable():
    """Reading pedf.io.i[0] twice in one invocation returns the same
    token without consuming another (the structure-dataflow window)."""
    src = """
    void work() {
        U32 a = pedf.io.i0[0];
        U32 b = pedf.io.i0[0];
        pedf.io.o0[0] = a * 100 + b;
    }
    """
    sched, runtime = build_single_filter(src)
    runtime.add_source("s", "m", "min0", [7])
    sink = runtime.add_sink("k", "m", "mout0", expect=1)
    runtime.load()
    stop = sched.run()
    assert runtime.classify_stop(stop) == "exited"
    assert sink.values == [707]
    link = next(l for l in runtime.links if l.dst and l.dst.qualname == "f::i0")
    assert link.total_popped == 1  # not two


def test_negative_io_index_is_a_runtime_error():
    src = """
    void work() {
        S32 k = 0;
        U32 v = pedf.io.i0[k - 1];
        pedf.io.o0[0] = v;
    }
    """
    sched, runtime = build_single_filter(src)
    runtime.add_source("s", "m", "min0", [1])
    runtime.load()
    stop = sched.run()
    assert stop.kind == StopKind.PROCESS_ERROR
    assert "negative io index" in str(stop.payload)


def test_window_resets_between_invocations():
    src = """
    void work() {
        pedf.io.o0[0] = pedf.io.i0[0] + 1;
    }
    """
    sched, runtime = build_single_filter(src, max_steps=3)
    runtime.add_source("s", "m", "min0", [10, 20, 30])
    sink = runtime.add_sink("k", "m", "mout0", expect=3)
    runtime.load()
    sched.run()
    assert sink.values == [11, 21, 31]


def test_link_endpoint_direction_enforced():
    from repro.pedf.links import IfaceInst

    sched, runtime = build_single_filter("void work() { pedf.io.o0[0] = pedf.io.i0[0]; }")
    f = runtime.modules["m"].filters["f"]
    out_iface = f.ifaces["o0"]
    in_iface = f.ifaces["i0"]
    with pytest.raises(PedfError):
        # pops are only legal on inputs
        next(out_iface.pop(0))
    with pytest.raises(PedfError):
        next(in_iface.push(1, 0))


def test_iface_rebind_rejected():
    sched, runtime = build_single_filter("void work() { pedf.io.o0[0] = pedf.io.i0[0]; }")
    runtime.add_sink("k", "m", "mout0", expect=1)  # materializes o0's link
    f = runtime.modules["m"].filters["f"]
    assert f.ifaces["o0"].link is not None
    with pytest.raises(PedfError) as e:
        f.ifaces["o0"].bind(f.ifaces["o0"].link)
    assert "already bound" in str(e.value)


def test_dangling_iface_pop_reports_unbound():
    sched, runtime = build_single_filter("void work() { pedf.io.o0[0] = pedf.io.i0[0]; }")
    f = runtime.modules["m"].filters["f"]
    # module-level aliases exist but no source/sink attached: the actual
    # actor interfaces are unbound and any traffic is a clear error
    with pytest.raises(PedfError) as e:
        next(f.ifaces["i0"].pop(0))
    assert "not bound to any link" in str(e.value)
