"""Predicated execution — the 'P' of PEDF.

"PEDF also originates from dynamic dataflow modeling [...] it offers
advanced scheduling capabilities, allowing the modification of the
dataflow graph behavior during its execution (based on a set of
predicates) or run some parts of the graph at different rates."
"""

import pytest

from repro.cminus.typesys import U32
from repro.core import DataflowSession
from repro.dbg import CommandCli, Debugger, StopKind
from repro.p2012.soc import P2012Platform, PlatformConfig
from repro.pedf import ControllerDecl, FilterDecl, ModuleDecl, ProgramDecl
from repro.pedf.runtime import PedfRuntime
from repro.sim import Scheduler

CONTROLLER = """\
void work() {
    U32 step = STEP_COUNT();
    if (PRED(use_fast)) {
        pedf.io.cmd_fast[0] = step;
        ACTOR_FIRE(fast);
    } else {
        pedf.io.cmd_slow[0] = step;
        ACTOR_FIRE(slow);
    }
    WAIT_FOR_ACTOR_SYNC();
    if (step == 2) {
        SET_PRED(use_fast, false);
    }
}
"""

FAST = "void work() { pedf.io.o[0] = pedf.io.cmd[0] * 2; }"
SLOW = "void work() { pedf.io.o[0] = pedf.io.cmd[0] * 3; }"


def build(max_steps=5, use_fast=True):
    program = ProgramDecl(name="predicated")
    mod = ModuleDecl(name="m", predicates={"use_fast": use_fast})
    ctl = ControllerDecl(name="controller", source=CONTROLLER, source_name="ctl.c",
                         max_steps=max_steps)
    ctl.add_iface("cmd_fast", "output", U32)
    ctl.add_iface("cmd_slow", "output", U32)
    mod.set_controller(ctl)
    for name, src in (("fast", FAST), ("slow", SLOW)):
        f = FilterDecl(name=name, source=src, source_name=f"{name}.c")
        f.add_iface("cmd", "input", U32)
        f.add_iface("o", "output", U32)
        mod.add_filter(f)
    mod.add_iface("out_fast", "output", U32)
    mod.add_iface("out_slow", "output", U32)
    mod.bind("controller", "cmd_fast", "fast", "cmd")
    mod.bind("controller", "cmd_slow", "slow", "cmd")
    mod.bind("fast", "o", "this", "out_fast")
    mod.bind("slow", "o", "this", "out_slow")
    program.add_module(mod)

    sched = Scheduler()
    platform = P2012Platform(sched, PlatformConfig(n_clusters=1, pes_per_cluster=4))
    runtime = PedfRuntime(sched, platform, program)
    fast_sink = runtime.add_sink("fastcap", "m", "out_fast", expect=None)
    slow_sink = runtime.add_sink("slowcap", "m", "out_slow", expect=None)
    return sched, runtime, fast_sink, slow_sink


def test_predicate_routes_scheduling():
    sched, runtime, fast_sink, slow_sink = build()
    runtime.load()
    stop = sched.run()
    assert runtime.classify_stop(stop) == "exited"
    # steps 1-2 via fast, SET_PRED flips at end of step 2, steps 3-5 via slow
    assert fast_sink.values == [2, 4]
    assert slow_sink.values == [9, 12, 15]
    assert runtime.modules["m"].filters["fast"].works_done == 2
    assert runtime.modules["m"].filters["slow"].works_done == 3


def test_initial_predicate_false():
    sched, runtime, fast_sink, slow_sink = build(use_fast=False)
    runtime.load()
    sched.run()
    assert fast_sink.values == []
    assert slow_sink.values == [3, 6, 9, 12, 15]


def test_set_pred_event_captured_by_debugger():
    sched, runtime, fast_sink, slow_sink = build()
    dbg = Debugger(sched, runtime)
    session = DataflowSession(dbg)
    dbg.run()
    assert session.model.predicates == {"m": {"use_fast": False}}


def test_debugger_overrides_predicate():
    """Altering the scheduling dimension: flip the predicate from the
    debugger at a step boundary and watch the schedule change."""
    sched, runtime, fast_sink, slow_sink = build(max_steps=4)
    dbg = Debugger(sched, runtime)
    cli = CommandCli(dbg)
    session = DataflowSession(dbg, cli=cli, stop_on_init=True)
    dbg.run()
    cp = session.catch_step("begin", temporary=True)
    ev = dbg.cont()
    assert "begin of step 1" in ev.message
    out = cli.execute("sched pred")
    assert out == ["m.use_fast = true"]
    cli.execute("sched pred m use_fast false")
    ev = dbg.cont()
    assert ev.kind == StopKind.EXITED
    # the override redirected every step to the slow filter
    assert fast_sink.values == []
    assert slow_sink.values == [3, 6, 9, 12]


def test_sched_pred_usage_error():
    sched, runtime, *_ = build()
    dbg = Debugger(sched, runtime)
    cli = CommandCli(dbg)
    DataflowSession(dbg, cli=cli)
    out = cli.execute("sched pred m use_fast maybe")
    assert "usage:" in out[0]


def test_sched_catch_pred_stops_on_set_pred():
    """The debugger can stop exactly when the graph behaviour changes."""
    from repro.dbg import StopKind

    sched, runtime, fast_sink, slow_sink = build(max_steps=5)
    dbg = Debugger(sched, runtime)
    cli = CommandCli(dbg)
    session = DataflowSession(dbg, cli=cli, stop_on_init=True)
    dbg.run()
    out = cli.execute("sched catch pred")
    assert "Catchpoint" in out[0]
    ev = dbg.cont()
    assert ev.kind == StopKind.DATAFLOW
    assert "predicate `m.use_fast' set to false" in ev.message
    # at the stop the fast path already ran its two steps (the second
    # token may still be in DMA flight toward the host sink)
    assert fast_sink.values in ([2], [2, 4])
    cli.execute("delete 1")
    ev = dbg.cont()
    assert ev.kind == StopKind.EXITED
    assert fast_sink.values == [2, 4]
    assert slow_sink.values == [9, 12, 15]
