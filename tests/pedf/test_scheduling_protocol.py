"""The §IV-B step protocol: START / WAIT_INIT / SYNC / WAIT_SYNC."""

import pytest

from repro.cminus.typesys import U32
from repro.p2012.soc import P2012Platform, PlatformConfig
from repro.pedf import (
    ControllerDecl,
    FilterDecl,
    ModuleDecl,
    ProgramDecl,
    SYM_ACTOR_START,
    SYM_WAIT_INIT,
    SYM_WAIT_SYNC,
    SYM_WORK_ENTER,
    SYM_WORK_EXIT,
)
from repro.pedf.runtime import PedfRuntime
from repro.sim import Scheduler


def build(controller_src, filter_srcs, max_steps=1, sources=None, sinks=None):
    program = ProgramDecl(name="proto")
    mod = ModuleDecl(name="m")
    ctl = ControllerDecl(name="controller", source=controller_src, source_name="ctl.c",
                         max_steps=max_steps)
    mod.set_controller(ctl)
    for name, src, ifaces in filter_srcs:
        f = FilterDecl(name=name, source=src, source_name=f"{name}.c")
        for iname, direction in ifaces:
            f.add_iface(iname, direction, U32)
        mod.add_filter(f)
    return program, mod


def run_with_events(program, mod, attach=None):
    sched = Scheduler()
    platform = P2012Platform(sched, PlatformConfig(n_clusters=1, pes_per_cluster=8))
    runtime = PedfRuntime(sched, platform, program)
    if attach:
        attach(runtime)
    events = []
    runtime.bus.subscribe("*", lambda e: events.append(e) or None)
    runtime.load()
    stop = sched.run()
    return runtime, sched, stop, events


def test_wait_init_blocks_until_filters_begin():
    """The controller's WAIT_FOR_ACTOR_INIT exit event must come after
    every started filter's WORK_ENTER."""
    ctl = """
    void work() {
        ACTOR_START(a);
        ACTOR_START(b);
        WAIT_FOR_ACTOR_INIT();
        ACTOR_SYNC(a);
        ACTOR_SYNC(b);
        WAIT_FOR_ACTOR_SYNC();
    }
    """
    filters = [
        ("a", "void work() { U32 x = 1; }", []),
        ("b", "void work() { U32 x = 2; }", []),
    ]
    program, mod = build(ctl, filters)
    mod.add_iface("dummy_in", "input", U32)  # keep module well-formed shape
    p = ProgramDecl(name="proto2")
    p.add_module(mod)
    runtime, sched, stop, events = run_with_events(p, mod)
    assert runtime.classify_stop(stop) == "exited"

    def idx(symbol, phase):
        return next(i for i, e in enumerate(events) if e.symbol == symbol and e.phase == phase)

    wait_init_exit = idx(SYM_WAIT_INIT, "exit")
    enters = [i for i, e in enumerate(events) if e.symbol == SYM_WORK_ENTER and e.phase == "entry"]
    assert len(enters) == 2
    assert all(i < wait_init_exit for i in enters)
    # and WAIT_SYNC exits after both WORK_EXITs
    wait_sync_exit = idx(SYM_WAIT_SYNC, "exit")
    exits = [i for i, e in enumerate(events) if e.symbol == SYM_WORK_EXIT and e.phase == "entry"]
    assert all(i < wait_sync_exit for i in exits)


def test_double_start_queues_two_invocations():
    """A filter started twice in one step runs its WORK method twice —
    the 'run some parts of the graph at different rates' capability."""
    ctl = """
    void work() {
        ACTOR_START(a);
        ACTOR_START(a);
        ACTOR_SYNC(a);
        WAIT_FOR_ACTOR_SYNC();
    }
    """
    filters = [("a", "void work() { pedf.data.n = pedf.data.n + 1; }", [])]
    program = ProgramDecl(name="proto")
    mod = ModuleDecl(name="m")
    c = ControllerDecl(name="controller", source=ctl, source_name="ctl.c", max_steps=3)
    mod.set_controller(c)
    f = FilterDecl(name="a", source=filters[0][1], source_name="a.c")
    f.add_data("n", U32)
    mod.add_filter(f)
    program.add_module(mod)
    runtime, sched, stop, events = run_with_events(program, mod)
    assert runtime.classify_stop(stop) == "exited"
    inst = runtime.modules["m"].filters["a"]
    assert inst.works_done == 6  # 2 per step x 3 steps
    assert inst.data_store["n"].data == 6


def test_actor_start_events_carry_controller_and_target():
    ctl = "void work() { ACTOR_FIRE(a); WAIT_FOR_ACTOR_SYNC(); }"
    program = ProgramDecl(name="proto")
    mod = ModuleDecl(name="m")
    c = ControllerDecl(name="controller", source=ctl, source_name="ctl.c", max_steps=1)
    mod.set_controller(c)
    f = FilterDecl(name="a", source="void work() { }", source_name="a.c")
    mod.add_filter(f)
    program.add_module(mod)
    runtime, sched, stop, events = run_with_events(program, mod)
    starts = [e for e in events if e.symbol == SYM_ACTOR_START and e.phase == "entry"]
    assert len(starts) == 1
    assert starts[0].args == {"controller": "m.controller", "actor": "m.a"}
    assert starts[0].actor == "m.controller"


def test_unknown_actor_in_start_is_a_runtime_error():
    # bypass sema validation by constructing the controller without an
    # actor list check (call through a variable is impossible; instead we
    # exercise the runtime guard directly)
    from repro.errors import PedfError
    from repro.sim import StopKind

    ctl = "void work() { ACTOR_FIRE(a); WAIT_FOR_ACTOR_SYNC(); }"
    program = ProgramDecl(name="proto")
    mod = ModuleDecl(name="m")
    c = ControllerDecl(name="controller", source=ctl, source_name="ctl.c", max_steps=1)
    mod.set_controller(c)
    f = FilterDecl(name="a", source="void work() { }", source_name="a.c")
    mod.add_filter(f)
    program.add_module(mod)
    sched = Scheduler()
    platform = P2012Platform(sched, PlatformConfig(n_clusters=1, pes_per_cluster=4))
    runtime = PedfRuntime(sched, platform, program)
    # sabotage after compile: remove the filter from the live module
    runtime.load()
    del runtime.modules["m"].filters["a"]
    stop = sched.run()
    assert stop.kind == StopKind.PROCESS_ERROR
    assert isinstance(stop.payload, PedfError)


def test_filters_idle_between_steps():
    """Without ACTOR_START a filter never runs, even with data waiting."""
    ctl = "void work() { }"  # schedules nothing
    program = ProgramDecl(name="proto")
    mod = ModuleDecl(name="m")
    c = ControllerDecl(name="controller", source=ctl, source_name="ctl.c", max_steps=2)
    mod.set_controller(c)
    f = FilterDecl(name="a", source="void work() { U32 v = pedf.io.i[0]; }", source_name="a.c")
    f.add_iface("i", "input", U32)
    mod.add_filter(f)
    mod.add_iface("min_", "input", U32)
    mod.bind("this", "min_", "a", "i")
    program.add_module(mod)
    sched = Scheduler()
    platform = P2012Platform(sched, PlatformConfig(n_clusters=1, pes_per_cluster=4))
    runtime = PedfRuntime(sched, platform, program)
    runtime.add_source("s", "m", "min_", [1, 2, 3])
    runtime.load()
    stop = sched.run()
    assert runtime.classify_stop(stop) == "exited"
    inst = runtime.modules["m"].filters["a"]
    assert inst.works_done == 0
    # the data is still parked on the link
    link = next(l for l in runtime.links if l.dst and l.dst.qualname == "a::i")
    assert link.occupancy == 3
