"""Long-sequence decoder validation against a vectorized numpy golden."""

import numpy as np

from repro.apps.h264 import build_decoder, make_macroblocks
from repro.apps.h264.golden import decode_golden

MASK16 = 0xFFFF


def vectorized_golden(mbs):
    """The whole golden pipeline as numpy array arithmetic."""
    headers = np.array([mb.header for mb in mbs], dtype=np.uint64)
    residuals = np.array([mb.residuals for mb in mbs], dtype=np.uint64)
    mb_type = headers & 0xFF
    qp = (headers >> 8) & 0xFF
    rsum = residuals.sum(axis=1) & MASK16
    izz = (rsum * 3 + 1) & 0xFFFFFFFF
    addr = (0x1400 + np.arange(len(mbs), dtype=np.uint64)) & 0xFFFFFFFF
    ctl = (izz & MASK16) | (mb_type << 16)
    pred = ((ctl & MASK16) + qp * 4) & MASK16
    pred_mb = (pred * 3 + 7) & MASK16
    recon = (rsum + pred_mb) & MASK16
    decoded = (pred + recon + (addr & 0xF)) & MASK16
    return decoded.astype(np.int64)


def test_vectorized_golden_matches_scalar_golden():
    mbs = make_macroblocks(200)
    scalar = np.array([g.decoded for g in decode_golden(mbs)])
    assert np.array_equal(vectorized_golden(mbs), scalar)


def test_decoder_matches_numpy_golden_long_sequence():
    mbs = make_macroblocks(120)
    sched, platform, runtime, source, sink, _ = build_decoder(mbs=mbs)
    runtime.load()
    stop = sched.run()
    assert runtime.classify_stop(stop) == "exited"
    assert np.array_equal(np.array(sink.values), vectorized_golden(mbs))
    # sanity on the output signal statistics: 16-bit range, non-constant
    out = np.array(sink.values)
    assert out.min() >= 0 and out.max() <= MASK16
    assert out.std() > 0
