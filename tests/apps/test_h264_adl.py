"""The ADL route to the decoder is equivalent to the Python-API route."""

from repro.apps.h264 import decode_golden, encode_bitstream, make_macroblocks
from repro.apps.h264.adl import build_decoder_program_from_adl
from repro.apps.h264.app import build_decoder_program
from repro.p2012.soc import P2012Platform, PlatformConfig
from repro.pedf.compile import compile_program
from repro.pedf.runtime import PedfRuntime
from repro.sim import Scheduler


def test_adl_structurally_equivalent_to_python_api():
    adl_prog = build_decoder_program_from_adl()
    py_prog = build_decoder_program()
    compile_program(py_prog)
    assert set(adl_prog.modules) == set(py_prog.modules)
    for mname in py_prog.modules:
        am, pm = adl_prog.modules[mname], py_prog.modules[mname]
        assert set(am.filters) == set(pm.filters)
        assert {(str(b.src), str(b.dst), b.capacity) for b in am.bindings} == {
            (str(b.src), str(b.dst), b.capacity) for b in pm.bindings
        }
        for fname, pf in pm.filters.items():
            af = am.filters[fname]
            assert set(af.ifaces) == set(pf.ifaces)
            for iname in pf.ifaces:
                assert af.ifaces[iname].ctype == pf.ifaces[iname].ctype
                assert af.ifaces[iname].direction == pf.ifaces[iname].direction
            assert af.attributes == pf.attributes
            assert af.hw_accel == pf.hw_accel
            assert af.work_symbol == pf.work_symbol
    assert {(str(b.src), str(b.dst), b.capacity, b.dma) for b in adl_prog.bindings} == {
        (str(b.src), str(b.dst), b.capacity, b.dma) for b in py_prog.bindings
    }


def test_adl_decoder_produces_identical_output():
    mbs = make_macroblocks(6, mb_types=(5, 10, 15))
    sched = Scheduler()
    platform = P2012Platform(sched, PlatformConfig(n_clusters=2, pes_per_cluster=8))
    program = build_decoder_program_from_adl(max_steps=len(mbs))
    runtime = PedfRuntime(sched, platform, program)
    runtime.add_source("stream", "front", "stream_in", encode_bitstream(mbs))
    sink = runtime.add_sink("display", "pred", "decoded_out", expect=len(mbs))
    runtime.load()
    stop = sched.run()
    assert runtime.classify_stop(stop) == "exited"
    assert sink.values == [g.decoded for g in decode_golden(mbs)]
    # the hwaccel annotation mapped ipf onto an accelerator
    assert runtime.modules["pred"].filters["ipf"].resource.kind == "HardwareAccelerator"
