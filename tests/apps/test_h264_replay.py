"""Acceptance: a full replay of a 40-macroblock H.264 decode reproduces
the live run's token-seq stream exactly (the ISSUE's determinism bar)."""

from repro.apps.h264 import build_decoder, make_macroblocks
from repro.core import DataflowSession
from repro.dbg import Debugger, StopKind


def test_replay_reproduces_40_macroblock_decode():
    mbs = make_macroblocks(40)

    def fresh():
        sched, platform, runtime, source, sink, _ = build_decoder(mbs=mbs)
        return DataflowSession(Debugger(sched, runtime))

    session = fresh()
    session.replay.register_builder(fresh)
    mgr = session.replay
    mgr.record_on(interval=128)

    ev = session.dbg.run()
    while ev.kind not in (StopKind.EXITED, StopKind.DEADLOCK, StopKind.ERROR):
        ev = session.dbg.cont()
    assert ev.kind == StopKind.EXITED

    live_stream = mgr.master.token_stream()
    live_decoded = [t.value for t in session.dbg.runtime.sinks[0].received]
    assert len(live_decoded) == 40
    assert len(live_stream) > 40
    assert mgr.master.checkpoints, "decode too short to cross a checkpoint boundary"

    ev = mgr.replay_to("end")
    assert ev.kind == StopKind.REPLAY
    rec = mgr.recorder
    assert rec.divergence is None
    # the replayed token-seq stream is exactly the recorded one
    assert rec.journal.token_stream() == live_stream
    # and the self-check verified every event and en-route checkpoint
    assert rec.events_compared == mgr.master.total_events
    assert rec.checkpoints_verified > 0
