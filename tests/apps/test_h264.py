"""The H.264-like decoder: correctness against the golden model, and the
three §VI bug variants."""

import pytest

from repro.apps.h264 import (
    build_decoder,
    decode_golden,
    encode_bitstream,
    make_macroblocks,
)
from repro.apps.h264.bugs import (
    build_corrupted_token,
    build_dropped_token,
    build_rate_mismatch,
)
from repro.sim import StopKind


def test_bitstream_roundtrip_shape():
    mbs = make_macroblocks(6, mb_types=(5, 10, 15))
    words = encode_bitstream(mbs)
    assert len(words) == 6 * 5
    assert [mb.mb_type for mb in mbs[:3]] == [5, 10, 15]
    # deterministic
    again = make_macroblocks(6, mb_types=(5, 10, 15))
    assert encode_bitstream(again) == words


def test_decoder_matches_golden_model():
    sched, platform, runtime, source, sink, mbs = build_decoder(n_mbs=8)
    runtime.load()
    stop = sched.run()
    assert runtime.classify_stop(stop) == "exited"
    golden = decode_golden(mbs)
    assert sink.values == [g.decoded for g in golden]


def test_decoder_longer_sequence():
    sched, platform, runtime, source, sink, mbs = build_decoder(n_mbs=40)
    runtime.load()
    stop = sched.run()
    assert runtime.classify_stop(stop) == "exited"
    golden = decode_golden(mbs)
    assert sink.values == [g.decoded for g in golden]
    # every filter fired once per macroblock
    for name in ("vlc", "hwcfg", "bh"):
        assert runtime.modules["front"].filters[name].works_done == 40
    for name in ("red", "pipe", "ipred", "mc", "ipf"):
        assert runtime.modules["pred"].filters[name].works_done == 40


def test_intermediate_tokens_match_golden():
    """Check a mid-pipeline link, not just the output."""
    sched, platform, runtime, source, sink, mbs = build_decoder(n_mbs=5)
    seen = []
    from repro.pedf import SYM_PUSH

    runtime.bus.subscribe(
        SYM_PUSH,
        lambda e: seen.append(e.args["value"]) or None,
        actor="front.bh",
        phase="entry",
    )
    runtime.load()
    sched.run()
    golden = decode_golden(mbs)
    assert seen == [g.rsum for g in golden]


def test_cbcr_struct_tokens():
    sched, platform, runtime, source, sink, mbs = build_decoder(n_mbs=3)
    cbcrs = []
    from repro.pedf import SYM_PUSH

    runtime.bus.subscribe(
        SYM_PUSH,
        lambda e: cbcrs.append(e.args["value"]) if e.args["iface"] == "Red2PipeCbMB_out" else None,
        actor="pred.red",
        phase="entry",
    )
    runtime.load()
    sched.run()
    golden = decode_golden(mbs)
    assert cbcrs == [
        {"Addr": g.cbcr_addr, "InterNotIntra": g.cbcr_inter, "Izz": g.cbcr_izz} for g in golden
    ]
    assert cbcrs[0]["Addr"] == 0x1400


def test_ipf_runs_on_hardware_accelerator():
    sched, platform, runtime, source, sink, mbs = build_decoder(n_mbs=2)
    ipf = runtime.modules["pred"].filters["ipf"]
    assert ipf.resource.kind == "HardwareAccelerator"


def test_hwcfg_to_ipred_link_is_dma_assisted():
    sched, platform, runtime, *_ = build_decoder(n_mbs=2)
    link = next(l for l in runtime.links if l.src and l.src.qualname == "hwcfg::HwCfg_out")
    assert link.dma_assisted


def test_mbtype_values_reproduce_paper_transcript():
    """hwcfg::pipe_MbType_out carries 5, 10, 15 (§VI-D recording)."""
    sched, platform, runtime, source, sink, mbs = build_decoder(n_mbs=3)
    runtime.load()
    sched.run()
    assert [mb.mb_type for mb in mbs] == [5, 10, 15]


# ------------------------------------------------------------ bug variants


def test_rate_mismatch_reproduces_fig4_state():
    sched, platform, runtime, source, sink, mbs = build_rate_mismatch(n_mbs=24)
    runtime.load()
    stop = sched.run()
    assert runtime.classify_stop(stop) == "deadlock"
    pipe_ipf = next(l for l in runtime.links if l.src and l.src.qualname == "pipe::Pipe_ipf_out")
    hwcfg_pipe = next(
        l for l in runtime.links if l.src and l.src.qualname == "hwcfg::pipe_MbType_out"
    )
    assert pipe_ipf.occupancy == 20  # Fig. 4: "currently holds 20 tokens"
    assert hwcfg_pipe.occupancy == 3  # Fig. 4: "contains three tokens"
    # the pred-module internal data links are drained
    for spec in ("red::Red2PipeCbMB_out", "ipred::Add2Dblock_ipf_out", "mc::Ipf_out"):
        link = next(l for l in runtime.links if l.src and l.src.qualname == spec)
        assert link.occupancy == 0


def test_corrupted_token_diverges_from_golden():
    sched, platform, runtime, source, sink, mbs = build_corrupted_token(n_mbs=8, corrupt_at=5)
    runtime.load()
    stop = sched.run()
    assert runtime.classify_stop(stop) == "exited"
    good = decode_golden(mbs)
    buggy = decode_golden(mbs, corrupt_bh_at=range(5, 8))
    assert sink.values == [g.decoded for g in buggy]
    # output correct before the corruption point, wrong after
    assert sink.values[:5] == [g.decoded for g in good[:5]]
    assert sink.values[5:] != [g.decoded for g in good[5:]]


def test_dropped_token_deadlocks_and_injection_unties():
    sched, platform, runtime, source, sink, mbs = build_dropped_token(n_mbs=6)
    runtime.load()
    stop = sched.run()
    assert runtime.classify_stop(stop) == "deadlock"
    ipred = runtime.modules["pred"].filters["ipred"]
    assert ipred.blocked
    assert len(sink.received) == 5  # stalled before the last macroblock
    # inject the missing configuration token and finish the sequence
    link = next(l for l in runtime.links if l.src and l.src.qualname == "hwcfg::HwCfg_out")
    link.inject(mbs[5].header, seq=runtime.next_seq())
    stop = sched.run()
    assert runtime.classify_stop(stop) in ("exited", "deadlock")
    golden = decode_golden(mbs)
    assert sink.values == [g.decoded for g in golden]


def test_dropped_token_mid_stream_shifts_headers():
    """Dropping an early header makes later macroblocks consume the wrong
    configuration — the erratic-results failure mode of §II."""
    sched, platform, runtime, source, sink, mbs = build_dropped_token(n_mbs=6, drop_at=2)
    runtime.load()
    stop = sched.run()
    assert runtime.classify_stop(stop) == "deadlock"
    golden = decode_golden(mbs)
    # mbs before the drop decode correctly; the one at the drop uses the
    # NEXT header's qp, so it diverges
    assert sink.values[:2] == [g.decoded for g in golden[:2]]
    assert sink.values[2] != golden[2].decoded
