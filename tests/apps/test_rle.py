"""Dynamic-rate dataflow: the run-length codec round trip."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.rle import build_rle_pipeline, rle_decode, rle_encode
from repro.apps.rle.app import TERMINATOR
from repro.sim import StopKind


def run_pipeline(values):
    sched, runtime, sink = build_rle_pipeline(values)
    runtime.load()
    stop = sched.run()
    assert runtime.classify_stop(stop) == "exited", stop
    out = sink.values
    assert out[-1] == TERMINATOR
    return out[:-1], runtime


def test_reference_codec():
    assert rle_encode([7, 7, 7, 2]) == [3, 7, 1, 2, TERMINATOR]
    assert rle_decode([3, 7, 1, 2, TERMINATOR]) == [7, 7, 7, 2]
    assert rle_encode([]) == [TERMINATOR]


def test_round_trip_simple():
    values = [5, 5, 5, 9, 9, 1, 1, 1, 1]
    out, runtime = run_pipeline(values)
    assert out == values


def test_single_long_run():
    values = [42] * 37
    out, runtime = run_pipeline(values)
    assert out == values
    # one WORK invocation consumed the whole run: dynamic rates in action
    pack = runtime.modules["codec"].filters["pack"]
    assert pack.works_done == 2  # the run + the terminator step


def test_alternating_values_many_runs():
    values = [1, 2] * 10
    out, runtime = run_pipeline(values)
    assert out == values
    pack = runtime.modules["codec"].filters["pack"]
    assert pack.works_done == 21  # 20 runs + terminator


def test_data_dependent_production_counts():
    values = [3, 3, 3, 3, 8]
    out, runtime = run_pipeline(values)
    assert out == values
    expand = runtime.modules["codec"].filters["expand"]
    assert expand.data_store["total"].data == len(values)
    # the inner link carried 2 tokens per run + 1 terminator
    inner = next(l for l in runtime.links if "pack::o" in l.name)
    assert inner.total_pushed == 2 * 2 + 1


def test_terminator_in_input_rejected():
    with pytest.raises(ValueError):
        build_rle_pipeline([1, TERMINATOR])


@settings(max_examples=25, deadline=None)
@given(
    values=st.lists(st.integers(min_value=0, max_value=5), min_size=0, max_size=40)
)
def test_property_round_trip_identity(values):
    """Whatever the run structure, encoder→decoder over PEDF is identity
    and matches the reference codec."""
    assert rle_decode(rle_encode(values)) == values
    out, _ = run_pipeline(values)
    assert out == values
