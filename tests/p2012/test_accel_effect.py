"""Hardware accelerators change simulated cost, not behaviour."""

from repro.apps.h264.app import build_decoder
from repro.p2012.soc import PlatformConfig


def decode_cycles(pe_cost, accel_cost):
    cfg = PlatformConfig(
        n_clusters=2, pes_per_cluster=8,
        pe_cycles_per_stmt=pe_cost, accel_cycles_per_stmt=accel_cost,
    )
    sched, platform, runtime, source, sink, mbs = build_decoder(n_mbs=6, platform_config=cfg)
    runtime.load()
    stop = sched.run()
    assert runtime.classify_stop(stop) == "exited"
    return sched.now, sink.values


def test_accelerated_ipf_reduces_simulated_time():
    slow_cycles, slow_out = decode_cycles(pe_cost=4, accel_cost=4)
    fast_cycles, fast_out = decode_cycles(pe_cost=4, accel_cost=1)
    assert fast_out == slow_out  # identical results
    assert fast_cycles < slow_cycles  # ipf (hw_accel) runs cheaper


def test_statement_cost_scales_simulated_time():
    c1, out1 = decode_cycles(pe_cost=1, accel_cost=1)
    c4, out4 = decode_cycles(pe_cost=4, accel_cost=4)
    assert out1 == out4
    assert c4 > c1
