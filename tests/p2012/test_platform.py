import pytest

from repro.errors import PlatformError
from repro.p2012 import (
    DmaController,
    HostCpu,
    Memory,
    MemoryLevel,
    P2012Platform,
    PlatformConfig,
)
from repro.sim import Delay, Scheduler, StopKind


def make_platform(**kwargs):
    sched = Scheduler()
    return sched, P2012Platform(sched, PlatformConfig(**kwargs))


def test_default_topology_matches_fig1_shape():
    _, plat = make_platform()
    report = plat.topology_report()
    assert report["total_pes"] == 64
    assert len(report["clusters"]) == 4
    assert all(c["pes"] == 16 for c in report["clusters"])
    assert report["host"]["name"] == "host_arm"
    assert len(report["dma"]) == 2


def test_memory_latency_hierarchy_increases():
    _, plat = make_platform()
    l1 = plat.clusters[0].l1
    assert l1.read_latency < plat.l2.read_latency < plat.l3.read_latency


def test_allocate_pe_round_robin_until_exhausted():
    _, plat = make_platform(n_clusters=1, pes_per_cluster=2)
    a = plat.allocate_pe()
    a.occupant = "actorA"
    b = plat.allocate_pe()
    b.occupant = "actorB"
    assert a is not b
    with pytest.raises(PlatformError):
        plat.allocate_pe()


def test_allocate_pe_pinned_cluster():
    _, plat = make_platform(n_clusters=2, pes_per_cluster=1)
    pe = plat.allocate_pe(cluster_index=1)
    assert pe.cluster.index == 1


def test_link_cost_levels():
    _, plat = make_platform()
    pe_a = plat.clusters[0].pes[0]
    pe_b = plat.clusters[0].pes[1]
    pe_c = plat.clusters[1].pes[0]
    intra = plat.link_cost(pe_a, pe_b)
    inter = plat.link_cost(pe_a, pe_c)
    hostl = plat.link_cost(plat.host, pe_a)
    assert intra.memory.level == MemoryLevel.L1
    assert inter.memory.level == MemoryLevel.L2
    assert hostl.memory.level == MemoryLevel.L3
    assert not intra.dma_assisted and not inter.dma_assisted
    assert hostl.dma_assisted
    assert intra.push_cycles < inter.push_cycles < hostl.push_cycles


def test_accelerator_allocation():
    _, plat = make_platform()
    acc = plat.allocate_accelerator("ipf_hw", cluster_index=2)
    assert acc.cluster.index == 2
    assert acc in plat.clusters[2].accelerators
    assert acc.controlling_pe is plat.clusters[2].pes[0]
    # accelerator-to-PE link within same cluster is L1
    cost = plat.link_cost(acc, plat.clusters[2].pes[3])
    assert cost.memory.level == MemoryLevel.L1


def test_memory_counters():
    mem = Memory("m", MemoryLevel.L1, 256, 2, 3)
    assert mem.read_cost(4) == 8
    assert mem.write_cost(2) == 6
    assert mem.reads == 4 and mem.writes == 2
    assert mem.accesses == 6
    mem.reset_counters()
    assert mem.accesses == 0


def test_dma_transfer_cost_and_stats():
    sched = Scheduler()
    dma = DmaController(sched, setup_cycles=10, cycles_per_word=2)
    assert dma.transfer_cost(5) == 20
    done = []

    def proc():
        yield from dma.transfer(5)
        done.append(sched.now)

    sched.spawn(proc(), "p")
    stop = sched.run()
    assert stop.kind == StopKind.EXHAUSTED
    assert done == [20]
    assert dma.stats.transfers == 1
    assert dma.stats.words_moved == 5


def test_dma_contention_serializes():
    sched = Scheduler()
    dma = DmaController(sched, setup_cycles=10, cycles_per_word=0)
    finish = {}

    def proc(tag):
        yield from dma.transfer(1)
        finish[tag] = sched.now

    sched.spawn(proc("a"), "a")
    sched.spawn(proc("b"), "b")
    sched.run()
    # both issue at t=0; the second must wait for the first
    assert finish["a"] == 10
    assert finish["b"] == 20


def test_dma_idle_gap_does_not_accumulate():
    sched = Scheduler()
    dma = DmaController(sched, setup_cycles=10, cycles_per_word=0)
    finish = []

    def proc():
        yield from dma.transfer(1)
        yield Delay(100)  # long idle gap
        yield from dma.transfer(1)
        finish.append(sched.now)

    sched.spawn(proc(), "p")
    sched.run()
    assert finish == [120]  # 10 + 100 + 10, no stale backlog


def test_invalid_config_rejected():
    sched = Scheduler()
    with pytest.raises(PlatformError):
        P2012Platform(sched, PlatformConfig(n_clusters=0))
