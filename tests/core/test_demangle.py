"""§VI-F: mapping mangled framework symbols back to dataflow entities."""

import pytest

from repro.apps.h264.app import build_decoder
from repro.core import DataflowSession
from repro.dbg import CommandCli, Debugger
from repro.errors import DataflowDebugError


def make():
    sched, platform, runtime, source, sink, mbs = build_decoder(n_mbs=1)
    dbg = Debugger(sched, runtime)
    cli = CommandCli(dbg)
    session = DataflowSession(dbg, cli=cli, stop_on_init=True)
    dbg.run()
    return cli, session


def test_demangle_work_symbols():
    cli, session = make()
    assert session.demangle("IpfFilter_work_function") == (
        "WORK method of filter `pred.ipf'"
    )
    assert session.demangle("_component_PredModule_anon_0_work") == (
        "WORK method of controller `pred.pred_controller'"
    )
    out = cli.execute("dataflow demangle IpredFilter_work_function")
    assert out == ["WORK method of filter `pred.ipred'"]


def test_demangle_unknown_symbol():
    cli, session = make()
    with pytest.raises(DataflowDebugError):
        session.demangle("totally_unknown_symbol")
    out = cli.execute("dataflow demangle nope")
    assert out[0].startswith("error:")


def test_demangle_helper_symbol():
    """Helper functions carry the actor prefix and demangle to it."""
    from repro.cminus.typesys import U32
    from repro.p2012.soc import P2012Platform, PlatformConfig
    from repro.pedf import ControllerDecl, FilterDecl, ModuleDecl, ProgramDecl
    from repro.pedf.runtime import PedfRuntime
    from repro.sim import Scheduler

    program = ProgramDecl(name="p")
    mod = ModuleDecl(name="m")
    mod.set_controller(ControllerDecl(
        name="controller", max_steps=0,
        source="void work() { }"))
    f = FilterDecl(name="ipf", source="""
        U32 clamp16(U32 x) { return x & 0xFFFF; }
        void work() { pedf.io.o[0] = clamp16(pedf.io.i[0]); }
    """, source_name="ipf.c")
    f.add_iface("i", "input", U32)
    f.add_iface("o", "output", U32)
    mod.add_filter(f)
    mod.add_iface("min_", "input", U32)
    mod.add_iface("mout", "output", U32)
    mod.bind("this", "min_", "ipf", "i")
    mod.bind("ipf", "o", "this", "mout")
    program.add_module(mod)
    sched = Scheduler()
    platform = P2012Platform(sched, PlatformConfig(n_clusters=1, pes_per_cluster=4))
    runtime = PedfRuntime(sched, platform, program)
    dbg = Debugger(sched, runtime)
    session = DataflowSession(dbg, stop_on_init=True)
    dbg.run()
    assert session.demangle("IpfFilter_clamp16") == "helper `clamp16' of filter `m.ipf'"
