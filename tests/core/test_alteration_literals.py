"""Nested value literals, drop accounting and record idempotence (§III, §VI-D)."""

import pytest

from repro.cminus.typesys import S32, U32, ArrayType, StructType
from repro.core import parse_value_literal
from repro.core.model import DbgToken
from repro.core.record import TokenRecorder
from repro.errors import DataflowDebugError

from .util import make_session

NESTED = StructType(
    name="T", fields=(("a", ArrayType(elem=S32, size=3)), ("b", S32))
)


# ------------------------------------------------------- nested literal parsing


def test_struct_with_array_field_parses():
    assert parse_value_literal("{a=[1, 2, 3], b=5}", NESTED) == {"a": [1, 2, 3], "b": 5}


def test_nested_literal_defaults_missing_elements():
    assert parse_value_literal("{a=[7], b=2}", NESTED) == {"a": [7, 0, 0], "b": 2}
    assert parse_value_literal("{b=2}", NESTED) == {"a": [0, 0, 0], "b": 2}


def test_array_of_structs_parses():
    point = StructType(name="P", fields=(("x", S32), ("y", S32)))
    ctype = ArrayType(elem=point, size=2)
    assert parse_value_literal("[{x=1, y=2}, {x=3}]", ctype) == [
        {"x": 1, "y": 2},
        {"x": 3, "y": 0},
    ]


def test_struct_in_struct_parses():
    inner = StructType(name="I", fields=(("v", U32),))
    outer = StructType(name="O", fields=(("i", inner), ("n", U32)))
    assert parse_value_literal("{i={v=0x10}, n=3}", outer) == {"i": {"v": 16}, "n": 3}


def test_unbalanced_brackets_rejected():
    with pytest.raises(DataflowDebugError, match="unbalanced"):
        parse_value_literal("{a=[1, 2, b=5}", NESTED)
    with pytest.raises(DataflowDebugError, match="unbalanced"):
        parse_value_literal("{a=1], b=5}", NESTED)


def test_unknown_field_rejected():
    with pytest.raises(DataflowDebugError, match="no field"):
        parse_value_literal("{c=1}", NESTED)


# -------------------------------------------------- round-trip through the CLI


def test_nested_literal_round_trips_through_insert_and_poke():
    session, cli, dbg, runtime, sink = make_session([5], stop_on_init=True)
    dbg.run()
    link = runtime.find_iface("stim::out").link
    link.ctype = NESTED
    out = cli.execute("iface stim::out insert {a=[1, 2, 3], b=5}")
    assert out[0].startswith("Token inserted on `stim::out'")
    assert link.tokens()[-1].value == {"a": [1, 2, 3], "b": 5}
    idx = link.occupancy - 1
    cli.execute(f"iface stim::out poke {idx} {{a=[9, 8], b=1}}")
    assert link.tokens()[-1].value == {"a": [9, 8, 0], "b": 1}


# --------------------------------------------------------------- drop purging


def test_drop_purges_debugger_model():
    session, cli, dbg, runtime, sink = make_session([5], stop_on_init=True)
    dbg.run()
    token = session.alter.insert("stim::out", "42")
    assert token.seq in session.model.tokens
    dbg_tok = session.model.tokens[token.seq]
    dbg_link = session.model.find_connection("stim::out").link
    assert dbg_tok in dbg_link.in_flight

    session.alter.drop("stim::out", dbg_link.in_flight.index(dbg_tok))
    assert token.seq not in session.model.tokens
    assert dbg_tok not in dbg_link.in_flight
    assert not dbg_tok.in_flight  # lingering references read as consumed
    assert dbg_tok.consumed_by == "<dropped>"
    assert dbg_link.total_dropped == 1
    report = "\n".join(session.links_report())
    assert "dropped 1" in report


def test_insert_mirror_gated_on_narrowed_capture():
    session, cli, dbg, runtime, sink = make_session([5], stop_on_init=True)
    dbg.run()
    session.capture.set_data_mode("none")
    token = session.alter.insert("stim::out", "42")
    # runtime link holds the token, but the model must not grow a phantom
    # in-flight entry whose pop will never be observed
    assert any(t.seq == token.seq for t in runtime.find_iface("stim::out").link.tokens())
    assert token.seq not in session.model.tokens


# -------------------------------------------------------- record idempotence


def _tok(seq):
    return DbgToken(seq=seq, value=seq, ctype_name="U32", src_actor="a",
                    dst_actor="b", src_iface="a::o", dst_iface="b::i")


def test_record_enable_is_idempotent():
    rec = TokenRecorder()
    buf = rec.enable("f::out", 4)
    for i in range(5):
        buf.append(_tok(i))
    assert [t.seq for t in buf.entries] == [1, 2, 3, 4]
    assert buf.dropped == 1 and buf.recorded == 5

    again = rec.enable("f::out")
    assert again is buf
    assert [t.seq for t in again.entries] == [1, 2, 3, 4]
    assert again.recorded == 5 and again.dropped == 1


def test_record_enable_resize_trims_oldest_into_dropped():
    rec = TokenRecorder()
    buf = rec.enable("f::out", 4)
    for i in range(4):
        buf.append(_tok(i))
    shrunk = rec.enable("f::out", 2)
    assert shrunk is buf
    assert [t.seq for t in buf.entries] == [2, 3]
    assert buf.dropped == 2
    grown = rec.enable("f::out", 8)
    assert grown is buf and buf.capacity == 8
    assert [t.seq for t in buf.entries] == [2, 3]
