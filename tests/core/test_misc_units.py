"""Small-unit coverage: stop rendering, DOT options, trace limits,
token formatting."""

from repro.cminus.typesys import U16, U32
from repro.core.dot import render_dot
from repro.core.model import DataflowModel, DbgActor, DbgConnection, DbgLink, DbgToken
from repro.dbg.stop import StopEvent, StopKind
from repro.pedf.tokens import Token
from repro.sim import TraceRecorder


def test_stop_event_descriptions():
    cases = {
        StopKind.BREAKPOINT: StopEvent(StopKind.BREAKPOINT, actor="a", filename="f.c", line=3, bp_id=1),
        StopKind.WATCHPOINT: StopEvent(StopKind.WATCHPOINT, "x: old = 1, new = 2", actor="a", bp_id=2),
        StopKind.FUNCTION_BP: StopEvent(StopKind.FUNCTION_BP, "f", actor="a", bp_id=3),
        StopKind.API_BP: StopEvent(StopKind.API_BP, "entry pedf_rt_push", bp_id=4),
        StopKind.FINISH: StopEvent(StopKind.FINISH, "f returned 3", actor="a"),
        StopKind.STEP: StopEvent(StopKind.STEP, actor="a", filename="f.c", line=9),
        StopKind.TRAP: StopEvent(StopKind.TRAP, actor="a"),
        StopKind.DATAFLOW: StopEvent(StopKind.DATAFLOW, "[Stopped ...]"),
        StopKind.DEADLOCK: StopEvent(StopKind.DEADLOCK, "blocked actors: x"),
        StopKind.EXITED: StopEvent(StopKind.EXITED, "done"),
        StopKind.ERROR: StopEvent(StopKind.ERROR, "boom", actor="a"),
        StopKind.PAUSED: StopEvent(StopKind.PAUSED, "interrupted"),
    }
    for kind, ev in cases.items():
        lines = ev.describe()
        assert lines and all(isinstance(l, str) for l in lines), kind
    assert "Breakpoint 1" in cases[StopKind.BREAKPOINT].describe()[0]
    assert "[Program exited: done]" == cases[StopKind.EXITED].describe()[0]
    no_msg = StopEvent(StopKind.EXITED)
    assert no_msg.describe() == ["[Program exited]"]


def make_tiny_model():
    model = DataflowModel()
    model.program_name = "tiny"
    a = model.add_actor(DbgActor(name="a", qualname="m.a", module="m", kind="filter"))
    b = model.add_actor(DbgActor(name="b", qualname="m.b", module="m", kind="filter"))
    out = DbgConnection(actor=a, name="o", direction="output", ctype_name="U32")
    inp = DbgConnection(actor=b, name="i", direction="input", ctype_name="U32")
    a.outbound["o"] = out
    b.inbound["i"] = inp
    link = model.add_link(DbgLink(src=out, dst=inp))
    return model, link


def test_dot_without_counts():
    model, link = make_tiny_model()
    link.in_flight.append(
        DbgToken(seq=1, value=5, ctype_name="U32", src_actor="a", dst_actor="b",
                 src_iface="a::o", dst_iface="b::i")
    )
    with_counts = render_dot(model)
    without = render_dot(model, include_counts=False)
    assert 'label="1"' in with_counts
    assert 'label="1"' not in without
    assert render_dot(model, title="custom").startswith('digraph "custom"')


def test_dbg_token_hop_formatting():
    t = DbgToken(seq=3, value={"Addr": 0x145D, "Izz": 9}, ctype_name="CbCrMB_t",
                 src_actor="red", dst_actor="pipe",
                 src_iface="red::o", dst_iface="pipe::i")
    assert t.format_hop() == "red -> pipe (CbCrMB_t) {Addr=0x145d, Izz=9}"
    t2 = DbgToken(seq=4, value=[1, 2], ctype_name="U8[2]", src_actor="x", dst_actor="y",
                  src_iface="x::o", dst_iface="y::i")
    assert t2.format_payload() == "{1, 2}"
    nested = DbgToken(seq=5, value={"m": {"q": 1}, "l": [1]}, ctype_name="S",
                      src_actor="x", dst_actor="y", src_iface="x::o", dst_iface="y::i")
    assert nested.format_payload() == "{m={...}, l=[...]}"


def test_runtime_token_str():
    tok = Token(value=7, ctype=U16, seq=2, src_iface="a::o", dst_iface="b::i")
    assert str(tok) == "#2 (U16) 7"


def test_trace_recorder_limit():
    tr = TraceRecorder(limit=2)
    for i in range(5):
        tr.record(i, "p", "k")
    assert len(tr.records) == 2
    assert tr.dropped == 3
    assert len(tr.of_kind("k")) == 2
    tr.clear()
    assert tr.records == [] and tr.dropped == 0
