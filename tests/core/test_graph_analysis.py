"""Graph-theoretic validation of the reconstruction (networkx).

The debugger's event-derived graph must be isomorphic to the declared
architecture — not just similar-looking.
"""

import networkx as nx

from repro.apps.h264.app import build_decoder
from repro.core import DataflowSession
from repro.dbg import Debugger


def build_graphs():
    sched, platform, runtime, source, sink, mbs = build_decoder(n_mbs=1)
    dbg = Debugger(sched, runtime)
    session = DataflowSession(dbg, stop_on_init=True)
    dbg.run()

    reconstructed = nx.MultiDiGraph()
    for actor in session.model.actors.values():
        reconstructed.add_node(actor.qualname, kind=actor.kind)
    for link in session.model.links:
        reconstructed.add_edge(
            link.src.actor.qualname, link.dst.actor.qualname, kind=link.kind
        )

    ground_truth = nx.MultiDiGraph()
    for actor in runtime.all_actors():
        ground_truth.add_node(actor.qualname, kind=actor.kind)
    for link in runtime.links:
        if link.src is not None and link.dst is not None:
            ground_truth.add_edge(
                link.src.actor.qualname, link.dst.actor.qualname, kind=link.kind
            )
    return reconstructed, ground_truth, session


def test_reconstruction_is_graph_identical():
    reconstructed, ground_truth, _ = build_graphs()
    assert set(reconstructed.nodes) == set(ground_truth.nodes)
    assert sorted(reconstructed.edges()) == sorted(ground_truth.edges())
    for node in reconstructed.nodes:
        assert reconstructed.nodes[node]["kind"] == ground_truth.nodes[node]["kind"]


def test_decoder_graph_is_a_dag_with_expected_flow():
    reconstructed, _, _ = build_graphs()
    flat = nx.DiGraph(reconstructed)
    assert nx.is_directed_acyclic_graph(flat)
    order = list(nx.topological_sort(flat))
    # sources first, sinks last, vlc before everything downstream
    assert order.index("host.stream") < order.index("front.vlc")
    assert order.index("front.vlc") < order.index("pred.ipf")
    assert order[-1] == "host.display"
    # the display is reachable from the bitstream
    assert nx.has_path(flat, "host.stream", "host.display")


def test_every_actor_lies_on_a_source_to_sink_path():
    reconstructed, _, _ = build_graphs()
    flat = nx.DiGraph(reconstructed)
    for node in flat.nodes:
        if node == "host.stream":
            continue
        assert nx.has_path(flat, "host.stream", node) or node.endswith("controller"), node
