"""Event journal + runtime configuration knobs."""

import pytest

from repro.errors import DataflowDebugError

from .util import make_session


def test_event_journal_via_cli():
    session, cli, dbg, runtime, sink = make_session([1, 2], stop_on_init=True)
    dbg.run()
    assert cli.execute("dataflow events on") == ["event journal enabled"]
    dbg.cont()
    out = cli.execute("dataflow events 5")
    assert len(out) == 5
    assert all("pedf_rt_" in line for line in out)
    assert cli.execute("dataflow events off") == ["event journal disabled"]


def test_journal_off_by_default():
    session, cli, dbg, runtime, sink = make_session([1], stop_on_init=True)
    dbg.run()
    with pytest.raises(DataflowDebugError):
        session.journal_tail()
    out = cli.execute("dataflow events")
    assert out[0].startswith("error:")


def test_journal_bounded():
    session, cli, dbg, runtime, sink = make_session([1, 2, 3], stop_on_init=True)
    dbg.run()
    session.enable_event_journal(limit=10)
    dbg.cont()
    assert len(session.journal) == 10  # capped


def test_runtime_max_steps_override():
    from repro.apps.amodule import build_amodule_program
    from repro.p2012.soc import P2012Platform, PlatformConfig
    from repro.pedf.runtime import PedfRuntime, RuntimeConfig
    from repro.sim import Scheduler

    sched = Scheduler()
    platform = P2012Platform(sched, PlatformConfig(n_clusters=1, pes_per_cluster=8))
    program = build_amodule_program(max_steps=10)
    runtime = PedfRuntime(sched, platform, program, RuntimeConfig(max_steps=2))
    runtime.add_source("s", "AModule", "module_in", [1, 2, 3, 4])
    sink = runtime.add_sink("k", "AModule", "module_out", expect=None)
    runtime.load()
    stop = sched.run()
    assert runtime.classify_stop(stop) == "exited"
    assert runtime.modules["AModule"].controller.step_no == 2
    assert len(sink.values) == 2


def test_source_with_period_spreads_pushes():
    from repro.apps.amodule import build_amodule_program
    from repro.p2012.soc import P2012Platform, PlatformConfig
    from repro.pedf.runtime import PedfRuntime
    from repro.sim import Scheduler

    def run(period):
        sched = Scheduler()
        platform = P2012Platform(sched, PlatformConfig(n_clusters=1, pes_per_cluster=8))
        program = build_amodule_program(max_steps=3)
        runtime = PedfRuntime(sched, platform, program)
        runtime.add_source("s", "AModule", "module_in", [1, 2, 3], period=period)
        runtime.add_sink("k", "AModule", "module_out", expect=3)
        runtime.load()
        sched.run()
        return sched.now

    assert run(period=500) > run(period=0)


def test_module_cluster_pinning():
    from repro.apps.h264.app import build_decoder

    sched, platform, runtime, source, sink, mbs = build_decoder(n_mbs=1)
    front = runtime.modules["front"]
    pred = runtime.modules["pred"]
    assert all(a.resource.cluster.index == 0 for a in front.actors())
    assert all(a.resource.cluster.index == 1 for a in pred.actors())
