"""step_both, execution alteration, overhead modes, DOT export."""

import pytest

from repro.core import parse_value_literal, render_dot
from repro.cminus.typesys import U8, U32, BOOL, ArrayType, StructType
from repro.dbg import StopKind
from repro.errors import DataflowDebugError

from .util import make_session


# ---------------------------------------------------------------- step_both


def test_step_both_stops_at_both_link_ends():
    session, cli, dbg, *_ = make_session([5], stop_on_init=True)
    dbg.run()
    # stop inside filter_1 right before the dataflow assignment (line 7)
    dbg.break_source("the_source.c:7", temporary=True, actor="AModule.filter_1")
    ev = dbg.cont()
    assert ev.line == 7
    out = cli.execute("step_both")
    assert out[0] == "[Temporary breakpoint inserted after input interface `filter_2::an_input']"
    assert out[1] == "[Temporary breakpoint inserted after output interface `filter_1::an_output`]"
    # first stop already happened (order is architecture-dependent)
    first = dbg.last_stop.message
    ev = dbg.cont()
    second = dbg.last_stop.message
    texts = {first, second}
    assert "[Stopped after sending token on `filter_1::an_output`]" in texts
    assert "[Stopped after receiving token from `filter_2::an_input']" in texts


def test_step_both_named_iface_without_source_scan():
    session, cli, dbg, *_ = make_session([5], stop_on_init=True)
    dbg.run()
    dbg.break_source("the_source.c:4", temporary=True, actor="AModule.filter_1")
    dbg.cont()
    msgs = session.step_both("an_output")
    assert len(msgs) == 2
    ev = dbg.cont()
    assert ev.kind == StopKind.DATAFLOW


def test_step_both_requires_dataflow_assignment_on_line():
    session, cli, dbg, *_ = make_session([5], stop_on_init=True)
    dbg.run()
    dbg.break_source("the_source.c:5", temporary=True, actor="AModule.filter_1")
    dbg.cont()
    with pytest.raises(DataflowDebugError) as e:
        session.step_both()
    assert "no dataflow assignment" in str(e.value)


def test_step_both_rejects_input_iface():
    session, cli, dbg, *_ = make_session([5], stop_on_init=True)
    dbg.run()
    dbg.break_source("the_source.c:4", temporary=True, actor="AModule.filter_1")
    dbg.cont()
    with pytest.raises(DataflowDebugError):
        session.step_both("an_input")


# ------------------------------------------------------------- alteration


def test_value_literal_parsing():
    assert parse_value_literal("42", U32) == 42
    assert parse_value_literal("0x1F", U32) == 0x1F
    assert parse_value_literal("-1", U32) == 2**32 - 1
    assert parse_value_literal("true", BOOL) is True
    st = StructType("P", (("a", U32), ("b", U8)))
    assert parse_value_literal("{a=1, b=0x2}", st) == {"a": 1, "b": 2}
    assert parse_value_literal("{b=3}", st) == {"a": 0, "b": 3}
    at = ArrayType(elem=U8, size=3)
    assert parse_value_literal("[1,2]", at) == [1, 2, 0]
    with pytest.raises(DataflowDebugError):
        parse_value_literal("{c=1}", st)
    with pytest.raises(DataflowDebugError):
        parse_value_literal("nope", U32)
    with pytest.raises(DataflowDebugError):
        parse_value_literal("[1,2,3,4]", at)


def test_insert_token_unties_deadlock():
    """The paper's headline alteration scenario, end to end at the CLI."""
    from repro.apps.amodule import build_amodule_program
    from repro.core import DataflowSession
    from repro.dbg import CommandCli, Debugger
    from repro.p2012.soc import P2012Platform, PlatformConfig
    from repro.pedf.runtime import PedfRuntime
    from repro.sim import Scheduler

    sched = Scheduler()
    platform = P2012Platform(sched, PlatformConfig(n_clusters=1, pes_per_cluster=8))
    program = build_amodule_program(max_steps=1)
    runtime = PedfRuntime(sched, platform, program)
    runtime.add_source("stim", "AModule", "module_in", [])  # never produces
    sink = runtime.add_sink("capture", "AModule", "module_out", expect=1)
    dbg = Debugger(sched, runtime)
    cli = CommandCli(dbg)
    session = DataflowSession(dbg, cli=cli)

    ev = dbg.run()
    assert ev.kind == StopKind.DEADLOCK
    # diagnose: filter_1 blocked on its empty an_input link
    out = cli.execute("dataflow links")
    assert any(
        line.startswith("stim::out->filter_1::an_input") and "0 token(s)" in line
        for line in out
    )
    # untie: inject the missing token
    out = cli.execute("iface stim::out insert 21")
    assert "Token inserted" in out[0]
    ev = dbg.cont()
    assert ev.kind == StopKind.EXITED
    assert sink.values == [(21 * 2 + 1) * 2 + 1]


def test_drop_and_poke_tokens():
    session, cli, dbg, runtime, sink = make_session([5], stop_on_init=True)
    dbg.run()
    # stop after the source pushed but before filter_1 consumed:
    session.catch_iface("stim::out", event="push", temporary=True)
    dbg.cont()
    link = next(l for l in runtime.links if l.src and l.src.qualname == "stim::out")
    assert link.occupancy == 1
    cli.execute("iface stim::out poke 0 40")
    assert link.tokens()[0].value == 40
    ev = dbg.cont()
    assert ev.kind == StopKind.EXITED
    assert sink.values == [(40 * 2 + 1) * 2 + 1]


def test_drop_token():
    session, cli, dbg, runtime, sink = make_session([5, 6], stop_on_init=True)
    dbg.run()
    cp = session.catch_iface("stim::out", event="push")
    dbg.cont()
    dbg.cont()  # both pushes done
    dbg.delete(cp.id)
    link = next(l for l in runtime.links if l.src and l.src.qualname == "stim::out")
    before = link.occupancy
    out = cli.execute("iface stim::out drop 0")
    assert "removed" in out[0]
    assert link.occupancy == before - 1
    # token 5 was already consumed when we stopped at the second push, so
    # the drop removed token 6; only 5 flows through and the program then
    # deadlocks waiting for a second input, which is expected
    ev = dbg.cont()
    assert ev.kind == StopKind.DEADLOCK
    assert [t.value for t in sink.received] == [(5 * 2 + 1) * 2 + 1]


def test_alteration_errors():
    session, cli, dbg, *_ = make_session([1], stop_on_init=True)
    dbg.run()
    with pytest.raises(DataflowDebugError):
        session.alter.drop("stim::out", 0)  # empty link
    with pytest.raises(DataflowDebugError):
        session.alter.poke("stim::out", 0, "1")


# ---------------------------------------------------------------- overhead


def test_data_capture_none_skips_token_events():
    session, cli, dbg, runtime, sink = make_session([1, 2], stop_on_init=True)
    dbg.run()
    session.set_data_capture("none")
    ev = dbg.cont()
    assert ev.kind == StopKind.EXITED
    assert session.capture.data_events_processed == 0
    assert len(sink.values) == 2  # execution unaffected
    # the model is stale, as documented
    link = session.model.link_between("filter_1::an_output", "filter_2::an_input")
    assert link.total_pushed == 0


def test_data_capture_actor_specific():
    """§V framework cooperation: only the actors of interest trap."""
    session, cli, dbg, runtime, sink = make_session([1, 2], stop_on_init=True)
    dbg.run()
    session.set_data_capture(["filter_2"])
    dbg.cont()
    f1 = session.model.find_actor("filter_1")
    f2 = session.model.find_actor("filter_2")
    assert f2.outbound["an_output"].pushed == 2
    assert f1.outbound["an_output"].pushed == 0  # not captured


def test_data_capture_control_only():
    session, cli, dbg, runtime, sink = make_session([1], stop_on_init=True)
    dbg.run()
    session.set_data_capture("control-only")
    dbg.cont()
    ctl = session.model.find_actor("controller")
    f1 = session.model.find_actor("filter_1")
    assert ctl.outbound["cmd_out_1"].pushed == 1  # control tokens still seen
    assert f1.outbound["an_output"].pushed == 0


def test_data_capture_mode_via_cli_and_restore():
    session, cli, dbg, *_ = make_session([1, 2], stop_on_init=True)
    dbg.run()
    out = cli.execute("dataflow capture none")
    assert "none" in out[0]
    out = cli.execute("dataflow capture all")
    assert "all" in out[0]
    ev = dbg.cont()
    assert ev.kind == StopKind.EXITED
    assert session.capture.data_events_processed > 0


# --------------------------------------------------------------------- DOT


def test_dot_export_shape():
    session, cli, dbg, *_ = make_session([1], stop_on_init=True)
    dbg.run()
    dot = session.graph_dot()
    assert dot.startswith('digraph "amodule_demo"')
    assert 'subgraph "cluster_AModule"' in dot
    assert 'fillcolor="palegreen"' in dot  # controller is a green box
    assert "shape=ellipse" in dot  # filters
    assert "shape=diamond" in dot  # host source/sink
    assert "style=dotted" in dot  # control links
    assert "style=dashed" in dot  # DMA host links
    assert "AModule_filter_1 -> AModule_filter_2" in dot


def test_dot_token_counts_on_edges():
    session, cli, dbg, *_ = make_session([5], stop_on_init=True)
    dbg.run()
    session.catch_iface("stim::out", event="push", temporary=True)
    dbg.cont()
    dot = session.graph_dot()
    assert 'label="1"' in dot  # the in-flight token shows on its edge


def test_graph_update_modes():
    session, cli, dbg, *_ = make_session([1], stop_on_init=True, graph_update="realtime")
    dbg.run()
    before = session.graph_renders
    dbg.cont()
    assert session.graph_renders > before  # re-rendered on data events
    session2, cli2, dbg2, *_ = make_session([1], stop_on_init=True, graph_update="on-stop")
    dbg2.run()
    renders_after_init = session2.graph_renders
    dbg2.cont()
    # on-stop renders once per stop, not per event
    assert session2.graph_renders <= renders_after_init + 1


def test_dataflow_info_command():
    session, cli, dbg, *_ = make_session([1], stop_on_init=True)
    dbg.run()
    out = cli.execute("dataflow info")
    joined = "\n".join(out)
    assert "program: amodule_demo" in joined
    assert "actors: 5" in joined
