"""O(1)-ish time travel: restorable snapshots must change the *cost* of
a hop, never its outcome.

``replay to`` restoring a parked resident machine and re-executing only
the tail has to be observationally indistinguishable from the old
full re-execution: same journal fingerprint, same ``rv.derive``
verdicts, same derived telemetry — byte for byte, on both interpreter
tiers, and per shard in a sharded run (barrier snapshots).  The cost
side is gated through ``last_restore``: deterministic event counts, not
wall clocks.
"""

import pytest

from repro.apps.amodule import build_demo
from repro.apps.rle import build_rle_pipeline
from repro.apps.rle.app import RLE_HOSTS, build_rle_program
from repro.core import DataflowSession
from repro.core.replay import ReplayCoverageWarning
from repro.core.shards import ShardedRun
from repro.dbg import Debugger, StopKind
from repro.errors import ReplayError
from repro.obs import derive_telemetry, to_chrome_trace
from repro.rv import GraphView, derive_verdicts, parse_property
from repro.sim.sharding import HostSpec, partition_program

from .util import make_session

VALUES = [5, 5, 5, 2, 7, 7, 1, 2, 3, 4, 9, 9] * 4  # ~1400 journal events
RLE_PROPS = [
    "occupancy pack::o->expand::i <= 0",
    "rate expand::o == 1 * pack::i tol 6",
]


def _set_tier(runtime, tier):
    runtime.config.interp_tier = tier
    for actor in runtime.all_actors():
        interp = getattr(actor, "interp", None)
        if interp is not None:
            interp.tier = tier


def run_to_exit(dbg):
    ev = dbg.run() if not dbg.runtime.loaded else dbg.cont()
    while ev.kind not in (StopKind.EXITED, StopKind.DEADLOCK, StopKind.ERROR):
        ev = dbg.cont()
    return ev


def rle_session(tier="auto", values=VALUES):
    def fresh():
        sched, runtime, sink = build_rle_pipeline(values)
        _set_tier(runtime, tier)
        return DataflowSession(Debugger(sched, runtime))

    session = fresh()
    session.replay.register_builder(fresh)
    return session


def journal_artifacts(journal, model):
    """Everything a consumer can derive from a journal, rendered to
    comparable bytes: fingerprint streams, rv verdicts, telemetry."""
    props = [parse_property(p) for p in RLE_PROPS]
    verdicts = derive_verdicts(journal, props, GraphView(model))
    tel = derive_telemetry(journal)
    return (
        journal.token_stream(),
        journal.link_value_streams(),
        "\n".join(line for v in verdicts for line in v.render()),
        tel.sink.snapshot(),
        tel.metrics.render(),
        to_chrome_trace(tel.sink.snapshot().spans, "app"),
    )


# ------------------------------------------- hop == full re-execution


@pytest.mark.parametrize("tier", ["auto", "slow"])
def test_restore_hop_matches_full_reexecution(tier):
    session = rle_session(tier)
    mgr = session.replay
    mgr.record_on(interval=16)
    assert run_to_exit(session.dbg).kind == StopKind.EXITED
    master = mgr.master
    total = master.total_events
    reference = journal_artifacts(master, session.model)

    # first sweep: seeds geometric anchors en route, restores the nearest
    ev = mgr.replay_to("end")
    assert ev.kind == StopKind.REPLAY
    src, target, tail = mgr.last_restore
    assert target == total
    assert src > 0, "expected a resident restore, not a full rebuild"
    assert tail == total - src
    assert tail < total // 2  # O(tail), not O(run length)
    rec = mgr.recorder
    assert rec.divergence is None
    assert journal_artifacts(rec.journal, mgr.session.model) == reference

    # backward hop onto the parked mid anchor: exact hit, zero re-execution
    mid = total // 2
    ev = mgr.replay_to(f"event {mid}")
    assert ev.kind == StopKind.REPLAY
    assert mgr.position == mid
    assert mgr.last_restore == (mid, mid, 0)

    # short forward hop: drives the adopted machine, tail events only
    mgr.replay_to(f"event {mid + 5}")
    assert mgr.last_restore == (mid, mid + 5, 5)

    # the journey changed nothing: the tail-extended journal still
    # matches the master prefix event for event
    assert mgr.recorder.divergence is None
    prefix = mgr.recorder.journal.token_stream()
    assert prefix == master.token_stream()[: len(prefix)]


def test_info_reports_pool_and_last_hop():
    session = rle_session()
    mgr = session.replay
    mgr.record_on(interval=16)
    run_to_exit(session.dbg)
    mgr.replay_to("end")
    text = "\n".join(mgr.info())
    assert "resident snapshots:" in text and "parked @ event(s)" in text
    assert "last hop: to event #" in text and "restored resident @event" in text
    assert "deep snapshot(s) verified identical" in text


def test_pool_off_forces_full_rebuild():
    session = rle_session()
    mgr = session.replay
    mgr.record_on(interval=16)
    run_to_exit(session.dbg)
    total = mgr.master.total_events
    assert mgr.set_pool_limit(0) == [
        "Resident snapshots off (every hop re-executes from the start)."
    ]
    mgr.replay_to("end")
    assert mgr.last_restore == (0, total, total)  # the old O(run) behaviour
    assert not mgr.pool


# ------------------------------------------------- deep journal snapshots


def test_deep_snapshots_recorded_and_verified_on_replay():
    session = rle_session()
    mgr = session.replay
    mgr.record_on(interval=16)
    run_to_exit(session.dbg)
    master = mgr.master
    assert master.state_snapshots, "run too short to cross a snapshot boundary"
    mgr.set_pool_limit(0)  # full sweep => every reference snapshot en route
    mgr.replay_to("end")
    rec = mgr.recorder
    assert rec.divergence is None
    assert rec.snapshots_verified > 0
    assert rec.snapshots_verified <= len(master.state_snapshots)


def test_journal_snapshots_are_tier_invariant():
    """Deep snapshots carry no interpreter frames, so the recorded states
    must be byte-identical between the slow and compiled tiers."""
    snaps = {}
    for tier in ("auto", "slow"):
        session = rle_session(tier)
        session.replay.record_on(interval=16)
        run_to_exit(session.dbg)
        snaps[tier] = session.replay.master.state_snapshots
    assert snaps["auto"]
    assert snaps["auto"] == snaps["slow"]


# ------------------------------------------------------- segment rotation


def test_segmented_recording_round_trip_and_hop(tmp_path):
    session = rle_session()
    mgr = session.replay
    mgr.record_on(interval=16, segment_dir=str(tmp_path / "segs"), window=64)
    run_to_exit(session.dbg)
    master = mgr.master
    assert master.segments is not None and master.segments.segments
    assert len(master.events) < 64  # memory stayed within the window
    assert master.evicted_events == 0

    # identical run on an unbounded journal: every derivable artifact agrees
    twin = rle_session()
    twin.replay.record_on(interval=16)
    run_to_exit(twin.dbg)
    ref = twin.replay.master
    assert master.total_events == ref.total_events
    assert journal_artifacts(master, session.model) == journal_artifacts(
        ref, twin.model
    )

    # time travel over the rotated master (self-check reads segments too)
    mid = master.total_events // 2
    ev = mgr.replay_to(f"event {mid}")
    assert ev.kind == StopKind.REPLAY and mgr.position == mid
    assert mgr.recorder.divergence is None


# ------------------------------------- bounded-journal bugfixes (satellites)


def test_negative_positions_are_rejected():
    session = rle_session()
    mgr = session.replay
    mgr.record_on()
    run_to_exit(session.dbg)
    with pytest.raises(ReplayError, match="bad replay position"):
        mgr.replay_to("time -5")
    with pytest.raises(ReplayError, match="bad replay position"):
        mgr.replay_to("event -3")
    with pytest.raises(ReplayError, match="bad replay position"):
        mgr.replay_to("seq -1")


def test_capped_journal_distinguishes_evicted_positions():
    session = rle_session()
    mgr = session.replay
    mgr.record_on(limit=40)
    run_to_exit(session.dbg)
    master = mgr.master
    assert master.evicted_events > 0
    # this token existed — the cap dropped it; the error must say so
    with pytest.raises(ReplayError, match="evicted by the journal bound"):
        mgr.replay_to(f"seq {master.max_seq_recorded}")
    # a time past the stored prefix is unknowable, not "never happened"
    with pytest.raises(ReplayError, match="evicted by the journal bound"):
        mgr.replay_to("time 999999999")
    # this token never existed — still the old, honest error
    with pytest.raises(ReplayError, match="no recorded token"):
        mgr.replay_to("seq 99999999")


def test_partial_reference_warns_instead_of_silently_passing():
    session = rle_session()
    mgr = session.replay
    mgr.record_on(limit=40)
    run_to_exit(session.dbg)
    total = mgr.master.total_events
    with pytest.warns(ReplayCoverageWarning, match="no reference for event #41"):
        mgr.replay_to("end")
    rec = mgr.recorder
    assert rec.divergence is None
    assert rec.uncovered == (41, total)
    assert any("self-check WARNING" in line for line in mgr.info())


# -------------------------------------------------------- fork invalidation


def test_fork_invalidates_resident_pool():
    session, cli, dbg, *_ = make_session(
        [1, 2, 3, 4, 5, 6, 7, 8], stop_on_init=True, register_builder=True
    )
    mgr = session.replay
    mgr.record_on(interval=8)
    dbg.run()
    run_to_exit(dbg)
    mgr.replay_to("end")
    assert mgr.pool, "first sweep should have parked anchor machines"
    mid = mgr.master.total_events // 2
    mgr.replay_to(f"event {mid}")
    mgr.session.alter.insert("stim::out", "42")
    # new timeline: parked residents were verified against the old future
    assert mgr.mode == "record"
    assert mgr.pool == []
    assert mgr.last_restore is None


# ---------------------------------------------------------------- CLI layer


def test_cli_segment_and_snapshot_options(tmp_path):
    session, cli, dbg, *_ = make_session(
        [5, 6], stop_on_init=True, register_builder=True
    )
    out = cli.execute(f"record on every 8 segments {tmp_path}/segs window 32 snapshot 2")
    assert "segments in" in out[0] and "window 32" in out[0]
    dbg.run()
    run_to_exit(dbg)
    assert any("segments:" in line for line in cli.execute("info replay"))

    assert cli.execute("replay snapshots 2") == [
        "Resident snapshot pool: 2 machine(s)."
    ]
    assert cli.execute("replay snapshots off") == [
        "Resident snapshots off (every hop re-executes from the start)."
    ]
    out = cli.execute("replay snapshots maybe")
    assert out == ["error: usage: replay snapshots N|off"]


# ----------------------------------------------------- sharded runs (2-shard)


def _sharded_rle(snapshots=True):
    plan = partition_program(
        build_rle_program(list(VALUES)), 2, hosts=[HostSpec(*h) for h in RLE_HOSTS]
    )

    def build(ctx):
        sched, runtime, sink = build_rle_pipeline(list(VALUES), shard=ctx)
        return DataflowSession(Debugger(sched, runtime))

    return ShardedRun(plan, build, record=True, snapshots=snapshots)


def test_two_shard_barrier_snapshots_are_deterministic():
    run_a = _sharded_rle()
    assert run_a.run().kind == "exited"
    assert run_a.engine.snapshots_taken > 0
    states_a = run_a.barrier_states()
    assert set(states_a) == {0, 1}

    run_b = _sharded_rle()
    assert run_b.run().kind == "exited"
    # barrier states are a pure function of plan + program: shard for
    # shard, byte for byte — and so is the merged fingerprint
    assert run_b.barrier_states() == states_a
    assert run_b.fingerprint() == run_a.fingerprint()
    assert any("barrier snapshots" in line for line in run_a.info_lines())
