"""Dataflow-session test harness."""

from repro.apps.amodule import build_demo
from repro.core import DataflowSession, install_dataflow_commands
from repro.dbg import CommandCli, Debugger


def make_session(values=(1, 2, 3, 4), attribute=1, register_builder=False,
                 **session_kwargs):
    sched, platform, runtime, source, sink = build_demo(values, attribute)
    dbg = Debugger(sched, runtime)
    cli = CommandCli(dbg)
    session = DataflowSession(dbg, cli=cli, **session_kwargs)
    if register_builder:
        def fresh():
            s2, p2, r2, src2, snk2 = build_demo(values, attribute)
            return DataflowSession(Debugger(s2, r2), **session_kwargs)

        session.replay.register_builder(fresh)
    return session, cli, dbg, runtime, sink
