"""Dataflow-session test harness."""

from repro.apps.amodule import build_demo
from repro.core import DataflowSession, install_dataflow_commands
from repro.dbg import CommandCli, Debugger


def make_session(values=(1, 2, 3, 4), attribute=1, **session_kwargs):
    sched, platform, runtime, source, sink = build_demo(values, attribute)
    dbg = Debugger(sched, runtime)
    cli = CommandCli(dbg)
    session = DataflowSession(dbg, cli=cli, **session_kwargs)
    return session, cli, dbg, runtime, sink
