"""Negative paths of the dataflow command set: every malformed command
must produce a helpful error line, never a traceback."""

import pytest

from .util import make_session


@pytest.fixture()
def cli_session():
    session, cli, dbg, runtime, sink = make_session([1], stop_on_init=True)
    dbg.run()
    return cli, session, dbg


BAD_COMMANDS = [
    "filter",
    "filter nope catch work",
    "filter filter_1 bogusverb x",
    "filter filter_1 catch",
    "filter filter_1 catch an_input=x",
    "filter filter_1 catch an_output=1",  # outputs can't count inbound tokens
    "filter filter_1 configure warp",
    "filter filter_1 info bogus",
    "filter filter_1 print bogus",
    "iface no_doublecolon record",
    "iface filter_1::nope record",
    "iface filter_1::an_input bogus",
    "iface filter_1::an_input poke x y",
    "iface filter_1::an_input drop 5",
    "iface filter_1::an_input insert notanumber",
    "step_both",  # no actor stopped inside a filter
    "dataflow bogus",
    "dataflow token notanumber",
    "dataflow update sometimes",
    "sched bogus",
    "sched catch bogus",
    "sched pred m",
    "freeze",
    "thaw nope",
    "until",
]


@pytest.mark.parametrize("command", BAD_COMMANDS)
def test_malformed_commands_report_errors(cli_session, command):
    cli, session, dbg = cli_session
    out = cli.execute(command)
    assert out, command
    assert out[0].startswith("error:"), (command, out)


def test_iface_print_requires_recording(cli_session):
    cli, session, dbg = cli_session
    out = cli.execute("iface filter_1::an_input print")
    assert "not being recorded" in out[0]


def test_graph_written_to_file(cli_session, tmp_path):
    cli, session, dbg = cli_session
    target = tmp_path / "graph.dot"
    out = cli.execute(f"dataflow graph {target}")
    assert "written" in out[0]
    text = target.read_text()
    assert text.startswith('digraph "amodule_demo"')


def test_record_with_capacity_via_cli(cli_session):
    cli, session, dbg = cli_session
    cli.execute("iface filter_2::an_output record 1")
    dbg.cont()
    buf = session.records.get("filter_2::an_output")
    assert buf.capacity == 1
