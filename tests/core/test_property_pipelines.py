"""Property tests over randomly-shaped pipelines.

Token conservation and model/runtime agreement must hold for any linear
pipeline of arithmetic filters, any values and any link capacities — the
invariants the paper's debugger model relies on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cminus.typesys import U32
from repro.core import DataflowSession
from repro.dbg import Debugger
from repro.p2012.soc import P2012Platform, PlatformConfig
from repro.pedf.decls import ControllerDecl, FilterDecl, ModuleDecl, ProgramDecl
from repro.pedf.runtime import PedfRuntime
from repro.sim import Scheduler

OPS = {
    "add": ("pedf.io.i[0] + pedf.attribute.k", lambda x, k: (x + k) & 0xFFFFFFFF),
    "mul": ("pedf.io.i[0] * pedf.attribute.k", lambda x, k: (x * k) & 0xFFFFFFFF),
    "xor": ("pedf.io.i[0] ^ pedf.attribute.k", lambda x, k: x ^ k),
    "shift": ("pedf.io.i[0] << (pedf.attribute.k & 7)", lambda x, k: (x << (k & 7)) & 0xFFFFFFFF),
}


def build_pipeline(stage_specs, values, capacity):
    program = ProgramDecl(name="pipeline")
    mod = ModuleDecl(name="m")
    fire = "".join(f"ACTOR_FIRE(s{i}); " for i in range(len(stage_specs)))
    ctl = ControllerDecl(
        name="controller",
        source=f"void work() {{ {fire}WAIT_FOR_ACTOR_SYNC(); }}",
        source_name="ctl.c",
        max_steps=len(values),
    )
    mod.set_controller(ctl)
    for i, (op, k) in enumerate(stage_specs):
        expr, _ = OPS[op]
        f = FilterDecl(
            name=f"s{i}",
            source=f"void work() {{ pedf.io.o[0] = {expr}; }}",
            source_name=f"s{i}.c",
        )
        f.add_attribute("k", U32, k)
        f.add_iface("i", "input", U32)
        f.add_iface("o", "output", U32)
        mod.add_filter(f)
    mod.add_iface("min_", "input", U32)
    mod.add_iface("mout", "output", U32)
    mod.bind("this", "min_", "s0", "i")
    for i in range(len(stage_specs) - 1):
        mod.bind(f"s{i}", "o", f"s{i + 1}", "i", capacity=capacity)
    mod.bind(f"s{len(stage_specs) - 1}", "o", "this", "mout")
    program.add_module(mod)

    sched = Scheduler()
    platform = P2012Platform(sched, PlatformConfig(n_clusters=2, pes_per_cluster=8))
    runtime = PedfRuntime(sched, platform, program)
    runtime.add_source("stim", "m", "min_", list(values))
    sink = runtime.add_sink("cap", "m", "mout", expect=len(values))
    return sched, runtime, sink


def golden(stage_specs, values):
    out = []
    for v in values:
        x = v
        for op, k in stage_specs:
            x = OPS[op][1](x, k)
        out.append(x)
    return out


@settings(max_examples=20, deadline=None)
@given(
    stage_specs=st.lists(
        st.tuples(st.sampled_from(sorted(OPS)), st.integers(min_value=0, max_value=1000)),
        min_size=1,
        max_size=5,
    ),
    values=st.lists(st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=8),
    capacity=st.integers(min_value=1, max_value=4),
)
def test_property_pipeline_output_and_conservation(stage_specs, values, capacity):
    sched, runtime, sink = build_pipeline(stage_specs, values, capacity)
    dbg = Debugger(sched, runtime)
    session = DataflowSession(dbg)
    ev = dbg.run()
    assert ev.kind.value == "exited"
    # functional correctness against the golden fold
    assert sink.values == golden(stage_specs, values)
    # token conservation on every reconstructed link, and exact agreement
    # between the event-derived model and the runtime ground truth
    for link in session.model.links:
        assert link.total_pushed == link.total_popped == len(values)
        assert link.occupancy == 0
    assert len(session.model.links) == len(runtime.links)
    # every token has a provenance parent except the source's
    for token in session.model.tokens.values():
        if token.src_actor == "stim":
            assert token.parents == []
        else:
            assert len(token.parents) == 1
