"""Cross-tier determinism: compiled and interpreted Filter-C tiers must
be indistinguishable to the record/replay machinery.

Batched Delay flushes are structural, so both tiers issue byte-identical
kernel-request streams — the journal's token stream, checkpoint digests
and dispatch counting therefore match exactly, and a run recorded on one
tier replays cleanly (full determinism self-check) on the other.
"""

import pytest

from repro.apps.rle import build_rle_pipeline
from repro.core import DataflowSession
from repro.dbg import Debugger, StopKind

VALUES = (1, 1, 2, 3, 3, 3, 3, 9, 9, 4)


def fresh_session(tier):
    sched, runtime, sink = build_rle_pipeline(VALUES)
    runtime.config.interp_tier = tier
    for actor in runtime.all_actors():
        interp = getattr(actor, "interp", None)
        if interp is not None:
            interp.tier = tier
    return DataflowSession(Debugger(sched, runtime))


def run_to_exit(dbg):
    ev = dbg.run()
    while ev.kind not in (StopKind.EXITED, StopKind.DEADLOCK, StopKind.ERROR):
        ev = dbg.cont()
    return ev


def record_run(tier, interval=16):
    session = fresh_session(tier)
    mgr = session.replay
    mgr.record_on(interval=interval)
    assert run_to_exit(session.dbg).kind == StopKind.EXITED
    return session, mgr.master


def journal_fingerprint(journal):
    return (
        journal.token_stream(),
        [
            (cp.index, cp.dispatch, cp.time, cp.next_seq, cp.occupancy)
            for cp in journal.checkpoints
        ],
        journal.total_events,
    )


def test_journal_fingerprints_identical_across_tiers():
    _, compiled = record_run("auto")
    _, interpreted = record_run("slow")
    _, bytecode = record_run("vm")
    assert compiled.token_stream(), "run produced no tokens"
    assert compiled.checkpoints, "run crossed no checkpoint boundary"
    assert journal_fingerprint(compiled) == journal_fingerprint(interpreted)
    assert journal_fingerprint(bytecode) == journal_fingerprint(interpreted)


def test_framework_event_streams_identical_across_tiers():
    streams = {}
    for tier in ("auto", "vm", "slow"):
        session = fresh_session(tier)
        seen = []
        session.dbg.runtime.bus.subscribe(
            "pedf_rt_push",
            lambda e, seen=seen: seen.append((e.phase, e.symbol, e.actor)) or None,
        )
        session.dbg.runtime.bus.subscribe(
            "pedf_rt_pop",
            lambda e, seen=seen: seen.append((e.phase, e.symbol, e.actor)) or None,
        )
        assert run_to_exit(session.dbg).kind == StopKind.EXITED
        streams[tier] = seen
    assert streams["auto"] == streams["slow"]
    assert streams["vm"] == streams["slow"]
    assert streams["auto"], "no framework events observed"


@pytest.mark.parametrize(
    "record_tier,replay_tier",
    [("auto", "slow"), ("slow", "auto"), ("vm", "slow"), ("auto", "vm")],
)
def test_record_one_tier_replay_on_the_other(record_tier, replay_tier):
    """The determinism self-check compares every recorded event and every
    checkpoint digest en route — a clean cross-tier replay is the
    strongest equivalence statement the machinery can make."""
    session, master = record_run(record_tier)
    mgr = session.replay
    mgr.builder = lambda: fresh_session(replay_tier)

    ev = mgr.replay_to("end")
    assert ev.kind == StopKind.REPLAY
    rec = mgr.recorder
    assert rec.divergence is None
    assert rec.events_compared == master.total_events
    assert rec.checkpoints_verified > 0
    assert rec.journal.token_stream() == master.token_stream()

    # the replayed machine converges on the same final state
    run_to_exit(mgr.session.dbg)
    assert [t.value for t in mgr.session.dbg.runtime.sinks[0].received] == [
        t.value for t in session.dbg.runtime.sinks[0].received
    ]


# ------------------------------------------------- other application graphs


def _retier(runtime, tier):
    runtime.config.interp_tier = tier
    for actor in runtime.all_actors():
        interp = getattr(actor, "interp", None)
        if interp is not None:
            interp.tier = tier


def _amodule_fingerprint(tier):
    from repro.apps.amodule.app import build_demo

    sched, _platform, runtime, _source, sink = build_demo((1, 2, 3, 4))
    _retier(runtime, tier)
    session = DataflowSession(Debugger(sched, runtime))
    mgr = session.replay
    mgr.record_on(interval=8)
    assert run_to_exit(session.dbg).kind == StopKind.EXITED
    return journal_fingerprint(mgr.master), [t.value for t in sink.received]


def test_amodule_journal_fingerprints_identical_across_tiers():
    prints = {tier: _amodule_fingerprint(tier) for tier in ("auto", "vm", "slow")}
    assert prints["auto"][0][0], "run produced no tokens"
    assert prints["auto"] == prints["slow"]
    assert prints["vm"] == prints["slow"]


def _synthetic_fingerprint(tier):
    from repro.apps.synthetic import build_synthetic_pipeline, lcg_reference
    from repro.sim.sharding import PushStreamRecorder, fingerprint_streams

    values = (3, 1, 4, 1, 5)
    sched, runtime, sinks = build_synthetic_pipeline(values)
    _retier(runtime, tier)
    session = DataflowSession(Debugger(sched, runtime))
    rec = PushStreamRecorder(runtime)
    assert run_to_exit(session.dbg).kind == StopKind.EXITED
    golden = lcg_reference(values, 25 * 9, 1)
    for sink in sinks:
        assert [t.value for t in sink.received] == golden
    return fingerprint_streams(dict(rec.streams))


def test_synthetic_1000_actor_fingerprints_identical_across_tiers():
    """The headline 1000-actor fabric produces a byte-identical push
    stream no matter which execution tier runs the Filter-C bodies."""
    prints = {tier: _synthetic_fingerprint(tier) for tier in ("auto", "vm", "slow")}
    assert prints["auto"] == prints["slow"]
    assert prints["vm"] == prints["slow"]
