"""Deterministic record/replay with time-travel stops.

Covers the journal-backed determinism self-check (replaying a recorded
run reproduces the exact token-seq stream and checkpoint digests),
`replay to` positioning, `reverse-continue` landing on the previous
dataflow stop, alteration re-application, timeline forks, and the CLI
surface (`record` / `replay` / `info replay`).
"""

import dataclasses

import pytest

from repro.apps.rle import build_rle_pipeline
from repro.core import DataflowSession
from repro.dbg import CommandCli, Debugger, StopKind
from repro.errors import ReplayDivergenceError, ReplayError

from .util import make_session


def rle_session(values=(1, 1, 2, 3, 3, 3, 3)):
    def fresh():
        sched, runtime, sink = build_rle_pipeline(values)
        return DataflowSession(Debugger(sched, runtime))

    session = fresh()
    session.replay.register_builder(fresh)
    return session


def run_to_exit(dbg):
    ev = dbg.run()
    while ev.kind not in (StopKind.EXITED, StopKind.DEADLOCK, StopKind.ERROR):
        ev = dbg.cont()
    return ev


# ------------------------------------------------------ replay == live (RLE)


def test_full_replay_reproduces_live_run():
    session = rle_session()
    mgr = session.replay
    mgr.record_on(interval=16)
    assert run_to_exit(session.dbg).kind == StopKind.EXITED

    live_stream = mgr.master.token_stream()
    assert live_stream, "live run produced no tokens"
    assert mgr.master.checkpoints, "run too short to cross a checkpoint boundary"

    live_model = {
        link.name: (link.total_pushed, link.total_popped)
        for link in session.model.links
    }
    live_sunk = [t.value for t in session.dbg.runtime.sinks[0].received]

    ev = mgr.replay_to("end")
    assert ev.kind == StopKind.REPLAY
    rec = mgr.recorder
    assert rec.journal.token_stream() == live_stream
    # determinism self-check compared every single recorded event
    assert rec.events_compared == mgr.master.total_events
    assert rec.checkpoints_verified > 0
    assert rec.divergence is None
    assert mgr.mode == "replay"
    assert mgr.position == mgr.master.total_events

    # the rebuilt DataflowModel converges on the live run's final state
    run_to_exit(mgr.session.dbg)
    replayed_model = {
        link.name: (link.total_pushed, link.total_popped)
        for link in mgr.session.model.links
    }
    assert replayed_model == live_model
    assert [t.value for t in mgr.session.dbg.runtime.sinks[0].received] == live_sunk


def test_record_on_must_precede_first_run():
    session = rle_session()
    run_to_exit(session.dbg)
    with pytest.raises(ReplayError, match="must precede"):
        session.replay.record_on()


def test_replay_positions_seq_event_and_forward_drive():
    session = rle_session()
    mgr = session.replay
    mgr.record_on()
    run_to_exit(session.dbg)

    stream = mgr.master.token_stream()
    seq = stream[2]
    expected = mgr.master.index_for_seq(seq)
    ev = mgr.replay_to(f"seq {seq}")
    assert ev.kind == StopKind.REPLAY
    assert f"event #{expected}" in ev.message
    assert mgr.position == expected

    # moving forward within a replayed machine keeps driving it — no rebuild
    machine = mgr.session
    later = expected + 5
    mgr.replay_to(f"event {later}")
    assert mgr.session is machine
    assert mgr.position == later

    # moving backward rebuilds from scratch
    mgr.replay_to(f"event {expected}")
    assert mgr.session is not machine
    assert mgr.position == expected


def test_replay_position_errors():
    session = rle_session()
    mgr = session.replay
    with pytest.raises(ReplayError, match="nothing recorded"):
        mgr.replay_to("end")
    mgr.record_on()
    run_to_exit(session.dbg)
    with pytest.raises(ReplayError, match="out of range"):
        mgr.replay_to(f"event {mgr.master.total_events + 1}")
    with pytest.raises(ReplayError, match="bad replay position"):
        mgr.replay_to("bogus")
    with pytest.raises(ReplayError, match="no recorded token"):
        mgr.replay_to("seq 999999")


def test_replay_without_builder_is_rejected():
    sched, runtime, sink = build_rle_pipeline([1, 2, 2])
    session = DataflowSession(Debugger(sched, runtime))
    mgr = session.replay
    mgr.record_on()
    run_to_exit(session.dbg)
    with pytest.raises(ReplayError, match="register_builder"):
        mgr.replay_to("end")


def test_divergence_self_check_trips_on_tampered_journal():
    session = rle_session()
    mgr = session.replay
    mgr.record_on()
    run_to_exit(session.dbg)
    events = mgr.master.events
    tampered = dataclasses.replace(events.at(10), time=events.at(10).time + 977)
    # deliberate corruption: there is no public mutator, by design
    events._records[10] = tampered
    with pytest.raises(ReplayDivergenceError, match="diverged at event #11"):
        mgr.replay_to("end")


# ----------------------------------------------- debugged run == free run


def test_journal_invariant_under_interactive_stops():
    """The event/checkpoint streams must not depend on where the user
    stopped — the property time-travel positioning relies on."""
    session_a, cli_a, dbg_a, *_ = make_session([3, 1, 4, 1, 5], stop_on_init=True)
    mgr_a = session_a.replay
    mgr_a.record_on(interval=16)
    dbg_a.run()
    cli_a.execute("iface filter_1::an_output catch")
    for _ in range(3):
        dbg_a.cont()
    run_to_exit(dbg_a)

    session_b, cli_b, dbg_b, *_ = make_session([3, 1, 4, 1, 5], stop_on_init=True)
    mgr_b = session_b.replay
    mgr_b.record_on(interval=16)
    run_to_exit(dbg_b)

    assert mgr_a.master.token_stream() == mgr_b.master.token_stream()
    assert mgr_a.master.total_events == mgr_b.master.total_events
    assert mgr_a.master.checkpoints == mgr_b.master.checkpoints


# ------------------------------------------------------------ reverse-continue


def test_reverse_continue_lands_on_previous_dataflow_stop():
    session, cli, dbg, *_ = make_session(
        [5, 6, 7, 8], stop_on_init=True, register_builder=True
    )
    mgr = session.replay
    mgr.record_on()
    dbg.run()
    cli.execute("iface filter_1::an_output catch")
    for _ in range(3):
        ev = dbg.cont()
        assert ev.kind == StopKind.DATAFLOW

    hits = [s for s in mgr.master.stops if s.kind == "dataflow"]
    # init stop + three catchpoint hits, in increasing event positions
    assert len(hits) == 4
    assert [s.index for s in hits] == sorted(s.index for s in hits)

    ev = mgr.reverse_continue()  # from the 3rd hit back to the 2nd
    assert ev.kind == StopKind.REPLAY
    assert mgr.position == hits[2].index
    assert mgr.session.dbg.scheduler.now == hits[2].time

    ev = mgr.reverse_continue()  # and again, back to the 1st
    assert mgr.position == hits[1].index
    assert mgr.session.dbg.scheduler.now == hits[1].time

    mgr.reverse_continue()  # back to the init stop
    assert mgr.position == hits[0].index
    with pytest.raises(ReplayError, match="no earlier dataflow stop"):
        mgr.reverse_continue()


# ------------------------------------------------- alterations during replay


def test_recorded_alteration_is_reapplied_during_replay():
    session, cli, dbg, runtime, sink = make_session(
        [5, 6], stop_on_init=True, register_builder=True
    )
    mgr = session.replay
    mgr.record_on()
    dbg.run()
    cli.execute("iface stim::out insert 42")
    run_to_exit(dbg)
    assert [a.kind for a in mgr.master.alterations] == ["insert"]
    live_stream = mgr.master.token_stream()
    live_results = [t.value for t in sink.received]
    assert live_results

    mgr.replay_to("end")
    rec = mgr.recorder
    assert rec.divergence is None
    assert rec.journal.token_stream() == live_stream
    # the re-applied insert was journaled again at the same position
    assert [(a.kind, a.index) for a in rec.journal.alterations] == [
        (a.kind, a.index) for a in mgr.master.alterations
    ]
    # the landing suspend sits *at* the final event, before the sink
    # coroutine resumes; running off the journal's end finishes the program
    run_to_exit(mgr.session.dbg)
    replayed_sink = mgr.session.dbg.runtime.sinks[0]
    assert [t.value for t in replayed_sink.received] == live_results


def test_new_alteration_in_replayed_past_forks_timeline():
    session, cli, dbg, *_ = make_session(
        [5, 6, 7], stop_on_init=True, register_builder=True
    )
    mgr = session.replay
    mgr.record_on()
    run_to_exit(dbg)
    old_master = mgr.master

    mgr.replay_to(f"event {old_master.total_events // 2}")
    assert mgr.mode == "replay"
    mgr.session.alter.insert("stim::out", "99")

    assert mgr.mode == "record"
    assert mgr.master is mgr.recorder.journal
    assert mgr.master is not old_master
    assert mgr.position is None
    assert mgr.recorder.reference is None  # self-check disarmed: new timeline
    # the forked timeline keeps recording live
    before = mgr.master.total_events
    run_to_exit(mgr.session.dbg)
    assert mgr.master.total_events > before


# ------------------------------------------------------------------ CLI layer


def test_cli_record_replay_commands():
    session, cli, dbg, *_ = make_session(
        [5, 6], stop_on_init=True, register_builder=True
    )
    out = cli.execute("record on every 8")
    assert out == ["Recording on (checkpoint every 8 dispatches)."]
    assert cli.execute("record on") == ["Recording is already on."]
    dbg.run()
    run_to_exit(dbg)

    out = cli.execute("info replay")
    assert out[0] == "record/replay: record"
    assert any("journal:" in line for line in out)

    out = cli.execute("replay to event 10")
    assert out[0].startswith("Replay stop")
    assert "event #10" in out[0]
    # the CLI survived the adoption swap: it now drives the replayed machine
    assert cli.dbg is session.replay.session.dbg
    out = cli.execute("info replay")
    assert out[0] == "record/replay: replay"
    assert any("position: event #10" in line for line in out)
    assert any("self-check" in line for line in out)

    assert cli.execute("replay") == [
        "error: usage: replay to seq N|time T|event K|end | replay snapshots N|off"
    ]
    out = cli.execute("replay to nowhere")
    assert out[0].startswith("error: bad replay position")
    out = cli.execute("record maybe")
    assert out[0].startswith("error:")

    out = cli.execute("record off")
    assert out == ["Recording off (journal kept for replay)."]


def test_cli_record_on_after_run_reports_error():
    session, cli, dbg, *_ = make_session([5], stop_on_init=True)
    dbg.run()
    out = cli.execute("record on")
    assert out[0].startswith("error: record on must precede")
