"""Graph reconstruction, catchpoints, token tracking on AModule."""

import pytest

from repro.dbg import StopKind
from repro.errors import DataflowDebugError

from .util import make_session


# ------------------------------------------------- graph reconstruction (#1)


def test_graph_reconstructed_during_init():
    session, cli, dbg, runtime, sink = make_session([1])
    assert not session.model.initialized
    dbg.run()
    model = session.model
    assert model.initialized
    assert model.program_name == "amodule_demo"
    assert model.modules == ["AModule"]
    quals = set(model.actors)
    assert {"AModule.controller", "AModule.filter_1", "AModule.filter_2",
            "host.stim", "host.capture"} == quals
    # 2 cmd links + filter_1->filter_2 + source link + sink link (the two
    # `this.*` bindings are aliases, not links)
    assert len(model.links) == 5


def test_stop_on_init_gives_control_after_reconstruction():
    session, cli, dbg, runtime, sink = make_session([1], stop_on_init=True)
    ev = dbg.run()
    assert ev.kind == StopKind.DATAFLOW
    assert "reconstructed" in ev.message
    assert session.model.initialized
    assert len(sink.values) == 0  # nothing ran yet
    ev = dbg.cont()
    assert ev.kind == StopKind.EXITED
    assert len(sink.values) == 1


def test_connections_and_link_metadata():
    session, cli, dbg, *_ = make_session([1], stop_on_init=True)
    dbg.run()
    f1 = session.model.find_actor("filter_1")
    assert set(f1.inbound) == {"an_input", "cmd_in"}
    assert set(f1.outbound) == {"an_output"}
    link = session.model.link_between("filter_1::an_output", "filter_2::an_input")
    assert link is not None
    assert link.kind == "data"
    ctl_link = session.model.link_between("controller::cmd_out_1", "filter_1::cmd_in")
    assert ctl_link.kind == "control"
    src_link = session.model.link_between("stim::out", "filter_1::an_input")
    assert src_link.dma


def test_completion_names_include_ifaces():
    session, cli, dbg, *_ = make_session([1], stop_on_init=True)
    dbg.run()
    names = session.completion_names()
    assert "filter_1" in names
    assert "filter_1::an_output" in names
    assert "AModule.controller" in names
    # CLI completion for the filter command uses them
    cands = cli.complete("filter fil")
    assert "filter_1" in cands


def test_find_actor_errors():
    session, cli, dbg, *_ = make_session([1], stop_on_init=True)
    dbg.run()
    with pytest.raises(DataflowDebugError):
        session.model.find_actor("nope")
    with pytest.raises(DataflowDebugError):
        session.model.find_actor("controller").connection("bogus")


# ----------------------------------------------------------- catchpoints


def test_catch_work_stops_at_filter_fire():
    session, cli, dbg, *_ = make_session([1, 2], stop_on_init=True)
    dbg.run()
    cli_out = cli.execute("filter filter_1 catch work")
    assert "Catchpoint" in cli_out[0]
    ev = dbg.cont()
    assert ev.kind == StopKind.DATAFLOW
    assert "WORK method of filter `filter_1'" in ev.message
    assert ev.actor == "AModule.filter_1"
    ev = dbg.cont()
    assert ev.kind == StopKind.DATAFLOW  # second invocation
    ev = dbg.cont()
    assert ev.kind == StopKind.EXITED


def test_catch_token_counts_explicit():
    session, cli, dbg, *_ = make_session([1], stop_on_init=True)
    dbg.run()
    cli.execute("filter filter_1 catch an_input=1, cmd_in=1")
    ev = dbg.cont()
    assert ev.kind == StopKind.DATAFLOW
    assert "received the requested tokens" in ev.message
    assert "an_input=1" in ev.message


def test_catch_star_in():
    session, cli, dbg, *_ = make_session([1], stop_on_init=True)
    dbg.run()
    cp = session.catch_tokens("filter_2", {"*": 1})
    assert set(cp.requirements) == {"an_input", "cmd_in"}
    ev = dbg.cont()
    assert ev.kind == StopKind.DATAFLOW
    assert "filter_2" in ev.message


def test_catch_counts_reset_after_trigger():
    session, cli, dbg, *_ = make_session([1, 2, 3], stop_on_init=True)
    dbg.run()
    cp = session.catch_tokens("filter_1", {"an_input": 1})
    hits = 0
    while True:
        ev = dbg.cont()
        if ev.kind != StopKind.DATAFLOW:
            break
        hits += 1
    assert hits == 3  # once per step


def test_catch_iface_receive_and_send_wording():
    session, cli, dbg, *_ = make_session([1], stop_on_init=True)
    dbg.run()
    session.catch_iface("filter_2::an_input", event="pop")
    session.catch_iface("filter_1::an_output", event="push")
    ev = dbg.cont()
    assert "Stopped after sending token on `filter_1::an_output`" in ev.message
    ev = dbg.cont()
    assert "Stopped after receiving token from `filter_2::an_input'" in ev.message


def test_catch_iface_with_content_condition():
    session, cli, dbg, *_ = make_session([3, 8, 5], stop_on_init=True)
    dbg.run()
    cli.execute("iface filter_1::an_input catch if value == 8")
    ev = dbg.cont()
    assert ev.kind == StopKind.DATAFLOW
    # confirm via the model: the last consumed token of filter_1 is 8
    assert session.model.find_actor("filter_1").last_token_in.value == 8
    ev = dbg.cont()
    assert ev.kind == StopKind.EXITED


def test_sched_catchpoints():
    session, cli, dbg, *_ = make_session([1], stop_on_init=True)
    dbg.run()
    session.catch_step("begin")
    session.catch_schedule("filter_2")
    ev = dbg.cont()
    assert "begin of step 1" in ev.message
    ev = dbg.cont()
    assert "scheduled filter `filter_2' for execution" in ev.message


def test_catchpoints_manageable_via_classic_commands():
    """Two-level: delete/disable work on dataflow catchpoints too."""
    session, cli, dbg, *_ = make_session([1, 2], stop_on_init=True)
    dbg.run()
    cp = session.catch_work("filter_1")
    out = cli.execute("info breakpoints")
    assert any("filter filter_1 catch work" in line for line in out)
    cli.execute(f"disable {cp.id}")
    ev = dbg.cont()
    assert ev.kind == StopKind.EXITED


# --------------------------------------------------- scheduling monitor (#2)


def test_sched_status_reports_states_and_steps():
    session, cli, dbg, *_ = make_session([1, 2], stop_on_init=True)
    dbg.run()
    session.catch_work("filter_2", temporary=True)
    dbg.cont()
    out = session.sched_status()
    joined = "\n".join(out)
    assert "controller AModule.controller: step" in joined
    assert "AModule.filter_2: running" in joined
    dbg.cont()  # to exit
    out = session.sched_status()
    assert "finished" in "\n".join(out)


def test_filter_state_details():
    session, cli, dbg, *_ = make_session([1], stop_on_init=True)
    dbg.run()
    session.catch_work("filter_1", temporary=True)
    dbg.cont()
    out = cli.execute("filter filter_1 info state")
    joined = "\n".join(out)
    assert "scheduling: running" in joined
    assert "inbound: " in joined


# ------------------------------------------------ token flow / recording (#3)


def test_link_occupancy_tracked_from_events():
    session, cli, dbg, *_ = make_session([1], stop_on_init=True)
    dbg.run()
    # stop when filter_2 receives its data token; at that moment the
    # controller->filter links may still hold tokens
    session.catch_iface("filter_2::an_input", event="pop", temporary=True)
    dbg.cont()
    link = session.model.link_between("filter_1::an_output", "filter_2::an_input")
    assert link.total_pushed == 1
    assert link.total_popped == 1
    assert link.occupancy == 0


def test_token_provenance_default_behavior():
    session, cli, dbg, *_ = make_session([5], stop_on_init=True)
    dbg.run()
    session.catch_iface("filter_2::an_input", event="pop", temporary=True)
    dbg.cont()
    out = session.token_path("filter_2")
    # hop 1: filter_1 -> filter_2, value 11 (5*2+1)
    assert out[0].startswith("#1 filter_1 -> filter_2")
    assert "11" in out[0]
    # hop 2: the token filter_1 consumed to produce it (its an_input, 5)
    assert out[1].startswith("#2 stim -> filter_1")
    assert "5" in out[1]


def test_token_provenance_respects_splitter_configuration():
    session, cli, dbg, *_ = make_session([5], stop_on_init=True)
    dbg.run()
    out = cli.execute("filter filter_1 configure splitter")
    assert "splitter" in out[0]
    session.catch_iface("filter_2::an_input", event="pop", temporary=True)
    dbg.cont()
    out = session.token_path("filter_2")
    # with splitter the parent is the FIRST consumed token (cmd_in from
    # the controller), not the last
    assert out[1].startswith("#2 controller -> filter_1")


def test_record_and_print_tokens():
    session, cli, dbg, *_ = make_session([5, 6, 7], stop_on_init=True)
    dbg.run()
    cli.execute("iface filter_2::an_output record")
    dbg.cont()
    out = cli.execute("iface filter_2::an_output print")
    assert out == [
        "#1 (U32) 23",  # (5*2+1)*2+1
        "#2 (U32) 27",
        "#3 (U32) 31",
    ]


def test_record_buffer_capacity_drops_oldest():
    session, cli, dbg, *_ = make_session([1, 2, 3, 4], stop_on_init=True)
    dbg.run()
    session.records.enable("filter_2::an_output", capacity=2)
    dbg.cont()
    buf = session.records.get("filter_2::an_output")
    assert buf.recorded == 4
    assert buf.dropped == 2
    lines = buf.format_lines()
    assert lines[0].startswith("#3")
    assert "dropped" in lines[-1]


def test_print_last_token_flows_into_value_history():
    session, cli, dbg, *_ = make_session([5], stop_on_init=True)
    dbg.run()
    session.catch_iface("filter_2::an_input", event="pop", temporary=True)
    dbg.cont()
    out = cli.execute("filter filter_2 print last_token")
    assert out == ["$1 = (U32)11"]
    # two-level: plain print can reuse it
    assert cli.execute("print $1 + 1") == ["$2 = 12"]


def test_token_path_unavailable_without_traffic():
    session, cli, dbg, *_ = make_session([1], stop_on_init=True)
    dbg.run()
    with pytest.raises(DataflowDebugError):
        session.token_path("filter_1")
