"""Sharded-vs-single determinism: the merged per-shard journal
fingerprint must be byte-identical to the single-kernel run's.

The canonical fingerprint is the per-link ordered token *value* stream
(Kahn determinism makes it interleaving- and timing-invariant), hashed
over a sorted link->stream map.  Cross-shard links carry the same names
as their single-kernel counterparts (both are computed from the
declaration), so the merged map is a drop-in comparand.

Also under test: a breakpoint in one shard pauses the whole fabric at a
consistent barrier, and resuming leaves dispatch streams — and therefore
fingerprints — unperturbed (stop invariance, shard by shard).
"""

import pytest

from repro.apps.amodule.app import AMODULE_HOSTS, build_demo
from repro.apps.rle.app import RLE_HOSTS, build_rle_pipeline, build_rle_program
from repro.core import DataflowSession
from repro.core.shards import ShardedRun
from repro.dbg import Debugger, StopKind
from repro.sim.kernel import StopKind as KernelStopKind
from repro.sim.sharding import (
    HostSpec,
    fingerprint_streams,
    partition_program,
)

VALUES = (1, 1, 2, 3, 3, 3, 3, 9, 9, 4)
AM_VALUES = (1, 2, 3, 4)


def _set_tier(runtime, tier):
    runtime.config.interp_tier = tier
    for actor in runtime.all_actors():
        interp = getattr(actor, "interp", None)
        if interp is not None:
            interp.tier = tier


def _run_to_exit(dbg):
    ev = dbg.run()
    while ev.kind not in (StopKind.EXITED, StopKind.DEADLOCK, StopKind.ERROR):
        ev = dbg.cont()
    return ev


def _single_rle_fingerprint(tier):
    sched, runtime, sink = build_rle_pipeline(VALUES)
    _set_tier(runtime, tier)
    session = DataflowSession(Debugger(sched, runtime))
    session.replay.record_on(interval=16)
    assert _run_to_exit(session.dbg).kind == StopKind.EXITED
    assert [t.value for t in sink.received][: len(VALUES)] == list(VALUES)
    return fingerprint_streams(session.replay.master.link_value_streams())


def _sharded_rle(n_shards, tier):
    plan = partition_program(
        build_rle_program(VALUES), n_shards, hosts=[HostSpec(*h) for h in RLE_HOSTS]
    )

    def build(ctx):
        sched, runtime, sink = build_rle_pipeline(VALUES, shard=ctx)
        _set_tier(runtime, tier)
        return DataflowSession(Debugger(sched, runtime))

    return ShardedRun(plan, build, record=True)


def _single_amodule_fingerprint(tier):
    sched, _plat, runtime, _src, sink = build_demo(AM_VALUES)
    _set_tier(runtime, tier)
    session = DataflowSession(Debugger(sched, runtime))
    session.replay.record_on(interval=16)
    assert _run_to_exit(session.dbg).kind == StopKind.EXITED
    return fingerprint_streams(session.replay.master.link_value_streams())


def _sharded_amodule(n_shards, tier):
    from repro.apps.amodule.app import build_amodule_program

    plan = partition_program(
        build_amodule_program(attribute=1, max_steps=len(AM_VALUES)),
        n_shards,
        hosts=[HostSpec(*h) for h in AMODULE_HOSTS],
    )

    def build(ctx):
        sched, _plat, runtime, _src, _sink = build_demo(AM_VALUES, shard=ctx)
        _set_tier(runtime, tier)
        return DataflowSession(Debugger(sched, runtime))

    return ShardedRun(plan, build, record=True)


@pytest.mark.parametrize("tier", ["auto", "slow"])
@pytest.mark.parametrize("n_shards", [2, 4])
def test_rle_fingerprint_matches_single_kernel(tier, n_shards):
    single = _single_rle_fingerprint(tier)
    run = _sharded_rle(n_shards, tier)
    stop = run.run()
    assert stop.kind == "exited", stop
    assert run.fingerprint() == single


@pytest.mark.parametrize("tier", ["auto", "slow"])
@pytest.mark.parametrize("n_shards", [2, 4])
def test_amodule_fingerprint_matches_single_kernel(tier, n_shards):
    single = _single_amodule_fingerprint(tier)
    run = _sharded_amodule(n_shards, tier)
    stop = run.run()
    assert stop.kind == "exited", stop
    assert run.fingerprint() == single


def test_sharded_sink_receives_identity_roundtrip():
    run = _sharded_rle(2, "auto")
    assert run.run().kind == "exited"
    # the sink lives in some shard's runtime; find it by actor name
    received = None
    for session in run.sessions:
        for actor in session.dbg.runtime.all_actors():
            if actor.name == "cap" and hasattr(actor, "received"):
                received = [t.value for t in actor.received]
    assert received is not None and received[: len(VALUES)] == list(VALUES)


def test_breakpoint_in_one_shard_pauses_all_at_barrier():
    # reference: an undisturbed sharded run's per-shard dispatch counts
    ref = _sharded_rle(2, "auto")
    assert ref.run().kind == "exited"
    ref_dispatches = [s.dispatch_count for s in ref.shards]
    ref_fp = ref.fingerprint()

    run = _sharded_rle(2, "auto")
    codec_shard = run.plan.shard_of("codec")
    dbg = run.sessions[codec_shard].dbg
    dbg.break_source("pack.c:5", temporary=True)

    stop = run.run()
    assert stop.kind == "suspended"
    assert stop.shard == codec_shard
    assert stop.event is not None and stop.event.kind == StopKind.BREAKPOINT

    # every peer is parked at its own barrier — a quantum-boundary stop,
    # never a mid-dispatch or error state
    for shard in run.shards:
        if shard.index == codec_shard:
            continue
        assert shard.last_stop is None or shard.last_stop.kind in (
            KernelStopKind.MAX_TIME,
            KernelStopKind.DEADLOCK,
            KernelStopKind.EXHAUSTED,
        )

    # resuming re-enters the interrupted quantum: dispatch streams (and
    # therefore the fingerprint) are exactly those of the undisturbed run
    final = run.cont()
    while final.kind == "suspended":
        final = run.cont()
    assert final.kind == "exited"
    assert [s.dispatch_count for s in run.shards] == ref_dispatches
    assert run.fingerprint() == ref_fp


def test_info_shards_lines_after_run():
    run = _sharded_rle(2, "auto")
    assert run.run().kind == "exited"
    lines = run.info_lines()
    text = "\n".join(lines)
    assert "shard 0" in text and "shard 1" in text
    assert "horizon" in text or "closed" in text
    assert any("coordination rounds" in ln for ln in lines)


# ------------------------------------------------- synthetic multi-cluster

SYN_VALUES = (3, 1, 4, 1, 5)
#: small synthetic dims for the cheap regression rows (the full-size
#: 1000-actor graph runs once, in the dedicated test below)
SYN_SMALL = dict(chains=2, modules_per_chain=3, filters_per_module=2)


def _synthetic_single_fingerprint(values, **dims):
    from repro.apps.synthetic import build_synthetic_pipeline, lcg_reference
    from repro.sim.sharding import PushStreamRecorder

    sched, runtime, sinks = build_synthetic_pipeline(values, **dims)
    session = DataflowSession(Debugger(sched, runtime))
    rec = PushStreamRecorder(runtime)
    assert _run_to_exit(session.dbg).kind == StopKind.EXITED
    golden = lcg_reference(
        values,
        dims.get("modules_per_chain", 25) * dims.get("filters_per_module", 9),
        dims.get("work_iters", 1),
    )
    for sink in sinks:
        assert [t.value for t in sink.received] == golden
    return fingerprint_streams(dict(rec.streams))


def _sharded_synthetic(n_shards, values, override=None, **dims):
    from repro.apps.synthetic import (
        build_synthetic_pipeline,
        build_synthetic_program,
        synthetic_hosts,
    )
    from repro.sim.sharding import PushStreamRecorder, merge_link_streams

    program = build_synthetic_program(
        chains=dims.get("chains", 4),
        modules_per_chain=dims.get("modules_per_chain", 25),
        filters_per_module=dims.get("filters_per_module", 9),
        steps=len(values),
        work_iters=dims.get("work_iters", 1),
    )
    hosts = synthetic_hosts(
        dims.get("chains", 4), dims.get("modules_per_chain", 25)
    )
    plan = partition_program(
        program, n_shards, hosts=hosts, override=override
    )
    recorders = []

    def build(ctx):
        sched, runtime, _sinks = build_synthetic_pipeline(values, shard=ctx, **dims)
        recorders.append(PushStreamRecorder(runtime))
        return DataflowSession(Debugger(sched, runtime))

    run = ShardedRun(plan, build)
    assert run.run().kind == "exited"
    return fingerprint_streams(merge_link_streams([r.streams for r in recorders]))


@pytest.mark.parametrize("n_shards", [2, 4])
def test_synthetic_small_fingerprint_matches_single_kernel(n_shards):
    single = _synthetic_single_fingerprint(SYN_VALUES, **SYN_SMALL)
    assert _sharded_synthetic(n_shards, SYN_VALUES, **SYN_SMALL) == single


def test_synthetic_split_chain_override_fingerprint():
    """An override that cuts *through* a chain (fabric-to-fabric cross
    links, not just host boundaries) must not change the fingerprint."""
    single = _synthetic_single_fingerprint(SYN_VALUES, **SYN_SMALL)
    sharded = _sharded_synthetic(
        2, SYN_VALUES, override={"c0m1": 1, "c0m2": 1}, **SYN_SMALL
    )
    assert sharded == single


def test_synthetic_procpool_fingerprint_matches_single_kernel():
    """The process-pool backend agrees with the single kernel too."""
    from repro.apps.synthetic import (
        build_synthetic_pipeline,
        build_synthetic_program,
        synthetic_hosts,
    )
    from repro.sim.sharding import ProcPoolRun

    single = _synthetic_single_fingerprint(SYN_VALUES, **SYN_SMALL)
    program = build_synthetic_program(
        chains=SYN_SMALL["chains"],
        modules_per_chain=SYN_SMALL["modules_per_chain"],
        filters_per_module=SYN_SMALL["filters_per_module"],
        steps=len(SYN_VALUES),
    )
    hosts = synthetic_hosts(SYN_SMALL["chains"], SYN_SMALL["modules_per_chain"])
    plan = partition_program(program, 2, hosts=hosts)

    def builder(ctx):
        sched, runtime, _sinks = build_synthetic_pipeline(
            SYN_VALUES, shard=ctx, **SYN_SMALL
        )
        return DataflowSession(Debugger(sched, runtime))

    pool = ProcPoolRun(plan, builder)
    assert pool.run() == "exited"
    assert pool.fingerprint() == single


def test_synthetic_1000_actor_fingerprint_matches_single_kernel():
    """The headline graph: 4 clusters x 25 modules x (1 controller + 9
    filters) = 1000 fabric actors, sharded 2 ways on the default
    cluster-island heuristic."""
    single = _synthetic_single_fingerprint(SYN_VALUES)
    assert _sharded_synthetic(2, SYN_VALUES) == single
