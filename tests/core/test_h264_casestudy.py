"""The paper's §VI debugging session, scripted end to end."""

import pytest

from repro.apps.h264 import decode_golden
from repro.apps.h264.bugs import (
    build_corrupted_token,
    build_dropped_token,
    build_rate_mismatch,
)
from repro.apps.h264.app import build_decoder
from repro.core import DataflowSession, install_dataflow_commands
from repro.dbg import CommandCli, Debugger, StopKind


def attach(sched, runtime, **kwargs):
    dbg = Debugger(sched, runtime)
    cli = CommandCli(dbg)
    session = DataflowSession(dbg, cli=cli, **kwargs)
    return dbg, cli, session


def test_vi_b_catch_work_and_token_counts():
    """§VI-B: `filter pipe catch work` and `filter ipred catch *in=1`."""
    sched, platform, runtime, source, sink, mbs = build_decoder(n_mbs=4)
    dbg, cli, session = attach(sched, runtime, stop_on_init=True)
    dbg.run()
    cli.execute("filter pipe catch work")
    ev = dbg.cont()
    assert ev.kind == StopKind.DATAFLOW
    assert "WORK method of filter `pipe'" in ev.message
    # now the *in form on ipred's two inbound links
    cli.execute("filter ipred catch *in=1")
    ev = dbg.cont()
    # either pipe fires again first or ipred's tokens complete; drain until
    # the ipred catch message shows
    for _ in range(10):
        if "ipred" in ev.message and "requested tokens" in ev.message:
            break
        ev = dbg.cont()
    assert "Pipe_in=1" in ev.message and "Hwcfg_in=1" in ev.message


def test_vi_b_explicit_interface_catch():
    """§VI-B ①: `filter ipred catch Pipe_in=1, Hwcfg_in=1`."""
    sched, platform, runtime, source, sink, mbs = build_decoder(n_mbs=2)
    dbg, cli, session = attach(sched, runtime, stop_on_init=True)
    dbg.run()
    out = cli.execute("filter ipred catch Pipe_in=1, Hwcfg_in=1")
    assert "Catchpoint" in out[0]
    ev = dbg.cont()
    assert "ipred" in ev.message


def test_vi_c_step_both_on_ipred_dataflow_assignment():
    """§VI-C: stop at ipred's push line, step_both, observe both stops."""
    sched, platform, runtime, source, sink, mbs = build_decoder(n_mbs=2)
    dbg, cli, session = attach(sched, runtime, stop_on_init=True)
    dbg.run()
    # ipred.c line 7: pedf.io.Add2Dblock_ipf_out[0] = pred;
    dbg.break_source("ipred.c:7", temporary=True)
    ev = dbg.cont()
    assert ev.actor == "pred.ipred"
    out = cli.execute("step_both")
    assert (
        "[Temporary breakpoint inserted after input interface "
        "`ipf::Add2Dblock_ipred_in']" in out[0]
    )
    assert (
        "[Temporary breakpoint inserted after output interface "
        "`ipred::Add2Dblock_ipf_out`]" in out[1]
    )
    first = dbg.last_stop.message
    dbg.cont()
    second = dbg.last_stop.message
    msgs = {first, second}
    assert "[Stopped after sending token on `ipred::Add2Dblock_ipf_out`]" in msgs
    assert "[Stopped after receiving token from `ipf::Add2Dblock_ipred_in']" in msgs


def test_vi_d_fig4_graph_state_from_debugger():
    """§VI-A/D: the Fig. 4 stalled state through the debugger's graph."""
    sched, platform, runtime, source, sink, mbs = build_rate_mismatch(n_mbs=24)
    dbg, cli, session = attach(sched, runtime)
    ev = dbg.run()
    assert ev.kind == StopKind.DEADLOCK
    link = session.model.link_between("pipe::Pipe_ipf_out", "ipf::Pipe_cfg_in")
    assert link.occupancy == 20
    mbtype = session.model.link_between("hwcfg::pipe_MbType_out", "pipe::MbType_in")
    assert mbtype.occupancy == 3
    dot = session.graph_dot()
    assert 'label="20"' in dot
    assert 'label="3"' in dot


def test_vi_d_token_recording_transcript():
    """§VI-D: `iface hwcfg::pipe_MbType_out record` → `(U16) 5, 10, 15`."""
    sched, platform, runtime, source, sink, mbs = build_decoder(n_mbs=3)
    dbg, cli, session = attach(sched, runtime, stop_on_init=True)
    dbg.run()
    cli.execute("iface hwcfg::pipe_MbType_out record")
    dbg.cont()
    out = cli.execute("iface hwcfg::pipe_MbType_out print")
    assert out == ["#1 (U16) 5", "#2 (U16) 10", "#3 (U16) 15"]


def test_vi_d_provenance_hunt_on_corrupted_token():
    """§VI-D: catch at pipe's Red2PipeCbMB_in, walk last_token to bh."""
    sched, platform, runtime, source, sink, mbs = build_corrupted_token(n_mbs=8, corrupt_at=5)
    dbg, cli, session = attach(sched, runtime, stop_on_init=True)
    dbg.run()
    cli.execute("filter red configure splitter")
    golden = decode_golden(mbs)
    bad_izz = (golden[5].rsum * 0 + sum(mbs[5].residuals)) & 0xFF  # wrapped sum
    # stop when pipe receives the corrupted CbCr macroblock (Izz computed
    # from the wrapped U8 sum)
    expected_bad_izz = ((sum(mbs[5].residuals) & 0xFF) * 3 + 1) & 0xFFFFFFFF
    cli.execute(f"filter pipe catch Red2PipeCbMB_in if Izz == {expected_bad_izz}")
    ev = dbg.cont()
    assert "Stopped after receiving token from `pipe::Red2PipeCbMB_in'" in ev.message
    out = cli.execute("filter pipe info last_token")
    # #1 red -> pipe (CbCrMB_t) {Addr=0x1405, ...}
    assert out[0].startswith("#1 red -> pipe (CbCrMB_t)")
    assert "Addr=0x1405" in out[0]
    # #2 bh -> red (U32) <wrapped value> — the fault came from bh
    assert out[1].startswith("#2 bh -> red (U32)")
    wrapped = sum(mbs[5].residuals) & 0xFF
    assert str(wrapped) in out[1]


def test_vi_e_two_level_debugging():
    """§VI-E: dataflow `print last_token` then plain `print $1`."""
    sched, platform, runtime, source, sink, mbs = build_decoder(n_mbs=2)
    dbg, cli, session = attach(sched, runtime, stop_on_init=True)
    dbg.run()
    cli.execute("filter pipe catch Red2PipeCbMB_in")
    dbg.cont()
    out = cli.execute("filter pipe print last_token")
    assert out[0].startswith("$1 = (CbCrMB_t){Addr=0x1400")
    # classic GDB analyses the C structure
    out = cli.execute("print $1")
    assert "Addr = " in out[0] and "InterNotIntra = " in out[0] and "Izz = " in out[0]
    out = cli.execute("print $1.Izz")
    golden = decode_golden(mbs)
    assert out == [f"$3 = {golden[0].cbcr_izz}"]


def test_deadlock_untie_session():
    """The dropped-token variant debugged at the CLI: diagnose + inject."""
    sched, platform, runtime, source, sink, mbs = build_dropped_token(n_mbs=6)
    dbg, cli, session = attach(sched, runtime)
    ev = dbg.run()
    assert ev.kind == StopKind.DEADLOCK
    # diagnose with the scheduling monitor + filter state
    out = cli.execute("filter ipred info state")
    joined = "\n".join(out)
    assert "blocked waiting for data: yes" in joined
    out = cli.execute("iface ipred::Hwcfg_in info")
    assert any("0 queued" in line for line in out)
    # untie
    cli.execute(f"iface hwcfg::HwCfg_out insert {mbs[5].header}")
    ev = dbg.cont()
    assert ev.kind == StopKind.EXITED
    golden = decode_golden(mbs)
    assert sink.values == [g.decoded for g in golden]


def test_autocompletion_of_case_study_names():
    """§VI-A: filter and interface names suggested by auto-completion."""
    sched, platform, runtime, source, sink, mbs = build_decoder(n_mbs=1)
    dbg, cli, session = attach(sched, runtime, stop_on_init=True)
    dbg.run()
    cands = cli.complete("filter ip")
    assert "ipred" in cands and "ipf" in cands
    cands = cli.complete("iface hwcfg::pipe")
    assert "hwcfg::pipe_MbType_out" in cands
