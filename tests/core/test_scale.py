"""Scale sanity: full capture over a long run stays consistent."""

from repro.apps.h264.app import build_decoder
from repro.apps.h264.golden import decode_golden
from repro.core import DataflowSession
from repro.dbg import Debugger, StopKind


def test_long_run_under_full_capture_stays_consistent():
    sched, platform, runtime, source, sink, mbs = build_decoder(n_mbs=200)
    dbg = Debugger(sched, runtime)
    session = DataflowSession(dbg)
    ev = dbg.run()
    assert ev.kind == StopKind.EXITED
    assert sink.values == [g.decoded for g in decode_golden(mbs)]
    # model/runtime agreement holds after tens of thousands of events
    for link in session.model.links:
        assert link.occupancy == 0
        assert link.total_pushed == link.total_popped
    # token registry saw every movement: 21 pushes per macroblock
    # (5 stream words + hdr + 4 resid + mbtype + hwcfg + rsum + 2 red +
    #  2 pipe + 2 ipred + 1 mc + 1 ipf ... = count them from the links)
    total_pushes = sum(l.total_pushed for l in session.model.links)
    assert len(session.model.tokens) == total_pushes
    assert session.capture.data_events_processed == 2 * total_pushes
