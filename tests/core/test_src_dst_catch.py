"""§III conditional catchpoints on token source/destination."""

import pytest

from repro.dbg import StopKind
from repro.errors import DataflowDebugError

from .util import make_session


def test_catch_from_source_actor():
    session, cli, dbg, runtime, sink = make_session([1], stop_on_init=True)
    dbg.run()
    # filter_1's an_input tokens come from stim; cmd_in from the controller
    out = cli.execute("iface filter_1::an_input catch from stim")
    assert "from stim" in out[0]
    ev = dbg.cont()
    assert ev.kind == StopKind.DATAFLOW
    tok = session.model.find_actor("filter_1").last_token_in
    assert tok.src_actor == "stim"


def test_catch_from_mismatched_actor_never_fires():
    session, cli, dbg, runtime, sink = make_session([1], stop_on_init=True)
    dbg.run()
    cli.execute("iface filter_1::an_input catch from controller")
    ev = dbg.cont()
    assert ev.kind == StopKind.EXITED


def test_catch_to_destination_with_condition():
    session, cli, dbg, runtime, sink = make_session([4, 9], stop_on_init=True)
    dbg.run()
    cli.execute("iface filter_1::an_output catch to filter_2 if value == 19")
    ev = dbg.cont()
    assert ev.kind == StopKind.DATAFLOW  # 9*2+1 == 19
    assert session.model.find_actor("filter_1").last_token_out.value == 19


def test_catch_usage_error():
    session, cli, dbg, runtime, sink = make_session([1], stop_on_init=True)
    dbg.run()
    out = cli.execute("iface filter_1::an_input catch bogus syntax")
    assert "usage:" in out[0]


def test_catch_unknown_src_actor_rejected():
    session, cli, dbg, runtime, sink = make_session([1], stop_on_init=True)
    dbg.run()
    with pytest.raises(DataflowDebugError):
        session.catch_iface("filter_1::an_input", src_actor="nope")
