"""Capture-mode transitions mid-run: the model degrades gracefully."""

from repro.dbg import StopKind

from .util import make_session


def test_tokens_pushed_while_blind_are_reconstructed_on_pop():
    """Disable data capture, let tokens be produced, re-enable: the pops
    of never-seen tokens are reconstructed from the runtime token's own
    metadata (the §V mitigation's model-staleness, bounded)."""
    session, cli, dbg, runtime, sink = make_session([1, 2], stop_on_init=True)
    dbg.run()
    session.set_data_capture("none")
    # run until the first step completes, blind
    cp = session.catch_step("end", temporary=True)
    ev = dbg.cont()
    assert "end of step 1" in ev.message
    session.set_data_capture("all")
    ev = dbg.cont()
    assert ev.kind == StopKind.EXITED
    # the second value flowed under full capture; tokens that were pushed
    # blind but popped captured exist as reconstructed entries
    f1 = session.model.find_actor("filter_1")
    assert f1.last_token_in is not None
    # every tracked token has consistent endpoints
    for token in session.model.tokens.values():
        assert token.dst_iface
        assert token.src_iface


def test_mode_changes_are_idempotent_and_switchable():
    session, cli, dbg, runtime, sink = make_session([1, 2, 3], stop_on_init=True)
    dbg.run()
    for mode in ("none", "none", "control-only", ["filter_1"], "all"):
        session.set_data_capture(mode)
    assert session.capture.data_mode == "all"
    ev = dbg.cont()
    assert ev.kind == StopKind.EXITED
    assert len(sink.values) == 3


def test_graph_before_init_is_empty_but_valid():
    session, cli, dbg, runtime, sink = make_session([1])
    dot = session.graph_dot()
    assert dot.startswith("digraph")
    assert "->" not in dot
