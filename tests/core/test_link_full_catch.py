"""`iface ... catch full` — catching the rate mismatch at its onset."""

import pytest

from repro.apps.h264.bugs import build_rate_mismatch
from repro.core import DataflowSession
from repro.dbg import CommandCli, Debugger, StopKind
from repro.errors import DataflowDebugError


def test_catch_full_fires_before_the_deadlock():
    sched, platform, runtime, source, sink, mbs = build_rate_mismatch(n_mbs=24)
    dbg = Debugger(sched, runtime)
    cli = CommandCli(dbg)
    session = DataflowSession(dbg, cli=cli, stop_on_init=True)
    dbg.run()
    out = cli.execute("iface ipf::Pipe_cfg_in catch full")
    assert "catch full" in out[0]
    ev = dbg.cont()
    assert ev.kind == StopKind.DATAFLOW
    assert "is full (20/20 tokens)" in ev.message
    assert "rate mismatch" in ev.message
    # we're at the onset: the rest of the pipeline is still healthy and
    # the decoder has produced output so far
    assert len(sink.values) >= 19
    link = session.model.link_between("pipe::Pipe_ipf_out", "ipf::Pipe_cfg_in")
    assert link.occupancy == 20
    # continuing from here runs into the eventual stall
    ev = dbg.cont()
    assert ev.kind == StopKind.DEADLOCK


def test_catch_full_accepts_either_endpoint():
    sched, platform, runtime, source, sink, mbs = build_rate_mismatch(n_mbs=24)
    dbg = Debugger(sched, runtime)
    session = DataflowSession(dbg, stop_on_init=True)
    dbg.run()
    session.catch_link_full("pipe::Pipe_ipf_out")  # producer side
    ev = dbg.cont()
    assert ev.kind == StopKind.DATAFLOW
    assert "is full" in ev.message


def test_catch_full_rejects_unbounded_links():
    from repro.apps.amodule import build_demo

    sched, platform, runtime, source, sink = build_demo([1])
    dbg = Debugger(sched, runtime)
    session = DataflowSession(dbg, stop_on_init=True)
    dbg.run()
    # AModule links have capacity 16; forge an unbounded one via the model
    link = session.model.link_between("filter_1::an_output", "filter_2::an_input")
    link.capacity = 0
    with pytest.raises(DataflowDebugError) as e:
        session.catch_link_full("filter_2::an_input")
    assert "unbounded" in str(e.value)


def test_catch_full_never_fires_on_healthy_decoder():
    from repro.apps.h264.app import build_decoder

    sched, platform, runtime, source, sink, mbs = build_decoder(n_mbs=6)
    dbg = Debugger(sched, runtime)
    session = DataflowSession(dbg, stop_on_init=True)
    dbg.run()
    session.catch_link_full("ipf::Pipe_cfg_in")
    ev = dbg.cont()
    assert ev.kind == StopKind.EXITED
