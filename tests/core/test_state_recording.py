"""§VI-D extended provenance: recording producer state into tokens."""

from repro.apps.h264.app import build_decoder
from repro.core import DataflowSession
from repro.dbg import CommandCli, Debugger


def make():
    sched, platform, runtime, source, sink, mbs = build_decoder(n_mbs=3)
    dbg = Debugger(sched, runtime)
    cli = CommandCli(dbg)
    session = DataflowSession(dbg, cli=cli, stop_on_init=True)
    dbg.run()
    return cli, dbg, session, mbs


def test_state_snapshot_recorded_into_tokens():
    cli, dbg, session, mbs = make()
    out = cli.execute("filter red record state")
    assert "Recording" in out[0]
    session.catch_iface("pipe::Red2PipeCbMB_in", event="pop", temporary=True)
    dbg.cont()
    token = session.model.find_actor("pipe").last_token_in
    assert token.producer_state is not None
    # red's mb_count was 0 when it pushed the first macroblock
    assert token.producer_state["data.mb_count"] == "0"


def test_state_appears_in_token_path():
    cli, dbg, session, mbs = make()
    cli.execute("filter red record state")
    cli.execute("filter bh record state")
    session.catch_iface("pipe::Red2PipeCbMB_in", event="pop", temporary=True)
    dbg.cont()
    dbg.cont()  # second macroblock... (catch was temporary; run to exit)
    out = session.token_path("pipe")
    state_lines = [line for line in out if "state:" in line]
    assert any("[red state:" in line for line in state_lines)
    assert any("[bh state:" in line for line in state_lines)
    assert any("attribute.corrupt_at" in line for line in state_lines)


def test_state_recording_disable():
    cli, dbg, session, mbs = make()
    cli.execute("filter red record state")
    cli.execute("filter red record nostate")
    session.catch_iface("pipe::Red2PipeCbMB_in", event="pop", temporary=True)
    dbg.cont()
    token = session.model.find_actor("pipe").last_token_in
    assert token.producer_state is None


def test_record_usage_error():
    cli, dbg, session, mbs = make()
    out = cli.execute("filter red record bogus")
    assert "usage:" in out[0]
