import pytest

from repro.errors import MindError
from repro.mind import parse_adl


PAPER_ADL = """
@Filter
primitive AFilter {
    data      stddefs.h:U32 a_private_data;
    attribute stddefs.h:U32 an_attribute;
    source    the_source.c;
    input  stddefs.h:U32 as an_input;
    input  stddefs.h:U32 as cmd_in;
    output stddefs.h:U32 as an_output;
}

@Module
composite AModule {
    contains as controller {
        output U32 as cmd_out_1;
        output U32 as cmd_out_2;
        source ctrl_source.c;
    }
    // External connections
    input  U32 as module_in;
    output U32 as module_out;
    // Sub-components
    contains AFilter as filter_1;
    contains AFilter as filter_2;
    // Connections
    binds controller.cmd_out_1 to filter_1.cmd_in;
    binds controller.cmd_out_2 to filter_2.cmd_in;
    binds this.module_in       to filter_1.an_input;
    binds filter_1.an_output   to filter_2.an_input;
    binds filter_2.an_output   to this.module_out;
}
"""


def test_paper_excerpt_parses():
    adl = parse_adl(PAPER_ADL)
    assert len(adl.filter_types) == 1
    assert len(adl.modules) == 1
    ft = adl.filter_types[0]
    assert ft.name == "AFilter"
    assert [d[1] for d in ft.data] == ["a_private_data"]
    assert [a[1] for a in ft.attributes] == ["an_attribute"]
    assert ft.source == "the_source.c"
    assert [(i.direction, i.name) for i in ft.ifaces] == [
        ("input", "an_input"),
        ("input", "cmd_in"),
        ("output", "an_output"),
    ]
    # header-qualified type refs
    assert ft.ifaces[0].ctype.header == "stddefs.h"
    assert ft.ifaces[0].ctype.name == "U32"


def test_module_structure():
    adl = parse_adl(PAPER_ADL)
    mod = adl.modules[0]
    assert mod.name == "AModule"
    assert mod.controller is not None
    assert [i.name for i in mod.controller.ifaces] == ["cmd_out_1", "cmd_out_2"]
    assert mod.controller.source == "ctrl_source.c"
    assert [(i.type_name, i.name) for i in mod.instances] == [
        ("AFilter", "filter_1"),
        ("AFilter", "filter_2"),
    ]
    assert [i.name for i in mod.ifaces] == ["module_in", "module_out"]
    assert len(mod.binds) == 5
    assert mod.binds[2].src == ("this", "module_in")
    assert mod.binds[2].dst == ("filter_1", "an_input")


def test_struct_declaration():
    adl = parse_adl("""
    @Struct
    struct CbCrMB_t {
        U32 Addr;
        U32 InterNotIntra;
        U32 Izz;
        U8 pix[16];
    };
    """)
    s = adl.structs[0]
    assert s.name == "CbCrMB_t"
    assert [f[1] for f in s.fields] == ["Addr", "InterNotIntra", "Izz", "pix"]
    assert s.fields[3][2] == 16  # array field


def test_extensions_parse():
    adl = parse_adl("""
    @Program demo;
    @Filter
    primitive F {
        source f.c;
        hwaccel;
        attribute U32 gain = 3;
        input U32 as i;
        output U32 as o;
    }
    @Module
    composite M {
        cluster 2;
        predicate fast = true;
        contains as controller { source c.c; maxsteps 10; }
        contains F as f1 { attribute gain = 7; }
        input U32 as min_;
        output U32 as mout;
        binds this.min_ to f1.i capacity=4 dma=true;
        binds f1.o to this.mout;
    }
    @Module
    composite N {
        contains as controller { source c.c; }
        contains F as f2;
        input U32 as nin;
        binds this.nin to f2.i;
    }
    binds M.mout to N.nin capacity=2;
    """)
    assert adl.program_name == "demo"
    assert adl.filter_types[0].hw_accel
    assert adl.filter_types[0].attributes[0][2] == 3
    mod = adl.modules[0]
    assert mod.cluster == 2
    assert mod.predicates == {"fast": True}
    assert mod.controller.max_steps == 10
    assert mod.instances[0].attr_overrides == {"gain": 7}
    assert mod.binds[0].capacity == 4 and mod.binds[0].dma is True
    assert adl.binds[0].src == ("M", "mout")
    assert adl.binds[0].capacity == 2


def test_comments_and_negative_attribute():
    adl = parse_adl("""
    /* block
       comment */
    @Filter
    primitive F {
        source f.c; // trailing comment
        attribute S32 bias = -5;
        input U32 as i;
    }
    """)
    assert adl.filter_types[0].attributes[0][2] == -5


@pytest.mark.parametrize(
    "bad",
    [
        "@Bogus",
        "@Filter primitive F { junk; }",
        "@Module composite M { contains as controller { source c.c; } contains as controller { source d.c; } }",
        "@Module composite M { binds a.b to ; }",
        "@Module composite M { predicate p = maybe; }",
        "binds a to b;",
        "@Filter primitive F { input U32 i; }",  # missing 'as'
    ],
)
def test_parse_errors(bad):
    with pytest.raises(MindError):
        parse_adl(bad)
