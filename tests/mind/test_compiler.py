"""ADL → ProgramDecl elaboration, and equivalence with the Python API."""

import pytest

from repro.apps.amodule import (
    ADL_SOURCE,
    CONTROLLER_SOURCE,
    FILTER_SOURCE,
    build_amodule_program,
)
from repro.apps.amodule.app import expected_output
from repro.cminus.typesys import U32, StructType
from repro.errors import MindError
from repro.mind import compile_adl
from repro.p2012.soc import P2012Platform, PlatformConfig
from repro.pedf.compile import compile_program
from repro.pedf.runtime import PedfRuntime
from repro.sim import Scheduler

SOURCES = {"the_source.c": FILTER_SOURCE, "ctrl_source.c": CONTROLLER_SOURCE}


def compile_paper_adl():
    return compile_adl(ADL_SOURCE, SOURCES, program_name="amodule_demo")


def test_adl_compiles_to_program_decl():
    program = compile_paper_adl()
    assert set(program.modules) == {"AModule"}
    mod = program.modules["AModule"]
    assert set(mod.filters) == {"filter_1", "filter_2"}
    assert mod.controller is not None
    assert mod.controller.work_symbol == "_component_AModuleModule_anon_0_work"
    assert mod.filters["filter_1"].work_symbol == "Filter1Filter_work_function"
    assert len(mod.bindings) == 5


def test_adl_equivalent_to_python_api():
    """The ADL route and the Python-API route produce the same graph."""
    adl_prog = compile_paper_adl()
    py_prog = build_amodule_program()
    compile_program(py_prog)
    adl_mod = adl_prog.modules["AModule"]
    py_mod = py_prog.modules["AModule"]
    assert set(adl_mod.filters) == set(py_mod.filters)
    assert {(str(b.src), str(b.dst)) for b in adl_mod.bindings} == {
        (str(b.src), str(b.dst)) for b in py_mod.bindings
    }
    f_adl = adl_mod.filters["filter_1"]
    f_py = py_mod.filters["filter_1"]
    assert set(f_adl.ifaces) == set(f_py.ifaces)
    assert set(f_adl.data) == set(f_py.data)
    assert set(f_adl.attributes) == set(f_py.attributes)


def test_adl_program_runs_end_to_end():
    sched = Scheduler()
    platform = P2012Platform(sched, PlatformConfig(n_clusters=2, pes_per_cluster=4))
    program = compile_paper_adl()
    program.modules["AModule"].controller.max_steps = 3
    # attribute default is 0 in the ADL (no '=' given)
    runtime = PedfRuntime(sched, platform, program)
    runtime.add_source("stim", "AModule", "module_in", [1, 2, 3])
    sink = runtime.add_sink("cap", "AModule", "module_out", expect=3)
    runtime.load()
    stop = sched.run()
    assert runtime.classify_stop(stop) == "exited"
    assert sink.values == expected_output([1, 2, 3], attribute=0)


def test_struct_token_type_flows_through():
    adl = """
    @Struct
    struct Pair { U32 a; U32 b; };
    @Filter
    primitive Swap {
        source swap.c;
        input Pair as i;
        output Pair as o;
    }
    @Module
    composite M {
        contains as controller { source ctl.c; maxsteps 1; }
        contains Swap as sw;
        input Pair as min_;
        output Pair as mout;
        binds this.min_ to sw.i;
        binds sw.o to this.mout;
    }
    """
    sources = {
        "swap.c": """
            void work() {
                Pair p = pedf.io.i[0];
                Pair q;
                q.a = p.b;
                q.b = p.a;
                pedf.io.o[0] = q;
            }
        """,
        "ctl.c": "void work() { ACTOR_FIRE(sw); WAIT_FOR_ACTOR_SYNC(); }",
    }
    program = compile_adl(adl, sources)
    assert isinstance(program.structs["Pair"], StructType)

    sched = Scheduler()
    platform = P2012Platform(sched, PlatformConfig(n_clusters=1, pes_per_cluster=4))
    runtime = PedfRuntime(sched, platform, program)
    runtime.add_source("s", "M", "min_", [{"a": 1, "b": 2}])
    sink = runtime.add_sink("k", "M", "mout", expect=1)
    runtime.load()
    stop = sched.run()
    assert runtime.classify_stop(stop) == "exited"
    assert sink.values == [{"a": 2, "b": 1}]


def test_attribute_override_applies():
    adl = """
    @Filter
    primitive F {
        attribute U32 gain = 1;
        source f.c;
        input U32 as i;
        output U32 as o;
    }
    @Module
    composite M {
        contains as controller { source c.c; maxsteps 1; }
        contains F as f1 { attribute gain = 9; }
        input U32 as min_;
        output U32 as mout;
        binds this.min_ to f1.i;
        binds f1.o to this.mout;
    }
    """
    sources = {
        "f.c": "void work() { pedf.io.o[0] = pedf.io.i[0] * pedf.attribute.gain; }",
        "c.c": "void work() { ACTOR_FIRE(f1); WAIT_FOR_ACTOR_SYNC(); }",
    }
    program = compile_adl(adl, sources)
    assert program.modules["M"].filters["f1"].attributes["gain"] == (U32, 9)

    sched = Scheduler()
    platform = P2012Platform(sched, PlatformConfig(n_clusters=1, pes_per_cluster=4))
    runtime = PedfRuntime(sched, platform, program)
    runtime.add_source("s", "M", "min_", [5])
    sink = runtime.add_sink("k", "M", "mout", expect=1)
    runtime.load()
    sched.run()
    assert sink.values == [45]


def test_missing_source_file_reported():
    with pytest.raises(MindError) as e:
        compile_adl(ADL_SOURCE, {"ctrl_source.c": CONTROLLER_SOURCE})
    assert "the_source.c" in str(e.value)


def test_unknown_type_reported():
    with pytest.raises(MindError) as e:
        compile_adl(
            "@Filter primitive F { source f.c; input Bogus as i; }",
            {"f.c": "void work() {}"},
        )
    assert "unknown type" in str(e.value)


def test_unknown_filter_type_reported():
    adl = """
    @Module
    composite M {
        contains as controller { source c.c; }
        contains Nope as f1;
    }
    """
    with pytest.raises(MindError) as e:
        compile_adl(adl, {"c.c": "void work() {}"})
    assert "unknown filter type" in str(e.value)


def test_override_unknown_attribute_reported():
    adl = """
    @Filter
    primitive F { source f.c; input U32 as i; }
    @Module
    composite M {
        contains as controller { source c.c; }
        contains F as f1 { attribute nope = 1; }
        input U32 as min_;
        binds this.min_ to f1.i;
    }
    """
    with pytest.raises(MindError) as e:
        compile_adl(adl, {"f.c": "void work() { U32 x = pedf.io.i[0]; }", "c.c": "void work() {}"})
    assert "unknown attribute" in str(e.value)


def test_filter_c_type_error_surfaces_with_location():
    adl = """
    @Filter
    primitive F { source f.c; input U32 as i; }
    @Module
    composite M {
        contains as controller { source c.c; }
        contains F as f1;
        input U32 as min_;
        binds this.min_ to f1.i;
    }
    """
    from repro.errors import CMinusTypeError

    with pytest.raises(CMinusTypeError) as e:
        compile_adl(adl, {"f.c": "void work() { pedf.io.i[0] = 3; }", "c.c": "void work() {}"})
    assert "f.c" in str(e.value)
