"""Property test: randomly generated ADL pipelines compile and run
correctly through the whole MIND → PEDF → platform → debugger stack."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mind import compile_adl
from repro.p2012.soc import P2012Platform, PlatformConfig
from repro.pedf.runtime import PedfRuntime
from repro.sim import Scheduler

OPS = {
    "add": ("pedf.io.i[0] + pedf.attribute.k", lambda x, k: (x + k) & 0xFFFFFFFF),
    "mul": ("pedf.io.i[0] * pedf.attribute.k", lambda x, k: (x * k) & 0xFFFFFFFF),
    "xor": ("pedf.io.i[0] ^ pedf.attribute.k", lambda x, k: x ^ k),
}


def generate_adl(stages):
    """Emit ADL text + sources for a linear pipeline of typed stages."""
    parts = []
    sources = {}
    for i, (op, k) in enumerate(stages):
        parts.append(f"""
@Filter
primitive F{i} {{
    attribute U32 k = {k};
    source f{i}.c;
    input U32 as i;
    output U32 as o;
}}""")
        sources[f"f{i}.c"] = f"void work() {{ pedf.io.o[0] = {OPS[op][0]}; }}"
    fire = " ".join(f"ACTOR_FIRE(s{i});" for i in range(len(stages)))
    sources["ctl.c"] = f"void work() {{ {fire} WAIT_FOR_ACTOR_SYNC(); }}"
    contains = "\n    ".join(f"contains F{i} as s{i};" for i in range(len(stages)))
    binds = ["binds this.min_ to s0.i;"]
    for i in range(len(stages) - 1):
        binds.append(f"binds s{i}.o to s{i + 1}.i;")
    binds.append(f"binds s{len(stages) - 1}.o to this.mout;")
    binds_text = "\n    ".join(binds)
    parts.append(f"""
@Module
composite M {{
    contains as controller {{ source ctl.c; }}
    {contains}
    input U32 as min_;
    output U32 as mout;
    {binds_text}
}}""")
    return "\n".join(parts), sources


@settings(max_examples=15, deadline=None)
@given(
    stages=st.lists(
        st.tuples(st.sampled_from(sorted(OPS)), st.integers(min_value=0, max_value=999)),
        min_size=1,
        max_size=4,
    ),
    values=st.lists(st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=5),
)
def test_property_generated_adl_pipelines(stages, values):
    adl_text, sources = generate_adl(stages)
    program = compile_adl(adl_text, sources)
    program.modules["M"].controller.max_steps = len(values)
    sched = Scheduler()
    platform = P2012Platform(sched, PlatformConfig(n_clusters=1, pes_per_cluster=8))
    runtime = PedfRuntime(sched, platform, program)
    runtime.add_source("s", "M", "min_", list(values))
    sink = runtime.add_sink("k", "M", "mout", expect=len(values))
    runtime.load()
    stop = sched.run()
    assert runtime.classify_stop(stop) == "exited"
    expected = []
    for v in values:
        x = v
        for op, k in stages:
            x = OPS[op][1](x, k)
        expected.append(x)
    assert sink.values == expected
