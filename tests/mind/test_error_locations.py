"""MIND errors carry the ADL file name and line number."""

import pytest

from repro.errors import MindError
from repro.mind import compile_adl, parse_adl


def test_parse_error_reports_line():
    adl = "\n\n@Filter\nprimitive F {\n    junk;\n}\n"
    with pytest.raises(MindError) as e:
        parse_adl(adl, filename="app.adl")
    assert "app.adl:5" in str(e.value)


def test_unknown_type_reports_line():
    adl = "@Filter\nprimitive F {\n    source f.c;\n    input Bogus as i;\n}\n"
    with pytest.raises(MindError) as e:
        compile_adl(adl, {"f.c": "void work() {}"}, filename="app.adl")
    assert "app.adl:4" in str(e.value)


def test_missing_source_reports_filter_context():
    adl = """
    @Filter
    primitive F { source missing.c; input U32 as i; }
    @Module
    composite M {
        contains as controller { source ctl.c; }
        contains F as f;
        input U32 as min_;
        binds this.min_ to f.i;
    }
    """
    with pytest.raises(MindError) as e:
        compile_adl(adl, {"ctl.c": "void work() {}"})
    msg = str(e.value)
    assert "missing.c" in msg and "filter type F" in msg
    assert "known: ctl.c" in msg


def test_binding_direction_error_names_binding():
    adl = """
    @Filter
    primitive F { source f.c; input U32 as i; output U32 as o; }
    @Module
    composite M {
        contains as controller { source c.c; }
        contains F as a;
        contains F as b;
        binds a.i to b.i;
    }
    """
    from repro.errors import PedfError

    with pytest.raises(PedfError) as e:
        compile_adl(adl, {"f.c": "void work() { pedf.io.o[0] = pedf.io.i[0]; }",
                          "c.c": "void work() {}"})
    assert "a.i" in str(e.value) and "producer" in str(e.value)


def test_comment_line_counting():
    adl = """/* a long
block
comment */
@Filter
primitive F {
    bad_keyword;
}
"""
    with pytest.raises(MindError) as e:
        parse_adl(adl, filename="x.adl")
    assert "x.adl:6" in str(e.value)
