"""The experiment harnesses produce the paper's shapes."""

import pytest

from repro.eval import (
    fig1_platform_report,
    fig2_amodule_graph,
    fig3_capture_report,
    fig4_h264_graph,
    run_localization_comparison,
    run_overhead_comparison,
)
from repro.eval.localization import SCENARIOS
from repro.eval.overhead import format_rows


def test_fig1_topology_and_costs():
    report = fig1_platform_report()
    assert report["total_pes"] == 64
    measured = report["measured"]
    # Fig. 1's hierarchy: intra-cluster < inter-cluster < host-fabric
    assert (
        measured["link_cost_intra_cluster"]
        < measured["link_cost_inter_cluster"]
        < measured["link_cost_host_fabric"]
    )
    assert measured["dma_transfer_cycles"] > 0


def test_fig2_amodule_graph_structure():
    dot, counts = fig2_amodule_graph()
    # Fig. 2: one controller (green box), two filters, two control links,
    # one inner data link; module_in/module_out stay unbound in the figure
    assert counts["controllers"] == 1
    assert counts["filters"] == 2
    assert counts["control_links"] == 2
    assert counts["data_links"] == 1
    assert counts["external_ifaces_unbound"] == 2
    assert 'fillcolor="palegreen"' in dot
    assert "AModule_filter_1 -> AModule_filter_2" in dot


def test_fig3_capture_mirrors_runtime():
    report = fig3_capture_report(n_mbs=4)
    assert report["decoded"] == 4
    assert report["model_mismatches"] == []
    assert report["model_actors"] == 12  # 2 controllers + 8 filters + source + sink
    by_symbol = report["events_by_symbol"]
    assert by_symbol["pedf_rt_push"] == by_symbol["pedf_rt_pop"]
    # two controllers x 4 steps x (entry + exit phases)
    assert by_symbol["pedf_rt_step_begin"] == 2 * 4 * 2


def test_fig4_stalled_graph_counts():
    dot, occupancy = fig4_h264_graph(n_mbs=24)
    assert occupancy["pipe::Pipe_ipf_out->ipf::Pipe_cfg_in"] == 20
    assert occupancy["hwcfg::pipe_MbType_out->pipe::MbType_in"] == 3
    # pred-module data links are drained, as in the figure
    assert occupancy["red::Red2PipeCbMB_out->pipe::Red2PipeCbMB_in"] == 0
    assert occupancy["ipred::Add2Dblock_ipf_out->ipf::Add2Dblock_ipred_in"] == 0
    assert 'label="20"' in dot


@pytest.mark.slow
def test_sec5_overhead_shape():
    rows = run_overhead_comparison(n_mbs=30)
    by = {r.config: r for r in rows}
    # full capture processes every token movement; attached-with-capture-off none
    assert by["full-capture"].data_events > 0
    assert by["attached"].data_events == 0
    assert by["actor-specific"].data_events < by["full-capture"].data_events
    assert by["control-only"].data_events < by["full-capture"].data_events
    # every configuration decoded the same output (asserted inside too)
    assert len({r.output_checksum for r in rows}) == 1
    assert len({r.sim_cycles for r in rows}) == 1  # simulated time identical
    # shape: full capture should not be cheaper than capture-off (allow
    # generous tolerance — single-run wall clocks are noisy; the bench
    # measures this properly over many rounds)
    assert by["full-capture"].wall_seconds >= 0.5 * by["attached"].wall_seconds
    # attached-idle: debugger present, nothing armed — hook elision means
    # it never observes a data event
    assert by["attached-idle"].data_events == 0
    text = format_rows(rows)
    assert len(text) == 8


@pytest.mark.slow
def test_sec6_localization_dataflow_beats_plain():
    results = run_localization_comparison()
    assert all(r.located for r in results), [
        (r.scenario, r.strategy) for r in results if not r.located
    ]
    by = {(r.scenario, r.strategy): r for r in results}
    for scenario in SCENARIOS:
        df = by[(scenario, "dataflow")].interactions
        plain = by[(scenario, "plain")].interactions
        assert df < plain, f"{scenario}: dataflow={df} plain={plain}"
        # the paper's qualitative claim is a *substantial* gap
        assert plain / df >= 2, f"{scenario}: gap too small ({df} vs {plain})"
