"""Transport-layer units: line JSON-RPC framing, sniffing, DAP frames."""

import asyncio
import json

from repro.serve import protocol as proto


def test_encode_line_is_compact_newline_terminated():
    data = proto.encode_line({"b": 1, "a": [1, 2]})
    assert data.endswith(b"\n")
    assert b" " not in data  # compact separators: the newline is the framing
    assert json.loads(data) == {"a": [1, 2], "b": 1}


def test_response_and_error_shapes():
    ok = proto.response(7, {"x": 1})
    assert ok == {"jsonrpc": "2.0", "id": 7, "result": {"x": 1}}
    err = proto.error_response(7, proto.ERR_QUOTA, "spent", {"quota": "max_events"})
    assert err["error"]["code"] == 1002
    assert err["error"]["data"] == {"quota": "max_events"}
    bare = proto.error_response(None, proto.ERR_PARSE, "bad")
    assert "data" not in bare["error"]


def test_event_notification_has_no_id():
    note = proto.event_notification("s1", "stop", {"kind": "breakpoint"})
    assert "id" not in note
    assert note["method"] == "event"
    assert note["params"]["session"] == "s1"
    assert note["params"]["type"] == "stop"


def test_parse_request_happy_path():
    request, problem = proto.parse_request(
        b'{"jsonrpc":"2.0","id":1,"method":"ping"}\n'
    )
    assert problem is None
    assert request["method"] == "ping"
    assert request["params"] == {}  # defaulted, always a dict


def test_parse_request_null_params_normalised():
    request, problem = proto.parse_request(
        b'{"id":1,"method":"ping","params":null}'
    )
    assert problem is None
    assert request["params"] == {}


def test_parse_request_rejects_garbage():
    request, problem = proto.parse_request(b"{nope")
    assert request is None and "parse error" in problem

    request, problem = proto.parse_request(b"[1,2,3]")
    assert request is None and "not an object" in problem

    request, problem = proto.parse_request(b'{"id":1}')
    assert request is None and "missing method" in problem

    request, problem = proto.parse_request(b'{"method":"x","params":[1]}')
    assert request is None and "params must be an object" in problem


def test_sniff_protocol():
    assert proto.sniff_protocol(b"{") == "jsonrpc"
    assert proto.sniff_protocol(b"C") == "dap"
    assert proto.sniff_protocol(b"G") == "http"
    # unknown first bytes fall back to JSON-RPC so the client at least
    # gets a parse error back instead of silence
    assert proto.sniff_protocol(b"x") == "jsonrpc"


def _feed_reader(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def _read_dap(data: bytes, prefix: bytes = b""):
    async def go():
        return await proto.read_dap_message(_feed_reader(data), prefix=prefix)

    return asyncio.run(go())


def test_dap_round_trip():
    message = {"type": "request", "command": "initialize", "seq": 1}
    assert _read_dap(proto.encode_dap(message)) == message


def test_dap_prefix_replay():
    # the sniffer consumed the first byte; the reader must splice it back
    frame = proto.encode_dap({"seq": 2, "type": "request", "command": "threads"})
    assert _read_dap(frame[1:], prefix=frame[:1])["command"] == "threads"


def test_dap_eof_and_bad_frames_return_none():
    assert _read_dap(b"") is None
    assert _read_dap(b"Content-Length: nope\r\n\r\n{}") is None
    assert _read_dap(b"X-Whatever: 1\r\n\r\n{}") is None  # no length at all
    # truncated body
    assert _read_dap(b'Content-Length: 99\r\n\r\n{"a":1}') is None
    # body is not an object
    assert _read_dap(b"Content-Length: 7\r\n\r\n[1,2,3]") is None
