"""The acceptance load test: 100 concurrent wire clients, each owning a
session, all doing break → run → inspect → continue at once.  Verifies
zero cross-session leakage (every session's first breakpoint is #1, every
stop names the right session) and that latency percentiles stay sane."""

import time
from concurrent.futures import ThreadPoolExecutor

N_CLIENTS = 100


def _percentile(samples, q):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(len(ordered) * q))]


def _one_client(daemon, index):
    timings = {}
    with daemon.connect(timeout=120) as c:
        t0 = time.perf_counter()
        created = c.create("rle", name=f"load-{index}")
        timings["create_ms"] = (time.perf_counter() - t0) * 1000
        sid = created["session"]
        c.subscribe(sid)

        t0 = time.perf_counter()
        placed = c.execute(sid, "break pack.c:7")
        timings["command_ms"] = (time.perf_counter() - t0) * 1000
        assert placed["ok"]

        first_bp = c.breakpoints(sid)[0]["id"]
        assert c.execute(sid, "run")["ok"]
        hit = c.execute(sid, "continue")
        assert hit["stop"]["kind"] == "breakpoint"

        # inspect: the stopped frame is this session's own machine
        frames = c.frames(sid, "codec.pack")
        assert frames[0]["name"] == "PackFilter_work_function"
        assert c.evaluate(sid, "value")["ok"]

        # the pushed stop events name this session and no other
        event_sessions = {e["session"] for e in c.drain_events()}
        assert event_sessions <= {sid}

        resumed = c.execute(sid, "continue")
        assert resumed["ok"]
        c.destroy(sid)
    return sid, first_bp, timings


def test_hundred_concurrent_clients(daemon):
    with ThreadPoolExecutor(max_workers=N_CLIENTS) as pool:
        results = list(
            pool.map(lambda i: _one_client(daemon, i), range(N_CLIENTS))
        )

    sids = [sid for sid, _, _ in results]
    assert len(set(sids)) == N_CLIENTS  # every client got its own session

    # zero cross-session leakage: had any two sessions shared a
    # breakpoint registry, later creates would see ids > 1
    assert all(first_bp == 1 for _, first_bp, _ in results)

    # latency sanity (the CI smoke job applies the strict gate on an
    # idle runner; here we only refuse pathological serialisation)
    create_p95 = _percentile([t["create_ms"] for _, _, t in results], 0.95)
    command_p95 = _percentile([t["command_ms"] for _, _, t in results], 0.95)
    assert create_p95 < 60_000, f"create p95 {create_p95:.0f}ms"
    assert command_p95 < 30_000, f"command p95 {command_p95:.0f}ms"

    # the daemon survived the stampede and is empty again
    assert len(daemon.daemon.registry) == 0
    with daemon.connect() as c:
        assert c.ping()["pong"]
        assert c.sessions() == []
