"""Concurrent-session isolation: two sessions over identical graphs
must share *nothing* — not the breakpoint registry, not the RV monitors,
not the capability bits, not the journal."""

import pytest

from repro.dbg import CAP_RV, CAP_TELEMETRY
from repro.serve.sessions import SessionRegistry


@pytest.fixture
def pair():
    registry = SessionRegistry()
    a = registry.create("rle")
    b = registry.create("rle")
    yield a, b
    registry.close_all()


def test_distinct_machines(pair):
    a, b = pair
    assert a.id != b.id
    assert a.session is not b.session
    assert a.service.dbg is not b.service.dbg
    assert a.service.dbg.breakpoints is not b.service.dbg.breakpoints


def test_breakpoint_numbering_is_per_session(pair):
    a, b = pair
    a.execute("break pack.c:7")
    a.execute("break ExpandFilter_work_function")
    b.execute("break PackFilter_work_function")
    # each registry numbers from 1; arming two in A must not shift B
    assert [bp["id"] for bp in a.service.breakpoints()] == [1, 2]
    b_bps = b.service.breakpoints()
    assert [bp["id"] for bp in b_bps] == [1]
    assert b_bps[0]["what"] == "PackFilter_work_function"


def test_capability_bits_do_not_leak(pair):
    a, b = pair
    base_a = a.service.dbg.hook.capabilities
    base_b = b.service.dbg.hook.capabilities
    assert base_a == base_b  # identical graphs start identical
    # arm RV in A only (the graph model exists after framework init)
    a.execute("run")
    b.execute("run")
    result = a.execute("check add log occupancy pack::o->expand::i <= 64")
    assert result.ok, result.error
    assert a.service.dbg.hook.capabilities & CAP_RV
    assert not b.service.dbg.hook.capabilities & CAP_RV
    # arm telemetry in B only
    assert b.execute("trace on").ok
    assert b.service.dbg.hook.capabilities & CAP_TELEMETRY
    assert not a.service.dbg.hook.capabilities & CAP_TELEMETRY
    # and RV never leaked back
    assert not b.service.dbg.hook.capabilities & CAP_RV


def test_stops_and_journals_are_independent(pair):
    a, b = pair
    a.execute("record on")
    a.execute("break pack.c:7")
    a.execute("run")
    hit = a.execute("continue")
    assert hit.stop["kind"] == "breakpoint"
    # B never moved and never recorded
    state_b = b.service.state()
    assert state_b["events_processed"] == 0
    assert state_b["journal"] is None
    assert state_b["last_stop"] is None
    # B's run is unaffected by A being parked at a breakpoint
    assert b.execute("run").ok


def test_errors_do_not_cross_sessions(pair):
    a, b = pair
    bad = a.execute("continue")  # not running: a library-level error
    assert not bad.ok
    assert a.service.errors == 1
    assert b.service.errors == 0
    assert b.execute("run").ok


def test_subscribers_are_per_session(pair):
    a, b = pair
    seen_a, seen_b = [], []
    a.subscribe(seen_a.append)
    b.subscribe(seen_b.append)
    a.execute("run")
    assert [e["type"] for e in seen_a] == ["stop"]
    assert seen_b == []


def test_wire_isolation(daemon):
    with daemon.connect() as ca, daemon.connect() as cb:
        sa = ca.create("rle")["session"]
        sb = cb.create("rle")["session"]
        assert sa != sb
        ca.execute(sa, "break pack.c:7")
        ca.execute(sa, "run")
        ca.execute(sa, "continue")
        # A is parked at its breakpoint; B is untouched at elaboration
        assert ca.state(sa)["last_stop"]["kind"] == "breakpoint"
        state_b = cb.state(sb)
        assert state_b["last_stop"] is None
        assert state_b["events_processed"] == 0
        assert cb.breakpoints(sb) == []
        # B's first breakpoint still gets id 1
        cb.execute(sb, "break pack.c:7")
        assert cb.breakpoints(sb)[0]["id"] == 1
