"""Fixtures for the debug-server suite: a real daemon on a real socket.

The daemon runs on a background-thread event loop via the library's own
embedding harness (:class:`repro.serve.DaemonThread`) — the same shape
`python -m repro serve` has — bound to port 0 so suites never collide.
Tests talk to it with the blocking `DebugClient`, the same client the
CI smoke script and the load test use.
"""

import pytest

from repro.serve.embed import DaemonThread

__all__ = ["DaemonThread"]


@pytest.fixture
def daemon():
    d = DaemonThread()
    yield d
    d.stop()


@pytest.fixture
def client(daemon):
    with daemon.connect() as c:
        yield c
