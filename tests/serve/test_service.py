"""CommandService: structured results, CLI parity, stop delivery,
replay-adoption survival.  No daemon involved — this is the layer the
daemon multiplexes connections onto."""

import pytest

from repro.serve.builders import build_program_cli


@pytest.fixture
def svc():
    cli, _sink = build_program_cli("rle")
    return cli.service


def test_execute_returns_structured_result(svc):
    result = svc.execute("break PackFilter_work_function")
    assert result.ok
    assert result.command == "break PackFilter_work_function"
    assert result.lines == ["Breakpoint 1 at PackFilter_work_function"]
    assert result.error is None
    assert result.stop is None  # placing a breakpoint stops nothing
    assert result.elapsed_ms >= 0.0
    d = result.to_dict()
    assert d["ok"] and d["lines"] and d["stop"] is None


def test_run_then_breakpoint_stop_dict(svc):
    svc.execute("break pack.c:7")
    first = svc.execute("run")
    assert first.ok
    assert first.stop is not None
    assert first.stop["kind"] == "dataflow"  # stop_on_init parks at init
    hit = svc.execute("continue")
    assert hit.stop["kind"] == "breakpoint"
    assert hit.stop["filename"] == "pack.c"
    assert hit.stop["line"] == 7
    assert hit.stop["actor"] == "codec.pack"
    assert hit.stop["bp_id"] == 1
    assert isinstance(hit.stop["banner"], list) and hit.stop["banner"]


def test_error_semantics_match_cli(svc):
    # library-level error: reported GDB-style, not raised
    result = svc.execute("continue")
    assert not result.ok
    assert "not running" in result.error
    assert result.lines == [f"error: {result.error}"]
    assert svc.errors == 1
    # blank lines and comments are no-ops that still succeed
    assert svc.execute("").ok
    assert svc.execute("# a comment").ok
    assert svc.commands_run == 1  # only the real command was dispatched


def test_cli_execute_is_thin_client(svc):
    # the interactive path and the service path are the same dispatch
    lines = svc.cli.execute("info breakpoints")
    assert lines == svc.execute("info breakpoints").lines


def test_stop_subscription_fires_once_per_stop(svc):
    seen = []
    handle = svc.subscribe(seen.append)
    svc.execute("break pack.c:7")
    svc.execute("run")
    svc.execute("continue")
    kinds = [ev.kind.value for ev in seen]
    assert kinds.count("breakpoint") == 1
    svc.unsubscribe(handle)
    svc.execute("continue")
    assert len(seen) == len(kinds)  # unsubscribed: no further delivery


def test_subscriber_exception_is_swallowed(svc):
    def bad(ev):
        raise RuntimeError("observer bug")

    svc.subscribe(bad)
    svc.execute("run")  # must not unwind despite the broken observer
    assert svc.state()["last_stop"] is not None


def test_structured_inspection_at_a_stop(svc):
    svc.execute("break pack.c:7")
    svc.execute("run")
    svc.execute("continue")
    actors = svc.actors()
    assert {a["qualname"] for a in actors} >= {"codec.pack", "codec.expand"}
    assert sum(a["selected"] for a in actors) == 1
    frames = svc.frames("codec.pack")
    assert frames[0]["name"] == "PackFilter_work_function"
    assert frames[0]["filename"] == "pack.c"
    names = {v["name"] for v in svc.variables("codec.pack", 0)}
    assert "value" in names
    result = svc.evaluate("value")
    assert result["ok"] and result["type"] == "U32"
    assert svc.evaluate("no_such_symbol +")["ok"] is False
    bps = svc.breakpoints()
    assert bps[0]["id"] == 1 and bps[0]["hits"] == 1


def test_state_snapshot(svc):
    state = svc.state()
    assert state["sharded"] is False
    assert state["finished"] is False
    svc.execute("record on")
    svc.execute("run")
    state = svc.state()
    assert state["program"] == "rle"
    assert state["actors"] == 5
    assert state["events_processed"] > 0
    assert state["journal"]["total_events"] > 0
    assert state["last_stop"]["kind"] == "dataflow"
    assert state["commands_run"] == 2
    assert state["wall_ms"] > 0


def test_isolate_turns_crashes_into_results(svc):
    svc.cli.commands["explode"] = type(svc.cli.commands["run"])(
        "explode", lambda rest: 1 / 0, "explode — crash on purpose"
    )
    result = svc.execute("explode", isolate=True)
    assert not result.ok
    assert "ZeroDivisionError" in result.error
    with pytest.raises(ZeroDivisionError):
        svc.execute("explode")  # default: CLI failure modes unchanged


def test_replay_adoption_survives(svc):
    seen = []
    svc.subscribe(seen.append)
    svc.execute("record on")
    svc.execute("break pack.c:7")
    svc.execute("run")
    svc.execute("continue")
    old_dbg = svc.dbg
    result = svc.execute("replay to event 5")
    assert result.ok
    assert result.stop["kind"] == "replay"
    # adoption swapped the debugger; the service followed it
    assert svc.dbg is not old_dbg
    assert "event #5" in result.stop["message"]
    # the replay stop was delivered exactly once despite the swap
    assert [ev.kind.value for ev in seen].count("replay") == 1
    # and the rebuilt machine still takes commands
    assert svc.execute("continue").ok


def test_interrupt_parks_a_running_continue(svc_factory=None):
    import threading

    cli, _sink = build_program_cli("rle", values=[1 + (i % 9) for i in range(20000)])
    svc = cli.service
    svc.execute("run")
    timer = threading.Timer(0.05, svc.interrupt)
    timer.start()
    try:
        result = svc.execute("continue")
    finally:
        timer.cancel()
    assert result.ok
    assert result.stop["kind"] == "paused"
    assert not svc.state()["finished"]
    # the pause trap is one-shot: the machine resumes afterwards
    assert svc.execute("continue").ok
