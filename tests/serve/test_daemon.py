"""End-to-end JSON-RPC over a real socket: lifecycle, events, errors,
metrics, flight bundles, reaping, graceful drain."""

import json
import socket
import time

import pytest

from repro.obs.openmetrics import parse_openmetrics
from repro.serve.client import DebugClient, RpcError, scrape_metrics

from .conftest import DaemonThread


def test_ping_and_empty_sessions(client):
    pong = client.ping()
    assert pong["pong"] is True
    assert pong["sessions"] == 0
    assert client.sessions() == []


def test_create_execute_inspect_destroy(client):
    created = client.create("rle")
    sid = created["session"]
    assert created["program"] == "rle"
    assert created["quota"] == {
        "max_events": None, "max_journal_bytes": None, "max_wall_ms": None,
    }
    assert client.execute(sid, "break pack.c:7")["ok"]
    assert client.execute(sid, "run")["stop"]["kind"] == "dataflow"
    hit = client.execute(sid, "continue")
    assert hit["stop"]["kind"] == "breakpoint"
    assert hit["stop"]["actor"] == "codec.pack"
    frames = client.frames(sid, "codec.pack")
    assert frames[0]["name"] == "PackFilter_work_function"
    names = {v["name"] for v in client.variables(sid, "codec.pack")}
    assert "value" in names
    assert client.evaluate(sid, "value")["ok"]
    assert client.breakpoints(sid)[0]["id"] == 1
    state = client.state(sid)
    assert state["program"] == "rle"
    assert state["serve"]["id"] == sid
    client.destroy(sid)
    with pytest.raises(RpcError) as exc:
        client.state(sid)
    assert exc.value.code == 1001


def test_script_runs_commands_in_order(client):
    sid = client.create("rle")["session"]
    results = client.script(sid, ["break pack.c:7", "run", "continue"])
    assert [r["ok"] for r in results] == [True, True, True]
    assert results[2]["stop"]["kind"] == "breakpoint"


def test_subscribed_events_are_pushed(client):
    sid = client.create("rle")["session"]
    sub = client.subscribe(sid)
    assert sub == {"subscribed": sid, "events": "all"}
    client.execute(sid, "break pack.c:7")
    client.execute(sid, "run")
    client.execute(sid, "continue")
    kinds = [e["type"] for e in client.drain_events()]
    assert "stop" in kinds
    for event in client.drain_events():
        assert event["session"] == sid


def test_event_filter(client):
    sid = client.create("rle")["session"]
    assert client.subscribe(sid, events=["flight-dump"])["events"] == ["flight-dump"]
    client.execute(sid, "run")
    assert client.drain_events() == []  # the stop was filtered out


def test_flight_dump_event_and_bundle(client, tmp_path):
    sid = client.create("rle")["session"]
    client.subscribe(sid)
    client.execute(sid, "run")
    dump = client.execute(sid, f"flight dump {tmp_path}/bundle.json")
    assert dump["ok"]
    events = {e["type"]: e for e in client.drain_events()}
    assert "flight-dump" in events
    assert events["flight-dump"]["data"]["path"].endswith("bundle.json")
    bundle = client.flight(sid)
    assert bundle["flight"]["version"] == 1
    assert bundle["flight"]["reason"] == "rpc"
    assert bundle["stops"]


def test_error_codes(client):
    # unknown session
    with pytest.raises(RpcError) as exc:
        client.execute("s999", "run")
    assert exc.value.code == 1001
    # unknown method
    with pytest.raises(RpcError) as exc:
        client.call("frobnicate")
    assert exc.value.code == -32601
    # invalid params
    with pytest.raises(RpcError) as exc:
        client.call("create")
    assert exc.value.code == -32602
    # session-level ReproError (unknown program) — daemon survives
    with pytest.raises(RpcError) as exc:
        client.create("doom")
    assert exc.value.code == 1003
    assert client.ping()["pong"]


def test_session_failure_is_isolated(client):
    sid = client.create("rle")["session"]
    result = client.execute(sid, "continue")  # not running yet
    assert not result["ok"]
    assert "not running" in result["error"]
    # the session and its siblings keep working
    other = client.create("rle")["session"]
    assert client.execute(other, "run")["ok"]
    assert client.execute(sid, "run")["ok"]


def test_parse_error_and_notifications(daemon):
    with socket.create_connection(("127.0.0.1", daemon.port), timeout=10) as sock:
        f = sock.makefile("rb")
        sock.sendall(b"{this is not json\n")
        reply = json.loads(f.readline())
        assert reply["error"]["code"] == -32700
        assert reply["id"] is None
        # a notification (no id) gets no reply; the next request's reply
        # is the next line on the wire
        sock.sendall(b'{"jsonrpc":"2.0","method":"ping"}\n')
        sock.sendall(b'{"jsonrpc":"2.0","id":9,"method":"ping"}\n')
        assert json.loads(f.readline())["id"] == 9


def test_openmetrics_rpc_and_http_scrape(client, daemon):
    sid = client.create("rle")["session"]
    client.execute(sid, "trace on")
    client.execute(sid, "run")
    text = client.metrics(sid)
    assert parse_openmetrics(text) == []
    assert f'repro_serve_session_commands_total{{session="{sid}"}}' in text
    # same exposition over plain HTTP
    scraped = scrape_metrics("127.0.0.1", daemon.port, f"/sessions/{sid}/metrics")
    assert parse_openmetrics(scraped) == []
    daemon_text = scrape_metrics("127.0.0.1", daemon.port, "/metrics")
    assert parse_openmetrics(daemon_text) == []
    assert "repro_serve_sessions 1" in daemon_text
    with pytest.raises(ConnectionError):
        scrape_metrics("127.0.0.1", daemon.port, "/nope")


def test_metrics_work_with_telemetry_off(client):
    sid = client.create("rle")["session"]
    text = client.metrics(sid)  # zero-cost default: no telemetry armed
    assert parse_openmetrics(text) == []
    assert "repro_serve_session_wall_ms" in text


def test_attach_detach_and_reaping():
    d = DaemonThread(idle_timeout=0.2)
    try:
        with d.connect() as c:
            abandoned = c.create("rle")["session"]
            held = c.create("rle")["session"]
            c.attach(held)
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline:
                ids = {s["id"] for s in c.sessions()}
                if abandoned not in ids:
                    break
                time.sleep(0.1)
            ids = {s["id"] for s in c.sessions()}
            assert abandoned not in ids  # idle and unattached: reaped
            assert held in ids  # attached sessions are exempt
            c.detach(held)
    finally:
        d.stop()


def test_graceful_drain():
    d = DaemonThread()
    try:
        with d.connect() as c:
            sid = c.create("rle")["session"]
            c.subscribe(sid)
            assert c.shutdown() == {"draining": True}
            # the drain notice reaches subscribers before sockets close
            event = c.next_event(timeout=10)
            assert event["type"] == "shutting-down"
        d.thread.join(20)
        assert not d.thread.is_alive()
        assert len(d.daemon.registry) == 0
        # new connections are refused once drained
        with pytest.raises(OSError):
            DebugClient("127.0.0.1", d.port, timeout=2)
    finally:
        d.stop()


def test_sharded_session_over_the_wire(client):
    created = client.create("rle", sharded=True, shards=2)
    sid = created["session"]
    assert created["sharded"] is True
    stop = client.run_sharded(sid)
    assert stop["kind"] in ("exited", "suspended", "deadlock")
    # the coordinator view still answers inspection commands
    info = client.execute(sid, "info shards")
    assert info["ok"]
    # a non-sharded session refuses the sharded entry point
    plain = client.create("rle")["session"]
    with pytest.raises(RpcError) as exc:
        client.run_sharded(plain)
    assert exc.value.code == 1003


def test_wire_interrupt_parks_a_continue(daemon):
    with daemon.connect() as a, daemon.connect() as b:
        sid = a.create("rle", values=[1 + (i % 9) for i in range(20000)])["session"]
        a.execute(sid, "run")
        # second connection fires the async-safe pause mid-continue;
        # client `a` stays blocked in its own round trip meanwhile
        import threading

        def pause_soon():
            time.sleep(0.15)
            b.interrupt(sid)

        t = threading.Thread(target=pause_soon)
        t.start()
        result = a.execute(sid, "continue")
        t.join(10)
        assert result["ok"]
        assert result["stop"]["kind"] == "paused"
        assert a.state(sid)["finished"] is False
