"""A scripted DAP front-end: initialize → launch → breakpoints →
configurationDone → stopped → stacks/scopes/variables → continue →
terminated — plus the reverse pair (reverseContinue / replayTo)."""

import itertools
import json
import socket

import pytest


class DapClient:
    """Minimal scripted DAP front-end over one socket."""

    def __init__(self, port: int, timeout: float = 30.0):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=timeout)
        self.file = self.sock.makefile("rb")
        self._seq = itertools.count(1)
        self.events = []

    def close(self):
        self.file.close()
        self.sock.close()

    def send(self, command: str, arguments=None):
        body = {"seq": next(self._seq), "type": "request", "command": command}
        if arguments is not None:
            body["arguments"] = arguments
        data = json.dumps(body).encode()
        self.sock.sendall(
            f"Content-Length: {len(data)}\r\n\r\n".encode() + data
        )

    def recv(self):
        length = None
        while True:
            line = self.file.readline()
            if not line:
                raise ConnectionError("daemon closed the DAP stream")
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.partition(b":")
            if name.strip().lower() == b"content-length":
                length = int(value.strip())
        assert length is not None
        return json.loads(self.file.read(length))

    def request(self, command: str, arguments=None):
        """Round trip; events arriving before the response are buffered."""
        self.send(command, arguments)
        while True:
            message = self.recv()
            if message["type"] == "response" and message["command"] == command:
                return message
            if message["type"] == "event":
                self.events.append(message)

    def wait_event(self, name: str):
        for i, ev in enumerate(self.events):
            if ev["event"] == name:
                return self.events.pop(i)
        while True:
            message = self.recv()
            if message["type"] == "event":
                if message["event"] == name:
                    return message
                self.events.append(message)


@pytest.fixture
def dap(daemon):
    c = DapClient(daemon.port)
    yield c
    c.close()


def _launch(dap, **extra):
    init = dap.request("initialize", {"adapterID": "repro"})
    assert init["success"]
    caps = init["body"]
    assert caps["supportsConfigurationDoneRequest"]
    assert caps["supportsStepBack"]
    dap.wait_event("initialized")
    launch = dap.request("launch", {"program": "rle", **extra})
    assert launch["success"]
    return launch["body"]["session"]


def test_scripted_session_reaches_breakpoint_and_reads_frames(dap, daemon):
    sid = _launch(dap)
    assert sid in {s["id"] for s in daemon.daemon.registry.list()}

    bps = dap.request("setBreakpoints", {
        "source": {"path": "/work/codec/pack.c"},  # basename is what counts
        "breakpoints": [{"line": 7}],
    })
    assert bps["body"]["breakpoints"] == [
        {"verified": True, "line": 7, "message": None}
    ]
    assert dap.request("configurationDone")["success"]

    stopped = dap.wait_event("stopped")["body"]
    # stop_on_init parks at framework init first; continue to the bp
    if stopped["reason"] != "breakpoint":
        assert dap.request("continue")["body"]["allThreadsContinued"]
        stopped = dap.wait_event("stopped")["body"]
    assert stopped["reason"] == "breakpoint"
    assert stopped["allThreadsStopped"] is True
    assert stopped["text"]  # the human banner rides along

    threads = dap.request("threads")["body"]["threads"]
    names = {t["name"] for t in threads}
    assert any("codec.pack" in n for n in names)
    pack_id = next(t["id"] for t in threads if "codec.pack" in t["name"])
    assert stopped["threadId"] == pack_id

    stack = dap.request("stackTrace", {"threadId": pack_id})["body"]
    frame = stack["stackFrames"][0]
    assert frame["name"] == "PackFilter_work_function"
    assert frame["source"]["name"] == "pack.c"
    assert frame["line"] == 7
    assert frame["id"] == pack_id * 1000

    scopes = dap.request("scopes", {"frameId": frame["id"]})["body"]["scopes"]
    assert scopes[0]["name"] == "Locals"
    variables = dap.request(
        "variables", {"variablesReference": scopes[0]["variablesReference"]}
    )["body"]["variables"]
    assert {"have", "value"} <= {v["name"] for v in variables}
    assert all(v["variablesReference"] == 0 for v in variables)

    result = dap.request("evaluate", {"expression": "value"})
    assert result["success"]
    assert result["body"]["type"] == "U32"

    bad = dap.request("evaluate", {"expression": "no_such +"})
    assert bad["success"] is False

    disconnect = dap.request("disconnect")
    assert disconnect["success"]
    assert sid not in {s["id"] for s in daemon.daemon.registry.list()}


def test_function_breakpoints_and_stepping(dap):
    _launch(dap)
    placed = dap.request(
        "setFunctionBreakpoints",
        {"breakpoints": [{"name": "PackFilter_work_function"}]},
    )["body"]["breakpoints"]
    assert placed[0]["verified"]
    dap.request("configurationDone")
    stopped = dap.wait_event("stopped")["body"]
    if stopped["reason"] != "function breakpoint":
        dap.request("continue")
        stopped = dap.wait_event("stopped")["body"]
    assert stopped["reason"] == "function breakpoint"
    dap.request("next")
    assert dap.wait_event("stopped")["body"]["reason"] == "step"
    dap.request("stepIn")
    assert dap.wait_event("stopped")["body"]["reason"] == "step"


def test_run_to_completion_emits_terminated(dap):
    _launch(dap)
    dap.request("configurationDone")
    dap.wait_event("stopped")  # init stop
    dap.request("continue")
    dap.wait_event("terminated")
    exited = dap.wait_event("exited")
    assert exited["body"]["exitCode"] == 0


def test_pause_parks_a_running_continue(dap):
    _launch(dap, values=[1 + (i % 9) for i in range(20000)])
    dap.request("configurationDone")
    dap.wait_event("stopped")  # init stop
    dap.request("continue")
    # the read loop stays free while the machine runs: pause lands
    dap.request("pause")
    stopped = dap.wait_event("stopped")["body"]
    assert stopped["reason"] == "pause"


def test_replay_to_and_reverse_continue(dap, daemon):
    sid = _launch(dap)
    # the DAP session is a daemon session like any other: arm the journal
    # through the JSON-RPC surface before the program starts (commands
    # serialise on the session's executor, so ordering holds)
    with daemon.connect() as rpc:
        assert rpc.execute(sid, "record on")["ok"]
        dap.request("setBreakpoints", {
            "source": {"path": "pack.c"},
            "breakpoints": [{"line": 7}],
        })
        dap.request("configurationDone")
        stopped = dap.wait_event("stopped")["body"]
        if stopped["reason"] != "breakpoint":
            dap.request("continue")
            stopped = dap.wait_event("stopped")["body"]
        assert stopped["reason"] == "breakpoint"
        # time travel, standard DAP flavour: back to the previous stop
        assert dap.request("reverseContinue")["success"]
        assert dap.wait_event("stopped")["body"]["reason"] == "goto"
        # and the custom absolute form: an exact journal coordinate
        resp = dap.request("replayTo", {"target": "event 3"})
        assert resp["success"]
        assert resp["body"]["stop"]["kind"] == "replay"
        assert dap.wait_event("stopped")["body"]["reason"] == "goto"
        # replaying without a recording is a clean failure, not a hangup
        fresh = rpc.create("rle")["session"]
        result = rpc.execute(fresh, "replay to event 3")
        assert not result["ok"]


def test_unsupported_request_is_answered_not_fatal(dap):
    _launch(dap)
    resp = dap.request("restartFrame", {"frameId": 1})
    assert resp["success"] is False
    assert "unsupported" in resp["message"]
    # the bridge keeps serving afterwards
    assert dap.request("threads")["success"]
