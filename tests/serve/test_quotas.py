"""Per-session quotas: structured errors, run-control refusal with
inspection still allowed, and the mid-command wall-clock watchdog."""

import pytest

from repro.errors import ReproError
from repro.serve.client import RpcError
from repro.serve.sessions import (
    QuotaExceeded,
    SessionQuota,
    SessionRegistry,
    journal_bytes,
)


@pytest.fixture
def registry():
    reg = SessionRegistry()
    yield reg
    reg.close_all()


def test_quota_validation():
    q = SessionQuota.from_params({"max_events": 100, "max_wall_ms": 2.5})
    assert q.max_events == 100
    assert q.max_wall_ms == 2.5
    assert q.max_journal_bytes is None
    assert SessionQuota.from_params(None) == SessionQuota()
    with pytest.raises(ReproError, match="positive"):
        SessionQuota.from_params({"max_events": -1})
    with pytest.raises(ReproError, match="positive"):
        SessionQuota.from_params({"max_wall_ms": "lots"})


def test_max_events_refuses_run_control_only(registry):
    handle = registry.create("rle", quota=SessionQuota(max_events=5))
    assert handle.execute("run").ok  # pre-check passes; the run overshoots
    with pytest.raises(QuotaExceeded) as exc:
        handle.execute("continue")
    assert exc.value.quota == "max_events"
    assert exc.value.to_data() == {
        "quota": "max_events",
        "limit": 5,
        "used": exc.value.used,
    }
    assert exc.value.used >= 5
    # run-control stays refused...
    for refused in ("run", "step", "replay to event 1"):
        with pytest.raises(QuotaExceeded):
            handle.execute(refused)
    # ...but the post-mortem stays reachable
    assert handle.execute("info actors").ok
    assert handle.execute("bt").ok
    assert handle.service.state()["events_processed"] >= 5
    assert handle.describe()["quota_exhausted"] == "max_events"


def test_max_journal_bytes(registry):
    handle = registry.create("rle", quota=SessionQuota(max_journal_bytes=64))
    handle.execute("record on")
    assert handle.execute("run").ok
    assert journal_bytes(handle.session) > 64
    with pytest.raises(QuotaExceeded) as exc:
        handle.execute("continue")
    assert exc.value.quota == "max_journal_bytes"


def test_wall_clock_watchdog_interrupts_mid_command(registry):
    # a feed long enough that `continue` would run for many seconds —
    # the watchdog must park it at a dispatch boundary instead
    handle = registry.create(
        "rle",
        values=[1 + (i % 9) for i in range(20000)],
        quota=SessionQuota(max_wall_ms=300),
    )
    result = handle.execute("run")
    if result.ok and not handle.session.dbg.finished:
        result = handle.execute("continue")
    assert result.stop is not None
    assert result.stop["kind"] == "paused"  # parked, not completed
    with pytest.raises(QuotaExceeded) as exc:
        handle.execute("continue")
    assert exc.value.quota == "max_wall_ms"
    assert exc.value.used >= 300
    # inspection is still answered after the budget is spent
    assert handle.execute("info actors").ok


def test_quota_error_over_the_wire(client):
    sid = client.create("rle", quota={"max_events": 5})["session"]
    assert client.execute(sid, "run")["ok"]
    with pytest.raises(RpcError) as exc:
        client.execute(sid, "continue")
    assert exc.value.code == 1002
    assert exc.value.data["quota"] == "max_events"
    assert exc.value.data["limit"] == 5
    # structured inspection RPCs keep working for the post-mortem
    assert client.state(sid)["events_processed"] >= 5
    assert client.actors(sid)
    # the exhausted quota is visible in the session listing
    listed = {s["id"]: s for s in client.sessions()}
    assert listed[sid]["quota_exhausted"] == "max_events"
    # destroying the spent session frees the slot
    client.destroy(sid)
    assert client.sessions() == []


def test_invalid_wire_quota_is_rejected(client):
    with pytest.raises(RpcError) as exc:
        client.create("rle", quota={"max_events": 0})
    assert exc.value.code == 1003


def test_session_limit(registry):
    reg = SessionRegistry(max_sessions=2)
    reg.create("rle")
    reg.create("rle")
    with pytest.raises(ReproError, match="session limit"):
        reg.create("rle")
    reg.close_all()
