import pytest

from repro.cminus import analyze, parse_program
from repro.cminus.sema import ActorContext, IfaceSig
from repro.cminus.typesys import BOOL, S32, U8, U16, U32, StructType
from repro.errors import CMinusTypeError


def check(source, context=None):
    prog = parse_program(source)
    return prog, analyze(prog, context, source)


def filter_ctx(**kwargs):
    ctx = ActorContext(kind="filter")
    ctx.ifaces["an_input"] = IfaceSig("an_input", "input", U32)
    ctx.ifaces["an_output"] = IfaceSig("an_output", "output", U32)
    ctx.data["a_private_data"] = U32
    ctx.attributes["an_attribute"] = U32
    for k, v in kwargs.items():
        setattr(ctx, k, v)
    return ctx


def controller_ctx(actors=("filter_1", "filter_2")):
    ctx = ActorContext(kind="controller", actor_names=set(actors))
    ctx.ifaces["cmd_out_1"] = IfaceSig("cmd_out_1", "output", U32)
    return ctx


# ------------------------------------------------------------ positive cases


def test_simple_function_annotated():
    prog, info = check("U32 add(U32 a, U32 b) { return a + b; }")
    ret = prog.functions[0].body.body[0]
    assert ret.value.ctype is U32
    assert "add" in info.functions


def test_debug_info_symbols():
    src = "U32 g;\nS32 f(S32 p) {\n  S32 x = p;\n  return x;\n}\n"
    prog, info = check(src)
    fsym = info.functions["f"]
    assert [v.name for v in fsym.params] == ["p"]
    assert [v.name for v in fsym.locals] == ["x"]
    assert info.globals["g"].ctype is U32
    assert info.line_table.is_executable("<source>", 3)
    assert info.line_table.is_executable("<source>", 4)
    assert not info.line_table.is_executable("<source>", 1)


def test_common_type_promotion():
    prog, _ = check("void f(U8 a, U16 b) { U32 c = a + b; }")
    decl = prog.functions[0].body.body[0]
    assert decl.init.ctype is S32  # both promote to S32


def test_u32_wins_promotion():
    prog, _ = check("void f(U32 a, S32 b) { U32 c = a + b; }")
    assert prog.functions[0].body.body[0].init.ctype is U32


def test_comparison_yields_bool():
    prog, _ = check("bool f(U32 a) { return a < 4; }")
    assert prog.functions[0].body.body[0].value.ctype is BOOL


def test_struct_member_types():
    src = """
    struct MB { U16 kind; U8 pix[4]; };
    U16 f(MB m) { return m.kind; }
    U8 g(MB m) { return m.pix[2]; }
    """
    prog, info = check(src)
    assert "MB" in info.structs
    assert prog.functions[0].body.body[0].value.ctype is U16
    assert prog.functions[1].body.body[0].value.ctype is U8


def test_pedf_access_with_context():
    src = """
    void work() {
        pedf.io.an_output[0] = pedf.io.an_input[0] + pedf.data.a_private_data
                               + pedf.attribute.an_attribute;
        pedf.data.a_private_data = 7;
    }
    """
    prog, _ = check(src, filter_ctx())
    assign = prog.functions[0].body.body[0]
    assert assign.target.ctype is U32


def test_controller_intrinsics_identifier_to_string():
    src = """
    void work() {
        ACTOR_START(filter_1);
        WAIT_FOR_ACTOR_INIT();
        ACTOR_SYNC(filter_1);
        WAIT_FOR_ACTOR_SYNC();
        if (PRED("fast")) { ACTOR_FIRE(filter_2); }
    }
    """
    prog, _ = check(src, controller_ctx())
    call = prog.functions[0].body.body[0].expr
    from repro.cminus import ast

    assert isinstance(call.args[0], ast.StringLit)
    assert call.args[0].value == "filter_1"


def test_intrinsic_local_variable_not_rewritten():
    # a declared local shadows the actor-name shorthand
    src = """
    void work(U32 filter_1) {
        ACTOR_START(filter_1);
    }
    """
    with pytest.raises(CMinusTypeError):
        check(src, controller_ctx())


# ------------------------------------------------------------ negative cases


@pytest.mark.parametrize(
    "bad",
    [
        "void f() { x = 1; }",  # undeclared
        "void f() { U32 x; U32 x; }",  # redeclared
        "void f() { U32 x = 1; bool b = x; U32 y; struct_like(); }",  # undefined call
        "U32 f() { return; }",  # missing return value
        "void f() { return 3; }",  # value in void
        "void f() { break; }",  # break outside loop
        "void f() { continue; }",
        "void f(U32 a) { a(); }",  # var used as function (undefined function)
        "void f() { const U32 c = 1; c = 2; }",  # assign to const
        "void f() { U32 a[4]; a = a; }",  # whole-array assign to array var ok? target is array: assignable requires same -> actually allowed
    ][:-1],
)
def test_semantic_errors(bad):
    with pytest.raises(CMinusTypeError):
        check(bad)


def test_void_variable_rejected():
    with pytest.raises(CMinusTypeError):
        check("void f() { void x; }")


def test_struct_arith_rejected():
    with pytest.raises(CMinusTypeError):
        check("struct S { U32 x; };\nvoid f(S a, S b) { U32 c = a + b; }")


def test_unknown_member_rejected():
    with pytest.raises(CMinusTypeError):
        check("struct S { U32 x; };\nU32 f(S s) { return s.y; }")


def test_index_non_array_rejected():
    with pytest.raises(CMinusTypeError):
        check("void f(U32 a) { U32 x = a[0]; }")


def test_call_arity_checked():
    with pytest.raises(CMinusTypeError):
        check("U32 g(U32 a) { return a; } void f() { g(); }")


def test_pedf_without_context_rejected():
    with pytest.raises(CMinusTypeError):
        check("void f() { U32 v = pedf.io.x[0]; }")


def test_unknown_interface_rejected():
    with pytest.raises(CMinusTypeError):
        check("void f() { U32 v = pedf.io.nope[0]; }", filter_ctx())


def test_read_from_output_iface_rejected():
    with pytest.raises(CMinusTypeError) as e:
        check("void f() { U32 v = pedf.io.an_output[0]; }", filter_ctx())
    assert "read back" in str(e.value)


def test_write_to_input_iface_rejected():
    with pytest.raises(CMinusTypeError):
        check("void f() { pedf.io.an_input[0] = 1; }", filter_ctx())


def test_compound_assign_to_output_rejected():
    with pytest.raises(CMinusTypeError):
        check("void f() { pedf.io.an_output[0] += 1; }", filter_ctx())


def test_attribute_is_readonly():
    with pytest.raises(CMinusTypeError):
        check("void f() { pedf.attribute.an_attribute = 1; }", filter_ctx())


def test_intrinsics_rejected_in_filter_code():
    with pytest.raises(CMinusTypeError):
        check("void f() { WAIT_FOR_ACTOR_SYNC(); }", filter_ctx())


def test_unknown_actor_name_rejected():
    with pytest.raises(CMinusTypeError) as e:
        check("void f() { ACTOR_START(bogus); }", controller_ctx())
    assert "unknown actor" in str(e.value)


def test_builtin_shadowing_rejected():
    with pytest.raises(CMinusTypeError):
        check("S32 abs(S32 x) { return x; }")
