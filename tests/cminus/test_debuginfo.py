"""Line tables, symbol lookup, source windows."""

from repro.cminus import DebugInfo, LineTable, analyze, parse_program


def compile_info(src, filename="unit.c"):
    prog = parse_program(src, filename)
    return analyze(prog, None, src)


SRC = """\
// header comment
U32 helper(U32 x) {
    U32 y = x + 1;
    return y;
}

void work_like() {
    U32 a = helper(1);
    U32 b = helper(a);
}
"""


def test_line_table_resolve_snaps_forward():
    info = compile_info(SRC)
    lt = info.line_table
    assert lt.is_executable("unit.c", 3)
    assert not lt.is_executable("unit.c", 1)
    assert lt.resolve("unit.c", 1) == 3
    assert lt.resolve("unit.c", 5) == 8  # blank/closing lines snap to next stmt
    assert lt.resolve("unit.c", 99) is None
    assert lt.files() == ["unit.c"]


def test_line_table_merge_dedups():
    a, b = LineTable(), LineTable()
    a.add("f.c", 3)
    a.add("f.c", 5)
    b.add("f.c", 5)
    b.add("g.c", 1)
    a.merge(b)
    assert a.lines("f.c") == [3, 5]
    assert a.lines("g.c") == [1]


def test_function_symbols_and_lookup():
    info = compile_info(SRC)
    f = info.lookup_function("helper")
    assert f is not None
    assert f.line == 2 and f.end_line == 5
    assert [p.name for p in f.params] == ["x"]
    assert f.variable("y").kind == "local"
    assert f.variable("x").kind == "param"
    assert f.variable("zz") is None


def test_function_at_line():
    info = compile_info(SRC)
    assert info.function_at_line("unit.c", 3).name == "helper"
    assert info.function_at_line("unit.c", 8).name == "work_like"
    assert info.function_at_line("unit.c", 6) is None
    assert info.function_at_line("other.c", 3) is None


def test_match_functions_substring():
    info = compile_info(SRC)
    assert [f.name for f in info.match_functions("help")] == ["helper"]
    assert len(info.match_functions("")) == 2


def test_source_windows():
    info = compile_info(SRC)
    window = info.source_window("unit.c", 3, radius=1)
    assert [n for n, _ in window] == [2, 3, 4]
    assert info.source_line("unit.c", 2) == "U32 helper(U32 x) {"
    assert info.source_line("unit.c", 999) is None
    assert info.source_line("missing.c", 1) is None
    assert info.source_window("missing.c", 1) == []


def test_merge_combines_units():
    a = compile_info(SRC)
    b = compile_info("void other() { U32 q = 0; }", "b.c")
    a.merge(b)
    assert "other" in a.functions
    assert a.source_line("b.c", 1) is not None
