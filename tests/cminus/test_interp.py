import pytest

from repro.cminus import (
    Interpreter,
    NullEnvironment,
    analyze,
    parse_program,
    run_sync,
)
from repro.errors import CMinusRuntimeError

from .util import run, run_with_env


def test_arithmetic_and_return():
    assert run("S32 main() { return 2 + 3 * 4; }") == 14


def test_default_return_zero():
    assert run("U32 main() { U32 x = 5; x = x; }") == 0


def test_unsigned_wraparound():
    assert run("U8 main() { U8 x = 250; x = x + 10; return x; }") == 4
    assert run("U16 main() { return (U16)70000; }") == 70000 - 65536
    assert run("U32 main() { U32 x = 0; x = x - 1; return x; }") == 2**32 - 1


def test_signed_twos_complement_wrap():
    assert run("S8 main() { S8 x = 127; x = x + 1; return x; }") == -128
    assert run("S32 main() { S32 x = 2147483647; x = x + 1; return x; }") == -(2**31)


def test_c_style_truncating_division():
    assert run("S32 main() { return -7 / 2; }") == -3
    assert run("S32 main() { return 7 / -2; }") == -3
    assert run("S32 main() { return -7 % 2; }") == -1


def test_division_by_zero_raises():
    with pytest.raises(CMinusRuntimeError):
        run("S32 main() { S32 z = 0; return 1 / z; }")


def test_bitwise_and_shifts():
    assert run("U32 main() { return (0xF0 | 0x0F) & 0xFF; }") == 0xFF
    assert run("U32 main() { return 1 << 10; }") == 1024
    assert run("U32 main() { U32 x = 0x80000000; return x >> 4; }") == 0x08000000
    assert run("S32 main() { S32 x = -16; return x >> 2; }") == -4  # arithmetic shift


def test_logical_short_circuit():
    src = """
    U32 calls;
    bool bump() { calls = calls + 1; return true; }
    U32 main() {
        bool a = false && bump();
        bool b = true || bump();
        return calls;
    }
    """
    assert run(src) == 0


def test_ternary():
    assert run("S32 main() { S32 a = -5; return a > 0 ? a : -a; }") == 5


def test_while_loop_sum():
    src = """
    U32 main() {
        U32 s = 0;
        U32 i = 1;
        while (i <= 10) { s += i; i++; }
        return s;
    }
    """
    assert run(src) == 55


def test_for_loop_with_break_continue():
    src = """
    U32 main() {
        U32 s = 0;
        for (U32 i = 0; i < 100; i++) {
            if (i % 2 == 0) continue;
            if (i > 10) break;
            s += i;
        }
        return s;
    }
    """
    assert run(src) == 1 + 3 + 5 + 7 + 9


def test_do_while_runs_once():
    src = "U32 main() { U32 n = 0; do { n++; } while (false); return n; }"
    assert run(src) == 1


def test_nested_function_calls_and_recursion():
    src = """
    U32 fib(U32 n) {
        if (n < 2) return n;
        return fib(n - 1) + fib(n - 2);
    }
    U32 main() { return fib(12); }
    """
    assert run(src) == 144


def test_arrays():
    src = """
    U32 main() {
        U32 a[5];
        for (U32 i = 0; i < 5; i++) a[i] = i * i;
        U32 s = 0;
        for (U32 i = 0; i < 5; i++) s += a[i];
        return s;
    }
    """
    assert run(src) == 0 + 1 + 4 + 9 + 16


def test_array_out_of_bounds_detected():
    with pytest.raises(CMinusRuntimeError) as e:
        run("U32 main() { U32 a[3]; return a[3]; }")
    assert "out of bounds" in str(e.value)


def test_array_store_out_of_bounds_detected():
    with pytest.raises(CMinusRuntimeError):
        run("void main() { U32 a[3]; a[5] = 1; }")


def test_struct_value_semantics():
    src = """
    struct Point { S32 x; S32 y; };
    void move(Point p) { p.x = 99; }
    S32 main() {
        Point a;
        a.x = 1;
        Point b = a;      // copy
        b.x = 2;
        move(a);          // by value: no effect
        return a.x * 10 + b.x;
    }
    """
    assert run(src) == 12


def test_struct_with_array_field():
    src = """
    struct MB { U8 pix[4]; U32 sum; };
    U32 main() {
        MB m;
        for (U32 i = 0; i < 4; i++) m.pix[i] = (U8)(i + 250);
        m.sum = 0;
        for (U32 i = 0; i < 4; i++) m.sum += m.pix[i];
        return m.sum;
    }
    """
    assert run(src) == (250 + 251 + 252 + 253) % (2**32)


def test_globals_initialized_once():
    src = """
    U32 counter = 100;
    void bump() { counter += 1; }
    U32 main() { bump(); bump(); return counter; }
    """
    assert run(src) == 102


def test_builtins():
    assert run("S32 main() { return abs(-9); }") == 9
    assert run("S32 main() { return min(3, -4); }") == -4
    assert run("S32 main() { return max(3, -4); }") == 3
    assert run("S32 main() { return clip(300, 0, 255); }") == 255
    assert run("S32 main() { return clip(-4, 0, 255); }") == 0


def test_print_captured():
    _, env = run_with_env('void main() { print("value:", 42, true); }')
    assert env.printed == ["value: 42 true"]


def test_casts():
    assert run("U8 main() { return (U8)0x1FF; }") == 0xFF
    assert run("S8 main() { return (S8)0xFF; }") == -1
    assert run("bool main() { return (bool)42; }") is True


def test_compound_assignment_semantics():
    src = """
    U32 main() {
        U32 x = 10;
        x += 5; x -= 3; x *= 2; x /= 4; x %= 4; x <<= 4; x |= 1; x ^= 3; x &= 0xFE;
        return x;
    }
    """
    x = 10
    x += 5; x -= 3; x *= 2; x //= 4; x %= 4; x <<= 4; x |= 1; x ^= 3; x &= 0xFE
    assert run(src) == x


def test_scoping_shadowing():
    src = """
    U32 main() {
        U32 x = 1;
        { U32 x = 2; x = 3; }
        return x;
    }
    """
    assert run(src) == 1


def test_statement_counter():
    src = "U32 main() { U32 s = 0; for (U32 i = 0; i < 3; i++) s += i; return s; }"
    prog = parse_program(src)
    info = analyze(prog, None, src)
    interp = Interpreter(prog, info, env=NullEnvironment(), timed=False)
    assert run_sync(interp.run_function("main")) == 3
    assert interp.state.statements_executed > 5


def test_frames_pop_after_calls():
    src = """
    U32 inner(U32 a) { return a * 2; }
    U32 main() { return inner(inner(3)); }
    """
    prog = parse_program(src)
    info = analyze(prog, None, src)
    interp = Interpreter(prog, info, env=NullEnvironment(), timed=False)
    assert run_sync(interp.run_function("main")) == 12
    assert interp.frames == []


def test_missing_function_raises():
    prog = parse_program("void f() {}")
    info = analyze(prog)
    interp = Interpreter(prog, info, timed=False)
    with pytest.raises(CMinusRuntimeError):
        run_sync(interp.run_function("nope"))
