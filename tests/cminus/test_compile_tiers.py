"""Differential tests: compiled closure tier vs resumable interpreter.

The compiled tier (repro.cminus.compile) must be observationally
indistinguishable from the slow tier: same results, same printed output,
same execution counters, and — crucially for record/replay — the very
same kernel-request stream in timed mode (batched ``Delay`` flushes are
structural, not tier- or debugger-dependent).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cminus import (
    CostModel,
    Interpreter,
    NullEnvironment,
    analyze,
    parse_program,
    run_sync,
)
from repro.cminus.compile import compiled_unit
from repro.cminus.sema import ActorContext, IfaceSig
from repro.cminus.typesys import U32
from repro.errors import CMinusRuntimeError
from repro.sim import Delay, Scheduler


def build(source, tier, timed=False, context=None, cost=None, env=None):
    prog = parse_program(source, "<tiers>")
    info = analyze(prog, context, source)
    interp = Interpreter(
        prog, info, env=env or NullEnvironment(), timed=timed, cost=cost
    )
    interp.tier = tier
    return interp


def run_tier(source, tier, fn="main", args=(), **kwargs):
    interp = build(source, tier, **kwargs)
    value = run_sync(interp.run_function(fn, list(args)))
    return value, interp


#: every execution tier, differentially compared against the tree oracle
TIERS = ("auto", "vm", "slow")


def assert_tiers_agree(source, fn="main", args=(), context=None):
    """All three tiers produce the same value/printed output/counters —
    or raise the very same runtime error."""
    results = {}
    for tier in TIERS:
        env = NullEnvironment()
        try:
            value, interp = run_tier(
                source, tier, fn=fn, args=args, context=context, env=env
            )
            results[tier] = (
                "ok",
                value,
                tuple(env.printed),
                interp.state.statements_executed,
                interp.state.calls_made,
            )
        except CMinusRuntimeError as exc:
            results[tier] = ("error", str(exc))
    assert results["auto"] == results["slow"], results
    assert results["vm"] == results["slow"], results
    return results["auto"]


COMPREHENSIVE = """
struct Pt { S32 x; S32 y; };

S32 helper(S32 a, S32 b) {
    S32 t = a % (b + 1);
    return t * 2 - a / (b + 1);
}

S32 fib(S32 n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}

S32 main() {
    S32 acc = 0;
    S32 arr[8];
    struct Pt p;
    p.x = 3; p.y = -4;
    for (S32 i = 0; i < 8; i++) { arr[i] = i * i - 5; }
    S32 j = 0;
    while (j < 8) {
        acc = acc + arr[j] + helper(j, 3);
        j++;
    }
    do { acc = acc - 1; } while (acc > 1000);
    S32 k = acc > 0 ? p.x : p.y;
    bool flag = (acc > 10) && (p.x != 0) || false;
    if (flag) { acc = acc ^ 0x0F; } else { acc = ~acc; }
    acc = acc + (S32)(U8) 300 + fib(10);
    acc = acc << 2 >> 1;
    U32 u = 4000000000;
    u = u + 600000000;
    print("acc", acc, "u", u, flag);
    S32 m = min(max(acc, -100), 100) + abs(-7) + clip(acc, 0, 50);
    return acc + k + m + (S32) u;
}
"""


def test_comprehensive_program_identical_across_tiers():
    kind, value, printed, stmts, calls = assert_tiers_agree(COMPREHENSIVE)
    assert kind == "ok"
    assert stmts > 100 and calls > 50
    assert printed  # print() went through the environment on both tiers


def test_compiled_tier_actually_engaged():
    value, interp = run_tier(COMPREHENSIVE, "auto")
    assert interp._compiled is not None, "fast tier never engaged"
    assert interp._compiled.supports("main")
    value_slow, interp_slow = run_tier(COMPREHENSIVE, "slow")
    assert interp_slow._compiled is None, "slow tier must not compile"
    assert value == value_slow


def test_vm_tier_actually_engaged():
    value, interp = run_tier(COMPREHENSIVE, "vm")
    assert interp._vm_unit is not None, "vm tier never engaged"
    assert interp._vm_unit.supports("main")
    value_slow, interp_slow = run_tier(COMPREHENSIVE, "slow")
    assert interp_slow._vm_unit is None, "slow tier must not compile bytecode"
    assert value == value_slow


def test_runtime_error_parity_division_by_zero():
    src = """
    S32 main() {
        S32 d = 3;
        S32 acc = 100;
        while (d >= 0) { acc = acc + 10 / d; d = d - 1; }
        return acc;
    }
    """
    kind, message = assert_tiers_agree(src)
    assert kind == "error"
    assert "division by zero" in message


def test_runtime_error_parity_array_bounds():
    src = """
    S32 main() {
        S32 arr[4];
        S32 i = 0;
        S32 acc = 0;
        while (i < 10) { acc = acc + arr[i]; i++; }
        return acc;
    }
    """
    kind, message = assert_tiers_agree(src)
    assert kind == "error"
    assert "out of bounds" in message


# ------------------------------------------------- kernel stream parity


def drain_requests(interp, fn="main"):
    """Drive the interpreter generator by hand, logging every kernel
    request it yields."""
    reqs = []
    gen = interp.run_function(fn)
    try:
        req = next(gen)
        while True:
            reqs.append((type(req).__name__, getattr(req, "cycles", None)))
            req = gen.send(None)
    except StopIteration as stop:
        return reqs, stop.value


def test_timed_kernel_request_streams_identical():
    f_reqs, f_ret = drain_requests(build(COMPREHENSIVE, "auto", timed=True))
    s_reqs, s_ret = drain_requests(build(COMPREHENSIVE, "slow", timed=True))
    v_reqs, v_ret = drain_requests(build(COMPREHENSIVE, "vm", timed=True))
    assert f_ret == s_ret == v_ret
    assert f_reqs == s_reqs == v_reqs
    assert f_reqs, "timed run yielded no kernel requests"
    assert all(kind == "Delay" for kind, _ in f_reqs)


def test_timed_total_cycles_preserved_by_batching():
    """Batched Delays aggregate cost but must not change its total."""
    per_stmt = CostModel(batch_cycles=1)
    f_reqs, _ = drain_requests(build(COMPREHENSIVE, "auto", timed=True))
    u_reqs, _ = drain_requests(
        build(COMPREHENSIVE, "slow", timed=True, cost=per_stmt)
    )
    assert len(f_reqs) < len(u_reqs), "batching did not reduce requests"
    assert sum(c for _, c in f_reqs) == sum(c for _, c in u_reqs)


# ------------------------------------- satellite: slow-tier coalescing


def sched_run(source, tier, cost=None):
    interp = build(source, tier, timed=True, cost=cost)
    sched = Scheduler()
    out = {}

    def proc():
        out["value"] = yield from interp.run_function("main")

    sched.spawn(proc(), "main")
    sched.run()
    return out["value"], sched


def test_slow_tier_coalesces_delays_keeping_sim_time():
    """Satellite: the slow tier batches consecutive Delay(stmt_cost)
    yields too — same final sim time as per-statement yielding, same
    dispatch count as the compiled tier."""
    v_batched, sched_batched = sched_run(COMPREHENSIVE, "slow")
    v_perstmt, sched_perstmt = sched_run(
        COMPREHENSIVE, "slow", cost=CostModel(batch_cycles=1)
    )
    v_fast, sched_fast = sched_run(COMPREHENSIVE, "auto")
    v_vm, sched_vm = sched_run(COMPREHENSIVE, "vm")

    assert v_batched == v_perstmt == v_fast == v_vm
    # sim-time totals identical no matter the batching or the tier
    assert sched_batched.now == sched_perstmt.now == sched_fast.now == sched_vm.now
    # batching really reduced kernel round-trips in the slow tier
    assert sched_batched.dispatch_count < sched_perstmt.dispatch_count
    # dispatch counting is tier-invariant (the replay journal relies on it)
    assert sched_batched.dispatch_count == sched_fast.dispatch_count == sched_vm.dispatch_count


# --------------------------------------------------- io / blocking parity


class ScriptedIo(NullEnvironment):
    """An environment whose reads block on the kernel (Delay) first —
    exercising resume-into-compiled-code paths."""

    def __init__(self, values):
        super().__init__()
        self.values = list(values)
        self.written = []

    def io_read(self, iface, index, ctype):
        yield Delay(2)
        return self.values.pop(0) if self.values else 0

    def io_write(self, iface, index, value, ctype):
        yield Delay(1)
        self.written.append((iface, value))


IO_SRC = """
void work() {
    U32 a = pedf.io.inp[0];
    U32 b = pedf.io.inp[1];
    U32 acc = 0;
    for (U32 i = 0; i < 4; i++) { acc = acc + a * b + i; }
    pedf.io.out[0] = acc;
}
"""


def io_context():
    ctx = ActorContext(kind="filter")
    ctx.ifaces["inp"] = IfaceSig("inp", "input", U32)
    ctx.ifaces["out"] = IfaceSig("out", "output", U32)
    return ctx


def test_blocking_io_identical_across_tiers():
    streams = {}
    for tier in TIERS:
        env = ScriptedIo([7, 9])
        interp = build(IO_SRC, tier, timed=True, context=io_context(), env=env)
        reqs, _ = drain_requests(interp, fn="work")
        streams[tier] = (reqs, env.written, interp.state.statements_executed)
    assert streams["auto"] == streams["slow"]
    assert streams["vm"] == streams["slow"]
    assert streams["auto"][1][0][1] == 7 * 9 * 4 + 0 + 1 + 2 + 3


# ----------------------------------------------- hypothesis: random programs


_INT_OPS = ["+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"]
_CMP_OPS = ["<", "<=", "==", "!=", ">", ">="]


@st.composite
def fc_expr(draw, depth=0):
    """A Filter-C integer expression over locals a, b, c, acc."""
    if depth >= 3 or draw(st.booleans()):
        return draw(
            st.one_of(
                st.sampled_from(["a", "b", "c", "acc"]),
                st.integers(min_value=-128, max_value=127).map(str),
            )
        )
    op = draw(st.sampled_from(_INT_OPS))
    left = draw(fc_expr(depth=depth + 1))
    right = draw(fc_expr(depth=depth + 1))
    if op in ("<<", ">>"):
        right = str(draw(st.integers(min_value=0, max_value=7)))
    return f"({left} {op} {right})"


@st.composite
def fc_stmt(draw, depth=0):
    kind = draw(
        st.sampled_from(
            ["assign", "if", "while", "for"] if depth < 2 else ["assign"]
        )
    )
    target = draw(st.sampled_from(["a", "b", "c", "acc"]))
    if kind == "assign":
        return f"{target} = {draw(fc_expr())};"
    if kind == "if":
        cond = f"({draw(fc_expr(depth=2))} {draw(st.sampled_from(_CMP_OPS))} {draw(fc_expr(depth=2))})"
        then = draw(fc_stmt(depth=depth + 1))
        other = draw(fc_stmt(depth=depth + 1))
        return f"if {cond} {{ {then} }} else {{ {other} }}"
    body = draw(fc_stmt(depth=depth + 1))
    bound = draw(st.integers(min_value=1, max_value=6))
    if kind == "while":
        return (
            f"{{ S32 n{depth} = 0; while (n{depth} < {bound}) "
            f"{{ {body} n{depth}++; }} }}"
        )
    return f"for (S32 i{depth} = 0; i{depth} < {bound}; i{depth}++) {{ {body} }}"


@st.composite
def fc_program(draw):
    inits = [draw(st.integers(min_value=-100, max_value=100)) for _ in range(3)]
    stmts = draw(st.lists(fc_stmt(), min_size=1, max_size=6))
    body = "\n    ".join(stmts)
    return (
        "S32 helper(S32 x) {\n"
        "    if (x < 1) return 1;\n"
        "    return (x * helper(x - 1)) % 997;\n"
        "}\n"
        "S32 main() {\n"
        f"    S32 a = {inits[0]}; S32 b = {inits[1]}; S32 c = {inits[2]};\n"
        "    S32 acc = helper(5);\n"
        f"    {body}\n"
        "    return ((acc ^ a) + (b | c));\n"
        "}\n"
    )


@settings(max_examples=60, deadline=None)
@given(fc_program())
def test_property_random_programs_tier_equivalent(source):
    outcome = assert_tiers_agree(source)
    if outcome[0] == "ok":
        # timed mode: the kernel request streams must also be identical
        f_reqs, f_ret = drain_requests(build(source, "auto", timed=True))
        s_reqs, s_ret = drain_requests(build(source, "slow", timed=True))
        v_reqs, v_ret = drain_requests(build(source, "vm", timed=True))
        assert (f_reqs, f_ret) == (s_reqs, s_ret) == (v_reqs, v_ret)
