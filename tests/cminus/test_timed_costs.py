"""The cost model: simulated time tracks executed statements."""

from repro.cminus import CostModel, Interpreter, NullEnvironment, analyze, parse_program
from repro.sim import Scheduler, StopKind


def run_timed(src, fn="main", stmt_cost=1, call_overhead=2):
    prog = parse_program(src)
    info = analyze(prog, None, src)
    interp = Interpreter(
        prog, info, env=NullEnvironment(),
        cost=CostModel(default_stmt=stmt_cost, call_overhead=call_overhead),
        timed=True,
    )
    sched = Scheduler()
    result = {}

    def proc():
        result["value"] = yield from interp.run_function(fn)

    sched.spawn(proc(), "p")
    stop = sched.run()
    assert stop.kind == StopKind.EXHAUSTED
    return result["value"], sched.now, interp.state.statements_executed


def test_simulated_time_equals_statements_plus_call_overhead():
    src = """
    U32 main() {
        U32 a = 1;
        U32 b = 2;
        return a + b;
    }
    """
    value, cycles, stmts = run_timed(src)
    assert value == 3
    assert stmts == 3
    assert cycles == 3 * 1 + 2  # 3 statements + main's call overhead


def test_statement_cost_scales_time():
    src = "U32 main() { U32 s = 0; for (U32 i = 0; i < 10; i++) s += i; return s; }"
    _, cheap, stmts = run_timed(src, stmt_cost=1)
    _, costly, _ = run_timed(src, stmt_cost=5)
    assert costly > cheap
    # pure per-statement scaling once the fixed call overhead (2) is removed
    assert costly - 2 == 5 * (cheap - 2)


def test_call_overhead_counted_per_call():
    src = """
    U32 f(U32 x) { return x; }
    U32 main() { return f(1) + f(2) + f(3); }
    """
    _, cycles, stmts = run_timed(src, stmt_cost=0, call_overhead=7)
    assert cycles == 7 * 4  # main + three calls to f
