import pytest

from repro.cminus import TokenKind, tokenize
from repro.errors import CMinusSyntaxError


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source)[:-1]]


def test_keywords_vs_identifiers():
    toks = kinds("U32 counter while whiles")
    assert toks == [
        (TokenKind.KEYWORD, "U32"),
        (TokenKind.IDENT, "counter"),
        (TokenKind.KEYWORD, "while"),
        (TokenKind.IDENT, "whiles"),
    ]


def test_number_literals_decimal_hex_binary():
    toks = tokenize("42 0x145D 0b1010 7u 9UL")
    values = [t.value for t in toks[:-1]]
    assert values == [42, 0x145D, 0b1010, 7, 9]


def test_char_literal_and_escapes():
    toks = tokenize(r"'a' '\n' '\''")
    assert [t.value for t in toks[:-1]] == [ord("a"), ord("\n"), ord("'")]


def test_string_literal_with_escapes():
    toks = tokenize(r'"hello\tworld\n"')
    assert toks[0].value == "hello\tworld\n"


def test_operators_maximal_munch():
    toks = kinds("a<<=b<<c<=d<e")
    ops = [text for kind, text in toks if kind == TokenKind.OP]
    assert ops == ["<<=", "<<", "<=", "<"]


def test_comments_are_skipped():
    src = """
    // line comment
    U32 x; /* block
    comment */ U32 y;
    """
    toks = kinds(src)
    idents = [text for kind, text in toks if kind == TokenKind.IDENT]
    assert idents == ["x", "y"]


def test_line_and_column_tracking():
    toks = tokenize("a\n  bb\n   c")
    positions = [(t.text, t.line, t.col) for t in toks[:-1]]
    assert positions == [("a", 1, 1), ("bb", 2, 3), ("c", 3, 4)]


def test_eof_token_always_present():
    assert tokenize("")[-1].kind == TokenKind.EOF
    assert tokenize("x")[-1].kind == TokenKind.EOF


@pytest.mark.parametrize(
    "bad",
    ['"unterminated', "'x", "0xZZ", "123abc", "/* unterminated", "@", "'\\q'"],
)
def test_lexical_errors(bad):
    with pytest.raises(CMinusSyntaxError):
        tokenize(bad)
