"""Helpers shared by the Filter-C tests."""

from repro.cminus import (
    Interpreter,
    NullEnvironment,
    analyze,
    parse_program,
    run_sync,
)
from repro.cminus.sema import ActorContext


def compile_program(source, context=None, filename="<test>"):
    prog = parse_program(source, filename)
    info = analyze(prog, context, source)
    return prog, info


def run(source, fn="main", args=(), context=None, env=None):
    prog, info = compile_program(source, context)
    env = env or NullEnvironment()
    interp = Interpreter(prog, info, env=env, timed=False)
    return run_sync(interp.run_function(fn, args))


def run_with_env(source, fn="main", args=(), context=None):
    prog, info = compile_program(source, context)
    env = NullEnvironment()
    interp = Interpreter(prog, info, env=env, timed=False)
    value = run_sync(interp.run_function(fn, args))
    return value, env
