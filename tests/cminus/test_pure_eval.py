"""PureEvaluator and run_sync safety guarantees."""

import pytest

from repro.cminus import (
    Interpreter,
    NullEnvironment,
    PureEvaluator,
    analyze,
    parse_program,
    run_sync,
)
from repro.cminus.parser import parse_expression
from repro.errors import CMinusRuntimeError
from repro.sim.process import Suspend, WaitEvent


def make_interp(src):
    prog = parse_program(src)
    info = analyze(prog, None, src)
    return Interpreter(prog, info, env=NullEnvironment(), timed=False)


def test_run_sync_skips_delays():
    interp = make_interp("U32 main() { U32 s = 0; for (U32 i = 0; i < 3; i++) s += i; return s; }")
    interp.timed = True  # emits Delay requests
    assert run_sync(interp.run_function("main")) == 3


def test_run_sync_rejects_blocking_requests():
    def blocking():
        yield WaitEvent(object())

    with pytest.raises(CMinusRuntimeError) as e:
        run_sync(blocking())
    assert "WaitEvent" in str(e.value)

    def suspending():
        yield Suspend("x")

    with pytest.raises(CMinusRuntimeError):
        run_sync(suspending())


def test_pure_evaluator_reads_globals():
    interp = make_interp("U32 g = 41;\nU32 main() { return g + 1; }")
    run_sync(interp.run_function("main"))
    pe = PureEvaluator(interp)
    expr = parse_expression("g + 1")
    assert pe.eval(expr) == 42


def test_pure_evaluator_restores_interpreter_state():
    interp = make_interp("U32 g = 1;\nU32 main() { return g; }")
    run_sync(interp.run_function("main"))
    saved_env, saved_timed = interp.env, interp.timed
    pe = PureEvaluator(interp)
    pe.eval(parse_expression("g"))
    assert interp.env is saved_env
    assert interp.timed == saved_timed
    # even when the expression raises
    with pytest.raises(Exception):
        pe.eval(parse_expression("1 / 0"))
    assert interp.env is saved_env


def test_pure_evaluator_forbids_io():
    from repro.cminus.sema import ActorContext, IfaceSig
    from repro.cminus.typesys import U32

    ctx = ActorContext(kind="filter")
    ctx.ifaces["i"] = IfaceSig("i", "input", U32)
    src = "void work() { U32 v = pedf.io.i[0]; }"
    prog = parse_program(src)
    info = analyze(prog, ctx, src)
    interp = Interpreter(prog, info, env=NullEnvironment(), timed=False)
    pe = PureEvaluator(interp)
    with pytest.raises(CMinusRuntimeError) as e:
        pe.eval(parse_expression("pedf.io.i[0]", structs={}))
    # needs the io node: reparse with pedf syntax
    assert "consume a token" in str(e.value) or "not available" in str(e.value)
