import pytest

from repro.cminus import parse_program
from repro.cminus import ast
from repro.cminus.typesys import ArrayType, StructType, U8, U32, S32
from repro.errors import CMinusSyntaxError


def test_empty_program():
    prog = parse_program("")
    assert prog.functions == [] and prog.structs == [] and prog.globals == []


def test_function_with_params():
    prog = parse_program("U32 add(U32 a, U32 b) { return a + b; }")
    f = prog.functions[0]
    assert f.name == "add"
    assert [p.name for p in f.params] == ["a", "b"]
    assert isinstance(f.body.body[0], ast.Return)


def test_void_paramlist():
    prog = parse_program("void f(void) { }")
    assert prog.functions[0].params == []


def test_struct_definition_and_use():
    src = """
    struct Point { S32 x; S32 y; };
    struct Point origin;
    S32 getx(Point p) { return p.x; }
    """
    prog = parse_program(src)
    assert prog.structs[0].name == "Point"
    assert prog.globals[0].name == "origin"
    assert isinstance(prog.globals[0].ctype, StructType)
    # bare struct name usable as a type (typedef-style, like CbCrMB_t)
    assert isinstance(prog.functions[0].params[0].ctype, StructType)


def test_struct_with_array_field():
    prog = parse_program("struct MB { U8 pix[16]; U32 addr; };")
    fields = dict(prog.structs[0].fields)
    assert isinstance(fields["pix"], ArrayType)
    assert fields["pix"].size == 16


def test_global_array():
    prog = parse_program("U32 table[8];")
    assert isinstance(prog.globals[0].ctype, ArrayType)


def test_operator_precedence_shape():
    prog = parse_program("int f() { return 1 + 2 * 3; }")
    ret = prog.functions[0].body.body[0]
    assert ret.value.op == "+"
    assert ret.value.right.op == "*"


def test_precedence_shift_vs_add():
    prog = parse_program("int f(int a) { return a + 1 << 2; }")
    # C precedence: shift binds looser than +
    assert prog.functions[0].body.body[0].value.op == "<<"


def test_ternary_expression():
    prog = parse_program("int f(int a) { return a > 0 ? a : -a; }")
    assert isinstance(prog.functions[0].body.body[0].value, ast.Ternary)


def test_cast_expression():
    prog = parse_program("int f(int a) { return (U8)a; }")
    cast = prog.functions[0].body.body[0].value
    assert isinstance(cast, ast.Cast)
    assert cast.target is U8


def test_parenthesized_expr_not_confused_with_cast():
    prog = parse_program("int f(int a) { return (a) + 1; }")
    assert prog.functions[0].body.body[0].value.op == "+"


def test_compound_assignment_ops():
    prog = parse_program("void f() { U32 x = 0; x += 2; x <<= 1; x++; x--; }")
    body = prog.functions[0].body.body
    assert isinstance(body[1], ast.Assign) and body[1].op == "+="
    assert isinstance(body[2], ast.Assign) and body[2].op == "<<="
    assert isinstance(body[3], ast.IncDec) and body[3].op == "++"
    assert isinstance(body[4], ast.IncDec) and body[4].op == "--"


def test_control_flow_statements():
    src = """
    void f() {
        for (U32 i = 0; i < 4; i++) { if (i == 2) break; else continue; }
        while (true) { break; }
        do { } while (false);
    }
    """
    prog = parse_program(src)
    body = prog.functions[0].body.body
    assert isinstance(body[0], ast.For)
    assert isinstance(body[1], ast.While)
    assert isinstance(body[2], ast.DoWhile)


def test_pedf_io_expressions():
    src = """
    void work() {
        U32 v = pedf.io.an_input[0];
        pedf.io.an_output[0] = v + pedf.data.a_private_data + pedf.attribute.an_attribute;
    }
    """
    prog = parse_program(src)
    body = prog.functions[0].body.body
    assert isinstance(body[0].init, ast.PedfIo)
    assert body[0].init.iface == "an_input"
    assert isinstance(body[1].target, ast.PedfIo)
    rhs = body[1].value
    assert isinstance(rhs.right, ast.PedfAttr)
    assert isinstance(rhs.left.right, ast.PedfData)


def test_pedf_io_requires_index():
    with pytest.raises(CMinusSyntaxError):
        parse_program("void f() { U32 v = pedf.io.x; }")


def test_pedf_unknown_namespace_rejected():
    with pytest.raises(CMinusSyntaxError):
        parse_program("void f() { U32 v = pedf.bogus.x; }")


def test_call_with_identifier_args():
    prog = parse_program("void ctl() { ACTOR_START(filter_1); WAIT_FOR_ACTOR_SYNC(); }")
    calls = [s.expr for s in prog.functions[0].body.body]
    assert calls[0].name == "ACTOR_START"
    assert isinstance(calls[0].args[0], ast.Ident)
    assert calls[1].args == []


def test_line_numbers_recorded():
    src = "void f() {\n  U32 x = 1;\n  x = 2;\n}"
    prog = parse_program(src)
    body = prog.functions[0].body.body
    assert body[0].line == 2
    assert body[1].line == 3


@pytest.mark.parametrize(
    "bad",
    [
        "U32;",
        "void f( {",
        "void f() { return }",
        "void f() { if x {} }",
        "struct S { U32 x };",  # missing ';' after field... actually missing after x
        "void f() { 1 +; }",
        "void f() { x[; }",
        "struct S { U32 x; }",  # missing trailing ';'
        "void f() { U32 0bad; }",
    ],
)
def test_syntax_errors(bad):
    with pytest.raises(CMinusSyntaxError):
        parse_program(bad)


def test_duplicate_struct_rejected():
    with pytest.raises(CMinusSyntaxError):
        parse_program("struct S { U32 x; }; struct S { U32 y; };")


def test_unknown_type_rejected():
    with pytest.raises(CMinusSyntaxError):
        parse_program("Bogus f() { }")
