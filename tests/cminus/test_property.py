"""Property tests: Filter-C arithmetic must match C semantics exactly."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cminus.typesys import S8, S16, S32, U8, U16, U32, wrap_int

from .util import run

INT_TYPES = [U8, U16, U32, S8, S16, S32]


@st.composite
def typed_value(draw, types=INT_TYPES):
    t = draw(st.sampled_from(types))
    v = draw(st.integers(min_value=t.min, max_value=t.max))
    return t, v


@settings(max_examples=80, deadline=None)
@given(data=st.data())
def test_wrap_int_is_idempotent_and_in_range(data):
    t, v = data.draw(typed_value())
    raw = data.draw(st.integers(min_value=-(2**40), max_value=2**40))
    w = wrap_int(raw, t)
    assert t.min <= w <= t.max
    assert wrap_int(w, t) == w
    # wrapping preserves value modulo 2^bits
    assert (w - raw) % (1 << t.bits) == 0


def c_wrap(x, t):
    return wrap_int(x, t)


@settings(max_examples=60, deadline=None)
@given(
    a=st.integers(min_value=0, max_value=2**32 - 1),
    b=st.integers(min_value=0, max_value=2**32 - 1),
    op=st.sampled_from(["+", "-", "*", "&", "|", "^"]),
)
def test_u32_arithmetic_matches_c(a, b, op):
    got = run(f"U32 main() {{ U32 a = {a}; U32 b = {b}; return a {op} b; }}")
    expected = c_wrap(eval(f"a {op} b"), U32)
    assert got == expected


@settings(max_examples=60, deadline=None)
@given(
    a=st.integers(min_value=-(2**31), max_value=2**31 - 1),
    b=st.integers(min_value=-(2**31), max_value=2**31 - 1),
)
def test_s32_add_sub_wraps(a, b):
    got = run(f"S32 main() {{ S32 a = {a}; S32 b = {b}; return a + b; }}")
    assert got == c_wrap(a + b, S32)
    got = run(f"S32 main() {{ S32 a = {a}; S32 b = {b}; return a - b; }}")
    assert got == c_wrap(a - b, S32)


@settings(max_examples=60, deadline=None)
@given(
    a=st.integers(min_value=-(2**31), max_value=2**31 - 1),
    b=st.integers(min_value=-(2**31), max_value=2**31 - 1),
)
def test_s32_division_truncates_toward_zero(a, b):
    if b == 0:
        return
    got = run(f"S32 main() {{ S32 a = {a}; S32 b = {b}; return a / b; }}")
    import math

    expected = c_wrap(math.trunc(a / b) if abs(b) > 1 else math.trunc(a / b), S32)
    # trunc of exact integer division
    q = abs(a) // abs(b)
    if (a >= 0) != (b >= 0):
        q = -q
    assert got == c_wrap(q, S32)


@settings(max_examples=40, deadline=None)
@given(
    a=st.integers(min_value=0, max_value=2**32 - 1),
    sh=st.integers(min_value=0, max_value=31),
)
def test_u32_shifts_match_c(a, sh):
    got = run(f"U32 main() {{ U32 a = {a}; return a >> {sh}; }}")
    assert got == a >> sh
    got = run(f"U32 main() {{ U32 a = {a}; return a << {sh}; }}")
    assert got == c_wrap(a << sh, U32)


@settings(max_examples=40, deadline=None)
@given(
    vals=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=12)
)
def test_array_sum_loop_matches_python(vals):
    n = len(vals)
    inits = " ".join(f"a[{i}] = {v};" for i, v in enumerate(vals))
    src = f"""
    U32 main() {{
        U32 a[{n}];
        {inits}
        U32 s = 0;
        for (U32 i = 0; i < {n}; i++) s += a[i];
        return s;
    }}
    """
    assert run(src) == sum(vals) % 2**32


@settings(max_examples=30, deadline=None)
@given(
    x=st.integers(min_value=-1000, max_value=1000),
    lo=st.integers(min_value=-100, max_value=100),
    span=st.integers(min_value=0, max_value=200),
)
def test_clip_builtin_property(x, lo, span):
    hi = lo + span
    got = run(f"S32 main() {{ return clip({x}, {lo}, {hi}); }}")
    assert got == max(lo, min(hi, x))
    assert lo <= got <= hi
