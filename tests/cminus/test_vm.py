"""The register-machine bytecode tier: compiler, assembler, emulator.

Complements the three-way differential suite in test_compile_tiers.py
with ISA-level checks: assembler/disassembler round-trips, the ``brk``
break instruction, per-opcode cycle telemetry and the register-state
debugging surface.
"""

import pytest

from repro.cminus import (
    DebugHook,
    Interpreter,
    NullEnvironment,
    analyze,
    parse_program,
    run_sync,
)
from repro.cminus.vm import assemble, call_vm, disassemble, isa, vm_unit
from repro.cminus.vm.asm import VmAsmError
from repro.cminus.vm.compiler import VmCompileError
from repro.sim.process import Suspend

CHECKSUM = """
S32 helper(S32 a, S32 b) {
    return a * 3 + b;
}

S32 checksum(S32 n) {
    S32 acc = 0;
    for (S32 i = 0; i < n; i++) {
        acc = acc ^ helper(i, n);
        if (acc > 1000) acc = acc % 997;
    }
    return acc;
}
"""


def build(source, tier="vm", fn=None):
    prog = parse_program(source, "<vm>")
    info = analyze(prog, None, source)
    interp = Interpreter(prog, info, env=NullEnvironment())
    interp.tier = tier
    return prog, interp


def run(interp, fn, args=()):
    return run_sync(interp.run_function(fn, list(args)))


# ------------------------------------------------------------ compilation


def test_vm_unit_compiles_and_matches_tree():
    prog, interp = build(CHECKSUM)
    vu = vm_unit(prog)
    assert vu.supports("checksum") and vu.supports("helper")
    assert not vu.failed
    got = run(interp, "checksum", (17,))
    _, slow = build(CHECKSUM, tier="slow")
    assert got == run(slow, "checksum", (17,))


def test_vm_unit_memoized_per_program():
    prog, _ = build(CHECKSUM)
    assert vm_unit(prog) is vm_unit(prog)


def test_unsupported_function_fails_gracefully():
    # struct-typed locals compile; unknown constructs must be recorded in
    # ``failed`` (per-function tolerance), never raised at unit build time
    src = CHECKSUM + "\nS32 user(S32 x) { return checksum(x); }\n"
    prog, interp = build(src)
    vu = vm_unit(prog)
    assert vu.supports("user")
    assert run(interp, "user", (9,)) == run(build(src, "slow")[1], "user", (9,))


# --------------------------------------------------------- asm round-trip


def test_disassemble_assemble_round_trip():
    prog, _ = build(CHECKSUM)
    vmf = vm_unit(prog).funcs["checksum"]
    text = disassemble(vmf)
    back = assemble(text)
    assert back.code == vmf.code
    assert back.consts == vmf.consts
    assert back.nregs == vmf.nregs
    assert back.name == vmf.name
    assert [p for p in back.params] == [p for p in vmf.params]
    assert back.deoptable is False


def test_assembled_function_executes():
    text = """
    .func double_plus ret S32
    .param x S32
    .reg 3
    addk r1, r0, 0, 4294967295, 2147483647, 4294967296
    add r2, r0, r1, 4294967295, 2147483647, 4294967296
    addk r2, r2, 1, 4294967295, 2147483647, 4294967296
    ret r2
    """
    vmf = assemble(text)
    prog, interp = build(CHECKSUM)
    interp._vm_unit = vm_unit(prog)
    interp._vm_unit.funcs["double_plus"] = vmf
    assert run_sync(call_vm(interp, "double_plus", [21])) == 43


def test_assembler_errors_carry_line_numbers():
    with pytest.raises(VmAsmError, match="line 1"):
        assemble("frobnicate r0, r1")
    with pytest.raises(VmAsmError, match="expects"):
        assemble("mov r0")
    with pytest.raises(VmAsmError, match="unknown param type"):
        assemble(".param x NotAType")


def test_disassembly_pretty_marks_pc_and_source():
    prog, _ = build(CHECKSUM)
    vmf = vm_unit(prog).funcs["checksum"]
    lines = CHECKSUM.splitlines()
    text = disassemble(vmf, pretty=True, source_lines=lines, pc=0)
    assert "=>" in text
    assert "; line" in text


# ------------------------------------------------------ break instruction


class BrkHook(DebugHook):
    capabilities = 0  # brk fires regardless of the capability mask

    def __init__(self):
        self.hits = []

    def on_isa_break(self, interp, act):
        self.hits.append((act.vmf.name, act.pc))
        return Suspend("brk")


def test_brk_instruction_suspends_and_resumes():
    text = """
    .func until_brk ret S32
    .param x S32
    .reg 2
    addk r1, r0, 1, 4294967295, 2147483647, 4294967296
    brk
    addk r1, r1, 1, 4294967295, 2147483647, 4294967296
    ret r1
    """
    vmf = assemble(text)
    prog, interp = build(CHECKSUM)
    interp.hook = BrkHook()
    interp.refresh_hook_caps()
    interp._vm_unit = vm_unit(prog)
    interp._vm_unit.funcs["until_brk"] = vmf

    gen = call_vm(interp, "until_brk", [40])
    req = next(gen)
    assert isinstance(req, Suspend) and req.reason == "brk"
    assert interp.hook.hits == [("until_brk", 1)]
    with pytest.raises(StopIteration) as stop:
        gen.send(None)
    assert stop.value.value == 42


def test_brkc_is_conditional():
    text = """
    .func maybe_brk ret S32
    .param x S32
    .reg 2
    eqk r1, r0, 7
    brkc r1
    ret r0
    """
    vmf = assemble(text)
    prog, interp = build(CHECKSUM)
    interp.hook = BrkHook()
    interp.refresh_hook_caps()
    interp._vm_unit = vm_unit(prog)
    interp._vm_unit.funcs["maybe_brk"] = vmf

    assert run_sync(call_vm(interp, "maybe_brk", [3])) == 3  # predicate false
    assert interp.hook.hits == []
    gen = call_vm(interp, "maybe_brk", [7])
    req = next(gen)
    assert isinstance(req, Suspend) and req.reason == "brk"


# ------------------------------------------------------- opcode telemetry


class CountingHook(DebugHook):
    capabilities = DebugHook.CAP_TELEMETRY


def test_opcode_cycles_counted_only_under_telemetry():
    _, interp = build(CHECKSUM)
    run(interp, "checksum", (11,))
    assert interp.opcode_cycles == {}

    _, counted = build(CHECKSUM)
    counted.hook = CountingHook()
    counted.refresh_hook_caps()
    run(counted, "checksum", (11,))
    assert counted.opcode_cycles, "telemetry armed but no opcodes counted"
    # costs follow the ISA cost table; stmt boundaries are free
    assert all(isa.COST[op] > 0 for op in counted.opcode_cycles)
    assert isa.STMT not in counted.opcode_cycles


def test_opcode_cycles_do_not_change_timed_stream():
    """CAP_TELEMETRY's per-opcode attribution must not perturb the
    batched Delay flushes (replay fingerprints stay byte-identical)."""

    def timed_reqs(hook):
        prog = parse_program(CHECKSUM, "<vm>")
        info = analyze(prog, None, CHECKSUM)
        interp = Interpreter(prog, info, env=NullEnvironment(), timed=True)
        interp.tier = "vm"
        if hook is not None:
            interp.hook = hook
            interp.refresh_hook_caps()
        reqs = []
        gen = interp.run_function("checksum", [25])
        try:
            req = next(gen)
            while True:
                reqs.append((type(req).__name__, getattr(req, "cycles", None)))
                req = gen.send(None)
        except StopIteration as stop:
            return reqs, stop.value

    plain = timed_reqs(None)
    counted = timed_reqs(CountingHook())
    assert plain == counted


# -------------------------------------------------- register-state surface


def test_activation_registers_expose_named_locals():
    prog, interp = build(CHECKSUM)
    vu = vm_unit(prog)
    vmf = vu.funcs["checksum"]
    assert any(nm == "acc" for nm in vmf.reg_names.values())
    # param registers come first
    assert vmf.reg_names.get(0) == "n"


def test_line_table_maps_pcs_to_source_lines():
    prog, _ = build(CHECKSUM)
    vmf = vm_unit(prog).funcs["checksum"]
    lines = {vmf.line_at(pc) for pc in range(len(vmf.code))}
    assert len(lines) > 1, "line table degenerate"
    stmt_lines = [ins[1] for ins in vmf.code if ins[0] == isa.STMT]
    assert stmt_lines and all(ln > 0 for ln in stmt_lines)
