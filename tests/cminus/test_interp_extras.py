"""Interpreter corner cases not covered by the main suite."""

import pytest

from repro.errors import CMinusRuntimeError, CMinusTypeError

from .util import run, run_with_env


def test_do_while_with_continue():
    src = """
    U32 main() {
        U32 i = 0;
        U32 s = 0;
        do {
            i++;
            if (i % 2 == 0) continue;
            s += i;
        } while (i < 6);
        return s;
    }
    """
    assert run(src) == 1 + 3 + 5


def test_nested_loops_break_inner_only():
    src = """
    U32 main() {
        U32 hits = 0;
        for (U32 i = 0; i < 3; i++) {
            for (U32 j = 0; j < 10; j++) {
                if (j == 2) break;
                hits++;
            }
        }
        return hits;
    }
    """
    assert run(src) == 6


def test_global_array_mutation_across_calls():
    src = """
    U32 hist[4];
    void bump(U32 i) { hist[i] += 1; }
    U32 main() {
        bump(1); bump(1); bump(3);
        return hist[0] * 1000 + hist[1] * 100 + hist[3];
    }
    """
    assert run(src) == 201


def test_nested_struct_copy_semantics():
    src = """
    struct Inner { U32 v; };
    struct Outer { Inner a; Inner b; };
    U32 main() {
        Outer o;
        o.a.v = 1;
        o.b = o.a;     // struct field copy
        o.a.v = 9;
        return o.b.v;  // must still be 1
    }
    """
    assert run(src) == 1


def test_print_formats_struct_and_strings():
    src = """
    struct P { U32 x; U32 y; };
    void main() {
        P p;
        p.x = 1; p.y = 2;
        print("point:", p);
    }
    """
    _, env = run_with_env(src)
    assert env.printed == ["point: { x = 1, y = 2 }"]


def test_shift_out_of_range_is_runtime_error():
    with pytest.raises(CMinusRuntimeError):
        run("U32 main() { U32 n = 40; return 1 << n; }")


def test_recursion_with_struct_args():
    src = """
    struct Acc { U32 total; U32 n; };
    Acc step(Acc a) {
        if (a.n == 0) return a;
        Acc nxt;
        nxt.total = a.total + a.n;
        nxt.n = a.n - 1;
        return step(nxt);
    }
    U32 main() {
        Acc a;
        a.total = 0;
        a.n = 10;
        Acc r = step(a);
        return r.total;
    }
    """
    assert run(src) == 55


def test_ternary_with_structs():
    src = """
    struct P { U32 x; };
    U32 main() {
        P a; P b;
        a.x = 1; b.x = 2;
        P c = true ? a : b;
        return c.x;
    }
    """
    assert run(src) == 1


def test_const_local_assignment_rejected():
    with pytest.raises(CMinusTypeError):
        run("U32 main() { const U32 c = 1; c = 2; return c; }")


def test_const_global_assignment_rejected():
    with pytest.raises(CMinusTypeError):
        run("const U32 G = 1;\nU32 main() { G = 2; return G; }")


def test_bool_arithmetic_promotes():
    assert run("U32 main() { bool b = true; return b + 3; }") == 4


def test_char_literals_usable_as_ints():
    assert run("U32 main() { return 'A' + 1; }") == 66


def test_deep_call_chain():
    src = """
    U32 f0(U32 x) { return x + 1; }
    U32 f1(U32 x) { return f0(x) + 1; }
    U32 f2(U32 x) { return f1(x) + 1; }
    U32 f3(U32 x) { return f2(x) + 1; }
    U32 main() { return f3(0); }
    """
    assert run(src) == 4
