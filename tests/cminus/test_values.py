"""Raw value payloads: defaults, copies, formatting."""

import pytest

from repro.cminus.typesys import (
    BOOL,
    U8,
    U16,
    U32,
    S32,
    ArrayType,
    StructType,
    word_count,
)
from repro.cminus.values import (
    Value,
    coerce,
    copy_raw,
    default_value,
    format_value,
)
from repro.errors import CMinusRuntimeError

POINT = StructType("Point", (("x", S32), ("y", S32)))
MB = StructType("MB", (("Addr", U32), ("pix", ArrayType(elem=U8, size=3))))


def test_default_values():
    assert default_value(U32) == 0
    assert default_value(BOOL) is False
    assert default_value(ArrayType(elem=U8, size=3)) == [0, 0, 0]
    assert default_value(POINT) == {"x": 0, "y": 0}
    assert default_value(MB) == {"Addr": 0, "pix": [0, 0, 0]}


def test_copy_raw_is_deep():
    raw = {"Addr": 1, "pix": [1, 2, 3]}
    cp = copy_raw(raw)
    cp["pix"][0] = 99
    assert raw["pix"][0] == 1


def test_value_slot_copy():
    v = Value(MB, {"Addr": 5, "pix": [1, 2, 3]})
    w = v.copy()
    w.data["Addr"] = 9
    assert v.data["Addr"] == 5


def test_coerce_scalars_wrap():
    assert coerce(300, U8) == 44
    assert coerce(-1, U32) == 2**32 - 1
    assert coerce(5, BOOL) is True


def test_coerce_aggregate_copies():
    src = {"x": 1, "y": 2}
    out = coerce(src, POINT)
    assert out == src and out is not src


def test_coerce_aggregate_to_scalar_rejected():
    with pytest.raises(CMinusRuntimeError):
        coerce([1, 2], U32)


def test_format_value_struct_gdb_style():
    text = format_value(MB, {"Addr": 0x145D, "pix": [1, 2, 3]})
    assert text == "{ Addr = 0x145d, pix = {1, 2, 3} }"


def test_format_value_scalars():
    assert format_value(U32, 7) == "7"
    assert format_value(BOOL, True) == "true"
    assert format_value(BOOL, False) == "false"


def test_word_count():
    assert word_count(U32) == 1
    assert word_count(ArrayType(elem=U8, size=4)) == 4
    assert word_count(POINT) == 2
    assert word_count(MB) == 4
    empty = StructType("E", ())
    assert word_count(empty) == 1  # never zero-cost
