"""Journal segment rotation: bounded memory, nothing lost.

A segment-rotating ReplayJournal must behave observably identically to
an unbounded one — same positions, same records, same side tables, same
streams — while keeping only the configured window in memory.  The
lossy cap/ring bounds, by contrast, must now *say* what they lost:
evicted-vs-never-recorded is distinguishable through seq_status /
time_status and link_value_streams refuses to pretend a partial stream
is complete.
"""

import pytest

from repro.errors import ReplayError
from repro.sim.replay import ReplayJournal
from repro.sim.segments import SegmentStore
from repro.sim.trace import TraceRecorder


def fill(journal, n, start_seq=1):
    """Record n push exits (seq start_seq..) with full side tables."""
    for k in range(n):
        seq = start_seq + k
        index = journal.add_event(k * 10, "exit", "pedf_rt_push", f"actor{k % 3}", seq)
        journal.note_token_link(seq, f"link{k % 4}")
        journal.note_event_link(index, f"link{k % 4}")
        journal.note_event_value(index, str(seq * 7))
        index = journal.add_event(k * 10, "exit", "pedf_rt_actor_start", "ctl", None)
        journal.note_event_target(index, f"actor{k % 3}")


# ----------------------------------------------------------- TraceRecorder


def test_drain_oldest_keeps_by_kind_consistent():
    rec = TraceRecorder()
    for i in range(10):
        rec.record(i, "p", "a" if i % 2 else "b", i)
    drained = rec.drain_oldest(4)
    assert [r.detail for r in drained] == [0, 1, 2, 3]
    assert len(rec) == 6
    assert rec.dropped == 0  # rotation is not loss
    assert [r.detail for r in rec.of_kind("a")] == [5, 7, 9]
    assert [r.detail for r in rec.of_kind("b")] == [4, 6, 8]
    assert rec.drain_oldest(100) and len(rec) == 0


# ------------------------------------------------------------- SegmentStore


def test_segment_store_round_trip_and_lookup(tmp_path):
    store = SegmentStore(str(tmp_path))
    src = TraceRecorder()
    for i in range(20):
        src.record(i, "p", "k", i)
    recs = src.records
    store.rotate(1, recs[:10], {1: "l"}, {2: "t"}, {3: "v"}, {7: "tok"})
    store.rotate(11, recs[10:], {}, {}, {}, {})
    assert store.total_stored == 20
    assert store.segment_for(1).first == 1
    assert store.segment_for(10).last == 10
    assert store.segment_for(11).first == 11
    assert store.segment_for(21) is None and store.segment_for(0) is None
    data = store.load(store.segment_for(5))
    assert data.record_at(5).detail == 4
    assert data.event_links == {1: "l"} and data.token_links == {7: "tok"}
    assert [d for _, d in store.iter_records()] == recs
    assert [i for i, _ in store.iter_records()] == list(range(1, 21))
    assert "2 segment(s)" in store.describe()
    with pytest.raises(ValueError):
        store.rotate(21, [], {}, {}, {}, {})


# ------------------------------------------------- rotation transparency


def test_segmented_journal_equals_unbounded(tmp_path):
    plain = ReplayJournal()
    seg = ReplayJournal(segment_dir=str(tmp_path), window=32)
    fill(plain, 200)
    fill(seg, 200)

    assert seg.total_events == plain.total_events == 400
    assert len(seg.events) < 64  # in-memory window stayed bounded
    assert len(seg.segments.segments) > 0
    assert seg.evicted_events == 0
    assert seg.stored_range() == (1, 400)

    # every record reachable at its position, memory or disk
    for idx in (1, 2, 33, 199, 400):
        assert seg.record_at(idx) == plain.record_at(idx)
    # side-table accessors fall back to segments
    for idx in range(1, 401):
        assert seg.link_for_event(idx) == plain.event_links.get(idx)
        assert seg.value_for_event(idx) == plain.event_values.get(idx)
        assert seg.target_for_event(idx) == plain.event_targets.get(idx)
    # token_links rotated with the minting push event
    assert seg.token_link(1) == "link0"
    assert seg.token_link(200) == plain.token_links[200]
    assert seg.token_link(9999) is None

    # streamed views are byte-identical to the unbounded journal
    assert list(seg.iter_indexed()) == [
        (i + 1, r) for i, r in enumerate(plain.events.records)
    ]
    assert seg.token_stream() == plain.token_stream()
    assert seg.link_value_streams() == plain.link_value_streams()
    assert seg.index_for_seq(150) == plain.index_for_seq(150)
    assert seg.index_for_time(1500) == plain.index_for_time(1500)


def test_segment_dir_overrides_lossy_bounds(tmp_path):
    j = ReplayJournal(limit=10, ring=True, segment_dir=str(tmp_path), window=16)
    fill(j, 50)
    assert j.evicted_events == 0
    assert j.record_at(1) is not None


# -------------------------------------- evicted vs never recorded (bugfix)


def test_ring_journal_distinguishes_evicted_from_unknown():
    j = ReplayJournal(limit=10, ring=True)
    fill(j, 50)  # 100 events total, only last 10 stored
    # seq 50 is in the stored window
    status, index = j.seq_status(50)
    assert status == "found" and j.record_at(index).detail == 50
    # seq 3 was recorded then evicted — must NOT claim it never existed
    assert j.seq_status(3) == ("evicted", None)
    # seq 999 was never recorded
    assert j.seq_status(999) == ("unknown", None)
    # time inside the evicted prefix is unanswerable...
    assert j.time_status(5)[0] == "evicted"
    # ...after the oldest surviving record it is exact
    lo, hi = j.stored_range()
    oldest = j.record_at(lo)
    status, index = j.time_status(oldest.time + 1)
    assert status == "found" and index > lo
    # beyond the end of the run: plain unknown
    assert j.time_status(10_000) == ("unknown", None)


def test_cap_journal_distinguishes_dropped_tail():
    j = ReplayJournal(limit=10)  # keeps the FIRST 10 events
    fill(j, 50)
    assert j.seq_status(2) == ("found", 3)  # seq 2's push sits at position 3
    # seq 40's push fell past the cap: evicted, not unknown
    assert j.seq_status(40) == ("evicted", None)
    assert j.seq_status(999) == ("unknown", None)
    # a time past the stored prefix cannot be resolved reliably
    assert j.time_status(400)[0] == "evicted"


def test_link_value_streams_refuses_partial_unless_asked():
    j = ReplayJournal(limit=10, ring=True)
    fill(j, 50)
    with pytest.raises(ReplayError, match="evicted"):
        j.link_value_streams()
    partial = j.link_value_streams(partial=True)
    assert partial  # the surviving window still streams
    unbounded = ReplayJournal()
    fill(unbounded, 50)
    assert unbounded.link_value_streams()  # complete journal: no error
