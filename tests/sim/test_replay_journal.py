"""Unit tests of the replay journal substrate (event log, checkpoints,
position queries) independent of the debugger driver."""

from repro.sim.replay import TOKEN_EVENT_KIND, Checkpoint, ReplayJournal


def fill(journal, n=10, t0=0):
    """n alternating push-exit / step-entry events; pushes carry seqs 1.."""
    seq = 0
    for i in range(n):
        if i % 2 == 0:
            seq += 1
            journal.add_event(t0 + i, "exit", "pedf_rt_push", f"actor{i % 3}", seq)
        else:
            journal.add_event(t0 + i, "entry", "pedf_rt_step", "ctl", None)
    return seq


def test_positions_are_one_based_and_counted():
    j = ReplayJournal()
    assert j.total_events == 0
    assert j.add_event(0, "exit", "pedf_rt_push", "a", 1) == 1
    assert j.add_event(5, "entry", "pedf_rt_step", "c", None) == 2
    assert j.total_events == 2
    assert j.record_at(1).detail == 1
    assert j.record_at(1).kind == TOKEN_EVENT_KIND
    assert j.record_at(2).detail is None
    assert j.record_at(0) is None and j.record_at(3) is None


def test_token_stream_and_seq_lookup():
    j = ReplayJournal()
    fill(j, 10)
    assert j.token_stream() == [1, 2, 3, 4, 5]
    assert j.index_for_seq(1) == 1
    assert j.index_for_seq(3) == 5  # pushes sit at odd positions 1,3,5,...
    assert j.index_for_seq(99) is None


def test_index_for_time_finds_first_event_at_or_after():
    j = ReplayJournal()
    fill(j, 6, t0=100)  # events at t=100..105
    assert j.index_for_time(100) == 1
    assert j.index_for_time(103) == 4
    assert j.index_for_time(999) is None


def test_cap_mode_keeps_first_events():
    j = ReplayJournal(limit=4)
    fill(j, 10)
    assert j.total_events == 10
    assert j.record_at(4) is not None
    assert j.record_at(5) is None  # beyond the cap: dropped at record time


def test_ring_mode_keeps_last_events():
    j = ReplayJournal(limit=4, ring=True)
    fill(j, 10)
    assert j.total_events == 10
    assert j.record_at(6) is None  # evicted
    assert j.record_at(7) is not None
    assert j.record_at(10) is not None
    # position arithmetic survives eviction: seq 5 was pushed at position 9
    assert j.index_for_seq(5) == 9


def test_nearest_checkpoint_and_dispatch_lookup():
    j = ReplayJournal()
    cp1 = Checkpoint(index=10, dispatch=64, time=5, next_seq=3, occupancy=())
    cp2 = Checkpoint(index=30, dispatch=128, time=9, next_seq=7, occupancy=())
    j.add_checkpoint(cp1)
    j.add_checkpoint(cp2)
    assert j.nearest_checkpoint(9) is None
    assert j.nearest_checkpoint(10) is cp1
    assert j.nearest_checkpoint(29) is cp1
    assert j.nearest_checkpoint(31) is cp2
    assert j.checkpoint_at_dispatch(128) is cp2
    assert j.checkpoint_at_dispatch(100) is None
    assert "dispatch 64" in cp1.describe()
