"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.errors import DeadlockError
from repro.sim import (
    Delay,
    Event,
    Process,
    ProcessState,
    Scheduler,
    StopKind,
    Suspend,
    TraceRecorder,
    WaitEvent,
    Yield,
)


def test_single_process_runs_to_completion():
    sched = Scheduler()
    log = []

    def proc():
        log.append(("start", sched.now))
        yield Delay(5)
        log.append(("after", sched.now))

    sched.spawn(proc(), "p")
    stop = sched.run()
    assert stop.kind == StopKind.EXHAUSTED
    assert log == [("start", 0), ("after", 5)]
    assert sched.now == 5


def test_process_return_value_captured():
    sched = Scheduler()

    def proc():
        yield Delay(1)
        return 42

    p = sched.spawn(proc(), "p")
    sched.run()
    assert p.state == ProcessState.TERMINATED
    assert p.result == 42


def test_two_processes_interleave_deterministically():
    sched = Scheduler()
    log = []

    def proc(tag, d):
        for _ in range(3):
            log.append((tag, sched.now))
            yield Delay(d)

    sched.spawn(proc("a", 2), "a")
    sched.spawn(proc("b", 3), "b")
    stop = sched.run()
    assert stop.kind == StopKind.EXHAUSTED
    assert log == [
        ("a", 0), ("b", 0), ("a", 2), ("b", 3), ("a", 4), ("b", 6),
    ]


def test_delay_zero_requeues_fifo():
    sched = Scheduler()
    log = []

    def proc(tag):
        for _ in range(2):
            log.append(tag)
            yield Delay(0)

    sched.spawn(proc("a"), "a")
    sched.spawn(proc("b"), "b")
    sched.run()
    assert log == ["a", "b", "a", "b"]
    assert sched.now == 0


def test_yield_equivalent_to_delay_zero():
    sched = Scheduler()
    log = []

    def proc(tag):
        log.append(tag)
        yield Yield()
        log.append(tag)

    sched.spawn(proc("a"), "a")
    sched.spawn(proc("b"), "b")
    sched.run()
    assert log == ["a", "b", "a", "b"]


def test_event_wait_and_notify():
    sched = Scheduler()
    ev = sched.event("go")
    log = []

    def waiter():
        yield WaitEvent(ev)
        log.append(("woken", sched.now))

    def notifier():
        yield Delay(10)
        ev.notify()

    sched.spawn(waiter(), "w")
    sched.spawn(notifier(), "n")
    stop = sched.run()
    assert stop.kind == StopKind.EXHAUSTED
    assert log == [("woken", 10)]


def test_event_broadcast_wakes_all_waiters():
    sched = Scheduler()
    ev = sched.event()
    woken = []

    def waiter(tag):
        yield WaitEvent(ev)
        woken.append(tag)

    for tag in "abc":
        sched.spawn(waiter(tag), tag)

    def notifier():
        yield Delay(1)
        assert ev.notify() == 3

    sched.spawn(notifier(), "n")
    sched.run()
    assert woken == ["a", "b", "c"]


def test_deadlock_detected_and_reported():
    sched = Scheduler()
    ev = sched.event("never")

    def waiter():
        yield WaitEvent(ev)

    sched.spawn(waiter(), "stuck1")
    sched.spawn(waiter(), "stuck2")
    stop = sched.run()
    assert stop.kind == StopKind.DEADLOCK
    assert sorted(stop.payload) == ["stuck1", "stuck2"]


def test_deadlock_raises_when_requested():
    sched = Scheduler()
    ev = sched.event()

    def waiter():
        yield WaitEvent(ev)

    sched.spawn(waiter(), "stuck")
    with pytest.raises(DeadlockError) as exc:
        sched.run(raise_on_deadlock=True)
    assert exc.value.blocked == ["stuck"]


def test_deadlock_untied_by_external_notify():
    """The debugger can notify an event from outside to untie a deadlock."""
    sched = Scheduler()
    ev = sched.event()
    log = []

    def waiter():
        yield WaitEvent(ev)
        log.append("resumed")

    sched.spawn(waiter(), "w")
    stop = sched.run()
    assert stop.kind == StopKind.DEADLOCK
    ev.notify()  # external (debugger-style) intervention
    stop = sched.run()
    assert stop.kind == StopKind.EXHAUSTED
    assert log == ["resumed"]


def test_suspend_pauses_and_resumes_in_place():
    sched = Scheduler()
    log = []

    def proc():
        log.append("a")
        yield Suspend("bp-hit")
        log.append("b")
        yield Delay(1)
        log.append("c")

    sched.spawn(proc(), "p")
    stop = sched.run()
    assert stop.kind == StopKind.SUSPENDED
    assert stop.payload == "bp-hit"
    assert log == ["a"]
    stop = sched.run()
    assert stop.kind == StopKind.EXHAUSTED
    assert log == ["a", "b", "c"]


def test_suspended_process_resumes_before_others():
    sched = Scheduler()
    log = []

    def susp():
        log.append("s1")
        yield Suspend("x")
        log.append("s2")

    def other():
        log.append("o1")
        yield Delay(0)
        log.append("o2")

    sched.spawn(other(), "o")
    sched.spawn(susp(), "s")
    sched.run()  # stops at suspend; "o1" ran first (spawned first)
    assert log == ["o1", "s1"]
    sched.run()
    assert log[2] == "s2"  # suspended process gets the CPU back first


def test_until_horizon_stops_run():
    sched = Scheduler()

    def proc():
        while True:
            yield Delay(10)

    sched.spawn(proc(), "p")
    stop = sched.run(until=35)
    assert stop.kind == StopKind.MAX_TIME
    assert sched.now == 35
    # resuming past the horizon works
    stop = sched.run(until=50)
    assert stop.kind == StopKind.MAX_TIME
    assert sched.now == 50


def test_max_dispatches_budget():
    sched = Scheduler()

    def proc():
        while True:
            yield Delay(1)

    sched.spawn(proc(), "p")
    stop = sched.run(max_dispatches=7)
    assert stop.kind == StopKind.MAX_DISPATCHES
    # budget exhausted but simulation is resumable
    stop = sched.run(max_dispatches=3)
    assert stop.kind == StopKind.MAX_DISPATCHES


def test_process_error_surfaces():
    sched = Scheduler()

    def bad():
        yield Delay(1)
        raise ValueError("boom")

    p = sched.spawn(bad(), "bad")
    stop = sched.run()
    assert stop.kind == StopKind.PROCESS_ERROR
    assert p.state == ProcessState.FAILED
    assert isinstance(stop.payload, ValueError)


def test_invalid_request_is_a_process_error():
    sched = Scheduler()

    def bad():
        yield "nonsense"

    sched.spawn(bad(), "bad")
    stop = sched.run()
    assert stop.kind == StopKind.PROCESS_ERROR


def test_kill_removes_process():
    sched = Scheduler()
    ev = sched.event()
    log = []

    def waiter():
        yield WaitEvent(ev)
        log.append("never")

    def killer(victim_box):
        yield Delay(1)
        sched.kill(victim_box[0])

    box = []
    box.append(sched.spawn(waiter(), "victim"))
    sched.spawn(killer(box), "killer")
    stop = sched.run()
    assert stop.kind == StopKind.EXHAUSTED
    assert log == []
    assert not box[0].alive
    assert ev.waiters == ()


def test_nested_generators_forward_requests():
    sched = Scheduler()
    log = []

    def helper():
        yield Delay(3)
        return "inner"

    def proc():
        value = yield from helper()
        log.append((value, sched.now))

    sched.spawn(proc(), "p")
    sched.run()
    assert log == [("inner", 3)]


def test_trace_records_lifecycle():
    trace = TraceRecorder()
    sched = Scheduler(trace=trace)

    def proc():
        yield Delay(1)

    sched.spawn(proc(), "p")
    sched.run()
    kinds = [r.kind for r in trace.records]
    assert kinds == ["spawn", "terminate"]


def test_pre_dispatch_hook_can_force_suspend():
    sched = Scheduler()
    log = []

    def proc():
        log.append("x")
        yield Delay(1)
        log.append("y")

    sched.spawn(proc(), "p")
    hits = []

    def hook(p):
        hits.append(p.name)
        if len(hits) == 2:
            return Suspend("forced")
        return None

    sched.pre_dispatch_hook = hook
    stop = sched.run()
    assert stop.kind == StopKind.SUSPENDED
    assert stop.payload == "forced"
    assert log == ["x"]
    sched.pre_dispatch_hook = None
    stop = sched.run()
    assert stop.kind == StopKind.EXHAUSTED
    assert log == ["x", "y"]
