"""Unit + property tests for the FIFO channel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Delay, Fifo, Scheduler, StopKind


def drive(sched):
    stop = sched.run()
    assert stop.kind == StopKind.EXHAUSTED, stop
    return stop


def test_put_get_preserves_fifo_order():
    sched = Scheduler()
    fifo = Fifo(sched, capacity=4)
    got = []

    def producer():
        for i in range(10):
            yield from fifo.put(i)

    def consumer():
        for _ in range(10):
            item = yield from fifo.get()
            got.append(item)

    sched.spawn(producer(), "prod")
    sched.spawn(consumer(), "cons")
    drive(sched)
    assert got == list(range(10))


def test_bounded_capacity_blocks_producer():
    sched = Scheduler()
    fifo = Fifo(sched, capacity=2)
    log = []

    def producer():
        for i in range(4):
            yield from fifo.put(i)
            log.append(("put", i, sched.now))

    def consumer():
        yield Delay(100)
        while True:
            item = fifo.try_get()
            if item is None:
                break
            log.append(("got", item, sched.now))
            yield Delay(10)

    sched.spawn(producer(), "prod")
    sched.spawn(consumer(), "cons")
    drive(sched)
    puts = [e for e in log if e[0] == "put"]
    # first two puts at t=0, the rest only after the consumer drains
    assert puts[0][2] == 0 and puts[1][2] == 0
    assert puts[2][2] >= 100


def test_unbounded_fifo_never_blocks_producer():
    sched = Scheduler()
    fifo = Fifo(sched, capacity=0)

    def producer():
        for i in range(1000):
            yield from fifo.put(i)

    sched.spawn(producer(), "prod")
    drive(sched)
    assert len(fifo) == 1000
    assert fifo.snapshot()[:3] == [0, 1, 2]


def test_consumer_blocks_until_data():
    sched = Scheduler()
    fifo = Fifo(sched)
    log = []

    def consumer():
        item = yield from fifo.get()
        log.append((item, sched.now))

    def producer():
        yield Delay(7)
        yield from fifo.put("x")

    sched.spawn(consumer(), "cons")
    sched.spawn(producer(), "prod")
    drive(sched)
    assert log == [("x", 7)]


def test_multiple_consumers_each_get_distinct_items():
    sched = Scheduler()
    fifo = Fifo(sched)
    got = {}

    def consumer(tag):
        item = yield from fifo.get()
        got[tag] = item

    def producer():
        yield Delay(1)
        yield from fifo.put(1)
        yield Delay(1)
        yield from fifo.put(2)

    sched.spawn(consumer("a"), "a")
    sched.spawn(consumer("b"), "b")
    sched.spawn(producer(), "p")
    drive(sched)
    assert sorted(got.values()) == [1, 2]


def test_force_put_wakes_blocked_consumer():
    """Debugger token injection unties a blocked consumer."""
    sched = Scheduler()
    fifo = Fifo(sched)
    log = []

    def consumer():
        item = yield from fifo.get()
        log.append(item)

    sched.spawn(consumer(), "cons")
    stop = sched.run()
    assert stop.kind == StopKind.DEADLOCK
    fifo.force_put("injected")
    drive(sched)
    assert log == ["injected"]


def test_force_put_with_index_positions_item():
    sched = Scheduler()
    fifo = Fifo(sched)
    for i in range(3):
        fifo.try_put(i)
    fifo.force_put(99, index=1)
    assert fifo.snapshot() == [0, 99, 1, 2]


def test_remove_at_and_replace_at():
    sched = Scheduler()
    fifo = Fifo(sched)
    for i in range(4):
        fifo.try_put(i)
    assert fifo.remove_at(2) == 2
    assert fifo.snapshot() == [0, 1, 3]
    assert fifo.replace_at(1, "new") == 1
    assert fifo.snapshot() == [0, "new", 3]


def test_try_put_respects_capacity():
    sched = Scheduler()
    fifo = Fifo(sched, capacity=1)
    assert fifo.try_put("a")
    assert not fifo.try_put("b")
    assert fifo.try_get() == "a"
    assert fifo.try_get() is None


def test_counters_track_traffic():
    sched = Scheduler()
    fifo = Fifo(sched)
    fifo.try_put(1)
    fifo.try_put(2)
    fifo.try_get()
    assert fifo.total_put == 2
    assert fifo.total_got == 1


@settings(max_examples=50, deadline=None)
@given(
    items=st.lists(st.integers(), max_size=60),
    capacity=st.integers(min_value=1, max_value=8),
    consumer_delay=st.integers(min_value=0, max_value=5),
    producer_delay=st.integers(min_value=0, max_value=5),
)
def test_property_fifo_order_preserved(items, capacity, consumer_delay, producer_delay):
    """Whatever the capacity and timing, a single producer/consumer pair
    observes items in exact production order with none lost or duplicated.
    This is the token-determinism property the paper's debugger relies on."""
    sched = Scheduler()
    fifo = Fifo(sched, capacity=capacity)
    got = []

    def producer():
        for x in items:
            yield from fifo.put(x)
            if producer_delay:
                yield Delay(producer_delay)

    def consumer():
        for _ in items:
            item = yield from fifo.get()
            got.append(item)
            if consumer_delay:
                yield Delay(consumer_delay)

    sched.spawn(producer(), "prod")
    sched.spawn(consumer(), "cons")
    stop = sched.run()
    assert stop.kind == StopKind.EXHAUSTED
    assert got == items
    assert fifo.empty
