"""Partitioner unit tests: islands keyed off clusters, hosts as their
own island, user overrides, and the cross-link census with
single-kernel-identical names."""

import pytest

from repro.cminus.typesys import U32
from repro.errors import SimulationError
from repro.pedf.decls import ControllerDecl, FilterDecl, ModuleDecl, ProgramDecl
from repro.sim.sharding import (
    HostSpec,
    enumerate_cross_links,
    partition_program,
)

CTL_SOURCE = "void work() { WAIT_FOR_ACTOR_SYNC(); }\n"
FILT_SOURCE = "void work() { pedf.io.o[0] = pedf.io.i[0]; }\n"


def _module(name, cluster=None):
    mod = ModuleDecl(name=name, cluster=cluster)
    ctl = ControllerDecl(name="ctl", source=CTL_SOURCE, source_name="ctl.c", max_steps=1)
    mod.set_controller(ctl)
    f = FilterDecl(name="f", source=FILT_SOURCE, source_name="f.c")
    f.add_iface("i", "input", U32)
    f.add_iface("o", "output", U32)
    mod.add_filter(f)
    mod.add_iface("in", "input", U32)
    mod.add_iface("out", "output", U32)
    mod.bind("this", "in", "f", "i")
    mod.bind("f", "o", "this", "out")
    return mod


def _chain_program():
    """a(cluster 0) -> b(cluster 0) -> c(cluster 1), host source/sink."""
    program = ProgramDecl(name="chain")
    for name, cluster in (("a", 0), ("b", 0), ("c", 1)):
        program.add_module(_module(name, cluster=cluster))
    program.bind("a", "out", "b", "in", capacity=4)
    program.bind("b", "out", "c", "in")
    return program


HOSTS = (HostSpec("src", "a", "in", "source"), HostSpec("snk", "c", "out", "sink"))


def test_co_clustered_modules_share_a_shard():
    plan = partition_program(_chain_program(), 2, hosts=HOSTS)
    assert plan.shard_of("a") == plan.shard_of("b")
    assert plan.shard_of("c") != plan.shard_of("a")
    # hosts form their own island, folded round-robin onto a shard
    assert plan.shard_of("src") == plan.shard_of("snk")


def test_single_shard_plan_holds_everything():
    plan = partition_program(_chain_program(), 1, hosts=HOSTS)
    assert set(plan.assignment.values()) == {0}
    assert plan.units_of(0) == ["a", "b", "c", "snk", "src"]


def test_override_wins_and_is_validated():
    plan = partition_program(_chain_program(), 2, hosts=HOSTS, override={"b": 1})
    assert plan.shard_of("b") == 1
    with pytest.raises(SimulationError):
        partition_program(_chain_program(), 2, override={"nope": 0})
    with pytest.raises(SimulationError):
        partition_program(_chain_program(), 2, hosts=HOSTS, override={"b": 7})


def test_describe_lists_every_shard():
    plan = partition_program(_chain_program(), 4, hosts=HOSTS)
    lines = plan.describe()
    assert len(lines) == 4
    assert lines[0].startswith("shard 0:")


def test_cross_link_census_uses_single_kernel_names():
    # split b away from a: the a->b binding becomes a cut link whose name
    # must match what a single-kernel elaboration would call it
    plan = partition_program(
        _chain_program(), 2, hosts=HOSTS, override={"a": 0, "b": 1, "c": 1, "src": 0, "snk": 0}
    )
    links = {cl.name: cl for cl in enumerate_cross_links(_chain_program(), plan, hosts=HOSTS)}
    assert set(links) == {
        "f::o->f::i",  # a.f -> b.f (both ends alias "f", module-qualified at runtime)
        "f::o->snk::in",  # c.f -> sink host
    }
    ab = links["f::o->f::i"]
    assert (ab.src_unit, ab.dst_unit) == ("a", "b")
    assert (ab.src_shard, ab.dst_shard) == (0, 1)
    assert ab.capacity == 4  # declared capacity survives the census


def test_uncut_plan_yields_no_cross_links():
    plan = partition_program(_chain_program(), 1, hosts=HOSTS)
    assert enumerate_cross_links(_chain_program(), plan, hosts=HOSTS) == []
