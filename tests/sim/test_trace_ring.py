"""Ring-buffer TraceRecorder semantics (and the no-allocation cap path)."""

from repro.sim.trace import TraceRecorder


def fill(tr, n, kind="tick"):
    for i in range(n):
        tr.record(i, "p", kind)


def test_unbounded_keeps_everything():
    tr = TraceRecorder()
    fill(tr, 100)
    assert len(tr.records) == 100
    assert tr.dropped == 0


def test_cap_mode_keeps_first_records():
    tr = TraceRecorder(limit=3)
    fill(tr, 10)
    assert [r.time for r in tr.records] == [0, 1, 2]
    assert tr.dropped == 7
    assert tr.count("tick") == 3
    assert tr.total("tick") == 10


def test_ring_mode_keeps_last_records():
    tr = TraceRecorder(limit=3, ring=True)
    fill(tr, 10)
    assert [r.time for r in tr.records] == [7, 8, 9]
    assert tr.dropped == 7
    assert tr.count("tick") == 3
    assert tr.total("tick") == 10


def test_ring_per_kind_index_survives_eviction():
    tr = TraceRecorder(limit=4, ring=True)
    for i in range(10):
        tr.record(i, "p", "even" if i % 2 == 0 else "odd")
    # stored: times 6..9 -> evens 6, 8 and odds 7, 9
    assert [r.time for r in tr.of_kind("even")] == [6, 8]
    assert [r.time for r in tr.of_kind("odd")] == [7, 9]
    assert tr.count("even") == 2 and tr.total("even") == 5
    # the index agrees with a scan of the stored records
    for kind in ("even", "odd"):
        assert tr.of_kind(kind) == [r for r in tr.records if r.kind == kind]


def test_lazy_detail_only_rendered_when_stored():
    calls = []

    def make(tag):
        return lambda: calls.append(tag) or tag

    tr = TraceRecorder(limit=2)
    tr.record(0, "p", "k", make("a"))
    tr.record(1, "p", "k", make("b"))
    tr.record(2, "p", "k", make("c"))  # dropped: never rendered
    assert calls == ["a", "b"]
    assert [r.detail for r in tr.records] == ["a", "b"]


def test_ring_renders_detail_of_stored_records():
    calls = []
    tr = TraceRecorder(limit=1, ring=True)
    tr.record(0, "p", "k", lambda: calls.append("a") or "a")
    tr.record(1, "p", "k", lambda: calls.append("b") or "b")
    # ring stores (then evicts) every record, so both render
    assert calls == ["a", "b"]
    assert [r.detail for r in tr.records] == ["b"]


def test_zero_limit_stores_nothing():
    for ring in (False, True):
        tr = TraceRecorder(limit=0, ring=ring)
        fill(tr, 5)
        assert tr.records == []
        assert tr.dropped == 5
        assert tr.total("tick") == 5


def test_clear_resets_everything():
    tr = TraceRecorder(limit=2, ring=True)
    fill(tr, 5)
    tr.clear()
    assert tr.records == []
    assert tr.dropped == 0
    assert tr.of_kind("tick") == []
    assert tr.count("tick") == 0
    assert tr.total("tick") == 0
    fill(tr, 1)
    assert len(tr.records) == 1


def test_of_kind_on_unknown_kind():
    tr = TraceRecorder()
    fill(tr, 3)
    assert tr.of_kind("nope") == []
    assert tr.count("nope") == 0
    assert tr.total("nope") == 0


def test_ring_limit_one_keeps_only_newest():
    tr = TraceRecorder(limit=1, ring=True)
    for i in range(4):
        tr.record(i, "p", f"k{i}")
    assert [r.time for r in tr.records] == [3]
    assert tr.dropped == 3
    # the per-kind index evicted along with the records
    for i in range(3):
        assert tr.of_kind(f"k{i}") == []
        assert tr.count(f"k{i}") == 0
        assert tr.total(f"k{i}") == 1
    assert tr.count("k3") == 1


def test_sequence_protocol():
    tr = TraceRecorder(limit=3, ring=True)
    fill(tr, 5)
    assert len(tr) == 3
    assert [r.time for r in tr] == [2, 3, 4]
    assert tr.at(0).time == 2
    assert tr.at(-1).time == 4


def test_snapshot_is_atomic_copy():
    tr = TraceRecorder(limit=2, ring=True)
    fill(tr, 5)
    snap = tr.snapshot()
    assert [r.time for r in snap.records] == [3, 4]
    assert snap.kind_counts == {"tick": 5}
    assert snap.dropped == 3
    # mutating the recorder does not alias into the snapshot...
    tr.record(9, "p", "tock")
    tr.clear()
    assert [r.time for r in snap.records] == [3, 4]
    assert snap.kind_counts == {"tick": 5}
    # ...and mutating the snapshot does not touch the recorder
    snap.kind_counts["tick"] = 0
    fill(tr, 1)
    assert tr.total("tick") == 1


def test_snapshot_after_clear_is_empty():
    tr = TraceRecorder(limit=2)
    fill(tr, 5)
    tr.clear()
    snap = tr.snapshot()
    assert snap.records == [] and snap.kind_counts == {} and snap.dropped == 0
