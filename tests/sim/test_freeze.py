"""Kernel-level freeze/thaw (paper §III path blocking)."""

from repro.sim import Delay, ProcessState, Scheduler, StopKind, WaitEvent


def test_freeze_ready_process_holds_it():
    sched = Scheduler()
    log = []

    def proc(tag):
        for _ in range(2):
            log.append(tag)
            yield Delay(1)

    a = sched.spawn(proc("a"), "a")
    b = sched.spawn(proc("b"), "b")
    sched.freeze(b)
    stop = sched.run()
    assert stop.kind == StopKind.DEADLOCK  # b still frozen
    assert log == ["a", "a"]
    assert "b (frozen)" in stop.payload
    sched.thaw(b)
    stop = sched.run()
    assert stop.kind == StopKind.EXHAUSTED
    assert log == ["a", "a", "b", "b"]


def test_freeze_timed_process_parks_on_wake():
    sched = Scheduler()
    log = []

    def sleeper():
        yield Delay(5)
        log.append(sched.now)

    p = sched.spawn(sleeper(), "p")
    sched.run(max_dispatches=1)  # let it enter its sleep
    sched.freeze(p)
    stop = sched.run()
    assert stop.kind == StopKind.DEADLOCK
    assert p.state == ProcessState.FROZEN
    assert log == []
    sched.thaw(p)
    sched.run()
    assert log == [5]


def test_freeze_waiting_process_intercepts_notify():
    sched = Scheduler()
    ev = sched.event()
    log = []

    def waiter():
        yield WaitEvent(ev)
        log.append("woke")

    p = sched.spawn(waiter(), "w")
    sched.run(max_dispatches=1)
    sched.freeze(p)
    ev.notify()
    stop = sched.run()
    assert stop.kind == StopKind.DEADLOCK
    assert log == []
    sched.thaw(p)
    sched.run()
    assert log == ["woke"]


def test_freeze_thaw_idempotent():
    sched = Scheduler()

    def proc():
        yield Delay(1)

    p = sched.spawn(proc(), "p")
    sched.freeze(p)
    sched.freeze(p)
    sched.thaw(p)
    sched.thaw(p)
    assert sched.run().kind == StopKind.EXHAUSTED


def test_freeze_actor_blocks_one_dataflow_path():
    """Freeze ipf mid-decode: upstream backs up, the rest of the pipeline
    drains, thaw completes the sequence — the §III stepping scenario."""
    from repro.apps.h264.app import build_decoder
    from repro.dbg import CommandCli, Debugger, StopKind as DStopKind

    sched, platform, runtime, source, sink, mbs = build_decoder(n_mbs=4)
    dbg = Debugger(sched, runtime)
    cli = CommandCli(dbg)
    dbg.break_source("ipred.c:7", temporary=True)
    dbg.run()
    out = cli.execute("freeze ipf")
    assert "frozen" in out[0]
    ev = dbg.cont()
    assert ev.kind == DStopKind.DEADLOCK
    assert "pred.ipf (frozen)" in ev.message
    assert sink.values == []  # nothing reached the display
    cli.execute("thaw ipf")
    ev = dbg.cont()
    assert ev.kind == DStopKind.EXITED
    assert len(sink.values) == 4
