"""Tie-break determinism audit for the kernel's timed heap.

The sharded fingerprint contract rests on one property of the
single-kernel dispatcher: same-time events are ordered by ``(time,
seq)`` — seq being the monotone schedule counter — and by *nothing
else*.  No process name, no ``id()``, no hash order may ever break a
tie, or dispatch streams would vary run to run and the per-shard
journal merge could never be byte-compared against a single-kernel run.

Three layers of defence:

* a source audit: the only ``heappush`` in ``kernel.py`` pushes the
  literal ``(time, self._seq, proc)`` triple;
* a structural guarantee: :class:`Process` defines no ``__lt__``, so a
  heap comparison that ever *reached* the third tuple element would
  raise ``TypeError`` instead of silently ordering by object identity;
* a behavioural regression: identical programs registered in shuffled
  orders dispatch same-time events in exactly registration order.
"""

import inspect
import re

from repro.sim.kernel import Scheduler
from repro.sim.process import Delay, Process


def test_timed_heap_orders_by_time_then_seq_only():
    import repro.sim.kernel as kernel_mod

    source = inspect.getsource(kernel_mod)
    pushes = re.findall(r"heapq\.heappush\(([^\n]*)\)", source)
    assert pushes == ["self._timed, (time, self._seq, proc)"], (
        "kernel.py grew a heappush that does not use the (time, seq) "
        f"tie-break: {pushes}"
    )


def test_process_has_no_ordering_dunder():
    # object.__lt__ exists but is not callable into an ordering; what
    # matters is that Process doesn't *define* one — a heap tie past
    # (time, seq) must be impossible, not resolved arbitrarily.
    assert "__lt__" not in Process.__dict__
    assert "__gt__" not in Process.__dict__


def _run_traced(order):
    """Spawn ``len(order)`` identical delay-loops, registering them in
    the given order; return the dispatched-name sequence (self-reported
    at every resume, so it is exactly the kernel's dispatch order)."""
    sched = Scheduler()
    log = []

    def looper(name):
        for _ in range(3):
            log.append(name)
            yield Delay(5)

    for i, tag in enumerate(order):
        name = f"p{tag}"
        sched.spawn(looper(name), name=name)
    sched.run()
    return log


def test_identical_runs_dispatch_identically():
    order = [3, 1, 4, 1, 5, 9, 2, 6]
    names = [f"p{t}" for t in order]
    seq_a = _run_traced(order)
    seq_b = _run_traced(order)
    assert seq_a == seq_b
    assert set(seq_a) >= set(names)


def test_same_time_events_follow_registration_order():
    # every process delays to the same instants, so *all* ordering is
    # tie-breaking; the dispatch stream must be the registration order,
    # repeated — regardless of how names would sort
    forward = _run_traced([0, 1, 2, 3])
    shuffled = _run_traced([2, 0, 3, 1])
    assert forward == ["p0", "p1", "p2", "p3"] * 3
    assert shuffled == ["p2", "p0", "p3", "p1"] * 3
