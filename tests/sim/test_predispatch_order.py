"""Dispatch-loop ordering: alive-check -> pre-dispatch hook -> budget ->
dispatch.  A dead queued process gets no hook call and consumes no budget;
a hook-forced stop consumes no budget either."""

from repro.sim import Scheduler, Yield
from repro.sim.kernel import StopKind
from repro.sim.process import Suspend


def test_dead_queued_process_gets_no_hook_and_no_budget():
    sched = Scheduler()
    seen = []
    sched.pre_dispatch_hook = lambda proc: seen.append(proc.name)

    def victim_gen():
        yield Yield()

    def killer_gen():
        sched.kill(victim)
        yield Yield()

    killer = sched.spawn(killer_gen(), "killer")
    victim = sched.spawn(victim_gen(), "victim")

    # killer needs exactly 2 dispatches; if the dead victim consumed
    # budget when popped, this would stop at MAX_DISPATCHES instead
    stop = sched.run(max_dispatches=2)
    assert stop.kind == StopKind.EXHAUSTED
    assert seen == ["killer", "killer"]
    assert "victim" not in seen


def test_hook_forced_stop_consumes_no_budget():
    sched = Scheduler()
    armed = {"fire": True}

    def hook(proc):
        if armed["fire"]:
            armed["fire"] = False
            return Suspend("preempt")
        return None

    sched.pre_dispatch_hook = hook

    def p():
        yield Yield()

    sched.spawn(p(), "p")
    # hook fires before the budget check: even a zero budget yields the
    # forced SUSPENDED stop, not MAX_DISPATCHES
    stop = sched.run(max_dispatches=0)
    assert stop.kind == StopKind.SUSPENDED
    assert stop.process.name == "p"
    # the process was re-queued at the front; 2 dispatches finish it
    stop = sched.run(max_dispatches=2)
    assert stop.kind == StopKind.EXHAUSTED


def test_disarmed_hook_never_runs():
    sched = Scheduler()
    calls = []
    sched.pre_dispatch_hook = lambda proc: calls.append(proc.name)
    sched.set_pre_dispatch_armed(False)

    def p():
        yield Yield()

    sched.spawn(p(), "p")
    stop = sched.run()
    assert stop.kind == StopKind.EXHAUSTED
    assert calls == []


def test_rearming_restores_hook_calls():
    sched = Scheduler()
    calls = []
    sched.pre_dispatch_hook = lambda proc: calls.append(proc.name)
    sched.set_pre_dispatch_armed(False)
    sched.set_pre_dispatch_armed(True)

    def p():
        yield Yield()

    sched.spawn(p(), "p")
    sched.run()
    assert calls == ["p", "p"]


def test_arming_without_hook_is_inert():
    sched = Scheduler()
    sched.set_pre_dispatch_armed(True)  # no hook attached: must stay off
    assert not sched._pre_dispatch_armed

    def p():
        yield Yield()

    sched.spawn(p(), "p")
    stop = sched.run()
    assert stop.kind == StopKind.EXHAUSTED


def test_assigning_hook_arms_for_backwards_compatibility():
    sched = Scheduler()
    sched.pre_dispatch_hook = lambda proc: None
    assert sched._pre_dispatch_armed
    sched.pre_dispatch_hook = None
    assert not sched._pre_dispatch_armed
