"""Suite-wide fixtures."""

import pytest


@pytest.fixture(autouse=True)
def _flight_dumps_into_tmp(tmp_path, monkeypatch):
    """Keep automatic flight-recorder dumps out of the working tree.

    The recorder is always armed, so any test that drives a run into a
    violation/error/deadlock stop would otherwise drop a
    ``flight_*.json`` bundle into the repo root.  Tests that care about
    the dump location set ``session.flight.dump_dir`` explicitly, which
    overrides this class-level redirect.
    """
    from repro.obs.flight import FlightRecorder

    monkeypatch.setattr(FlightRecorder, "dump_dir", str(tmp_path / "flight"))
