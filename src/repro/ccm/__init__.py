"""A second programming model on the same debugger base: components.

The paper's future work: "we will investigate how the idea of leveraging
the programming model to improve the debugging experience can be applied
to different models [...] We expect our debugger to be able to easily
encompass new models, thanks to a generic code base."  The authors' own
companion work (§VII-B, SCOPES'12) applied the idea to component-based
software engineering: standalone components providing services on input
interfaces and serving responses on output interfaces, with an
architecture that — unlike dataflow — **can be rebound at runtime**.

This package is that demonstration: a minimal component framework whose
components are written in the same Filter-C language (so two-level
debugging works unchanged) and whose runtime duck-types the interface
:class:`~repro.dbg.debugger.Debugger` expects — the *same* base debugger,
CLI, breakpoints and expression evaluator drive it, and a model-aware
extension (:class:`~repro.ccm.debug.ComponentSession`) captures service
requests/responses through the identical function-breakpoint mechanism.

Entities:

- **Component** — Filter-C unit defining ``U32 serve_<svc>(U32)`` for
  each provided service; calls required services with the ``CALL(name,
  arg)`` intrinsic;
- **Assembly** — components + bindings (required → provided), rebindable
  at runtime (the dynamic-architecture property §VII-B highlights);
- **ComponentSession** — `component X catch request|response [svc]`,
  message tracing with request/response pairing, architecture graph, and
  a ``rebind`` command that rewires the assembly from the debugger.
"""

from .decls import AssemblyDecl, ComponentDecl
from .runtime import AssemblyRuntime, SYM_CCM_BIND, SYM_CCM_REGISTER, SYM_CCM_REQUEST
from .debug import ComponentSession, install_component_commands

__all__ = [
    "AssemblyDecl",
    "ComponentDecl",
    "AssemblyRuntime",
    "SYM_CCM_BIND",
    "SYM_CCM_REGISTER",
    "SYM_CCM_REQUEST",
    "ComponentSession",
    "install_component_commands",
]
