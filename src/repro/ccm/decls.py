"""Component and assembly declarations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cminus.ast import Program as CProgram
from ..cminus.debuginfo import DebugInfo
from ..errors import ReproError


class CcmError(ReproError):
    """Error in a component assembly."""


def _camel(name: str) -> str:
    return "".join(p[0].upper() + p[1:] for p in name.split("_") if p)


def mangle_service_symbol(component: str, service: str) -> str:
    return f"{_camel(component)}Component_serve_{service}"


def mangle_helper_prefix(component: str) -> str:
    return f"{_camel(component)}Component_"


@dataclass
class ComponentDecl:
    """One component: Filter-C source + provided/required interfaces.

    The source defines ``U32 serve_<name>(U32 arg)`` for each provided
    service and may invoke required interfaces with ``CALL(req, arg)``.
    """

    name: str
    source: str
    provides: List[str] = field(default_factory=list)
    requires: List[str] = field(default_factory=list)
    source_name: str = ""
    # filled at compile time
    cprogram: Optional[CProgram] = None
    debug_info: Optional[DebugInfo] = None
    service_symbols: Dict[str, str] = field(default_factory=dict)

    kind = "component"


@dataclass
class AssemblyDecl:
    """Components plus initial bindings (required → component.provided)."""

    name: str
    components: Dict[str, ComponentDecl] = field(default_factory=dict)
    #: (component, required_iface) -> (provider_component, provided_iface)
    bindings: Dict[Tuple[str, str], Tuple[str, str]] = field(default_factory=dict)

    def add_component(self, decl: ComponentDecl) -> ComponentDecl:
        if decl.name in self.components:
            raise CcmError(f"component {decl.name!r} redeclared")
        self.components[decl.name] = decl
        return decl

    def bind(self, client: str, required: str, provider: str, provided: str) -> None:
        self.bindings[(client, required)] = (provider, provided)

    def validate(self) -> None:
        for (client, required), (provider, provided) in self.bindings.items():
            c = self.components.get(client)
            if c is None:
                raise CcmError(f"binding: unknown component {client!r}")
            if required not in c.requires:
                raise CcmError(f"binding: {client} does not require {required!r}")
            p = self.components.get(provider)
            if p is None:
                raise CcmError(f"binding: unknown provider {provider!r}")
            if provided not in p.provides:
                raise CcmError(f"binding: {provider} does not provide {provided!r}")
        for c in self.components.values():
            for required in c.requires:
                if (c.name, required) not in self.bindings:
                    raise CcmError(f"{c.name}.{required} is required but unbound")
