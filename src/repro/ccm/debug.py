"""The component-model debugger extension.

Same recipe as :mod:`repro.core`, different model: internal
representations rebuilt from registration events, message-level
catchpoints via function breakpoints on the component API symbols, a
message trace pairing requests with responses, a DOT architecture view,
and a ``rebind`` command exploiting the model's dynamic architecture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..dbg.cli import Command, CommandCli
from ..dbg.debugger import Debugger
from ..dbg.stop import StopEvent, StopKind
from ..errors import CommandError
from .runtime import (
    SYM_CCM_BIND,
    SYM_CCM_REBIND,
    SYM_CCM_REGISTER,
    SYM_CCM_REGISTER_IFACE,
    SYM_CCM_REQUEST,
    SYM_CCM_SERVE,
)


@dataclass
class DbgComponent:
    name: str
    qualname: str
    resource: str = ""
    provides: List[str] = field(default_factory=list)
    requires: List[str] = field(default_factory=list)
    requests_made: int = 0
    served: int = 0


@dataclass
class DbgMessage:
    req_id: int
    client: str
    provider: str
    service: str
    arg: int
    issued_at: int
    result: Optional[int] = None
    completed_at: Optional[int] = None

    @property
    def pending(self) -> bool:
        return self.completed_at is None

    def __str__(self) -> str:
        status = "pending" if self.pending else f"-> {self.result}"
        return (f"#{self.req_id} {self.client} -> {self.provider}.{self.service}({self.arg}) "
                f"{status}")


@dataclass
class MessageCatch:
    """A component-level catchpoint over requests or responses."""

    cp_id: int
    component: str  # qualified
    phase: str  # "request" | "response" | "serve"
    service: Optional[str] = None
    enabled: bool = True
    temporary: bool = False
    hits: int = 0


class ComponentSession:
    """Model-aware debugging for component assemblies."""

    def __init__(self, debugger: Debugger, cli: Optional[CommandCli] = None,
                 stop_on_init: bool = False):
        self.dbg = debugger
        self.stop_on_init = stop_on_init
        self.components: Dict[str, DbgComponent] = {}
        self.bindings: Dict[Tuple[str, str], Tuple[str, str]] = {}
        self.messages: Dict[int, DbgMessage] = {}
        self.trace: List[DbgMessage] = []
        self.catches: Dict[int, MessageCatch] = {}
        self._next_catch = 1
        self.initialized = False
        self._install()
        if cli is not None:
            install_component_commands(cli, self)

    # -------------------------------------------------------------- capture

    def _install(self) -> None:
        bp = self.dbg.break_api
        bp("ccm_rt_register_assembly", phase="both", internal=True, stop_fn=self._on_assembly)
        bp(SYM_CCM_REGISTER, phase="entry", internal=True, stop_fn=self._on_register)
        bp(SYM_CCM_REGISTER_IFACE, phase="entry", internal=True, stop_fn=self._on_iface)
        bp(SYM_CCM_BIND, phase="entry", internal=True, stop_fn=self._on_bind)
        bp(SYM_CCM_REBIND, phase="entry", internal=True, stop_fn=self._on_bind)
        bp(SYM_CCM_REQUEST, phase="both", internal=True, stop_fn=self._on_request)
        bp(SYM_CCM_SERVE, phase="entry", internal=True, stop_fn=self._on_serve)

    def _on_assembly(self, event) -> Union[bool, StopEvent]:
        if event.phase == "exit":
            self.initialized = True
            if self.stop_on_init:
                return StopEvent(
                    StopKind.DATAFLOW,
                    message=f"[Component assembly reconstructed: "
                    f"{len(self.components)} components, {len(self.bindings)} bindings]",
                )
        return False

    def _on_register(self, event) -> bool:
        name = event.args["component"]
        self.components[name] = DbgComponent(
            name=name, qualname=f"ccm.{name}", resource=event.args.get("resource", "")
        )
        return False

    def _on_iface(self, event) -> bool:
        comp = self.components.get(event.args["component"])
        if comp is not None:
            if event.args["role"] == "provides":
                comp.provides.append(event.args["iface"])
            else:
                comp.requires.append(event.args["iface"])
        return False

    def _on_bind(self, event) -> bool:
        args = event.args
        self.bindings[(args["client"], args["required"])] = (args["provider"], args["provided"])
        return False

    def _on_request(self, event) -> Union[bool, StopEvent]:
        args = event.args
        if event.phase == "entry":
            msg = DbgMessage(
                req_id=args["request_id"],
                client=args["client"],
                provider=args["provider"],
                service=args["service"],
                arg=args["arg"],
                issued_at=event.time,
            )
            self.messages[msg.req_id] = msg
            self.trace.append(msg)
            client = self.components.get(args["client"].split(".", 1)[-1])
            if client is not None:
                client.requests_made += 1
            return self._check_catches(event.args["client"], "request", msg, event)
        msg = self.messages.get(args["request_id"])
        if msg is not None:
            msg.result = event.retval
            msg.completed_at = event.time
            return self._check_catches(args["client"], "response", msg, event)
        return False

    def _on_serve(self, event) -> Union[bool, StopEvent]:
        args = event.args
        comp = self.components.get(args["component"].split(".", 1)[-1])
        if comp is not None:
            comp.served += 1
        msg = self.messages.get(args["request_id"])
        if msg is None:  # external request: synthesize a trace entry
            msg = DbgMessage(
                req_id=args["request_id"],
                client=args["client"],
                provider=args["component"],
                service=args["service"],
                arg=args["arg"],
                issued_at=event.time,
            )
            self.messages[msg.req_id] = msg
            self.trace.append(msg)
        return self._check_catches(args["component"], "serve", msg, event)

    def _check_catches(self, actor_qual: str, phase: str, msg: DbgMessage, event):
        for catch in list(self.catches.values()):
            if not catch.enabled or catch.phase != phase or catch.component != actor_qual:
                continue
            if catch.service is not None and msg.service != catch.service:
                continue
            catch.hits += 1
            if catch.temporary:
                del self.catches[catch.cp_id]
            verb = {
                "request": "issued request",
                "response": "received response for",
                "serve": "started serving",
            }[phase]
            return StopEvent(
                StopKind.DATAFLOW,
                message=f"[Stopped: `{actor_qual}' {verb} "
                        f"{msg.provider}.{msg.service}(#{msg.req_id})]",
                actor=actor_qual,
                payload=msg,
            )
        return False

    # ------------------------------------------------------------- commands

    def catch_message(self, component: str, phase: str, service: Optional[str] = None,
                      temporary: bool = False) -> MessageCatch:
        comp = self.dbg.runtime.find_actor(component)
        catch = MessageCatch(self._next_catch, comp.qualname, phase, service,
                             temporary=temporary)
        self.catches[catch.cp_id] = catch
        self._next_catch += 1
        return catch

    def pending_messages(self) -> List[DbgMessage]:
        return [m for m in self.trace if m.pending]

    def graph_dot(self) -> str:
        lines = [f'digraph "{self.dbg.runtime.decl.name}" {{', "  rankdir=LR;"]
        for comp in sorted(self.components.values(), key=lambda c: c.name):
            label = f"{comp.name}\\n+{','.join(comp.provides) or '-'}\\n-{','.join(comp.requires) or '-'}"
            lines.append(f'  {comp.name} [shape=component label="{label}"]')
        for (client, required), (provider, provided) in sorted(self.bindings.items()):
            lines.append(f'  {client} -> {provider} [label="{required}->{provided}"]')
        lines.append("}")
        return "\n".join(lines) + "\n"


def install_component_commands(cli: CommandCli, session: ComponentSession) -> None:
    def complete(text: str) -> List[str]:
        names = []
        for c in session.components.values():
            names.append(c.name)
            names.extend(c.provides)
            names.extend(c.requires)
        return sorted(n for n in set(names) if n.startswith(text.split()[-1] if text.split() else ""))

    def cmd_component(arg: str) -> List[str]:
        parts = arg.split()
        if not parts:
            raise CommandError("usage: component NAME catch request|response|serve [SERVICE]")
        name = parts[0]
        if len(parts) >= 2 and parts[1] == "catch":
            if len(parts) < 3 or parts[2] not in ("request", "response", "serve"):
                raise CommandError("usage: component NAME catch request|response|serve [SERVICE]")
            service = parts[3] if len(parts) > 3 else None
            catch = session.catch_message(name, parts[2], service)
            what = f" {service}" if service else ""
            return [f"Catchpoint {catch.cp_id}: component {name} catch {parts[2]}{what}"]
        if len(parts) >= 2 and parts[1] == "info":
            comp = session.components.get(name)
            if comp is None:
                raise CommandError(f"unknown component {name!r}")
            return [
                f"component {comp.name} on {comp.resource}",
                f"  provides: {', '.join(comp.provides) or '-'}",
                f"  requires: {', '.join(comp.requires) or '-'}",
                f"  requests made: {comp.requests_made}  served: {comp.served}",
            ]
        raise CommandError("usage: component NAME catch|info ...")

    def cmd_ccm(arg: str) -> List[str]:
        topic, _, rest = arg.partition(" ")
        rest = rest.strip()
        if topic == "graph":
            return session.graph_dot().splitlines()
        if topic == "messages":
            msgs = session.trace[-20:] if not rest else [m for m in session.trace if m.pending]
            return [str(m) for m in msgs] or ["(no messages)"]
        if topic == "pending":
            return [str(m) for m in session.pending_messages()] or ["(no pending requests)"]
        if topic == "rebind":
            words = rest.split()
            if len(words) != 4:
                raise CommandError("usage: ccm rebind CLIENT REQUIRED PROVIDER PROVIDED")
            session.dbg.runtime.rebind(*words)
            return [f"Rebound {words[0]}.{words[1]} -> {words[2]}.{words[3]}"]
        if topic == "delete":
            if not rest.isdigit() or int(rest) not in session.catches:
                raise CommandError(f"no component catchpoint {rest!r}")
            del session.catches[int(rest)]
            return []
        if topic in ("info", ""):
            return [
                f"assembly: {session.dbg.runtime.decl.name}",
                f"components: {len(session.components)}  bindings: {len(session.bindings)}",
                f"messages traced: {len(session.trace)} "
                f"({len(session.pending_messages())} pending)",
            ]
        raise CommandError(f"ccm: unknown topic {topic!r}")

    cli.register(Command(
        "component", cmd_component,
        "component NAME catch request|response|serve [SVC] | component NAME info",
        completer=complete,
    ))
    cli.register(Command(
        "ccm", cmd_ccm,
        "ccm graph|messages|pending|rebind CLIENT REQ PROVIDER PROV|delete N|info",
    ))
