"""Component assembly runtime.

Duck-types the runtime surface :class:`~repro.dbg.debugger.Debugger`
expects (``all_actors``/``find_actor``/``merged_debug_info``/``set_hook``/
``load``/``classify_stop``/``bus``/``decl``), so the *unmodified* base
debugger drives component applications — the "generic code base" claim of
the paper's conclusion, made executable.

Service requests are synchronous: ``CALL(req, arg)`` enqueues a request
to the bound provider and blocks for the response.  Every request flows
through the ``ccm_rt_request`` API symbol (entry at issue, exit at
response — a function/finish breakpoint pair), the provider side through
``ccm_rt_serve``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..cminus.debuginfo import DebugInfo
from ..cminus.interp import CostModel, Environment, Interpreter
from ..cminus.parser import parse_program
from ..cminus.sema import ActorContext, analyze
from ..cminus.typesys import STRING, U32
from ..errors import CMinusRuntimeError
from ..p2012.soc import P2012Platform
from ..pedf.api import FrameworkAPI, FrameworkEventBus
from ..sim.channels import Fifo
from ..sim.kernel import Scheduler, StopKind, StopReason
from .decls import AssemblyDecl, CcmError, ComponentDecl, mangle_helper_prefix, mangle_service_symbol

SYM_CCM_REGISTER = "ccm_rt_register_component"
SYM_CCM_REGISTER_IFACE = "ccm_rt_register_iface"
SYM_CCM_BIND = "ccm_rt_bind"
SYM_CCM_REBIND = "ccm_rt_rebind"
SYM_CCM_REQUEST = "ccm_rt_request"
SYM_CCM_SERVE = "ccm_rt_serve"


@dataclass
class Request:
    req_id: int
    client: str  # qualified component name (or "<external>")
    service: str
    arg: int
    reply: Fifo


class _ComponentEnv(Environment):
    def __init__(self, comp: "ComponentInst"):
        self.comp = comp

    def intrinsic(self, name, args):
        if name == "CALL":
            return (yield from self.comp.call_required(str(args[0]), int(args[1])))
        raise CMinusRuntimeError(f"unknown intrinsic {name}()")

    def print_out(self, text: str) -> None:
        self.comp.printed.append(text)
        self.comp.runtime.console.append(f"[{self.comp.qualname}] {text}")


class ComponentInst:
    """One live component (duck-types the actor surface the CLI shows)."""

    kind = "component"

    def __init__(self, decl: ComponentDecl, runtime: "AssemblyRuntime", resource):
        self.decl = decl
        self.runtime = runtime
        self.resource = resource
        resource.occupant = self
        self.name = decl.name
        self.module = None
        self.inbox = Fifo(runtime.scheduler, capacity=0, name=f"{self.qualname}.inbox")
        self.printed: List[str] = []
        self.process = None
        self.busy = False  # serving a request right now
        self.served = 0
        self.requests_made = 0
        self.env = _ComponentEnv(self)
        self.interp = Interpreter(
            decl.cprogram,
            decl.debug_info,
            env=self.env,
            cost=CostModel(default_stmt=resource.cycles_per_stmt),
            name=self.qualname,
        )

    @property
    def qualname(self) -> str:
        return f"ccm.{self.name}"

    def current_line(self) -> Optional[int]:
        if self.interp.frame is not None:
            return self.interp.frame.line
        return None

    @property
    def blocked(self) -> bool:
        from ..sim.process import ProcessState

        return self.process is not None and self.process.state == ProcessState.WAITING

    # ------------------------------------------------------------ behaviour

    def body(self):
        api = self.runtime.api
        while True:
            req: Request = yield from self.inbox.get()
            self.busy = True
            args = {
                "component": self.qualname,
                "service": req.service,
                "client": req.client,
                "request_id": req.req_id,
                "arg": req.arg,
            }

            def impl(req=req):
                symbol = self.decl.service_symbols[req.service]
                result = yield from self.interp.run_function(symbol, [req.arg])
                yield from req.reply.put(result)
                return result

            yield from api.call(SYM_CCM_SERVE, args, impl=impl(), actor=self.qualname)
            self.served += 1
            self.busy = False

    def call_required(self, required: str, arg: int):
        """Coroutine backing the CALL intrinsic."""
        runtime = self.runtime
        target = runtime.bindings.get((self.name, required))
        if target is None:
            raise CMinusRuntimeError(f"{self.qualname}: required interface {required!r} unbound")
        provider_name, service = target
        provider = runtime.components[provider_name]
        req = Request(
            req_id=runtime.next_req_id(),
            client=self.qualname,
            service=service,
            arg=arg,
            reply=Fifo(runtime.scheduler, capacity=0, name=f"reply{id(self)}"),
        )
        self.requests_made += 1
        args = {
            "client": self.qualname,
            "required": required,
            "provider": provider.qualname,
            "service": service,
            "request_id": req.req_id,
            "arg": arg,
        }

        def impl():
            yield from provider.inbox.put(req)
            result = yield from req.reply.get()
            return result

        return (
            yield from runtime.api.call(SYM_CCM_REQUEST, args, impl=impl(), actor=self.qualname)
        )


class _DeclShim:
    """Minimal ``runtime.decl`` surface the base debugger touches."""

    def __init__(self, name: str):
        self.name = name
        self.structs: Dict[str, Any] = {}


class AssemblyRuntime:
    """Elaborated component assembly, debuggable by ``repro.dbg``."""

    def __init__(self, scheduler: Scheduler, platform: P2012Platform, assembly: AssemblyDecl):
        self.scheduler = scheduler
        self.platform = platform
        self.assembly = assembly
        self.decl = _DeclShim(assembly.name)
        self.bus = FrameworkEventBus()
        self.api = FrameworkAPI(self.bus, scheduler)
        self.console: List[str] = []
        self.loaded = False
        self._req_ids = itertools.count(1)
        self._hook = None
        self.bindings: Dict[Tuple[str, str], Tuple[str, str]] = dict(assembly.bindings)
        self.components: Dict[str, ComponentInst] = {}
        self._external_results: List[Tuple[str, int, List[int]]] = []

        self._compile_all()
        assembly.validate()
        for decl in assembly.components.values():
            pe = platform.allocate_pe()
            self.components[decl.name] = ComponentInst(decl, self, pe)

    # ---------------------------------------------------------- compilation

    def _compile_all(self) -> None:
        for decl in self.assembly.components.values():
            if decl.cprogram is not None:
                continue
            filename = decl.source_name or f"{decl.name}.c"
            decl.source_name = filename
            program = parse_program(decl.source, filename)
            mapping = {}
            prefix = mangle_helper_prefix(decl.name)
            for svc in decl.provides:
                if program.function(f"serve_{svc}") is None:
                    raise CcmError(f"component {decl.name}: no serve_{svc}() in its source")
            for f in program.functions:
                if f.name.startswith("serve_") and f.name[6:] in decl.provides:
                    mapping[f.name] = mangle_service_symbol(decl.name, f.name[6:])
                else:
                    mapping[f.name] = prefix + f.name
            from ..pedf.compile import _rename_functions

            _rename_functions(program, mapping)
            ctx = ActorContext(kind="component")
            ctx.extra_intrinsics["CALL"] = (U32, (STRING, U32), set(decl.requires))
            decl.debug_info = analyze(program, ctx, decl.source)
            decl.cprogram = program
            decl.service_symbols = {
                svc: mangle_service_symbol(decl.name, svc) for svc in decl.provides
            }

    # ------------------------------------------------- debugger duck-typing

    def set_hook(self, hook) -> None:
        self._hook = hook
        for comp in self.components.values():
            comp.interp.hook = hook
            comp.interp.refresh_hook_caps()

    def all_actors(self) -> List[ComponentInst]:
        return list(self.components.values())

    def find_actor(self, name: str) -> ComponentInst:
        comp = self.components.get(name)
        if comp is None:
            matches = [c for c in self.components.values() if c.qualname == name]
            if not matches:
                raise CcmError(f"no component {name!r}")
            comp = matches[0]
        return comp

    def merged_debug_info(self) -> DebugInfo:
        info = DebugInfo()
        for decl in self.assembly.components.values():
            if decl.debug_info is not None:
                info.merge(decl.debug_info)
        return info

    def classify_stop(self, stop: StopReason) -> str:
        if stop.kind == StopKind.EXHAUSTED:
            return "exited"
        if stop.kind == StopKind.DEADLOCK:
            busy = [c for c in self.components.values() if c.busy]
            return "deadlock" if busy else "exited"
        if stop.kind == StopKind.PROCESS_ERROR:
            return "error"
        return "running"

    # ------------------------------------------------------------ lifecycle

    def next_req_id(self) -> int:
        return next(self._req_ids)

    def load(self) -> None:
        if self.loaded:
            raise CcmError("assembly already loaded")
        self.loaded = True
        self.scheduler.spawn(self._init_body(), name="ccm.init", owner=self)

    def _init_body(self):
        def registrations():
            for comp in self.components.values():
                yield from self.api.call(
                    SYM_CCM_REGISTER,
                    {"component": comp.name, "resource": comp.resource.name,
                     "source": comp.decl.source_name},
                )
                for svc in comp.decl.provides:
                    yield from self.api.call(
                        SYM_CCM_REGISTER_IFACE,
                        {"component": comp.name, "iface": svc, "role": "provides"},
                    )
                for req in comp.decl.requires:
                    yield from self.api.call(
                        SYM_CCM_REGISTER_IFACE,
                        {"component": comp.name, "iface": req, "role": "requires"},
                    )
            for (client, required), (provider, provided) in sorted(self.bindings.items()):
                yield from self.api.call(
                    SYM_CCM_BIND,
                    {"client": client, "required": required,
                     "provider": provider, "provided": provided},
                )
            return 0

        yield from self.api.call(
            "ccm_rt_register_assembly", {"assembly": self.assembly.name}, impl=registrations()
        )
        for comp in self.components.values():
            comp.process = self.scheduler.spawn(comp.body(), name=comp.qualname, owner=comp)

    # --------------------------------------------------------- external use

    def invoke(self, component: str, service: str, arg: int) -> List[int]:
        """Issue an external request; the returned (initially empty) list
        receives the response once the scheduler runs."""
        comp = self.find_actor(component)
        if service not in comp.decl.provides:
            raise CcmError(f"{component} does not provide {service!r}")
        results: List[int] = []
        req = Request(
            req_id=self.next_req_id(),
            client="<external>",
            service=service,
            arg=arg,
            reply=Fifo(self.scheduler, capacity=0, name=f"extreply{self.next_req_id()}"),
        )

        args = {
            "client": "<external>",
            "required": "<invoke>",
            "provider": comp.qualname,
            "service": service,
            "request_id": req.req_id,
            "arg": arg,
        }

        def driver():
            def impl():
                yield from comp.inbox.put(req)
                return (yield from req.reply.get())

            result = yield from self.api.call(SYM_CCM_REQUEST, args, impl=impl())
            results.append(result)

        self.scheduler.spawn(driver(), name=f"ccm.invoke.{component}.{service}", owner=self)
        return results

    # ------------------------------------------------ dynamic architecture

    def rebind(self, client: str, required: str, provider: str, provided: str) -> None:
        """Change a binding at runtime (the §VII-B dynamic-architecture
        property dataflow applications lack)."""
        client_decl = self.assembly.components.get(client)
        if client_decl is None or required not in client_decl.requires:
            raise CcmError(f"{client!r} does not require {required!r}")
        provider_decl = self.assembly.components.get(provider)
        if provider_decl is None or provided not in provider_decl.provides:
            raise CcmError(f"{provider!r} does not provide {provided!r}")
        old = self.bindings.get((client, required))
        self.bindings[(client, required)] = (provider, provided)
        from ..pedf.api import FrameworkEvent

        self.bus.emit(FrameworkEvent(
            "entry", SYM_CCM_REBIND,
            {"client": client, "required": required, "provider": provider,
             "provided": provided, "previous": old},
            time=self.scheduler.now,
        ))
