"""GDB-flavoured command-line interface.

Commands are registered in a table (the dataflow extension adds its own —
``filter``, ``iface``, ``step_both``, … — at load time), support prefix
abbreviations (``c`` → ``continue``) and provide completion candidates,
including entity-name completion supplied by registered completers (the
paper's Contribution #1 makes filter/interface names auto-completable).

``execute(line)`` returns the command's output as a list of strings so the
CLI is equally usable interactively and from scripted debugging sessions
(our examples and benches drive it that way).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import CommandError, DebuggerError, ReproError
from .cmdparse import parse_break_args, parse_int_arg
from .debugger import Debugger
from .eval import EvalError
from .stop import StopEvent, StopKind

Handler = Callable[[str], List[str]]
Completer = Callable[[str], List[str]]


@dataclass
class Command:
    name: str
    handler: Handler
    help: str
    aliases: Sequence[str] = ()
    completer: Optional[Completer] = None


class CommandCli:
    def __init__(self, debugger: Debugger):
        self.dbg = debugger
        self.commands: Dict[str, Command] = {}
        # extension-supplied ``info TOPIC`` handlers (topic -> handler(rest))
        self.info_topics: Dict[str, Handler] = {}
        # auto-display expressions: id -> expression text
        self._displays: Dict[int, str] = {}
        self._next_display = 1
        # machine-readable dispatch front-end; attached by the dataflow
        # extension (core.commands) so wire clients and the interactive
        # loop share one execution path
        self.service = None
        self._install_builtin_commands()

    # ------------------------------------------------------------ registry

    def register(self, command: Command) -> None:
        if command.name in self.commands:
            raise DebuggerError(f"command {command.name!r} already registered")
        self.commands[command.name] = command

    def rebind_debugger(self, debugger: Debugger) -> None:
        """Point every command at a different debugger instance — used when
        a replay adopts a rebuilt machine: the CLI (command table, display
        expressions, history of the *session*) survives the swap."""
        self.dbg = debugger

    def resolve(self, name: str) -> Command:
        """Resolve a command name, alias or unambiguous prefix."""
        cmd = self.commands.get(name)
        if cmd is not None:
            return cmd
        for c in self.commands.values():
            if name in c.aliases:
                return c
        prefix_matches = [c for n, c in sorted(self.commands.items()) if n.startswith(name)]
        if len(prefix_matches) == 1:
            return prefix_matches[0]
        if prefix_matches:
            names = ", ".join(c.name for c in prefix_matches)
            raise CommandError(f"ambiguous command {name!r}: {names}")
        raise CommandError(f'undefined command: "{name}". Try "help".')

    # kept for extensions written against the old private name
    _resolve = resolve

    # ------------------------------------------------------------- execute

    def execute(self, line: str) -> List[str]:
        if self.service is not None:
            return self.service.execute(line).lines
        line = line.strip()
        if not line or line.startswith("#"):
            return []
        name, _, rest = line.partition(" ")
        try:
            cmd = self.resolve(name)
            return cmd.handler(rest.strip())
        except ReproError as exc:
            # any library-level failure is reported GDB-style instead of
            # unwinding the debugging session
            return [f"error: {exc}"]

    def execute_script(self, lines: Sequence[str]) -> List[str]:
        """Run several commands; outputs are concatenated with the command
        echoed GDB-transcript style."""
        out: List[str] = []
        for line in lines:
            out.append(f"(gdb) {line}")
            out.extend(self.execute(line))
        return out

    # ----------------------------------------------------------- completion

    def complete(self, text: str) -> List[str]:
        """Completion candidates for a partial input line."""
        if " " not in text:
            names = sorted(self.commands)
            return [n for n in names if n.startswith(text)]
        name, _, rest = text.partition(" ")
        try:
            cmd = self._resolve(name.strip())
        except CommandError:
            return []
        if cmd.completer is None:
            return []
        return sorted(cmd.completer(rest.lstrip()))

    # ----------------------------------------------------------- rendering

    def render_stop(self, ev: StopEvent) -> List[str]:
        lines = ev.describe()
        if ev.kind in (StopKind.BREAKPOINT, StopKind.STEP) and ev.filename and ev.line:
            src = self.dbg.debug_info.source_line(ev.filename, ev.line)
            if src is not None:
                lines.append(f"{ev.line}\t{src}")
        if self._displays and ev.kind not in (StopKind.EXITED,):
            for num, expr in sorted(self._displays.items()):
                try:
                    ctype, raw = self.dbg.eval_expr(expr)
                    from .eval import format_typed

                    lines.append(f"{num}: {expr} = {format_typed(ctype, raw)}")
                except (DebuggerError, EvalError) as exc:
                    lines.append(f"{num}: {expr} = <error: {exc}>")
        # the flight recorder never prints from library code; any pending
        # auto-dump notice is surfaced with the stop banner instead
        handler = getattr(self, "dataflow_handler", None)
        if handler is not None:
            flight = getattr(handler.session, "flight", None)
            if flight is not None:
                notice = flight.take_notice()
                if notice:
                    lines.append(notice)
        return lines

    # ------------------------------------------------------------- builtins

    def _install_builtin_commands(self) -> None:
        reg = self.register
        reg(Command("run", self._cmd_run, "run — start the program under debug", aliases=("r",)))
        reg(Command("continue", self._cmd_continue, "continue — resume execution", aliases=("c",)))
        reg(Command("step", self._cmd_step, "step — step one source line, entering calls", aliases=("s",)))
        reg(Command("next", self._cmd_next, "next — step one source line, over calls", aliases=("n",)))
        reg(Command("stepi", self._cmd_stepi,
                    "stepi — execute one statement (one ISA instruction on the bytecode tier)",
                    aliases=("si",)))
        reg(Command("finish", self._cmd_finish, "finish — run until the selected frame returns"))
        reg(Command("until", self._cmd_until,
                    "until LINE|FILE:LINE — run until the selected actor reaches a location"))
        reg(Command("display", self._cmd_display,
                    "display [EXPR] — auto-print EXPR at every stop; bare form lists",
                    completer=self._complete_variable))
        reg(Command("undisplay", self._cmd_undisplay, "undisplay N — remove auto-display N"))
        reg(Command("break", self._cmd_break, "break LOCATION [if COND] — set a breakpoint",
                    aliases=("b",), completer=self._complete_location))
        reg(Command("tbreak", self._cmd_tbreak, "tbreak LOCATION — set a temporary breakpoint",
                    completer=self._complete_location))
        reg(Command("watch", self._cmd_watch, "watch EXPR — stop when EXPR changes (selected actor)"))
        reg(Command("breaki", self._cmd_breaki,
                    "breaki FUNC+PC — set an ISA breakpoint (bytecode tier)",
                    aliases=("bi",), completer=self._complete_location))
        reg(Command("rwatch", self._cmd_rwatch,
                    "rwatch FUNC rN — stop when VM register rN of FUNC changes",
                    completer=self._complete_location))
        reg(Command("disas", self._cmd_disas,
                    "disas [FUNC] — disassemble bytecode (current frame by default)",
                    aliases=("disassemble",), completer=self._complete_location))
        reg(Command("delete", self._cmd_delete, "delete N — delete breakpoint N", aliases=("d",)))
        reg(Command("enable", self._cmd_enable, "enable N — enable breakpoint N"))
        reg(Command("disable", self._cmd_disable, "disable N — disable breakpoint N"))
        reg(Command("ignore", self._cmd_ignore, "ignore N COUNT — skip next COUNT hits of N"))
        reg(Command("condition", self._cmd_condition, "condition N [EXPR] — set/clear condition"))
        reg(Command("print", self._cmd_print, "print EXPR — evaluate in the selected frame",
                    aliases=("p",), completer=self._complete_variable))
        reg(Command("backtrace", self._cmd_backtrace, "backtrace — frames of the selected actor",
                    aliases=("bt", "where")))
        reg(Command("frame", self._cmd_frame, "frame N — select frame N", aliases=("f",)))
        reg(Command("up", self._cmd_up, "up — select the caller frame"))
        reg(Command("down", self._cmd_down, "down — select the callee frame"))
        reg(Command("list", self._cmd_list, "list [LINE] — show source around the stop", aliases=("l",)))
        reg(Command("info", self._cmd_info,
                    "info breakpoints|actors|threads|locals|args|functions [SUBSTR]|platform|registers",
                    completer=self._complete_info))
        reg(Command("actor", self._cmd_actor, "actor NAME — select an actor (thread)",
                    aliases=("thread",), completer=self._complete_actor))
        reg(Command("freeze", self._cmd_freeze,
                    "freeze NAME — withhold an actor from execution",
                    completer=self._complete_actor))
        reg(Command("thaw", self._cmd_thaw, "thaw NAME — release a frozen actor",
                    completer=self._complete_actor))
        reg(Command("help", self._cmd_help, "help [COMMAND] — list commands"))

    # -- control ------------------------------------------------------------

    def _cmd_run(self, arg: str) -> List[str]:
        ev = self.dbg.run()
        return self.render_stop(ev)

    def _cmd_continue(self, arg: str) -> List[str]:
        ev = self.dbg.cont()
        return self.render_stop(ev)

    def _cmd_step(self, arg: str) -> List[str]:
        return self.render_stop(self.dbg.step())

    def _cmd_next(self, arg: str) -> List[str]:
        return self.render_stop(self.dbg.next_())

    def _cmd_stepi(self, arg: str) -> List[str]:
        return self.render_stop(self.dbg.stepi())

    def _cmd_finish(self, arg: str) -> List[str]:
        return self.render_stop(self.dbg.finish())

    # -- breakpoints ----------------------------------------------------------

    def _parse_break_args(self, arg: str):
        return parse_break_args(arg, "break")

    def _cmd_break(self, arg: str) -> List[str]:
        if not arg:
            raise CommandError("break: missing location (file:line, line, or symbol)")
        loc, condition = self._parse_break_args(arg)
        bp = self.dbg.break_source(loc, condition=condition)
        return [f"Breakpoint {bp.id} at {bp.what()}"]

    def _cmd_tbreak(self, arg: str) -> List[str]:
        if not arg:
            raise CommandError("tbreak: missing location")
        loc, condition = self._parse_break_args(arg)
        bp = self.dbg.break_source(loc, condition=condition, temporary=True)
        return [f"Temporary breakpoint {bp.id} at {bp.what()}"]

    def _cmd_watch(self, arg: str) -> List[str]:
        if not arg:
            raise CommandError("watch: missing expression")
        wp = self.dbg.watch(arg)
        return [f"Watchpoint {wp.id}: {wp.what()}"]

    def _cmd_breaki(self, arg: str) -> List[str]:
        if not arg:
            raise CommandError("breaki: missing location (FUNC+PC)")
        bp = self.dbg.break_isa(arg)
        return [f"ISA breakpoint {bp.id} at {bp.what()}"]

    def _cmd_rwatch(self, arg: str) -> List[str]:
        parts = arg.split()
        if len(parts) != 2 or not parts[1].lstrip("r").isdigit():
            raise CommandError("usage: rwatch FUNC rN")
        reg = int(parts[1].lstrip("r"))
        wp = self.dbg.watch_register(parts[0], reg)
        return [f"Register watchpoint {wp.id}: {wp.what()}"]

    def _cmd_disas(self, arg: str) -> List[str]:
        text = self.dbg.disas_text(arg.strip() or None)
        return text.rstrip("\n").split("\n")

    def _int_arg(self, arg: str, what: str) -> int:
        return parse_int_arg(arg, what)

    def _cmd_delete(self, arg: str) -> List[str]:
        self.dbg.delete(self._int_arg(arg, "delete"))
        return []

    def _cmd_enable(self, arg: str) -> List[str]:
        self.dbg.breakpoints.get(self._int_arg(arg, "enable")).enabled = True
        return []

    def _cmd_disable(self, arg: str) -> List[str]:
        self.dbg.breakpoints.get(self._int_arg(arg, "disable")).enabled = False
        return []

    def _cmd_ignore(self, arg: str) -> List[str]:
        parts = arg.split()
        if len(parts) != 2 or not all(p.isdigit() for p in parts):
            raise CommandError("usage: ignore N COUNT")
        bp = self.dbg.breakpoints.get(int(parts[0]))
        bp.ignore_count = int(parts[1])
        return [f"Will ignore next {bp.ignore_count} crossings of breakpoint {bp.id}."]

    def _cmd_condition(self, arg: str) -> List[str]:
        num, _, expr = arg.partition(" ")
        bp = self.dbg.breakpoints.get(self._int_arg(num, "condition"))
        bp.condition = expr.strip() or None
        return []

    # -- inspection -----------------------------------------------------------

    def _cmd_print(self, arg: str) -> List[str]:
        if not arg:
            raise CommandError("print: missing expression")
        return [self.dbg.print_expr(arg)]

    def _cmd_backtrace(self, arg: str) -> List[str]:
        frames = self.dbg.backtrace()
        if not frames:
            return ["No stack."]
        out = []
        for i, f in enumerate(frames):
            marker = "*" if i == self.dbg.selected_frame_index else " "
            out.append(f"{marker}#{i}  {f.name} () at {f.filename}:{f.line}")
        return out

    def _cmd_frame(self, arg: str) -> List[str]:
        index = self._int_arg(arg, "frame") if arg else self.dbg.selected_frame_index
        f = self.dbg.select_frame(index)
        return [f"#{index}  {f.name} () at {f.filename}:{f.line}"]

    def _cmd_up(self, arg: str) -> List[str]:
        return self._cmd_frame(str(self.dbg.selected_frame_index + 1))

    def _cmd_down(self, arg: str) -> List[str]:
        if self.dbg.selected_frame_index == 0:
            raise CommandError("already at the innermost frame")
        return self._cmd_frame(str(self.dbg.selected_frame_index - 1))

    def _cmd_list(self, arg: str) -> List[str]:
        center = int(arg) if arg.strip().isdigit() else None
        return self.dbg.list_source(center)

    def _cmd_actor(self, arg: str) -> List[str]:
        if not arg:
            if self.dbg.selected_actor is None:
                return ["No actor selected."]
            return [f"Current actor: {self.dbg.selected_actor.qualname}"]
        actor = self.dbg.select_actor(arg)
        line = actor.current_line()
        loc = f" at line {line}" if line is not None else ""
        return [f"[Switching to actor {actor.qualname}{loc}]"]

    def _cmd_until(self, arg: str) -> List[str]:
        if not arg:
            raise CommandError("until: missing location")
        actor = self.dbg.selected_actor
        self.dbg.break_source(
            arg, temporary=True, actor=actor.qualname if actor else None
        )
        return self._cmd_continue("")

    def _cmd_display(self, arg: str) -> List[str]:
        if not arg:
            if not self._displays:
                return ["No auto-display expressions."]
            return [f"{n}: {e}" for n, e in sorted(self._displays.items())]
        num = self._next_display
        self._next_display += 1
        self._displays[num] = arg
        try:
            ctype, raw = self.dbg.eval_expr(arg)
            from .eval import format_typed

            return [f"{num}: {arg} = {format_typed(ctype, raw)}"]
        except (DebuggerError, EvalError):
            return [f"{num}: {arg} = <not yet available>"]

    def _cmd_undisplay(self, arg: str) -> List[str]:
        num = self._int_arg(arg, "undisplay")
        if num not in self._displays:
            raise CommandError(f"no auto-display {num}")
        del self._displays[num]
        return []

    def _cmd_freeze(self, arg: str) -> List[str]:
        if not arg:
            raise CommandError("freeze: missing actor name")
        actor = self.dbg.freeze_actor(arg)
        return [f"Actor {actor.qualname} frozen (will not run until thawed)"]

    def _cmd_thaw(self, arg: str) -> List[str]:
        if not arg:
            raise CommandError("thaw: missing actor name")
        actor = self.dbg.thaw_actor(arg)
        return [f"Actor {actor.qualname} thawed"]

    # -- info -----------------------------------------------------------------

    def _cmd_info(self, arg: str) -> List[str]:
        topic, _, rest = arg.partition(" ")
        if topic in ("breakpoints", "break", "b"):
            bps = self.dbg.breakpoints.visible()
            if not bps:
                return ["No breakpoints or watchpoints."]
            out = ["Num\tType\tEnb\tWhat"]
            out.extend(str(bp) for bp in bps)
            return out
        if topic in ("actors", "threads"):
            out = []
            for a in self.dbg.actors():
                marker = "*" if a is self.dbg.selected_actor else " "
                line = a.current_line()
                loc = f" line {line}" if line is not None else ""
                state = getattr(a, "state", None)
                state_text = f" [{state.value}]" if state is not None else ""
                blocked = " (blocked)" if a.blocked else ""
                out.append(f"{marker} {a.qualname} ({a.kind}) on {a.resource.name}{state_text}{loc}{blocked}")
            return out
        if topic == "locals":
            frame = self.dbg.current_frame()
            if frame is None:
                return ["No frame selected."]
            out = []
            from .eval import format_typed

            for name, slot in sorted(frame.variables().items()):
                out.append(f"{name} = {format_typed(slot.ctype, slot.data)}")
            return out or ["No locals."]
        if topic == "args":
            frame = self.dbg.current_frame()
            if frame is None:
                return ["No frame selected."]
            from .eval import format_typed

            out = []
            for p in frame.func.params:
                slot = frame.lookup(p.name)
                if slot is not None:
                    out.append(f"{p.name} = {format_typed(slot.ctype, slot.data)}")
            return out or ["No arguments."]
        if topic == "platform":
            platform = getattr(self.dbg.runtime, "platform", None)
            if platform is None:
                return ["No platform model available."]
            report = platform.topology_report()
            out = [f"host: {report['host']['name']}"]
            for c in report["clusters"]:
                accels = f" + accels {', '.join(c['accelerators'])}" if c["accelerators"] else ""
                out.append(f"{c['name']}: {c['pes']} PEs, L1 {c['l1']['size_kib']}KiB{accels}")
            out.append(f"L2 {report['l2']['size_kib']}KiB  L3 {report['l3']['size_kib']}KiB  "
                       f"DMA x{len(report['dma'])}")
            out.append("memory traffic (reads/writes):")
            for name, t in platform.memory_traffic_report().items():
                out.append(f"  {name}: {t['reads']}/{t['writes']}")
            out.append("occupied resources:")
            for pe in platform.all_pes:
                if pe.occupant is not None:
                    out.append(f"  {pe.name}: {getattr(pe.occupant, 'qualname', pe.occupant)}")
            for cluster in platform.clusters:
                for acc in cluster.accelerators:
                    if acc.occupant is not None:
                        out.append(f"  {acc.name}: {getattr(acc.occupant, 'qualname', acc.occupant)}")
            return out
        if topic == "registers":
            rows = self.dbg.register_rows()
            out = []
            for i, name, v in rows:
                label = f"r{i}" + (f" ({name})" if name else "")
                out.append(f"{label:<20} {v!r}")
            return out or ["No registers."]
        if topic == "functions":
            matches = self.dbg.debug_info.match_functions(rest.strip())
            return [str(f) for f in matches] or ["No matching functions."]
        handler = self.info_topics.get(topic)
        if handler is not None:
            return handler(rest.strip())
        raise CommandError(f"info: unknown topic {topic!r}")

    def _cmd_help(self, arg: str) -> List[str]:
        if arg:
            cmd = self._resolve(arg)
            return [cmd.help]
        return [c.help for _, c in sorted(self.commands.items())]

    # -- completers -------------------------------------------------------------

    def _complete_info(self, text: str) -> List[str]:
        topics = ["breakpoints", "actors", "threads", "locals", "args",
                  "functions", "platform", "registers"] + sorted(self.info_topics)
        return [s for s in topics if s.startswith(text)]

    def _complete_actor(self, text: str) -> List[str]:
        names = []
        for a in self.dbg.actors():
            names.append(a.name)
            names.append(a.qualname)
        return [n for n in sorted(set(names)) if n.startswith(text)]

    def _complete_location(self, text: str) -> List[str]:
        names = list(self.dbg.debug_info.functions)
        names.extend(self.dbg.debug_info.line_table.files())
        return [n for n in sorted(names) if n.startswith(text)]

    def _complete_variable(self, text: str) -> List[str]:
        frame = self.dbg.current_frame()
        if frame is None:
            return []
        return [n for n in sorted(frame.variables()) if n.startswith(text)]
