"""GDB-style expression evaluation against a stopped frame.

Works on *dynamic* types: identifiers resolve to the frame's typed slots,
and operator result types are computed on the fly (so ``print`` works on
any expression without a compilation context).  Side effects are refused:
dataflow I/O would consume tokens and intrinsics would alter scheduling —
the dataflow extension provides safe alternatives (paper §III).

Value history: every evaluation may be recorded as ``$N`` and recalled in
later expressions, exactly like GDB convenience variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..cminus import ast
from ..cminus.interp import Frame, Interpreter
from ..cminus.parser import parse_expression
from ..cminus.typesys import (
    BOOL,
    S32,
    U32,
    ArrayType,
    BoolType,
    CType,
    IntType,
    StructType,
    common_type,
    wrap_int,
)
from ..cminus.values import Raw, copy_raw, format_value
from ..errors import DebuggerError

Typed = Tuple[CType, Raw]


class EvalError(DebuggerError):
    """An expression could not be evaluated."""


def format_typed(ctype: CType, raw: Raw) -> str:
    return format_value(ctype, raw)


@dataclass
class HistoryEntry:
    ctype: CType
    raw: Raw


class ValueHistory:
    """The ``$N`` history of ``print`` results."""

    def __init__(self) -> None:
        self.entries: List[HistoryEntry] = []

    def record(self, ctype: CType, raw: Raw) -> int:
        self.entries.append(HistoryEntry(ctype, copy_raw(raw)))
        return len(self.entries)

    def get(self, index: int) -> HistoryEntry:
        if not 1 <= index <= len(self.entries):
            raise EvalError(f"history has no ${index}")
        return self.entries[index - 1]


class Evaluator:
    """Evaluates one parsed expression in a given context."""

    #: pure builtins allowed in debugger expressions
    _PURE_BUILTINS = {"abs", "min", "max", "clip"}

    def __init__(
        self,
        frame: Optional[Frame] = None,
        interp: Optional[Interpreter] = None,
        actor=None,
        history: Optional[ValueHistory] = None,
        structs: Optional[Dict[str, StructType]] = None,
    ):
        self.frame = frame
        self.interp = interp
        self.actor = actor  # ActorInst, for pedf.data/pedf.attribute
        self.history = history
        self.structs = structs or {}

    # ------------------------------------------------------------ entry

    def eval_text(self, text: str) -> Typed:
        text = text.strip()
        if text.startswith("$") and text[1:].isdigit():
            # bare $N recall: returns the recorded value with its exact type
            # (works for aggregates too)
            if self.history is None:
                raise EvalError("no value history available")
            entry = self.history.get(int(text[1:]))
            return entry.ctype, copy_raw(entry.raw)
        if "$" in text:
            text = self._substitute_history(text)
        try:
            expr = parse_expression(text, structs=self.structs)
        except Exception as exc:
            raise EvalError(f"cannot parse expression {text!r}: {exc}") from exc
        return self.eval(expr)

    def _substitute_history(self, text: str) -> str:
        """Rewrite ``$N`` references to synthetic identifiers resolved by
        :meth:`_eval_Ident` — this keeps aggregate history values usable
        with member/index access (``$1.Izz``, ``$2[3]``)."""
        import re

        if self.history is None:
            raise EvalError("no value history available")
        return re.sub(r"\$(\d+)", r"__hist_\1", text)

    # ------------------------------------------------------------- visitor

    def eval(self, expr: ast.Expr) -> Typed:
        method = getattr(self, f"_eval_{type(expr).__name__}", None)
        if method is None:
            raise EvalError(f"unsupported expression {type(expr).__name__}")
        return method(expr)

    def _eval_NumberLit(self, e: ast.NumberLit) -> Typed:
        return (U32 if e.value > S32.max else S32), e.value

    def _eval_BoolLit(self, e: ast.BoolLit) -> Typed:
        return BOOL, e.value

    def _eval_Ident(self, e: ast.Ident) -> Typed:
        if e.name.startswith("__hist_") and e.name[7:].isdigit():
            if self.history is None:
                raise EvalError("no value history available")
            entry = self.history.get(int(e.name[7:]))
            return entry.ctype, copy_raw(entry.raw)
        if self.frame is not None:
            slot = self.frame.lookup(e.name)
            if slot is not None:
                return slot.ctype, copy_raw(slot.data)
        if self.interp is not None:
            slot = self.interp.globals.get(e.name)
            if slot is not None:
                return slot.ctype, copy_raw(slot.data)
        raise EvalError(f"no symbol {e.name!r} in current context")

    def _eval_Unary(self, e: ast.Unary) -> Typed:
        ctype, raw = self.eval(e.operand)
        if e.op == "!":
            return BOOL, not raw
        if not isinstance(ctype, (IntType, BoolType)):
            raise EvalError(f"unary {e.op} on non-integer value")
        t = ctype if isinstance(ctype, IntType) else S32
        value = int(raw)
        if e.op == "~":
            value = ~value
        elif e.op == "-":
            value = -value
        return t, wrap_int(value, t)

    def _eval_Binary(self, e: ast.Binary) -> Typed:
        if e.op == "&&":
            _, l = self.eval(e.left)
            if not l:
                return BOOL, False
            _, r = self.eval(e.right)
            return BOOL, bool(r)
        if e.op == "||":
            _, l = self.eval(e.left)
            if l:
                return BOOL, True
            _, r = self.eval(e.right)
            return BOOL, bool(r)
        lt, lraw = self.eval(e.left)
        rt, rraw = self.eval(e.right)
        if e.op in ("==", "!=", "<", ">", "<=", ">="):
            if isinstance(lraw, (list, dict)) or isinstance(rraw, (list, dict)):
                if e.op in ("==", "!="):
                    eq = lraw == rraw
                    return BOOL, (eq if e.op == "==" else not eq)
                raise EvalError(f"cannot order aggregate values with {e.op}")
            li, ri = int(lraw), int(rraw)
            return BOOL, {
                "==": li == ri, "!=": li != ri, "<": li < ri,
                ">": li > ri, "<=": li <= ri, ">=": li >= ri,
            }[e.op]
        if not isinstance(lraw, (int, bool)) or not isinstance(rraw, (int, bool)):
            raise EvalError(f"arithmetic {e.op} on non-integer values")
        lt2 = lt if isinstance(lt, IntType) else S32
        rt2 = rt if isinstance(rt, IntType) else S32
        out = common_type(lt2, rt2) if e.op not in ("<<", ">>") else common_type(lt2, lt2)
        li, ri = int(lraw), int(rraw)
        if e.op == "/":
            if ri == 0:
                raise EvalError("division by zero")
            value = abs(li) // abs(ri) * (1 if (li >= 0) == (ri >= 0) else -1)
        elif e.op == "%":
            if ri == 0:
                raise EvalError("modulo by zero")
            value = abs(li) % abs(ri) * (1 if li >= 0 else -1)
        elif e.op == "<<":
            value = li << (ri & 31)
        elif e.op == ">>":
            if isinstance(out, IntType) and not out.signed:
                value = (li & ((1 << out.bits) - 1)) >> (ri & 31)
            else:
                value = li >> (ri & 31)
        else:
            value = {
                "+": li + ri, "-": li - ri, "*": li * ri,
                "&": li & ri, "|": li | ri, "^": li ^ ri,
            }[e.op]
        return out, wrap_int(value, out)

    def _eval_Ternary(self, e: ast.Ternary) -> Typed:
        _, cond = self.eval(e.cond)
        return self.eval(e.then if cond else e.other)

    def _eval_Cast(self, e: ast.Cast) -> Typed:
        _, raw = self.eval(e.operand)
        if isinstance(e.target, BoolType):
            return BOOL, bool(raw)
        if isinstance(e.target, IntType):
            if isinstance(raw, (list, dict)):
                raise EvalError("cannot cast aggregate to integer")
            return e.target, wrap_int(int(raw), e.target)
        raise EvalError(f"unsupported cast to {e.target}")

    def _eval_Index(self, e: ast.Index) -> Typed:
        bt, braw = self.eval(e.base)
        _, idx = self.eval(e.index)
        if not isinstance(braw, list):
            raise EvalError("indexing a non-array value")
        if not 0 <= int(idx) < len(braw):
            raise EvalError(f"index {idx} out of bounds [0, {len(braw)})")
        elem_t = bt.elem if isinstance(bt, ArrayType) else S32
        return elem_t, copy_raw(braw[int(idx)])

    def _eval_Member(self, e: ast.Member) -> Typed:
        bt, braw = self.eval(e.base)
        if not isinstance(braw, dict):
            raise EvalError("member access on a non-struct value")
        if e.member not in braw:
            raise EvalError(f"no field {e.member!r} (fields: {', '.join(braw)})")
        ft = bt.field_type(e.member) if isinstance(bt, StructType) else None
        return (ft or S32), copy_raw(braw[e.member])

    def _eval_Call(self, e: ast.Call) -> Typed:
        if e.name not in self._PURE_BUILTINS:
            raise EvalError(
                f"cannot call {e.name}() in a debugger expression "
                "(only pure builtins abs/min/max/clip are allowed)"
            )
        args = [int(self.eval(a)[1]) for a in e.args]
        if e.name == "abs":
            value = abs(args[0])
        elif e.name == "min":
            value = min(args)
        elif e.name == "max":
            value = max(args)
        else:  # clip
            x, lo, hi = args
            value = max(lo, min(hi, x))
        return S32, wrap_int(value, S32)

    def _eval_PedfIo(self, e: ast.PedfIo) -> Typed:
        raise EvalError(
            f"reading pedf.io.{e.iface} in an expression would consume a token; "
            "use the dataflow 'iface' commands to inspect link contents"
        )

    def _eval_PedfData(self, e: ast.PedfData) -> Typed:
        if self.actor is None or not hasattr(self.actor, "data_store"):
            raise EvalError("pedf.data is only available with a filter selected")
        slot = self.actor.data_store.get(e.name)
        if slot is None:
            raise EvalError(f"{self.actor.qualname} has no private data {e.name!r}")
        return slot.ctype, copy_raw(slot.data)

    def _eval_PedfAttr(self, e: ast.PedfAttr) -> Typed:
        if self.actor is None or not hasattr(self.actor, "attributes"):
            raise EvalError("pedf.attribute is only available with a filter selected")
        if e.name not in self.actor.attributes:
            raise EvalError(f"{self.actor.qualname} has no attribute {e.name!r}")
        decl_attrs = getattr(self.actor.decl, "attributes", {})
        ctype = decl_attrs.get(e.name, (S32, 0))[0] if e.name in decl_attrs else S32
        return ctype, copy_raw(self.actor.attributes[e.name])

    def _eval_StringLit(self, e: ast.StringLit) -> Typed:
        raise EvalError("string literals have no value in debugger expressions")
