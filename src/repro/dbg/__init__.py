"""The base interactive debugger — our GDB.

The paper extends GDB through its Python API; since no real GDB can attach
to a simulated platform, this package provides the equivalent host
debugger over :mod:`repro.sim` / :mod:`repro.pedf`:

- :class:`Debugger` — run control (run / continue / step / next / finish /
  stepi), stop events, actor ("thread") and frame selection;
- :mod:`breakpoints` — source breakpoints, function breakpoints on
  (mangled) Filter-C symbols, **framework function breakpoints** on PEDF
  API symbols (entry *and* exit — the paper's finish breakpoints),
  watchpoints, and :class:`FinishBreakpoint`; all with enable/disable,
  temporary, ignore counts and conditions;
- :mod:`eval` — GDB-style expression evaluation against a stopped frame,
  with ``$N`` value history;
- :mod:`cli` — the command-line front end with abbreviations and
  completion;
- :mod:`api` — the extension API mirroring ``import gdb``: subclassable
  ``Breakpoint`` / ``FinishBreakpoint`` with a ``stop()`` method, and stop
  /continue event registries.  The dataflow extension (:mod:`repro.core`)
  is built exclusively on this API, like the paper's extension on GDB's.

Two-level debugging (paper §VI-E) falls out of the design: all of these
commands remain available while the dataflow extension is loaded.
"""

from ..cminus.interp import DebugHook
from .stop import StopEvent, StopKind
from .breakpoints import (
    ApiBreakpoint,
    BreakpointBase,
    FinishBreakpoint,
    FunctionBreakpoint,
    SourceBreakpoint,
    Watchpoint,
)
from .debugger import Debugger
from .eval import EvalError, Evaluator, format_typed
from .cli import CommandCli
from .api import ExtensionAPI

#: The capability constants are defined in exactly one place —
#: :class:`repro.cminus.interp.DebugHook` — and re-exported here so
#: debugger-side code has a single import path for the whole mask
#: vocabulary.  CAP_ALL covers only the tier-selection/observation bits;
#: CAP_TELEMETRY and CAP_RV ride the same mask but stay outside it so
#: arming them never deoptimizes the compiled Filter-C tier.
CAP_STATEMENTS = DebugHook.CAP_STATEMENTS
CAP_CALLS = DebugHook.CAP_CALLS
CAP_RETURNS = DebugHook.CAP_RETURNS
CAP_DATA = DebugHook.CAP_DATA
CAP_ALL = DebugHook.CAP_ALL
CAP_TELEMETRY = DebugHook.CAP_TELEMETRY
CAP_RV = DebugHook.CAP_RV

__all__ = [
    "CAP_ALL",
    "CAP_CALLS",
    "CAP_DATA",
    "CAP_RETURNS",
    "CAP_RV",
    "CAP_STATEMENTS",
    "CAP_TELEMETRY",
    "DebugHook",
    "StopEvent",
    "StopKind",
    "ApiBreakpoint",
    "BreakpointBase",
    "FinishBreakpoint",
    "FunctionBreakpoint",
    "SourceBreakpoint",
    "Watchpoint",
    "Debugger",
    "EvalError",
    "Evaluator",
    "format_typed",
    "CommandCli",
    "ExtensionAPI",
]
