"""User-facing output sinks.

Library code never prints (the flight recorder set the precedent: it
*returns* a notice and lets the stop banner render it).  Everything a
debugging session says to its user — stop banners, command output,
error lines — flows through an :class:`OutputSink`, so the same session
can be driven by the interactive terminal (:class:`StdoutSink`), a test
(:class:`BufferSink`) or a wire-attached daemon connection, which
captures output per connection instead of spraying the daemon's stdout.
"""

from __future__ import annotations

import sys
from typing import Callable, Iterable, List, Optional


class OutputSink:
    """Where user-facing lines go.  Subclasses override :meth:`emit`."""

    def emit(self, lines: Iterable[str]) -> None:
        raise NotImplementedError

    def emit_line(self, line: str) -> None:
        self.emit([line])

    def emit_error(self, message: str) -> None:
        """Errors are ordinary lines by default; terminal sinks may
        route them to stderr instead."""
        self.emit([message])


class StdoutSink(OutputSink):
    """The interactive terminal: lines to stdout, errors to stderr."""

    def __init__(self, out=None, err=None):
        self._out = out
        self._err = err

    def emit(self, lines: Iterable[str]) -> None:
        out = self._out or sys.stdout
        for line in lines:
            print(line, file=out)

    def emit_error(self, message: str) -> None:
        print(message, file=self._err or sys.stderr)


class BufferSink(OutputSink):
    """Collects lines in memory — scripted tests and wire sessions
    drain it per command / per connection."""

    def __init__(self) -> None:
        self.lines: List[str] = []

    def emit(self, lines: Iterable[str]) -> None:
        self.lines.extend(lines)

    def drain(self) -> List[str]:
        drained, self.lines = self.lines, []
        return drained


class CallbackSink(OutputSink):
    """Forwards every batch to a callable — the daemon hands each
    connection one of these so output fans out to the right socket."""

    def __init__(self, fn: Callable[[List[str]], None]):
        self.fn = fn

    def emit(self, lines: Iterable[str]) -> None:
        batch = list(lines)
        if batch:
            self.fn(batch)
