"""Stop events: why the platform stopped and where."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, List, Optional


class StopKind(enum.Enum):
    BREAKPOINT = "breakpoint"
    WATCHPOINT = "watchpoint"
    FUNCTION_BP = "function-breakpoint"
    API_BP = "api-breakpoint"
    FINISH = "finish"
    STEP = "step"
    TRAP = "trap"  # the trap() builtin (programmatic int3)
    DATAFLOW = "dataflow"  # dataflow-extension stops (catchpoints, …)
    DEADLOCK = "deadlock"
    VIOLATION = "violation"  # a runtime-verification check tripped
    EXITED = "exited"
    ERROR = "error"
    PAUSED = "paused"  # external interrupt
    REPLAY = "replay"  # a time-travel target position was reached
    ISA_BP = "isa-breakpoint"  # VM instruction breakpoint / brk instruction
    REGISTER_WATCH = "register-watchpoint"  # a VM register changed value


@dataclass
class StopEvent:
    """Carried as the ``reason`` payload of a kernel ``Suspend``."""

    kind: StopKind
    message: str = ""
    actor: Optional[str] = None  # qualified actor name, if any
    filename: Optional[str] = None
    line: Optional[int] = None
    bp_id: Optional[int] = None
    payload: Any = None  # kind-specific detail (event, exception, …)
    time: int = 0

    def describe(self) -> List[str]:
        """Human-readable lines, GDB style."""
        lines: List[str] = []
        loc = ""
        if self.filename is not None and self.line is not None:
            loc = f" at {self.filename}:{self.line}"
        who = f" [{self.actor}]" if self.actor else ""
        if self.kind == StopKind.BREAKPOINT:
            lines.append(f"Breakpoint {self.bp_id},{who}{loc}")
        elif self.kind == StopKind.WATCHPOINT:
            lines.append(f"Watchpoint {self.bp_id}:{who} {self.message}")
        elif self.kind == StopKind.FUNCTION_BP:
            lines.append(f"Function breakpoint {self.bp_id},{who} {self.message}{loc}")
        elif self.kind == StopKind.API_BP:
            lines.append(f"Framework breakpoint {self.bp_id},{who} {self.message}")
        elif self.kind == StopKind.FINISH:
            lines.append(f"Run till exit{who}: {self.message}{loc}")
        elif self.kind == StopKind.STEP:
            lines.append(f"Step{who}{loc}")
        elif self.kind == StopKind.TRAP:
            lines.append(f"Program trap(){who}{loc}")
        elif self.kind == StopKind.ISA_BP:
            lines.append(f"ISA breakpoint{who} {self.message}{loc}")
        elif self.kind == StopKind.REGISTER_WATCH:
            lines.append(f"Register watchpoint {self.bp_id}:{who} {self.message}")
        elif self.kind == StopKind.DATAFLOW:
            lines.append(self.message)
        elif self.kind == StopKind.REPLAY:
            lines.append(f"Replay stop{who}: {self.message}")
        elif self.kind == StopKind.VIOLATION:
            lines.append(f"Check violated: {self.message}")
            # the structured verdict rides in the payload; render it fully
            payload = self.payload
            if payload is not None and hasattr(payload, "render"):
                lines.extend(payload.render()[1:])
        elif self.kind == StopKind.DEADLOCK:
            lines.append(f"Deadlock detected: {self.message}")
        elif self.kind == StopKind.EXITED:
            lines.append(f"[Program exited: {self.message}]" if self.message else "[Program exited]")
        elif self.kind == StopKind.ERROR:
            lines.append(f"Program error{who}: {self.message}")
        else:
            lines.append(f"Stopped ({self.kind.value}){who} {self.message}")
        return lines

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "; ".join(self.describe())
