"""Breakpoint kinds and their registry.

``FunctionBreakpoint`` (on Filter-C symbols) and ``ApiBreakpoint`` (on
framework API symbols, entry or exit phase) together reproduce the
paper's *function breakpoints* + *finish breakpoints* mechanism: a
breakpoint carrying the semantic action to run when its location is hit,
used by the dataflow extension to keep its internal model in sync.

Any breakpoint subclass may override :meth:`BreakpointBase.stop`; the
debugger stops only if it returns True (GDB Python API semantics).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import DebuggerError

if TYPE_CHECKING:  # pragma: no cover
    from ..cminus.interp import Frame, Interpreter
    from ..pedf.api import FrameworkEvent


class BreakpointBase:
    """State common to every breakpoint kind."""

    kind = "breakpoint"
    #: which registry index (and armed-count bucket) this kind lives in;
    #: ``None`` keeps the breakpoint out of the hot-path indices entirely
    index_category: Optional[str] = None

    def __init__(self, *, temporary: bool = False, internal: bool = False,
                 condition: Optional[str] = None, actor: Optional[str] = None):
        self.id: int = -1  # assigned by the registry
        self._enabled = True
        self._registry: Optional["BreakpointRegistry"] = None
        self.temporary = temporary
        #: internal breakpoints do not show in `info breakpoints` — the
        #: dataflow extension's capture breakpoints are internal, like the
        #: paper's
        self.internal = internal
        self.condition = condition
        self.actor = actor  # restrict to one actor (qualified name)
        self.ignore_count = 0
        self.hit_count = 0
        self.deleted = False

    # -- enable/disable -----------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        value = bool(value)
        if value == self._enabled:
            return
        self._enabled = value
        if self._registry is not None:
            self._registry._on_enabled_toggle(self, value)

    # -- overridable (GDB Python API style) --------------------------------

    def stop(self, context: Any) -> bool:
        """Decide whether this hit stops execution.  Subclasses may update
        internal state here (the paper's 'semantic action') and return
        False to keep the platform running."""
        return True

    # -- bookkeeping --------------------------------------------------------

    def register_hit(self) -> bool:
        """Count a hit; False while the ignore budget is being consumed."""
        self.hit_count += 1
        if self.ignore_count > 0:
            self.ignore_count -= 1
            return False
        return True

    def what(self) -> str:
        return self.kind

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        state = "y" if self.enabled else "n"
        return f"{self.id}\t{self.kind}\t{state}\t{self.what()}"


class SourceBreakpoint(BreakpointBase):
    kind = "source"
    index_category = "source"

    def __init__(self, filename: str, line: int, **kwargs):
        super().__init__(**kwargs)
        self.filename = filename
        self.line = line

    def what(self) -> str:
        s = f"{self.filename}:{self.line}"
        if self.actor:
            s += f" [{self.actor}]"
        if self.condition:
            s += f" if {self.condition}"
        return s


class FunctionBreakpoint(BreakpointBase):
    """Breaks on entry of a Filter-C function (by possibly-mangled symbol)."""

    kind = "function"
    index_category = "function"

    def __init__(self, symbol: str, **kwargs):
        super().__init__(**kwargs)
        self.symbol = symbol

    def what(self) -> str:
        s = self.symbol
        if self.actor:
            s += f" [{self.actor}]"
        if self.condition:
            s += f" if {self.condition}"
        return s


class ApiBreakpoint(BreakpointBase):
    """Breaks on a framework API symbol (entry or exit phase).

    ``phase='exit'`` is the paper's *finish breakpoint* on a framework
    function; ``arg_filters`` restrict hits to events whose arguments
    match (e.g. ``{"iface": "an_input"}``).
    """

    kind = "api"
    index_category = "api"

    def __init__(
        self,
        symbol: str,
        phase: str = "entry",
        arg_filters: Optional[Dict[str, Any]] = None,
        **kwargs,
    ):
        super().__init__(**kwargs)
        if phase not in ("entry", "exit", "both"):
            raise DebuggerError(f"bad phase {phase!r}")
        self.symbol = symbol
        self.phase = phase
        self.arg_filters = dict(arg_filters or {})
        self.subscription = None  # set by the debugger

    def matches(self, event: "FrameworkEvent") -> bool:
        if self.phase != "both" and event.phase != self.phase:
            return False
        for key, want in self.arg_filters.items():
            if str(event.args.get(key)) != str(want):
                return False
        return True

    def what(self) -> str:
        s = f"{self.symbol} ({self.phase})"
        if self.actor:
            s += f" [{self.actor}]"
        if self.arg_filters:
            flt = ", ".join(f"{k}={v}" for k, v in self.arg_filters.items())
            s += f" {{{flt}}}"
        return s


class Watchpoint(BreakpointBase):
    """Stops when an expression's value changes in a given actor."""

    kind = "watch"
    index_category = "watch"

    def __init__(self, expr_text: str, actor: str, **kwargs):
        super().__init__(actor=actor, **kwargs)
        self.expr_text = expr_text
        self.last: Optional[tuple] = None  # (ctype, raw) or None if unavailable
        self.primed = False

    def what(self) -> str:
        return f"{self.expr_text} [{self.actor}]"


class IsaBreakpoint(BreakpointBase):
    """Breaks before one VM instruction executes (``function+pc``) — the
    instruction-level analogue of a source breakpoint, available only on
    the bytecode tier (arming one raises CAP_ISA; it never deoptimizes)."""

    kind = "isa"
    index_category = "isa"

    def __init__(self, func_name: str, pc: int, **kwargs):
        super().__init__(**kwargs)
        self.func_name = func_name
        self.pc = pc

    def what(self) -> str:
        s = f"{self.func_name}+{self.pc}"
        if self.actor:
            s += f" [{self.actor}]"
        return s


class RegisterWatchpoint(BreakpointBase):
    """Stops when a VM register of a function changes value (compared
    before each instruction while CAP_ISA is armed)."""

    kind = "rwatch"
    index_category = "rwatch"

    def __init__(self, func_name: str, reg: int, **kwargs):
        super().__init__(**kwargs)
        self.func_name = func_name
        self.reg = reg
        self.last: Optional[tuple] = None  # 1-tuple holding the last value
        self.primed = False

    def what(self) -> str:
        s = f"r{self.reg} in {self.func_name}"
        if self.actor:
            s += f" [{self.actor}]"
        return s


class FinishBreakpoint(BreakpointBase):
    """Fires when a specific frame returns (GDB's FinishBreakpoint)."""

    kind = "finish"
    index_category = "finish"

    def __init__(self, frame: "Frame", interp: "Interpreter", **kwargs):
        kwargs.setdefault("temporary", True)
        kwargs.setdefault("internal", True)
        super().__init__(**kwargs)
        self.frame = frame
        self.interp = interp
        self.return_value = None

    def out_of_scope(self) -> None:
        """Called if the frame is unwound without a normal return."""

    def what(self) -> str:
        return f"finish of {self.frame.name}"


class BreakpointRegistry:
    """Owns every breakpoint; provides the lookup indices the hook uses.

    Hot-path queries are O(1) dict lookups, maintained incrementally on
    ``add`` / ``remove`` / enable / disable:

    - source breakpoints are keyed by ``(filename, line)``;
    - function breakpoints by symbol;
    - watchpoints by actor qualname;
    - finish breakpoints by the interpreter they watch;
    - dataflow catchpoints and API breakpoints in flat per-category lists.

    ``armed_count(category)`` answers "could anything of this kind fire?"
    without allocating; :attr:`on_change` (set by the debugger) fires on
    every mutation so hook capabilities can be recomputed.
    """

    def __init__(self) -> None:
        self._next_id = itertools.count(1)
        self._next_internal_id = itertools.count(-1, -1)
        self.all: Dict[int, BreakpointBase] = {}
        self._source_at: Dict[Tuple[str, int], List[SourceBreakpoint]] = {}
        self._function_at: Dict[str, List[FunctionBreakpoint]] = {}
        self._watch_at: Dict[str, List[Watchpoint]] = {}
        self._isa_at: Dict[Tuple[str, int], List[IsaBreakpoint]] = {}
        self._rwatch_at: Dict[str, List[RegisterWatchpoint]] = {}
        self._finish_at: Dict[int, List[FinishBreakpoint]] = {}
        self._flat: Dict[str, List[BreakpointBase]] = {}  # "api" / "catch"
        self._armed: Dict[str, int] = {}
        #: bumped on every structural mutation (add/remove/enable/disable)
        self.generation = 0
        #: notified after every mutation; the debugger re-derives its hook
        #: capability mask here (hook elision)
        self.on_change: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------- indices

    def _bucket(self, bp: BreakpointBase) -> Optional[List]:
        cat = bp.index_category
        if cat == "source":
            return self._source_at.setdefault((bp.filename, bp.line), [])
        if cat == "function":
            return self._function_at.setdefault(bp.symbol, [])
        if cat == "watch":
            return self._watch_at.setdefault(bp.actor, [])
        if cat == "isa":
            return self._isa_at.setdefault((bp.func_name, bp.pc), [])
        if cat == "rwatch":
            return self._rwatch_at.setdefault(bp.func_name, [])
        if cat == "finish":
            return self._finish_at.setdefault(id(bp.interp), [])
        if cat is not None:
            return self._flat.setdefault(cat, [])
        return None

    def _drop_from_bucket(self, bp: BreakpointBase) -> None:
        cat = bp.index_category
        if cat == "source":
            table, key = self._source_at, (bp.filename, bp.line)
        elif cat == "function":
            table, key = self._function_at, bp.symbol
        elif cat == "watch":
            table, key = self._watch_at, bp.actor
        elif cat == "isa":
            table, key = self._isa_at, (bp.func_name, bp.pc)
        elif cat == "rwatch":
            table, key = self._rwatch_at, bp.func_name
        elif cat == "finish":
            table, key = self._finish_at, id(bp.interp)
        elif cat is not None:
            table, key = self._flat, cat
        else:
            return
        bucket = table.get(key)
        if bucket is None:
            return
        try:
            bucket.remove(bp)
        except ValueError:  # pragma: no cover - defensive
            pass
        if not bucket:
            del table[key]

    def _changed(self) -> None:
        self.generation += 1
        if self.on_change is not None:
            self.on_change()

    def _on_enabled_toggle(self, bp: BreakpointBase, enabled: bool) -> None:
        cat = bp.index_category
        if cat is not None:
            self._armed[cat] = self._armed.get(cat, 0) + (1 if enabled else -1)
        self._changed()

    def armed_count(self, category: str) -> int:
        """Enabled breakpoints in a category ('source', 'function',
        'watch', 'isa', 'rwatch', 'finish', 'api', 'catch') — O(1), no
        allocation."""
        return self._armed.get(category, 0)

    # ---------------------------------------------------------- life cycle

    def add(self, bp: BreakpointBase) -> BreakpointBase:
        # internal breakpoints get negative numbers, like GDB's, so user
        # commands (`delete 1`) can never hit the extension's capture
        # breakpoints by accident
        bp.id = next(self._next_internal_id) if bp.internal else next(self._next_id)
        self.all[bp.id] = bp
        bp._registry = self
        bucket = self._bucket(bp)
        if bucket is not None:
            bucket.append(bp)
            if bp.enabled:
                cat = bp.index_category
                self._armed[cat] = self._armed.get(cat, 0) + 1
        self._changed()
        return bp

    def remove(self, bp_id: int) -> BreakpointBase:
        bp = self.all.pop(bp_id, None)
        if bp is None:
            raise DebuggerError(f"no breakpoint {bp_id}")
        bp.deleted = True
        self._drop_from_bucket(bp)
        if bp.enabled and bp.index_category is not None:
            self._armed[bp.index_category] = self._armed.get(bp.index_category, 1) - 1
        bp._registry = None
        if isinstance(bp, ApiBreakpoint) and bp.subscription is not None:
            bp.subscription.unsubscribe()
        self._changed()
        return bp

    def get(self, bp_id: int) -> BreakpointBase:
        bp = self.all.get(bp_id)
        if bp is None:
            raise DebuggerError(f"no breakpoint {bp_id}")
        return bp

    def visible(self) -> List[BreakpointBase]:
        return [bp for bp in self.all.values() if not bp.internal]

    # ------------------------------------------------------ hot-path lookups

    def source_bps_at(self, filename: str, line: int) -> Sequence[SourceBreakpoint]:
        """Enabled source breakpoints at exactly ``filename:line``."""
        bucket = self._source_at.get((filename, line))
        if not bucket:
            return ()
        return [bp for bp in bucket if bp._enabled]

    def function_bps_for(self, symbol: str) -> Sequence[FunctionBreakpoint]:
        """Enabled function breakpoints on ``symbol``."""
        bucket = self._function_at.get(symbol)
        if not bucket:
            return ()
        return [bp for bp in bucket if bp._enabled]

    def watchpoints_for(self, actor: str) -> Sequence[Watchpoint]:
        """Enabled watchpoints scoped to one actor qualname."""
        bucket = self._watch_at.get(actor)
        if not bucket:
            return ()
        return [wp for wp in bucket if wp._enabled]

    def isa_bps_at(self, func_name: str, pc: int) -> Sequence[IsaBreakpoint]:
        """Enabled ISA breakpoints at exactly ``func_name+pc``."""
        bucket = self._isa_at.get((func_name, pc))
        if not bucket:
            return ()
        return [bp for bp in bucket if bp._enabled]

    def register_watchpoints_for(self, func_name: str) -> Sequence[RegisterWatchpoint]:
        """Enabled register watchpoints scoped to one VM function."""
        bucket = self._rwatch_at.get(func_name)
        if not bucket:
            return ()
        return [wp for wp in bucket if wp._enabled]

    def finish_bps_for(self, interp: "Interpreter") -> Sequence[FinishBreakpoint]:
        """Enabled finish breakpoints watching frames of ``interp``."""
        bucket = self._finish_at.get(id(interp))
        if not bucket:
            return ()
        return [bp for bp in bucket if bp._enabled]

    def catchpoints(self) -> Sequence[BreakpointBase]:
        """Enabled dataflow catchpoints (the capture layer's per-event scan)."""
        bucket = self._flat.get("catch")
        if not bucket:
            return ()
        return [cp for cp in bucket if cp._enabled]

    # ------------------------------------------- legacy full-list accessors

    def source_bps(self) -> List[SourceBreakpoint]:
        return [bp for bp in self.all.values()
                if isinstance(bp, SourceBreakpoint) and bp.enabled]

    def function_bps(self) -> List[FunctionBreakpoint]:
        return [bp for bp in self.all.values()
                if isinstance(bp, FunctionBreakpoint) and bp.enabled]

    def watchpoints(self) -> List[Watchpoint]:
        return [bp for bp in self.all.values()
                if isinstance(bp, Watchpoint) and bp.enabled]

    def finish_bps(self) -> List[FinishBreakpoint]:
        return [bp for bp in self.all.values()
                if isinstance(bp, FinishBreakpoint) and bp.enabled]
