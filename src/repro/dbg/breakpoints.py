"""Breakpoint kinds and their registry.

``FunctionBreakpoint`` (on Filter-C symbols) and ``ApiBreakpoint`` (on
framework API symbols, entry or exit phase) together reproduce the
paper's *function breakpoints* + *finish breakpoints* mechanism: a
breakpoint carrying the semantic action to run when its location is hit,
used by the dataflow extension to keep its internal model in sync.

Any breakpoint subclass may override :meth:`BreakpointBase.stop`; the
debugger stops only if it returns True (GDB Python API semantics).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from ..errors import DebuggerError

if TYPE_CHECKING:  # pragma: no cover
    from ..cminus.interp import Frame, Interpreter
    from ..pedf.api import FrameworkEvent


class BreakpointBase:
    """State common to every breakpoint kind."""

    kind = "breakpoint"

    def __init__(self, *, temporary: bool = False, internal: bool = False,
                 condition: Optional[str] = None, actor: Optional[str] = None):
        self.id: int = -1  # assigned by the registry
        self.enabled = True
        self.temporary = temporary
        #: internal breakpoints do not show in `info breakpoints` — the
        #: dataflow extension's capture breakpoints are internal, like the
        #: paper's
        self.internal = internal
        self.condition = condition
        self.actor = actor  # restrict to one actor (qualified name)
        self.ignore_count = 0
        self.hit_count = 0
        self.deleted = False

    # -- overridable (GDB Python API style) --------------------------------

    def stop(self, context: Any) -> bool:
        """Decide whether this hit stops execution.  Subclasses may update
        internal state here (the paper's 'semantic action') and return
        False to keep the platform running."""
        return True

    # -- bookkeeping --------------------------------------------------------

    def register_hit(self) -> bool:
        """Count a hit; False while the ignore budget is being consumed."""
        self.hit_count += 1
        if self.ignore_count > 0:
            self.ignore_count -= 1
            return False
        return True

    def what(self) -> str:
        return self.kind

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        state = "y" if self.enabled else "n"
        return f"{self.id}\t{self.kind}\t{state}\t{self.what()}"


class SourceBreakpoint(BreakpointBase):
    kind = "source"

    def __init__(self, filename: str, line: int, **kwargs):
        super().__init__(**kwargs)
        self.filename = filename
        self.line = line

    def what(self) -> str:
        s = f"{self.filename}:{self.line}"
        if self.actor:
            s += f" [{self.actor}]"
        if self.condition:
            s += f" if {self.condition}"
        return s


class FunctionBreakpoint(BreakpointBase):
    """Breaks on entry of a Filter-C function (by possibly-mangled symbol)."""

    kind = "function"

    def __init__(self, symbol: str, **kwargs):
        super().__init__(**kwargs)
        self.symbol = symbol

    def what(self) -> str:
        s = self.symbol
        if self.actor:
            s += f" [{self.actor}]"
        if self.condition:
            s += f" if {self.condition}"
        return s


class ApiBreakpoint(BreakpointBase):
    """Breaks on a framework API symbol (entry or exit phase).

    ``phase='exit'`` is the paper's *finish breakpoint* on a framework
    function; ``arg_filters`` restrict hits to events whose arguments
    match (e.g. ``{"iface": "an_input"}``).
    """

    kind = "api"

    def __init__(
        self,
        symbol: str,
        phase: str = "entry",
        arg_filters: Optional[Dict[str, Any]] = None,
        **kwargs,
    ):
        super().__init__(**kwargs)
        if phase not in ("entry", "exit", "both"):
            raise DebuggerError(f"bad phase {phase!r}")
        self.symbol = symbol
        self.phase = phase
        self.arg_filters = dict(arg_filters or {})
        self.subscription = None  # set by the debugger

    def matches(self, event: "FrameworkEvent") -> bool:
        if self.phase != "both" and event.phase != self.phase:
            return False
        for key, want in self.arg_filters.items():
            if str(event.args.get(key)) != str(want):
                return False
        return True

    def what(self) -> str:
        s = f"{self.symbol} ({self.phase})"
        if self.actor:
            s += f" [{self.actor}]"
        if self.arg_filters:
            flt = ", ".join(f"{k}={v}" for k, v in self.arg_filters.items())
            s += f" {{{flt}}}"
        return s


class Watchpoint(BreakpointBase):
    """Stops when an expression's value changes in a given actor."""

    kind = "watch"

    def __init__(self, expr_text: str, actor: str, **kwargs):
        super().__init__(actor=actor, **kwargs)
        self.expr_text = expr_text
        self.last: Optional[tuple] = None  # (ctype, raw) or None if unavailable
        self.primed = False

    def what(self) -> str:
        return f"{self.expr_text} [{self.actor}]"


class FinishBreakpoint(BreakpointBase):
    """Fires when a specific frame returns (GDB's FinishBreakpoint)."""

    kind = "finish"

    def __init__(self, frame: "Frame", interp: "Interpreter", **kwargs):
        kwargs.setdefault("temporary", True)
        kwargs.setdefault("internal", True)
        super().__init__(**kwargs)
        self.frame = frame
        self.interp = interp
        self.return_value = None

    def out_of_scope(self) -> None:
        """Called if the frame is unwound without a normal return."""

    def what(self) -> str:
        return f"finish of {self.frame.name}"


class BreakpointRegistry:
    """Owns every breakpoint; provides the lookup indices the hook uses."""

    def __init__(self) -> None:
        self._next_id = itertools.count(1)
        self._next_internal_id = itertools.count(-1, -1)
        self.all: Dict[int, BreakpointBase] = {}

    def add(self, bp: BreakpointBase) -> BreakpointBase:
        # internal breakpoints get negative numbers, like GDB's, so user
        # commands (`delete 1`) can never hit the extension's capture
        # breakpoints by accident
        bp.id = next(self._next_internal_id) if bp.internal else next(self._next_id)
        self.all[bp.id] = bp
        return bp

    def remove(self, bp_id: int) -> BreakpointBase:
        bp = self.all.pop(bp_id, None)
        if bp is None:
            raise DebuggerError(f"no breakpoint {bp_id}")
        bp.deleted = True
        if isinstance(bp, ApiBreakpoint) and bp.subscription is not None:
            bp.subscription.unsubscribe()
        return bp

    def get(self, bp_id: int) -> BreakpointBase:
        bp = self.all.get(bp_id)
        if bp is None:
            raise DebuggerError(f"no breakpoint {bp_id}")
        return bp

    def visible(self) -> List[BreakpointBase]:
        return [bp for bp in self.all.values() if not bp.internal]

    def source_bps(self) -> List[SourceBreakpoint]:
        return [bp for bp in self.all.values()
                if isinstance(bp, SourceBreakpoint) and bp.enabled]

    def function_bps(self) -> List[FunctionBreakpoint]:
        return [bp for bp in self.all.values()
                if isinstance(bp, FunctionBreakpoint) and bp.enabled]

    def watchpoints(self) -> List[Watchpoint]:
        return [bp for bp in self.all.values()
                if isinstance(bp, Watchpoint) and bp.enabled]

    def finish_bps(self) -> List[FinishBreakpoint]:
        return [bp for bp in self.all.values()
                if isinstance(bp, FinishBreakpoint) and bp.enabled]
