"""Async-safe stop delivery: stops as awaitable, fanned-out events.

The kernel is synchronous: a stop happens inside whatever thread called
``Debugger.cont``.  Detached observers — wire-attached clients, editor
front-ends, watchdogs — need those stops *pushed* to them instead of
polling ``last_stop`` (DeWiz's event-based analysis over a wire is the
model).  :class:`StopFanout` is the bridge:

- ``subscribe(fn)`` registers a plain callable, invoked in the stopping
  thread (cheap, lock-held only for the snapshot);
- ``async_stream(loop)`` returns an :class:`AsyncStopStream` whose
  queue is fed via ``loop.call_soon_threadsafe`` — an ``async for``
  over stops, safe no matter which thread drives the kernel;
- a subscriber raising never breaks the stopping thread or the other
  subscribers (session isolation starts here).

The debugger publishes into its fanout from the ordinary
``stop_callbacks`` path, so every existing stop source — breakpoints,
RV violations, deadlocks, replay stops, consistent-barrier shard
pauses — arrives without new plumbing.
"""

from __future__ import annotations

import threading
from itertools import count
from typing import Callable, Dict, List, Optional

from .stop import StopEvent

Subscriber = Callable[[StopEvent], None]


class StopFanout:
    """Thread-safe one-to-many stop distribution."""

    def __init__(self) -> None:
        self._subs: Dict[int, Subscriber] = {}
        self._lock = threading.Lock()
        self._ids = count(1)
        #: total stops published (diagnostic; monotonically increasing)
        self.published = 0
        #: per-subscriber exceptions swallowed (isolation accounting)
        self.subscriber_errors = 0

    def subscribe(self, fn: Subscriber) -> int:
        with self._lock:
            handle = next(self._ids)
            self._subs[handle] = fn
        return handle

    def unsubscribe(self, handle: int) -> None:
        with self._lock:
            self._subs.pop(handle, None)

    def __len__(self) -> int:
        with self._lock:
            return len(self._subs)

    def publish(self, ev: StopEvent) -> None:
        with self._lock:
            self.published += 1
            subs = list(self._subs.values())
        for fn in subs:
            try:
                fn(ev)
            except Exception:
                # a broken observer must never kill the kernel thread
                # (or starve its sibling subscribers)
                self.subscriber_errors += 1

    # ------------------------------------------------------------- asyncio

    def async_stream(self, loop) -> "AsyncStopStream":
        """An awaitable stream of stops for ``loop`` — feedable from any
        thread, consumed with ``await stream.get()`` / ``async for``."""
        return AsyncStopStream(self, loop)


class AsyncStopStream:
    """Stops delivered onto an asyncio loop from kernel threads."""

    def __init__(self, fanout: StopFanout, loop) -> None:
        import asyncio

        self._fanout = fanout
        self._loop = loop
        self.queue: "asyncio.Queue[StopEvent]" = asyncio.Queue()
        self._handle: Optional[int] = fanout.subscribe(self._feed)
        self._closed = False

    def _feed(self, ev: StopEvent) -> None:
        if self._closed:
            return
        try:
            self._loop.call_soon_threadsafe(self.queue.put_nowait, ev)
        except RuntimeError:
            # the loop is gone (daemon draining); detach quietly
            self.close()

    async def get(self) -> StopEvent:
        return await self.queue.get()

    def __aiter__(self) -> "AsyncStopStream":
        return self

    async def __anext__(self) -> StopEvent:
        if self._closed and self.queue.empty():
            raise StopAsyncIteration
        return await self.queue.get()

    def close(self) -> None:
        self._closed = True
        if self._handle is not None:
            self._fanout.unsubscribe(self._handle)
            self._handle = None
