"""A GDB-Python-flavoured extension API.

The paper built its extension on GDB's Python bindings: subclassable
``gdb.Breakpoint`` / ``gdb.FinishBreakpoint`` with a ``stop()`` method,
``gdb.parse_and_eval``, ``gdb.events.stop`` — this module provides the
same shape over :class:`~repro.dbg.debugger.Debugger`, so third-party
model-aware extensions (like :mod:`repro.core`, or one for a different
dataflow framework) can be written in the familiar style::

    api = ExtensionAPI(debugger)

    class WorkLogger(api.Breakpoint):
        def stop(self, frame):            # return False = don't stop
            print("fired", frame.name)
            return False

    WorkLogger(symbol="IpfFilter_work_function", internal=True)
    api.events.stop.connect(lambda ev: print("stopped:", ev))
    api.execute("continue")
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..errors import DebuggerError
from .breakpoints import ApiBreakpoint as _ApiBp
from .debugger import Debugger
from .eval import format_typed
from .stop import StopEvent


class EventRegistry:
    """``api.events.stop.connect(fn)`` — mirrors gdb.events."""

    def __init__(self) -> None:
        self._callbacks: List[Callable] = []

    def connect(self, fn: Callable) -> None:
        if fn not in self._callbacks:
            self._callbacks.append(fn)

    def disconnect(self, fn: Callable) -> None:
        try:
            self._callbacks.remove(fn)
        except ValueError:
            pass

    def emit(self, *args) -> None:
        for fn in list(self._callbacks):
            fn(*args)


class _Events:
    def __init__(self) -> None:
        self.stop = EventRegistry()
        self.cont = EventRegistry()
        self.exited = EventRegistry()


class ExtensionAPI:
    """One extension surface bound to one debugger."""

    def __init__(self, debugger: Debugger, cli=None):
        self.dbg = debugger
        self.cli = cli
        self.events = _Events()
        debugger.stop_callbacks.append(self._dispatch_stop)
        self.Breakpoint = self._make_breakpoint_class()
        self.FinishBreakpoint = self._make_finish_class()

    # ------------------------------------------------------------ dispatch

    def _dispatch_stop(self, ev: StopEvent) -> None:
        from .stop import StopKind

        if ev.kind == StopKind.EXITED:
            self.events.exited.emit(ev)
        else:
            self.events.stop.emit(ev)

    # ----------------------------------------------------------- gdb verbs

    def execute(self, command: str) -> List[str]:
        """Run a CLI command (requires a CLI to be attached)."""
        if self.cli is None:
            raise DebuggerError("no CLI attached to this ExtensionAPI")
        return self.cli.execute(command)

    def parse_and_eval(self, text: str):
        """Evaluate in the selected frame; returns ``(ctype, raw)``."""
        return self.dbg.eval_expr(text)

    def format_value(self, ctype, raw) -> str:
        return format_typed(ctype, raw)

    def selected_frame(self):
        return self.dbg.current_frame()

    def selected_actor(self):
        return self.dbg.selected_actor

    def lookup_symbol(self, name: str):
        return self.dbg.debug_info.lookup_function(name)

    def post_stop(self, reason) -> None:  # pragma: no cover - convenience
        """Ask for a pause at the next dispatch (like gdb's interrupt)."""
        self.dbg.request_pause()

    # --------------------------------------------------- breakpoint classes

    def _make_breakpoint_class(self):
        api = self

        class Breakpoint:
            """Subclassable breakpoint, gdb.Breakpoint style.

            Exactly one location kind must be given:

            - ``spec``  — source location ``file.c:42`` or a function
              symbol (classic breakpoint);
            - ``symbol`` — a Filter-C function symbol (explicit);
            - ``api_symbol`` — a framework API symbol (the paper's
              *function breakpoint*; ``phase='exit'`` makes it a finish
              breakpoint on that function).
            """

            def __init__(
                self,
                spec: Optional[str] = None,
                symbol: Optional[str] = None,
                api_symbol: Optional[str] = None,
                phase: str = "entry",
                actor: Optional[str] = None,
                condition: Optional[str] = None,
                arg_filters: Optional[Dict[str, Any]] = None,
                temporary: bool = False,
                internal: bool = False,
            ):
                given = [x for x in (spec, symbol, api_symbol) if x is not None]
                if len(given) != 1:
                    raise DebuggerError(
                        "Breakpoint needs exactly one of spec/symbol/api_symbol"
                    )
                kwargs = dict(
                    temporary=temporary, internal=internal, condition=condition, actor=actor
                )
                if api_symbol is not None:
                    kwargs.pop("condition")
                    self._bp = api.dbg.break_api(
                        api_symbol,
                        phase=phase,
                        arg_filters=arg_filters,
                        stop_fn=self.stop,
                        **kwargs,
                    )
                elif symbol is not None:
                    self._bp = api.dbg.break_function(symbol, **kwargs)
                    self._bp.stop = self.stop  # type: ignore[method-assign]
                else:
                    self._bp = api.dbg.break_source(spec, **kwargs)
                    self._bp.stop = self.stop  # type: ignore[method-assign]

            # -- overridable ----------------------------------------------
            def stop(self, context) -> bool:
                return True

            # -- management -----------------------------------------------
            @property
            def number(self) -> int:
                return self._bp.id

            @property
            def enabled(self) -> bool:
                return self._bp.enabled

            @enabled.setter
            def enabled(self, value: bool) -> None:
                self._bp.enabled = bool(value)

            @property
            def hit_count(self) -> int:
                return self._bp.hit_count

            @property
            def is_valid(self) -> bool:
                return not self._bp.deleted

            def delete(self) -> None:
                if not self._bp.deleted:
                    api.dbg.delete(self._bp.id)

        return Breakpoint

    def _make_finish_class(self):
        api = self

        class FinishBreakpoint:
            """Fires when the selected (or given) frame returns —
            the concept the paper introduced into GDB's Python API."""

            def __init__(self, frame=None, internal: bool = True):
                self._bp = api.dbg.finish_breakpoint(frame, internal=internal)
                self._bp.stop = self._on_return  # type: ignore[method-assign]

            def _on_return(self, value) -> bool:
                self.return_value = value
                return self.stop(value)

            def stop(self, value) -> bool:
                return True

            @property
            def number(self) -> int:
                return self._bp.id

            @property
            def is_valid(self) -> bool:
                return not self._bp.deleted

        return FinishBreakpoint
