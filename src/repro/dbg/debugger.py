"""The debugger proper: run control, stop translation, inspection.

The platform runs only while :meth:`Debugger.cont` (or a stepping command)
is executing; any hook- or listener-requested ``Suspend`` stops the kernel
and control returns here with a :class:`~repro.dbg.stop.StopEvent`.
Because actors are cooperatively scheduled coroutines, a stopped actor
resumes exactly at the paused statement — the debugger never unwinds or
replays anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..cminus import ast as cast
from ..cminus.interp import DebugHook, Frame, Interpreter
from ..cminus.values import format_value
from ..errors import DebuggerError
from ..pedf.actors import ActorInst
from ..pedf.api import FrameworkEvent
from ..pedf.runtime import PedfRuntime
from ..sim.kernel import Scheduler, StopKind as KStopKind, StopReason
from ..sim.process import Suspend
from .breakpoints import (
    ApiBreakpoint,
    BreakpointBase,
    BreakpointRegistry,
    FinishBreakpoint,
    FunctionBreakpoint,
    IsaBreakpoint,
    RegisterWatchpoint,
    SourceBreakpoint,
    Watchpoint,
)
from .eval import EvalError, Evaluator, ValueHistory, format_typed
from .events import StopFanout
from .stop import StopEvent, StopKind


@dataclass
class _StepState:
    mode: str  # "step" | "next" | "stepi" | "isi"
    actor: str  # qualified name
    depth: int
    line: int


class _InterpHook(DebugHook):
    """Bridges interpreter callbacks to the debugger."""

    def __init__(self, dbg: "Debugger"):
        self.dbg = dbg

    def on_statement(self, interp, stmt):
        return self.dbg._on_statement(interp, stmt)

    def on_call(self, interp, frame):
        return self.dbg._on_call(interp, frame)

    def on_return(self, interp, frame, value):
        return self.dbg._on_return(interp, frame, value)

    def on_trap(self, interp):
        return self.dbg._on_trap(interp)

    def on_instruction(self, interp, act):
        return self.dbg._on_instruction(interp, act)

    def on_isa_break(self, interp, act):
        return self.dbg._on_isa_break(interp, act)


class Debugger:
    """Interactive debugger attached to one PEDF runtime."""

    def __init__(self, scheduler: Scheduler, runtime: PedfRuntime):
        self.scheduler = scheduler
        self.runtime = runtime
        self.breakpoints = BreakpointRegistry()
        self.history = ValueHistory()
        self.hook = _InterpHook(self)
        runtime.set_hook(self.hook)
        self.debug_info = runtime.merged_debug_info()
        self._actor_by_interp: Dict[int, ActorInst] = {}
        for actor in runtime.all_actors():
            if getattr(actor, "interp", None) is not None:
                self._actor_by_interp[id(actor.interp)] = actor
        self.selected_actor: Optional[ActorInst] = None
        self.selected_frame_index = 0
        self.last_stop: Optional[StopEvent] = None
        self.stop_log: List[StopEvent] = []
        self._step: Optional[_StepState] = None
        self._last_lines: Dict[int, tuple] = {}  # interp id -> (depth, line)
        self._pause_requested = False
        self._finished = False
        #: callbacks run on every stop (the extension API's event registry)
        self.stop_callbacks: List[Callable[[StopEvent], None]] = []
        #: thread-safe stop distribution for detached observers (wire
        #: connections, watchdogs): every stop that reaches the stop
        #: callbacks is also published here, and a broken subscriber can
        #: never unwind the kernel thread
        self.fanout = StopFanout()
        self.stop_callbacks.append(self.fanout.publish)
        #: armed by the telemetry facade: adds CAP_TELEMETRY to the hook
        #: mask so interpreters count flushed cycles (span cost attribution)
        self.telemetry_armed = False
        #: armed by the runtime-verification facade: adds CAP_RV to the
        #: hook mask (monitors ride the framework event bus; the bit never
        #: deoptimizes the compiled tier)
        self.rv_armed = False
        #: armed by the profiler facade: adds CAP_PROFILE to the hook mask
        #: so interpreters attribute flushed cycles through
        #: ``hook.profile_sink`` (never deoptimizes)
        self.profiler_armed = False
        scheduler.pre_dispatch_hook = self._pre_dispatch
        # fast path: keep the kernel's pre-dispatch callback disarmed until
        # a pause is actually pending — zero per-dispatch cost otherwise
        scheduler.set_pre_dispatch_armed(False)
        self.breakpoints.on_change = self._recompute_capabilities
        self._recompute_capabilities()

    # ------------------------------------------------------------ plumbing

    def _actor_of(self, interp: Interpreter) -> Optional[ActorInst]:
        return self._actor_by_interp.get(id(interp))

    def _recompute_capabilities(self) -> None:
        """Re-derive the hook capability mask from what is armed (§V hook
        elision).  Called on every registry mutation and step-state change;
        when nothing can fire, interpreters skip instrumentation entirely."""
        reg = self.breakpoints
        caps = 0
        # instruction stepping ("isi") rides CAP_ISA, not CAP_STATEMENTS —
        # arming the statement path would deoptimize the VM frame out from
        # under the very step that wants to observe it
        stepping_stmts = self._step is not None and self._step.mode != "isi"
        if stepping_stmts or reg.armed_count("source") or reg.armed_count("watch"):
            caps |= DebugHook.CAP_STATEMENTS
        if reg.armed_count("function"):
            caps |= DebugHook.CAP_CALLS
        if reg.armed_count("finish"):
            caps |= DebugHook.CAP_RETURNS
        if reg.armed_count("api") or reg.armed_count("catch"):
            caps |= DebugHook.CAP_DATA
        if self.telemetry_armed:
            # telemetry rides the same mask but NOT the tier-selection bits:
            # the compiled fast tier stays compiled, it just counts cycles
            caps |= DebugHook.CAP_TELEMETRY
        if self.rv_armed:
            # likewise outside CAP_ALL: property monitors consume framework
            # events, so arming them must not drop the compiled tier
            caps |= DebugHook.CAP_RV
        if self.profiler_armed:
            # attributed profiling: outside CAP_ALL, implies cycle counting
            # at the flush sites but never perturbs tier selection
            caps |= DebugHook.CAP_PROFILE
        if (
            (self._step is not None and self._step.mode == "isi")
            or reg.armed_count("isa")
            or reg.armed_count("rwatch")
        ):
            # instruction-level surface: outside CAP_ALL, so the bytecode
            # tier stays resident — it just runs its instrumented prelude
            caps |= DebugHook.CAP_ISA
        # Push unconditionally: interpreters cache tier-selection flags
        # locally (``_fast_ok``/``_want_*``), and an interpreter built or
        # adopted after the last mask *change* would otherwise keep stale
        # flags until the next transition.  Registry mutations are rare;
        # the refresh is O(actors) and keeps every live fast path honest
        # the moment a breakpoint is armed or disarmed.
        self.hook.capabilities = caps
        for actor in self.runtime.all_actors():
            interp = getattr(actor, "interp", None)
            if interp is not None:
                interp.refresh_hook_caps()

    def _pre_dispatch(self, process):
        if self._pause_requested:
            self._pause_requested = False
            self.scheduler.set_pre_dispatch_armed(False)
            ev = StopEvent(StopKind.PAUSED, "execution interrupted", time=self.scheduler.now)
            self._record_stop(ev, None)
            return Suspend(ev)
        return None

    def request_pause(self) -> None:
        """Ask the kernel to stop before the next dispatch (Ctrl-C)."""
        self._pause_requested = True
        self.scheduler.set_pre_dispatch_armed(True)

    def _record_stop(self, ev: StopEvent, actor: Optional[ActorInst]) -> None:
        ev.time = self.scheduler.now
        self.last_stop = ev
        self.stop_log.append(ev)
        if actor is not None:
            self.selected_actor = actor
            self.selected_frame_index = 0
        if self._step is not None:
            self._step = None
            self._recompute_capabilities()

    def _suspend(self, ev: StopEvent, actor: Optional[ActorInst]) -> Suspend:
        self._record_stop(ev, actor)
        return Suspend(ev)

    def external_suspend(self, ev: StopEvent, actor: Optional[ActorInst] = None) -> Suspend:
        """Record a stop and build its kernel ``Suspend`` on behalf of an
        extension (the record/replay driver stops the platform exactly at a
        journal position this way)."""
        return self._suspend(ev, actor)

    # --------------------------------------------------------- hook: stmts

    def _on_statement(self, interp: Interpreter, stmt) -> Optional[Suspend]:
        actor = self._actor_of(interp)
        frame = interp.frame
        if frame is None:
            return None
        key = id(interp)
        prev = self._last_lines.get(key)
        cur = (frame.depth, stmt.line)
        self._last_lines[key] = cur
        new_line = prev != cur
        reg = self.breakpoints

        # 1. source breakpoints (on line entry) — O(1) (file, line) lookup
        if new_line and reg.armed_count("source"):
            for bp in reg.source_bps_at(frame.filename, stmt.line):
                if bp.actor and (actor is None or actor.qualname != bp.actor):
                    continue
                req = self._fire_location_bp(bp, StopKind.BREAKPOINT, interp, actor, frame)
                if req is not None:
                    return req

        # 2. watchpoints scoped to this actor — O(1) actor lookup
        if actor is not None and reg.armed_count("watch"):
            for wp in reg.watchpoints_for(actor.qualname):
                req = self._check_watchpoint(wp, interp, actor, frame)
                if req is not None:
                    return req

        # 3. stepping
        if self._step is not None and actor is not None and self._step.actor == actor.qualname:
            st = self._step
            hit = False
            if st.mode == "stepi":
                hit = True
            elif st.mode == "step":
                hit = (frame.depth, stmt.line) != (st.depth, st.line)
            elif st.mode == "next":
                hit = frame.depth < st.depth or (
                    frame.depth == st.depth and stmt.line != st.line
                )
            if hit:
                ev = StopEvent(
                    StopKind.STEP,
                    actor=actor.qualname,
                    filename=frame.filename,
                    line=stmt.line,
                )
                return self._suspend(ev, actor)
        return None

    def _fire_location_bp(
        self,
        bp: BreakpointBase,
        kind: StopKind,
        interp: Interpreter,
        actor: Optional[ActorInst],
        frame: Frame,
        message: str = "",
    ) -> Optional[Suspend]:
        if not bp.register_hit():
            return None
        if bp.condition:
            try:
                ev_val = self._evaluator(frame=frame, interp=interp, actor=actor).eval_text(
                    bp.condition
                )
                if not ev_val[1]:
                    return None
            except EvalError as exc:
                message = (message + f" (condition error: {exc})").strip()
        if not bp.stop(frame):
            return None
        if bp.temporary:
            self.breakpoints.remove(bp.id)
        ev = StopEvent(
            kind,
            message=message,
            actor=actor.qualname if actor else None,
            filename=frame.filename,
            line=frame.line,
            bp_id=bp.id,
        )
        return self._suspend(ev, actor)

    def _check_watchpoint(
        self, wp: Watchpoint, interp: Interpreter, actor: ActorInst, frame: Frame
    ) -> Optional[Suspend]:
        try:
            ctype, raw = self._evaluator(frame=frame, interp=interp, actor=actor).eval_text(
                wp.expr_text
            )
            current = (ctype, raw)
        except EvalError:
            wp.last = None
            return None
        if not wp.primed:
            wp.primed = True
            wp.last = current
            return None
        if wp.last is not None and wp.last[1] == current[1]:
            return None
        old_text = format_typed(*wp.last) if wp.last is not None else "<unavailable>"
        new_text = format_typed(*current)
        wp.last = current
        if not wp.register_hit():
            return None
        if not wp.stop(current):
            return None
        ev = StopEvent(
            StopKind.WATCHPOINT,
            message=f"{wp.expr_text}: old = {old_text}, new = {new_text}",
            actor=actor.qualname,
            filename=frame.filename,
            line=frame.line,
            bp_id=wp.id,
        )
        return self._suspend(ev, actor)

    # --------------------------------------------------- hook: calls/returns

    def _on_call(self, interp: Interpreter, frame: Frame) -> Optional[Suspend]:
        actor = self._actor_of(interp)
        for bp in self.breakpoints.function_bps_for(frame.func.name):
            if bp.actor and (actor is None or actor.qualname != bp.actor):
                continue
            req = self._fire_location_bp(
                bp, StopKind.FUNCTION_BP, interp, actor, frame, message=frame.func.name
            )
            if req is not None:
                return req
        return None

    def _on_return(self, interp: Interpreter, frame: Frame, value) -> Optional[Suspend]:
        actor = self._actor_of(interp)
        for bp in self.breakpoints.finish_bps_for(interp):
            if bp.frame is not frame:
                continue
            if not bp.register_hit():
                continue
            bp.return_value = value
            if not bp.stop(value):
                continue
            if bp.temporary:
                self.breakpoints.remove(bp.id)
            ret_text = format_value(frame.func.ret, value)
            ev = StopEvent(
                StopKind.FINISH,
                message=f"{frame.func.name} returned {ret_text}",
                actor=actor.qualname if actor else None,
                filename=frame.filename,
                line=frame.call_line or frame.line,
                bp_id=bp.id,
                payload=value,
            )
            return self._suspend(ev, actor)
        return None

    def _on_trap(self, interp: Interpreter) -> Optional[Suspend]:
        actor = self._actor_of(interp)
        frame = interp.frame
        ev = StopEvent(
            StopKind.TRAP,
            actor=actor.qualname if actor else None,
            filename=frame.filename if frame else None,
            line=frame.line if frame else None,
        )
        return self._suspend(ev, actor)

    # ---------------------------------------------------- hook: ISA level

    def _on_instruction(self, interp: Interpreter, act) -> Optional[Suspend]:
        """Fires before every VM instruction while CAP_ISA is armed."""
        reg = self.breakpoints
        actor = self._actor_of(interp)
        fname = act.vmf.name

        # 1. ISA breakpoints — O(1) (func, pc) lookup
        if reg.armed_count("isa"):
            for bp in reg.isa_bps_at(fname, act.pc):
                if bp.actor and (actor is None or actor.qualname != bp.actor):
                    continue
                if not bp.register_hit():
                    continue
                if not bp.stop(act):
                    continue
                if bp.temporary:
                    self.breakpoints.remove(bp.id)
                ev = StopEvent(
                    StopKind.ISA_BP,
                    message=f"{fname}+{act.pc}",
                    actor=actor.qualname if actor else None,
                    filename=act.vmf.filename,
                    line=act.line(),
                    bp_id=bp.id,
                )
                return self._suspend(ev, actor)

        # 2. register watchpoints scoped to this function
        if reg.armed_count("rwatch"):
            for wp in reg.register_watchpoints_for(fname):
                if wp.actor and (actor is None or actor.qualname != wp.actor):
                    continue
                cur = act.regs[wp.reg] if wp.reg < len(act.regs) else None
                if not wp.primed:
                    wp.primed = True
                    wp.last = (cur,)
                    continue
                if wp.last is not None and wp.last[0] == cur:
                    continue
                old = wp.last[0] if wp.last is not None else "<unset>"
                wp.last = (cur,)
                if not wp.register_hit():
                    continue
                if not wp.stop(cur):
                    continue
                ev = StopEvent(
                    StopKind.REGISTER_WATCH,
                    message=f"r{wp.reg} in {fname}: old = {old}, new = {cur}",
                    actor=actor.qualname if actor else None,
                    filename=act.vmf.filename,
                    line=act.line(),
                    bp_id=wp.id,
                )
                return self._suspend(ev, actor)

        # 3. instruction stepping
        if (
            self._step is not None
            and self._step.mode == "isi"
            and actor is not None
            and self._step.actor == actor.qualname
        ):
            ev = StopEvent(
                StopKind.STEP,
                message=f"{fname}+{act.pc}",
                actor=actor.qualname,
                filename=act.vmf.filename,
                line=act.line(),
            )
            return self._suspend(ev, actor)
        return None

    def _on_isa_break(self, interp: Interpreter, act) -> Optional[Suspend]:
        """The ``brk`` instruction (programmatic ISA-level int3)."""
        actor = self._actor_of(interp)
        ev = StopEvent(
            StopKind.ISA_BP,
            message=f"brk in {act.vmf.name}+{act.pc}",
            actor=actor.qualname if actor else None,
            filename=act.vmf.filename,
            line=act.line(),
        )
        return self._suspend(ev, actor)

    # -------------------------------------------------------- breakpoints

    def break_source(self, spec: str, **kwargs) -> SourceBreakpoint:
        """``file.c:42`` or ``42`` (current file) or a function symbol."""
        filename: Optional[str] = None
        line: Optional[int] = None
        if ":" in spec:
            filename, _, line_text = spec.rpartition(":")
            if not line_text.isdigit():
                raise DebuggerError(f"bad location {spec!r}")
            line = int(line_text)
        elif spec.isdigit():
            line = int(spec)
            frame = self.current_frame()
            if frame is None:
                raise DebuggerError("no current frame: give an explicit file:line")
            filename = frame.filename
        else:
            return self.break_function(spec, **kwargs)
        resolved = self.debug_info.line_table.resolve(filename, line)
        if resolved is None:
            raise DebuggerError(f"no executable code at or after {filename}:{line}")
        bp = SourceBreakpoint(filename, resolved, **kwargs)
        self.breakpoints.add(bp)
        return bp

    def break_function(self, symbol: str, **kwargs) -> FunctionBreakpoint:
        if self.debug_info.lookup_function(symbol) is None:
            matches = self.debug_info.match_functions(symbol)
            if len(matches) == 1:
                symbol = matches[0].name
            elif matches:
                names = ", ".join(f.name for f in matches[:6])
                raise DebuggerError(f"symbol {symbol!r} is ambiguous: {names}")
            else:
                raise DebuggerError(f"no function symbol {symbol!r}")
        bp = FunctionBreakpoint(symbol, **kwargs)
        self.breakpoints.add(bp)
        return bp

    def break_api(
        self,
        symbol: str,
        phase: str = "entry",
        actor: Optional[str] = None,
        arg_filters: Optional[Dict[str, Any]] = None,
        stop_fn: Optional[Callable[[FrameworkEvent], bool]] = None,
        **kwargs,
    ) -> ApiBreakpoint:
        """A function breakpoint on a framework API symbol (the paper's
        core capture mechanism).  ``phase='exit'`` = finish breakpoint."""
        bp = ApiBreakpoint(symbol, phase=phase, arg_filters=arg_filters, actor=actor, **kwargs)
        if stop_fn is not None:
            bp.stop = stop_fn  # type: ignore[method-assign]
        self.breakpoints.add(bp)

        def listener(event: FrameworkEvent) -> Optional[Suspend]:
            if bp.deleted or not bp.enabled or not bp.matches(event):
                return None
            if not bp.register_hit():
                return None
            decision = bp.stop(event)
            if not decision:
                return None
            if bp.temporary:
                self.breakpoints.remove(bp.id)
            actor_inst = None
            if event.actor is not None:
                try:
                    actor_inst = self.runtime.find_actor(event.actor)
                except Exception:
                    actor_inst = None
            if isinstance(decision, StopEvent):
                # the breakpoint supplied its own (e.g. dataflow-flavoured)
                # stop description
                ev = decision
                if ev.bp_id is None:
                    ev.bp_id = bp.id
                if ev.payload is None:
                    ev.payload = event
            else:
                ev = StopEvent(
                    StopKind.API_BP,
                    message=f"{event.phase} {event.symbol}",
                    actor=event.actor,
                    bp_id=bp.id,
                    payload=event,
                )
            return self._suspend(ev, actor_inst)

        bp.subscription = self.runtime.bus.subscribe(
            symbol, listener, actor=actor, phase="both" if bp.phase == "both" else bp.phase
        )
        return bp

    def watch(self, expr_text: str, actor: Optional[str] = None, **kwargs) -> Watchpoint:
        if actor is None:
            if self.selected_actor is None:
                raise DebuggerError("no actor selected: watch <expr> needs an actor context")
            actor = self.selected_actor.qualname
        else:
            actor = self.runtime.find_actor(actor).qualname
        wp = Watchpoint(expr_text, actor, **kwargs)
        self.breakpoints.add(wp)
        # prime now: the first observed *change* (even from <unavailable>)
        # should stop, GDB-style
        wp.primed = True
        try:
            actor_inst = self.runtime.find_actor(actor)
            interp = getattr(actor_inst, "interp", None)
            frame = interp.frame if interp is not None else None
            wp.last = self._evaluator(frame=frame, interp=interp, actor=actor_inst).eval_text(
                expr_text
            )
        except (EvalError, Exception):
            wp.last = None
        return wp

    def break_isa(self, spec: str, **kwargs) -> IsaBreakpoint:
        """``FUNC+PC`` instruction breakpoint on the bytecode tier.

        Arms CAP_ISA (the instrumented VM prelude) without deoptimizing:
        the function keeps running as bytecode, stopping before the
        instruction at ``PC`` executes."""
        func_name, sep, pc_text = spec.rpartition("+")
        if not sep or not func_name or not pc_text.isdigit():
            raise DebuggerError(f"bad ISA location {spec!r} (expected FUNC+PC)")
        if self.debug_info.lookup_function(func_name) is None:
            raise DebuggerError(f"no function symbol {func_name!r}")
        bp = IsaBreakpoint(func_name, int(pc_text), **kwargs)
        self.breakpoints.add(bp)
        return bp

    def watch_register(self, func_name: str, reg: int, **kwargs) -> RegisterWatchpoint:
        """Stop when VM register ``reg`` of ``func_name`` changes value.

        Compared before each instruction while the function runs on the
        bytecode tier; like ISA breakpoints it never deoptimizes."""
        if self.debug_info.lookup_function(func_name) is None:
            raise DebuggerError(f"no function symbol {func_name!r}")
        wp = RegisterWatchpoint(func_name, reg, **kwargs)
        self.breakpoints.add(wp)
        return wp

    def finish_breakpoint(self, frame: Optional[Frame] = None, **kwargs) -> FinishBreakpoint:
        actor = self.selected_actor
        if actor is None or actor.interp is None:
            raise DebuggerError("no actor selected")
        frame = frame or self.current_frame()
        if frame is None:
            raise DebuggerError("no frame to finish")
        bp = FinishBreakpoint(frame, actor.interp, **kwargs)
        self.breakpoints.add(bp)
        return bp

    def delete(self, bp_id: int) -> None:
        self.breakpoints.remove(bp_id)

    # ------------------------------------------------------------- control

    def load(self) -> None:
        if not self.runtime.loaded:
            self.runtime.load()

    def run(self, max_dispatches: Optional[int] = None, until: Optional[int] = None) -> StopEvent:
        """Load (if needed) and run until the first stop."""
        self.load()
        return self.cont(max_dispatches=max_dispatches, until=until)

    def cont(self, max_dispatches: Optional[int] = None, until: Optional[int] = None) -> StopEvent:
        if not self.runtime.loaded:
            raise DebuggerError("program is not running (use run)")
        if self._finished:
            return self.last_stop  # type: ignore[return-value]
        stop = self.scheduler.run(until=until, max_dispatches=max_dispatches)
        return self.absorb_kernel_stop(stop)

    def absorb_kernel_stop(self, stop: StopReason) -> StopEvent:
        """Translate a kernel stop someone else's ``scheduler.run`` call
        produced and fire the stop callbacks — the entry point the sharded
        coordinator uses, so that per-quantum horizon stops never reach
        the stop log but real stops (breakpoints, exits, errors) behave
        exactly as if ``cont`` had produced them."""
        ev = self._translate(stop)
        for cb in list(self.stop_callbacks):
            cb(ev)
        return ev

    def _translate(self, stop: StopReason) -> StopEvent:
        if stop.kind == KStopKind.SUSPENDED:
            if isinstance(stop.payload, StopEvent):
                return stop.payload
            ev = StopEvent(StopKind.PAUSED, str(stop.payload))
            self._record_stop(ev, None)
            return ev
        if stop.kind == KStopKind.EXHAUSTED:
            ev = StopEvent(StopKind.EXITED, "all actors terminated", time=stop.time)
            self._finished = True
            self._record_stop(ev, None)
            return ev
        if stop.kind == KStopKind.DEADLOCK:
            outcome = self.runtime.classify_stop(stop)
            if outcome == "exited":
                ev = StopEvent(StopKind.EXITED, "program quiescent", time=stop.time)
                self._finished = True
            else:
                blocked = ", ".join(stop.payload or [])
                ev = StopEvent(
                    StopKind.DEADLOCK,
                    message=f"blocked actors: {blocked}",
                    payload=stop.payload,
                    time=stop.time,
                )
            self._record_stop(ev, None)
            return ev
        if stop.kind == KStopKind.PROCESS_ERROR:
            owner = stop.process.owner if stop.process else None
            actor = owner if isinstance(owner, ActorInst) else None
            ev = StopEvent(
                StopKind.ERROR,
                message=f"{type(stop.payload).__name__}: {stop.payload}",
                actor=getattr(owner, "qualname", None),
                payload=stop.payload,
            )
            self._record_stop(ev, actor)
            return ev
        ev = StopEvent(StopKind.PAUSED, f"kernel stop: {stop.kind.value}", time=stop.time)
        self._record_stop(ev, None)
        return ev

    # -------------------------------------------------------------- stepping

    def _begin_step(self, mode: str) -> StopEvent:
        actor = self.selected_actor
        if actor is None or actor.interp is None or actor.interp.frame is None:
            raise DebuggerError("no stopped actor frame to step from")
        frame = actor.interp.frame
        self._step = _StepState(mode=mode, actor=actor.qualname, depth=frame.depth, line=frame.line)
        # stepping needs the statement path armed even with zero breakpoints
        self._recompute_capabilities()
        return self.cont()

    def step(self) -> StopEvent:
        """Step to a different source line, entering calls."""
        return self._begin_step("step")

    def next_(self) -> StopEvent:
        """Step to a different source line, skipping over calls."""
        return self._begin_step("next")

    def stepi(self) -> StopEvent:
        """Execute exactly one statement of the selected actor — or, when
        the selected frame is live on the bytecode tier, exactly one VM
        instruction (GDB's ``si`` at the ISA level)."""
        if self.vm_activation() is not None:
            return self._begin_step("isi")
        return self._begin_step("stepi")

    def finish(self) -> StopEvent:
        """Run until the selected frame returns."""
        frame = self.current_frame()
        if frame is None:
            raise DebuggerError("no frame to finish")
        self.finish_breakpoint(frame)
        return self.cont()

    # ------------------------------------------------------------ inspection

    def actors(self) -> List[ActorInst]:
        return self.runtime.all_actors()

    def freeze_actor(self, name: str):
        """Withhold one actor from execution (paper §III: during
        concurrent stepping, "let them block the other execution paths
        until a latter investigation")."""
        actor = self.runtime.find_actor(name)
        if actor.process is None:
            raise DebuggerError(f"actor {actor.qualname} has no process yet (not running)")
        self.scheduler.freeze(actor.process)
        return actor

    def thaw_actor(self, name: str):
        actor = self.runtime.find_actor(name)
        if actor.process is None:
            raise DebuggerError(f"actor {actor.qualname} has no process yet (not running)")
        self.scheduler.thaw(actor.process)
        return actor

    def select_actor(self, name: str) -> ActorInst:
        actor = self.runtime.find_actor(name)
        self.selected_actor = actor
        self.selected_frame_index = 0
        return actor

    def backtrace(self) -> List[Frame]:
        actor = self.selected_actor
        if actor is None or getattr(actor, "interp", None) is None:
            return []
        return actor.interp.backtrace()

    def select_frame(self, index: int) -> Frame:
        frames = self.backtrace()
        if not 0 <= index < len(frames):
            raise DebuggerError(f"no frame #{index} (stack depth {len(frames)})")
        self.selected_frame_index = index
        return frames[index]

    def current_frame(self) -> Optional[Frame]:
        frames = self.backtrace()
        if not frames:
            return None
        index = min(self.selected_frame_index, len(frames) - 1)
        return frames[index]

    def _evaluator(self, frame=None, interp=None, actor=None) -> Evaluator:
        actor = actor if actor is not None else self.selected_actor
        interp = interp if interp is not None else getattr(actor, "interp", None)
        frame = frame if frame is not None else self.current_frame()
        structs = dict(self.debug_info.structs)
        structs.update(self.runtime.decl.structs)
        return Evaluator(frame=frame, interp=interp, actor=actor, history=self.history, structs=structs)

    def print_expr(self, text: str) -> str:
        """Evaluate and record in history; returns the ``$N = value`` line."""
        ctype, raw = self._evaluator().eval_text(text)
        index = self.history.record(ctype, raw)
        return f"${index} = {format_typed(ctype, raw)}"

    def eval_expr(self, text: str):
        """Evaluate without recording; returns (ctype, raw)."""
        return self._evaluator().eval_text(text)

    def list_source(self, center: Optional[int] = None, radius: int = 4) -> List[str]:
        frame = self.current_frame()
        if frame is None:
            raise DebuggerError("no source context (program not stopped in actor code)")
        center = center if center is not None else frame.line
        window = self.debug_info.source_window(frame.filename, center, radius)
        out = []
        for n, text in window:
            marker = "->" if n == frame.line else "  "
            out.append(f"{marker} {n}\t{text}")
        return out

    # ---------------------------------------------------- ISA inspection

    def vm_activation(self, frame: Optional[Frame] = None):
        """The VM :class:`~repro.cminus.vm.emulator.Activation` behind a
        frame, or None when the frame runs on an AST tier (after tier
        descent the attribute is cleared, so mixed stacks resolve
        per-frame)."""
        if frame is None:
            actor = self.selected_actor
            interp = getattr(actor, "interp", None) if actor is not None else None
            frame = interp.frame if interp is not None else None
        if frame is None:
            return None
        return getattr(frame, "vm", None)

    def disas_text(self, func_name: Optional[str] = None) -> str:
        """Pretty listing of one bytecode function (``disas [FUNC]``).

        With no argument, disassembles the selected frame's function and
        marks the current pc; otherwise compiles/fetches ``func_name``
        from the selected actor's VM unit."""
        from ..cminus.vm.asm import disassemble
        from ..cminus.vm.compiler import vm_unit

        act = self.vm_activation(self.current_frame())
        if func_name is None:
            if act is None:
                raise DebuggerError(
                    "selected frame is not running on the bytecode tier "
                    "(give an explicit function name)"
                )
            vmf, pc = act.vmf, act.pc
        else:
            actor = self.selected_actor
            interp = getattr(actor, "interp", None) if actor is not None else None
            if interp is None:
                raise DebuggerError("no actor selected")
            try:
                vu = vm_unit(interp.program)
            except Exception as exc:
                raise DebuggerError(f"bytecode compile failed: {exc}")
            vmf = vu.funcs.get(func_name)
            if vmf is None:
                reason = vu.failed.get(func_name)
                if reason is not None:
                    raise DebuggerError(f"{func_name} not compilable: {reason}")
                raise DebuggerError(f"no function symbol {func_name!r}")
            pc = act.pc if act is not None and act.vmf is vmf else None
        text = self.debug_info.sources.get(vmf.filename)
        source = text.splitlines() if text else None
        return disassemble(vmf, pretty=True, source_lines=source, pc=pc)

    def register_rows(self) -> List[tuple]:
        """``(index, name, value)`` rows for ``info registers`` — the
        selected frame must be live on the bytecode tier."""
        act = self.vm_activation(self.current_frame())
        if act is None:
            raise DebuggerError("selected frame is not running on the bytecode tier")
        return act.registers()

    @property
    def finished(self) -> bool:
        return self._finished
