"""Shared command-argument parsing.

The GDB-flavoured base CLI (:mod:`repro.dbg.cli`) and the dataflow
command set (:mod:`repro.core.commands`) grew the same small parsers
independently — integer breakpoint numbers, ``LOCATION [if COND]``
splits, ``FILE [force]`` export targets, ``[N|all] [sort KEY]`` listing
options and keyword-walk option lists (``every N limit N …``).  They
live here once, so the interactive CLI, the scripted transcripts and the
wire-attached :mod:`repro.serve` sessions all parse identically.

Every helper raises :class:`~repro.errors.CommandError` with the exact
``usage:`` text its caller advertises, keeping error strings (asserted
by the interactive tests) unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import CommandError


def parse_int_arg(arg: str, what: str, noun: str = "breakpoint number") -> int:
    """``delete N`` / ``frame N`` style single-integer arguments."""
    if not arg.strip().isdigit():
        raise CommandError(f"{what}: expected a {noun}")
    return int(arg.strip())


def parse_break_args(arg: str, what: str = "break") -> Tuple[str, Optional[str]]:
    """Split ``LOCATION [if CONDITION]``; returns ``(location, condition)``."""
    condition = None
    if " if " in arg:
        arg, _, condition = arg.partition(" if ")
    elif arg.startswith("if "):
        raise CommandError(f"{what}: missing location")
    return arg.strip(), (condition.strip() if condition else None)


def parse_export_target(rest: str, usage: str) -> Tuple[str, bool]:
    """Parse ``FILE [force]`` for the export-style commands; returns
    ``(path, force)``."""
    words = rest.split()
    force = False
    if words and words[-1] == "force":
        force = True
        words = words[:-1]
    if not words:
        raise CommandError(f"usage: {usage}")
    return " ".join(words), force


def parse_listing_options(
    arg: str, sorts: Sequence[str], usage: str, default_limit: int = 20
) -> Tuple[int, str]:
    """Parse the shared ``[N|all] [sort KEY]`` listing options used by
    ``info spans`` / ``info metrics``; returns ``(limit, sort)`` with
    ``limit=0`` meaning unlimited."""
    limit = default_limit
    sort = sorts[0]
    words = arg.split()
    i = 0
    while i < len(words):
        word = words[i]
        if word.isdigit():
            limit = int(word)
            i += 1
        elif word == "all":
            limit = 0
            i += 1
        elif word == "limit" and i + 1 < len(words) and words[i + 1].isdigit():
            limit = int(words[i + 1])
            i += 2
        elif word == "sort" and i + 1 < len(words) and words[i + 1] in sorts:
            sort = words[i + 1]
            i += 2
        else:
            raise CommandError(f"usage: {usage}")
    return limit, sort


def parse_keyword_options(
    rest: str,
    usage: str,
    int_keys: Sequence[str] = (),
    str_keys: Sequence[str] = (),
    flags: Sequence[str] = (),
) -> Dict[str, object]:
    """Walk a ``key value key value flag …`` option list (the shape of
    ``record on every 8 limit 100 segments DIR``, ``trace on limit N
    ring``).  Integer-valued keys insist on digits; unknown words raise
    the caller's ``usage:`` line.  Returns only the keys present."""
    out: Dict[str, object] = {}
    words = rest.split()
    i = 0
    while i < len(words):
        word = words[i]
        if word in int_keys and i + 1 < len(words) and words[i + 1].isdigit():
            out[word] = int(words[i + 1])
            i += 2
        elif word in str_keys and i + 1 < len(words):
            out[word] = words[i + 1]
            i += 2
        elif word in flags:
            out[word] = True
            i += 1
        else:
            raise CommandError(f"usage: {usage}")
    return out
