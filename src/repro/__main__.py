"""Interactive entry point: ``python -m repro [options]``.

Loads an architecture (a MIND ``.adl`` file with its Filter-C sources, or
one of the built-in demo applications), attaches the dataflow debugger
and drops into the (gdb)-style prompt — or replays a command script.

Examples::

    python -m repro --demo amodule
    python -m repro --demo h264 --bug rate-mismatch
    python -m repro --adl app.adl --src filter.c --src ctl.c \
        --source-values 1,2,3 --script session.gdb
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from . import build_debug_session
from .errors import ReproError


def _apply_tier(session, tier: str) -> None:
    from .serve.builders import apply_tier

    apply_tier(session, tier)


def _build_demo(name: str, bug: Optional[str], tier: str = "auto"):
    from .serve.builders import build_program_cli

    if name == "h264" and bug is not None:
        from .apps.h264.bugs import BUG_VARIANTS

        variant = BUG_VARIANTS.get(bug)
        if variant is not None:
            print(f"[loaded h264 decoder with injected bug: {variant.symptom}]")
    return build_program_cli(name, bug=bug, tier=tier)


def _build_from_adl(adl_path: str, src_paths: List[str], values: List[int], tier: str = "auto"):
    adl_text = Path(adl_path).read_text()
    sources = {Path(p).name: Path(p).read_text() for p in src_paths}

    def fresh():
        dbg, cli, session, runtime = build_debug_session(adl_text, sources)
        _apply_tier(session, tier)
        if values:
            # feed the first module input found
            for module in runtime.decl.modules.values():
                inputs = [i for i in module.ifaces.values() if i.direction == "input"]
                if inputs:
                    runtime.add_source("stdin", module.name, inputs[0].name, values)
                    break
            for module in runtime.decl.modules.values():
                outputs = [i for i in module.ifaces.values() if i.direction == "output"]
                if outputs:
                    runtime.add_sink("stdout", module.name, outputs[0].name, expect=None)
                    break
        return cli, session

    cli, session = fresh()
    session.replay.register_builder(lambda: fresh()[1])
    return cli, None


def repl(cli) -> None:
    print("dataflow debugger — type 'help' for commands, 'quit' to exit")
    while True:
        try:
            line = input("(gdb) ")
        except (EOFError, KeyboardInterrupt):
            print()
            return
        if line.strip() in ("quit", "q", "exit"):
            return
        for out in cli.execute(line):
            print(out)


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "serve":
        # the debug-server daemon: many concurrent wire-attached sessions
        from .serve.daemon import serve_main

        return serve_main(argv[1:])
    parser = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    parser.add_argument("--demo", choices=["amodule", "rle", "h264"],
                        help="load a built-in demo")
    parser.add_argument("--bug", help="inject a bug variant (h264 demo): "
                                      "rate-mismatch / corrupted-token / dropped-token")
    parser.add_argument("--adl", help="architecture description file")
    parser.add_argument("--src", action="append", default=[],
                        help="Filter-C source file (repeatable)")
    parser.add_argument("--source-values", default="",
                        help="comma-separated integers fed to the first module input")
    parser.add_argument("--script", help="run commands from this file instead of a REPL")
    parser.add_argument("--interp-tier", choices=["auto", "vm", "slow"], default="auto",
                        help="Filter-C execution tier: 'auto' runs compiled closures "
                             "with debugger-triggered deoptimization, 'vm' runs the "
                             "register-machine bytecode tier (fastest; supports disas/"
                             "stepi/ISA breakpoints), 'slow' forces the per-statement "
                             "resumable interpreter")
    parser.add_argument("--trace-out", metavar="FILE",
                        help="enable telemetry from the start and write a "
                             "Perfetto-loadable Chrome trace-event JSON on exit")
    parser.add_argument("--metrics-out", metavar="FILE",
                        help="enable telemetry from the start and write an "
                             "OpenMetrics/Prometheus text exposition of the "
                             "final metric snapshot on exit")
    parser.add_argument("--profile", action="store_true",
                        help="arm the attributed cycle profiler from the start "
                             "(inspect with `prof top`, export flamegraphs "
                             "with `prof flame FILE`)")
    parser.add_argument("--check", action="append", default=[], metavar="[ACTION:]PROPERTY",
                        help="arm a runtime-verification check once the graph is "
                             "reconstructed (repeatable); ACTION is stop (default), "
                             "log or mark — e.g. --check 'occupancy a::o->b::i <= 4' "
                             "or --check log:deadlock-free")
    args = parser.parse_args(argv)

    try:
        if args.demo:
            cli, _ = _build_demo(args.demo, args.bug, args.interp_tier)
        elif args.adl:
            values = [int(v, 0) for v in args.source_values.split(",") if v.strip()]
            cli, _ = _build_from_adl(args.adl, args.src, values, args.interp_tier)
        else:
            parser.error("give --demo or --adl")
            return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.trace_out or args.metrics_out:
        cli.dataflow_handler.session.telemetry.enable()
    if args.profile:
        cli.dataflow_handler.session.prof.enable()

    for spec in args.check:
        # property compilation needs the reconstructed graph, so the
        # checks facade defers arming to the first post-init stop (the
        # demos stop right after init, before any token moves)
        action, sep, prop_text = spec.partition(":")
        if not sep or action not in ("stop", "log", "mark"):
            action, prop_text = "stop", spec
        try:
            cli.dataflow_handler.session.checks.add_deferred(prop_text.strip(), action)
        except ReproError as exc:
            print(f"error: --check {spec!r}: {exc}", file=sys.stderr)
            return 1

    if args.script:
        lines = Path(args.script).read_text().splitlines()
        for out in cli.execute_script(lines):
            print(out)
    else:
        repl(cli)

    # session may have been rebuilt by a replay adoption mid-script;
    # the handler always points at the live one.  Exit-time exports
    # overwrite their targets (force): the user named them on the
    # command line, so clobbering a stale artifact is the intent.
    if args.trace_out:
        for out in cli.execute(f"trace export {args.trace_out} force"):
            print(out)
    if args.metrics_out:
        for out in cli.execute(f"metrics export {args.metrics_out} force"):
            print(out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
