"""Reproduction of *Interactive Debugging of Dynamic Dataflow Embedded
Applications* (Pouget, Santana, López Cueva, Méhaut — IPDPS-W 2013).

Subpackages (bottom-up):

- :mod:`repro.sim` — discrete-event kernel (the SystemC substitute);
- :mod:`repro.p2012` — the P2012 MPSoC platform model;
- :mod:`repro.cminus` — Filter-C, the restricted C subset of PEDF
  actors, with a resumable interpreter and DWARF-like debug info;
- :mod:`repro.mind` — the MIND architecture description language;
- :mod:`repro.pedf` — the PEDF dynamic dataflow framework;
- :mod:`repro.dbg` — the base interactive debugger (the GDB substitute);
- :mod:`repro.core` — **the paper's contribution**: the dataflow-aware
  debugger extension;
- :mod:`repro.apps` — AModule (§IV) and the H.264-like decoder (§VI);
- :mod:`repro.eval` — experiment harnesses for every figure and claim.

The quickest way in::

    from repro import build_debug_session
    dbg, cli, session, runtime = build_debug_session(adl_text, sources={...})

See README.md for the full tour.
"""

from typing import Mapping, Optional, Union

__version__ = "1.0.0"


def build_debug_session(
    program,
    sources: Optional[Mapping[str, str]] = None,
    scheduler=None,
    platform_config=None,
    stop_on_init: bool = True,
):
    """One-call assembly of a debuggable PEDF application.

    ``program`` is either a MIND architecture description (text — then
    ``sources`` maps its ``source foo.c;`` references to Filter-C code)
    or an already-built :class:`~repro.pedf.decls.ProgramDecl`.

    Returns ``(debugger, cli, dataflow_session, runtime)``.  Attach
    sources/sinks via ``runtime.add_source`` / ``runtime.add_sink``
    before the first ``run``.
    """
    from .core import DataflowSession
    from .dbg import CommandCli, Debugger
    from .mind import compile_adl
    from .p2012.soc import P2012Platform, PlatformConfig
    from .pedf.runtime import PedfRuntime
    from .sim import Scheduler

    if isinstance(program, str):
        program = compile_adl(program, sources or {})
    sched = scheduler or Scheduler()
    platform = P2012Platform(
        sched, platform_config or PlatformConfig(n_clusters=2, pes_per_cluster=8)
    )
    runtime = PedfRuntime(sched, platform, program)
    dbg = Debugger(sched, runtime)
    cli = CommandCli(dbg)
    session = DataflowSession(dbg, cli=cli, stop_on_init=stop_on_init)
    return dbg, cli, session, runtime
