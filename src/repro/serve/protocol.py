"""Wire framing: line-delimited JSON-RPC 2.0 and DAP Content-Length.

One daemon port speaks three protocols, distinguished by the first byte
a client sends (see :func:`sniff_protocol`):

- ``{`` — line-delimited JSON-RPC 2.0: one JSON object per ``\\n``-
  terminated line, requests carry ``id``, server-pushed events are
  id-less notifications with ``method: "event"``;
- ``C`` — DAP: ``Content-Length: N\\r\\n\\r\\n<N bytes of JSON>`` frames,
  the Debug Adapter Protocol's standard transport;
- ``G`` — HTTP ``GET``: the OpenMetrics scrape endpoint.

Everything here is transport-only (bytes and dicts); semantics live in
:mod:`repro.serve.daemon` and :mod:`repro.serve.dap`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

# JSON-RPC 2.0 reserved codes
ERR_PARSE = -32700
ERR_INVALID_REQUEST = -32600
ERR_METHOD_NOT_FOUND = -32601
ERR_INVALID_PARAMS = -32602
ERR_INTERNAL = -32603

# application codes (documented in README's "Debug server" section)
ERR_NO_SESSION = 1001  # unknown / already-destroyed session id
ERR_QUOTA = 1002  # a per-session quota is exhausted (data names which)
ERR_SESSION_FAILED = 1003  # the session raised; the daemon survives
ERR_SHUTTING_DOWN = 1004  # daemon is draining; no new work accepted

MAX_LINE_BYTES = 1 << 20  # one wire request; commands are short


def encode_line(obj: Dict[str, Any]) -> bytes:
    """One protocol line (compact separators: the framing is the
    newline, not whitespace)."""
    return json.dumps(obj, separators=(",", ":"), sort_keys=True).encode() + b"\n"


def response(req_id: Any, result: Any) -> Dict[str, Any]:
    return {"jsonrpc": "2.0", "id": req_id, "result": result}


def error_response(
    req_id: Any, code: int, message: str, data: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    err: Dict[str, Any] = {"code": code, "message": message}
    if data is not None:
        err["data"] = data
    return {"jsonrpc": "2.0", "id": req_id, "error": err}


def event_notification(session_id: Optional[str], kind: str, data: Any) -> Dict[str, Any]:
    """A server-pushed event (no ``id``: notifications expect no reply)."""
    return {
        "jsonrpc": "2.0",
        "method": "event",
        "params": {"session": session_id, "type": kind, "data": data},
    }


def parse_request(line: bytes) -> Tuple[Optional[Dict[str, Any]], Optional[str]]:
    """Decode one request line; returns ``(request, problem)`` with
    exactly one side set."""
    try:
        obj = json.loads(line.decode("utf-8", errors="replace"))
    except (ValueError, UnicodeError) as exc:
        return None, f"parse error: {exc}"
    if not isinstance(obj, dict):
        return None, "invalid request: not an object"
    method = obj.get("method")
    if not isinstance(method, str) or not method:
        return None, "invalid request: missing method"
    params = obj.get("params", {})
    if params is None:
        params = {}
    if not isinstance(params, dict):
        return None, "invalid request: params must be an object"
    obj["params"] = params
    return obj, None


def sniff_protocol(first_byte: bytes) -> str:
    """Classify a connection by its first byte: ``jsonrpc`` / ``dap`` /
    ``http`` (anything unrecognisable is treated as JSON-RPC so the
    client at least gets a parse error back)."""
    if first_byte == b"C":
        return "dap"
    if first_byte == b"G":
        return "http"
    return "jsonrpc"


# ------------------------------------------------------------- DAP framing


def encode_dap(obj: Dict[str, Any]) -> bytes:
    body = json.dumps(obj, separators=(",", ":"), sort_keys=True).encode()
    return f"Content-Length: {len(body)}\r\n\r\n".encode() + body


async def read_dap_message(reader, prefix: bytes = b"") -> Optional[Dict[str, Any]]:
    """Read one Content-Length framed DAP message; None at EOF.

    ``prefix`` replays bytes already consumed by the protocol sniffer.
    """
    header = bytearray(prefix)
    while b"\r\n\r\n" not in header:
        chunk = await reader.read(1)
        if not chunk:
            return None
        header.extend(chunk)
        if len(header) > 8192:
            return None
    head, _, rest = bytes(header).partition(b"\r\n\r\n")
    length = None
    for line in head.split(b"\r\n"):
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            try:
                length = int(value.strip())
            except ValueError:
                return None
    if length is None or length < 0 or length > MAX_LINE_BYTES:
        return None
    body = bytearray(rest)
    while len(body) < length:
        chunk = await reader.read(length - len(body))
        if not chunk:
            return None
        body.extend(chunk)
    try:
        obj = json.loads(bytes(body[:length]).decode("utf-8"))
    except (ValueError, UnicodeError):
        return None
    return obj if isinstance(obj, dict) else None
