"""The asyncio debug daemon: one port, many sessions, three protocols.

Connections are classified by their first byte (:func:`sniff_protocol`):
JSON-RPC lines, DAP frames, or an HTTP GET for OpenMetrics scrapes.
Blocking debugger work runs on each session's single-thread executor via
``run_in_executor``, so the event loop never stalls behind a ``continue``
and commands against one session are strictly ordered while sessions
proceed in parallel.

Structure of a JSON-RPC exchange (one JSON object per line)::

    -> {"jsonrpc":"2.0","id":1,"method":"create","params":{"program":"rle"}}
    <- {"jsonrpc":"2.0","id":1,"result":{"session":"s1",...}}
    -> {"jsonrpc":"2.0","id":2,"method":"execute",
        "params":{"session":"s1","command":"break pack.c:7"}}
    <- {"jsonrpc":"2.0","id":2,"result":{"ok":true,"lines":[...],...}}

Server-pushed events (after ``subscribe``) are id-less notifications::

    <- {"jsonrpc":"2.0","method":"event",
        "params":{"session":"s1","type":"stop","data":{...}}}

Robustness invariants, each covered by tests:

- one session's exception becomes an ``error`` response; the daemon and
  sibling sessions are untouched;
- quotas surface as code-1002 errors with the quota name in ``data``;
- idle sessions are reaped; SIGTERM drains gracefully (stop accepting,
  finish in-flight commands, notify subscribers, exit).
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
import time
from typing import Any, Dict, List, Optional, Set

from ..errors import ReproError
from . import protocol as proto
from .sessions import QuotaExceeded, SessionQuota, SessionRegistry

REAP_CHECK_S = 5.0


class Connection:
    """One live client connection (any protocol)."""

    def __init__(self, daemon: "DebugDaemon", reader, writer):
        self.daemon = daemon
        self.reader = reader
        self.writer = writer
        #: session id -> handle of our fan-out subscription
        self.subscriptions: Dict[str, int] = {}
        #: sessions this connection is attached to (for detach-on-close)
        self.attached: Set[str] = set()
        self.outbox: "asyncio.Queue[bytes]" = asyncio.Queue()
        self._writer_task: Optional[asyncio.Task] = None
        self._closed = False

    def start_writer(self) -> None:
        self._writer_task = asyncio.get_running_loop().create_task(self._drain())

    async def _drain(self) -> None:
        try:
            while True:
                data = await self.outbox.get()
                self.writer.write(data)
                await self.writer.drain()
        except (asyncio.CancelledError, ConnectionError, OSError):
            pass

    def push(self, data: bytes) -> None:
        """Thread-safe enqueue (fan-out callbacks run on kernel threads)."""
        self.daemon.loop.call_soon_threadsafe(self.outbox.put_nowait, data)

    def push_local(self, data: bytes) -> None:
        """Enqueue from the event loop thread."""
        self.outbox.put_nowait(data)

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for sid, sub in list(self.subscriptions.items()):
            try:
                self.daemon.registry.get(sid).unsubscribe(sub)
            except KeyError:
                pass
        self.subscriptions.clear()
        for sid in list(self.attached):
            try:
                self.daemon.registry.get(sid).attached -= 1
            except KeyError:
                pass
        self.attached.clear()
        try:
            if self._writer_task is not None:
                # give queued output a bounded chance to flush
                for _ in range(100):
                    if self.outbox.empty():
                        break
                    await asyncio.sleep(0.01)
                self._writer_task.cancel()
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            # loop teardown raced our flush: finish closing quietly
            self.writer.close()


class DebugDaemon:
    """The server: registry + listeners + reaper + drain logic."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[SessionRegistry] = None,
        idle_timeout: Optional[float] = None,
        max_sessions: int = 256,
    ):
        self.host = host
        self.port = port
        self.registry = registry or SessionRegistry(max_sessions=max_sessions)
        self.idle_timeout = idle_timeout
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self.server: Optional[asyncio.AbstractServer] = None
        self.connections: Set[Connection] = set()
        self.draining = False
        self.started = time.monotonic()
        self.requests_handled = 0
        self.protocol_counts: Dict[str, int] = {"jsonrpc": 0, "dap": 0, "http": 0}
        self._reaper_task: Optional[asyncio.Task] = None
        self._stopped = asyncio.Event()

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        self.loop = asyncio.get_running_loop()
        self.server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self.server.sockets[0].getsockname()[1]
        if self.idle_timeout is not None:
            self._reaper_task = self.loop.create_task(self._reap_loop())

    async def serve_forever(self) -> None:
        assert self.server is not None
        await self._stopped.wait()

    async def _reap_loop(self) -> None:
        try:
            while True:
                await asyncio.sleep(min(REAP_CHECK_S, self.idle_timeout))
                self.registry.reap_idle(self.idle_timeout)
        except asyncio.CancelledError:
            pass

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, tell subscribers, wait for
        in-flight session work, close everything."""
        if self.draining:
            return
        self.draining = True
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()
        if self._reaper_task is not None:
            self._reaper_task.cancel()
        notice = proto.encode_line(
            proto.event_notification(None, "shutting-down", {"reason": "drain"})
        )
        for conn in list(self.connections):
            conn.push_local(notice)
        # in-flight executor work finishes; new requests get 1004
        for desc in self.registry.list():
            try:
                handle = self.registry.get(desc["id"])
            except KeyError:
                continue
            handle.executor.shutdown(wait=True)
        for conn in list(self.connections):
            await conn.close()
        self.registry.close_all()
        self._stopped.set()

    # ---------------------------------------------------------- connections

    async def _handle_connection(self, reader, writer) -> None:
        first = await reader.read(1)
        if not first:
            writer.close()
            return
        kind = proto.sniff_protocol(first)
        self.protocol_counts[kind] += 1
        conn = Connection(self, reader, writer)
        self.connections.add(conn)
        conn.start_writer()
        try:
            if kind == "http":
                await self._serve_http(conn, first)
            elif kind == "dap":
                from .dap import DapBridge

                await DapBridge(self, conn).serve(first)
            else:
                await self._serve_jsonrpc(conn, first)
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass
        finally:
            self.connections.discard(conn)
            await conn.close()

    # ------------------------------------------------------------- JSON-RPC

    async def _serve_jsonrpc(self, conn: Connection, first: bytes) -> None:
        buffer = first
        while True:
            try:
                rest = await conn.reader.readuntil(b"\n")
            except asyncio.IncompleteReadError:
                return
            except asyncio.LimitOverrunError:
                conn.push_local(
                    proto.encode_line(
                        proto.error_response(None, proto.ERR_PARSE, "line too long")
                    )
                )
                return
            line, buffer = buffer + rest, b""
            if not line.strip():
                continue
            response = await self._dispatch_line(conn, line)
            if response is not None:
                conn.push_local(proto.encode_line(response))

    async def _dispatch_line(
        self, conn: Connection, line: bytes
    ) -> Optional[Dict[str, Any]]:
        request, problem = proto.parse_request(line)
        if request is None:
            return proto.error_response(None, proto.ERR_PARSE, problem or "bad request")
        req_id = request.get("id")
        method = request["method"]
        params = request["params"]
        self.requests_handled += 1
        try:
            result = await self._call_method(conn, method, params)
        except QuotaExceeded as exc:
            return proto.error_response(req_id, proto.ERR_QUOTA, str(exc), exc.to_data())
        except KeyError as exc:
            return proto.error_response(
                req_id, proto.ERR_NO_SESSION, f"no such session: {exc.args[0]}"
            )
        except _MethodNotFound:
            return proto.error_response(
                req_id, proto.ERR_METHOD_NOT_FOUND, f"unknown method {method!r}"
            )
        except _InvalidParams as exc:
            return proto.error_response(req_id, proto.ERR_INVALID_PARAMS, str(exc))
        except _ShuttingDown:
            return proto.error_response(
                req_id, proto.ERR_SHUTTING_DOWN, "daemon is draining"
            )
        except ReproError as exc:
            # a session-level failure: structured error, daemon unharmed
            return proto.error_response(req_id, proto.ERR_SESSION_FAILED, str(exc))
        except Exception as exc:  # noqa: BLE001 - isolation boundary
            return proto.error_response(
                req_id,
                proto.ERR_INTERNAL,
                f"internal error: {type(exc).__name__}: {exc}",
            )
        if req_id is None:
            return None  # notification: no reply
        return proto.response(req_id, result)

    async def _call_method(
        self, conn: Connection, method: str, params: Dict[str, Any]
    ) -> Any:
        if self.draining and method not in ("ping", "sessions", "shutdown"):
            raise _ShuttingDown()
        handler = getattr(self, f"_rpc_{method.replace('-', '_')}", None)
        if handler is None:
            raise _MethodNotFound()
        return await handler(conn, params)

    def _handle(self, params: Dict[str, Any]):
        sid = params.get("session")
        if not isinstance(sid, str):
            raise _InvalidParams("missing session id")
        return self.registry.get(sid)

    async def _on_executor(self, handle, fn, *args):
        assert self.loop is not None
        return await self.loop.run_in_executor(handle.executor, fn, *args)

    # -- daemon-level ------------------------------------------------------

    async def _rpc_ping(self, conn, params):
        return {
            "pong": True,
            "sessions": len(self.registry),
            "uptime_s": round(time.monotonic() - self.started, 3),
        }

    async def _rpc_shutdown(self, conn, params):
        assert self.loop is not None
        self.loop.create_task(self.shutdown())
        return {"draining": True}

    async def _rpc_sessions(self, conn, params):
        return {"sessions": self.registry.list()}

    # -- session lifecycle -------------------------------------------------

    async def _rpc_create(self, conn, params):
        program = params.get("program")
        if not isinstance(program, str):
            raise _InvalidParams("missing program")
        quota = SessionQuota.from_params(params.get("quota"))
        values = params.get("values")
        if values is not None and (
            not isinstance(values, list) or not all(isinstance(v, int) for v in values)
        ):
            raise _InvalidParams("values must be a list of integers")
        # machine elaboration is CPU work: keep it off the event loop
        assert self.loop is not None
        handle = await self.loop.run_in_executor(
            None,
            lambda: self.registry.create(
                program,
                bug=params.get("bug"),
                tier=params.get("tier", "auto"),
                values=values,
                sharded=bool(params.get("sharded", False)),
                shards=int(params.get("shards", 2)),
                quota=quota,
                name=params.get("name"),
            ),
        )
        return {"session": handle.id, **handle.describe()}

    async def _rpc_attach(self, conn, params):
        handle = self._handle(params)
        if params["session"] not in conn.attached:
            handle.attached += 1
            conn.attached.add(params["session"])
        handle.touch()
        return handle.describe()

    async def _rpc_detach(self, conn, params):
        handle = self._handle(params)
        if params["session"] in conn.attached:
            handle.attached -= 1
            conn.attached.discard(params["session"])
        sub = conn.subscriptions.pop(params["session"], None)
        if sub is not None:
            handle.unsubscribe(sub)
        return {"detached": True}

    async def _rpc_destroy(self, conn, params):
        sid = params.get("session")
        if not isinstance(sid, str):
            raise _InvalidParams("missing session id")
        conn.subscriptions.pop(sid, None)
        conn.attached.discard(sid)
        self.registry.destroy(sid)
        return {"destroyed": sid}

    # -- events ------------------------------------------------------------

    async def _rpc_subscribe(self, conn, params):
        handle = self._handle(params)
        sid = params["session"]
        wanted = params.get("events")
        if wanted is not None and not isinstance(wanted, list):
            raise _InvalidParams("events must be a list")
        accept = set(wanted) if wanted else None

        def forward(event: Dict[str, Any]) -> None:
            if accept is not None and event["type"] not in accept:
                return
            conn.push(
                proto.encode_line(
                    proto.event_notification(sid, event["type"], event["data"])
                )
            )

        old = conn.subscriptions.get(sid)
        if old is not None:
            handle.unsubscribe(old)
        conn.subscriptions[sid] = handle.subscribe(forward)
        return {"subscribed": sid, "events": sorted(accept) if accept else "all"}

    async def _rpc_unsubscribe(self, conn, params):
        handle = self._handle(params)
        sub = conn.subscriptions.pop(params["session"], None)
        if sub is not None:
            handle.unsubscribe(sub)
        return {"unsubscribed": params["session"]}

    # -- command execution -------------------------------------------------

    async def _rpc_execute(self, conn, params):
        handle = self._handle(params)
        command = params.get("command")
        if not isinstance(command, str):
            raise _InvalidParams("missing command")
        result = await self._on_executor(handle, handle.execute, command)
        return result.to_dict()

    async def _rpc_script(self, conn, params):
        handle = self._handle(params)
        commands = params.get("commands")
        if not isinstance(commands, list) or not all(
            isinstance(c, str) for c in commands
        ):
            raise _InvalidParams("commands must be a list of strings")

        def run_all():
            return [handle.execute(c).to_dict() for c in commands]

        return {"results": await self._on_executor(handle, run_all)}

    async def _rpc_interrupt(self, conn, params):
        # deliberately NOT routed through the executor: the executor is
        # busy inside the very command this is meant to stop
        handle = self._handle(params)
        handle.interrupt()
        return {"interrupted": params["session"]}

    async def _rpc_run_sharded(self, conn, params):
        handle = self._handle(params)
        return await self._on_executor(handle, handle.run_sharded)

    # -- structured inspection ---------------------------------------------

    async def _rpc_state(self, conn, params):
        handle = self._handle(params)
        state = await self._on_executor(handle, handle.service.state)
        state["serve"] = handle.describe()
        return state

    async def _rpc_actors(self, conn, params):
        handle = self._handle(params)
        return {"actors": await self._on_executor(handle, handle.service.actors)}

    async def _rpc_frames(self, conn, params):
        handle = self._handle(params)
        actor = params.get("actor")
        return {
            "frames": await self._on_executor(handle, handle.service.frames, actor)
        }

    async def _rpc_variables(self, conn, params):
        handle = self._handle(params)
        return {
            "variables": await self._on_executor(
                handle,
                handle.service.variables,
                params.get("actor"),
                int(params.get("frame", 0)),
            )
        }

    async def _rpc_evaluate(self, conn, params):
        handle = self._handle(params)
        expr = params.get("expr")
        if not isinstance(expr, str):
            raise _InvalidParams("missing expr")
        return await self._on_executor(handle, handle.service.evaluate, expr)

    async def _rpc_breakpoints(self, conn, params):
        handle = self._handle(params)
        return {
            "breakpoints": await self._on_executor(handle, handle.service.breakpoints)
        }

    async def _rpc_metrics(self, conn, params):
        handle = self._handle(params)
        return {"openmetrics": await self._on_executor(handle, handle.metrics_text)}

    async def _rpc_flight(self, conn, params):
        handle = self._handle(params)
        return {"bundle": await self._on_executor(handle, handle.flight_bundle)}

    # ----------------------------------------------------------------- HTTP

    async def _serve_http(self, conn: Connection, first: bytes) -> None:
        """One-shot scrape endpoint:

        - ``GET /metrics`` — daemon-level exposition;
        - ``GET /sessions/<id>/metrics`` — that session's exposition.
        """
        try:
            request_line = first + await conn.reader.readuntil(b"\n")
        except asyncio.IncompleteReadError:
            return
        # drain (and ignore) the remaining request headers
        try:
            while True:
                line = await asyncio.wait_for(conn.reader.readuntil(b"\n"), timeout=2.0)
                if line in (b"\r\n", b"\n"):
                    break
        except (asyncio.IncompleteReadError, asyncio.TimeoutError):
            pass
        parts = request_line.decode("latin-1").split()
        path = parts[1] if len(parts) >= 2 else "/"
        status, body = await self._http_response(path)
        ctype = (
            "application/openmetrics-text; version=1.0.0; charset=utf-8"
            if status == 200
            else "text/plain; charset=utf-8"
        )
        payload = body.encode()
        head = (
            f"HTTP/1.1 {status} {'OK' if status == 200 else 'Not Found'}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        )
        conn.push_local(head.encode() + payload)
        # let the writer drain before the connection teardown in _handle_connection
        while not conn.outbox.empty():
            await asyncio.sleep(0)

    async def _http_response(self, path: str):
        if path == "/metrics":
            return 200, self.daemon_metrics_text()
        if path.startswith("/sessions/") and path.endswith("/metrics"):
            sid = path[len("/sessions/") : -len("/metrics")].strip("/")
            try:
                handle = self.registry.get(sid)
            except KeyError:
                return 404, f"no such session: {sid}\n"
            text = await self._on_executor(handle, handle.metrics_text)
            return 200, text
        return 404, "try /metrics or /sessions/<id>/metrics\n"

    def daemon_metrics_text(self) -> str:
        lines = [
            "# TYPE repro_serve_sessions gauge",
            "# HELP repro_serve_sessions Sessions currently hosted.",
            f"repro_serve_sessions {len(self.registry)}",
            "# TYPE repro_serve_sessions_created counter",
            "# HELP repro_serve_sessions_created Sessions created since boot.",
            f"repro_serve_sessions_created_total {self.registry.created_total}",
            "# TYPE repro_serve_sessions_reaped counter",
            "# HELP repro_serve_sessions_reaped Idle sessions reaped.",
            f"repro_serve_sessions_reaped_total {self.registry.reaped_total}",
            "# TYPE repro_serve_connections gauge",
            "# HELP repro_serve_connections Open client connections.",
            f"repro_serve_connections {len(self.connections)}",
            "# TYPE repro_serve_requests counter",
            "# HELP repro_serve_requests JSON-RPC requests handled.",
            f"repro_serve_requests_total {self.requests_handled}",
        ]
        lines.append("# TYPE repro_serve_connections_by_protocol counter")
        lines.append("# HELP repro_serve_connections_by_protocol Connections accepted, by wire protocol.")
        for kind, count in sorted(self.protocol_counts.items()):
            lines.append(f'repro_serve_connections_by_protocol_total{{protocol="{kind}"}} {count}')
        lines.append("# EOF")
        return "\n".join(lines) + "\n"


class _MethodNotFound(Exception):
    pass


class _InvalidParams(Exception):
    pass


class _ShuttingDown(Exception):
    pass


# ------------------------------------------------------------- entry point


async def _amain(args) -> int:
    daemon = DebugDaemon(
        host=args.host,
        port=args.port,
        idle_timeout=args.idle_timeout,
        max_sessions=args.max_sessions,
    )
    await daemon.start()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, lambda: loop.create_task(daemon.shutdown()))
        except NotImplementedError:  # pragma: no cover - non-unix
            pass
    print(f"repro debug daemon listening on {daemon.host}:{daemon.port}", flush=True)
    await daemon.serve_forever()
    print("repro debug daemon drained", flush=True)
    return 0


def serve_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="debug-server daemon: concurrent wire-attached sessions "
        "(line JSON-RPC + DAP + OpenMetrics scrape on one port)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9595,
                        help="listen port (0 picks a free one; default 9595)")
    parser.add_argument("--idle-timeout", type=float, default=None, metavar="S",
                        help="reap sessions idle longer than S seconds")
    parser.add_argument("--max-sessions", type=int, default=256)
    args = parser.parse_args(argv)
    try:
        return asyncio.run(_amain(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(serve_main())
