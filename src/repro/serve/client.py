"""A small blocking client for the daemon's JSON-RPC protocol.

Used by the test suite, the CI smoke script, the load test and the
serve bench — and usable as a library::

    from repro.serve.client import DebugClient

    with DebugClient("127.0.0.1", 9595) as dbg:
        sid = dbg.create("rle")["session"]
        dbg.subscribe(sid)
        dbg.execute(sid, "break pack.c:7")
        result = dbg.execute(sid, "run")
        print(result["stop"]["kind"], result["stop"]["actor"])

The client is synchronous and single-threaded by design: requests are
matched to responses by id, and server-pushed event notifications that
arrive interleaved with responses are buffered (``next_event`` /
``drain_events`` read them out).
"""

from __future__ import annotations

import json
import socket
from collections import deque
from typing import Any, Dict, List, Optional


class RpcError(Exception):
    """A JSON-RPC error response, with the structured fields kept."""

    def __init__(self, code: int, message: str, data: Optional[Dict[str, Any]] = None):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.data = data or {}


class DebugClient:
    """One JSON-RPC connection to a debug daemon."""

    def __init__(self, host: str = "127.0.0.1", port: int = 9595,
                 timeout: float = 30.0):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.file = self.sock.makefile("rb")
        self.events: deque = deque()
        self._next_id = 1

    # ------------------------------------------------------------- plumbing

    def close(self) -> None:
        try:
            self.file.close()
        finally:
            self.sock.close()

    def __enter__(self) -> "DebugClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def call(self, method: str, **params: Any) -> Any:
        """One request/response round trip; pushed events seen on the
        way are buffered, an error response raises :class:`RpcError`."""
        req_id = self._next_id
        self._next_id += 1
        payload = {"jsonrpc": "2.0", "id": req_id, "method": method,
                   "params": params}
        self.sock.sendall(json.dumps(payload).encode() + b"\n")
        while True:
            message = self._read_message()
            if message.get("id") == req_id:
                if "error" in message:
                    err = message["error"]
                    raise RpcError(err.get("code", -1), err.get("message", ""),
                                   err.get("data"))
                return message.get("result")
            if message.get("method") == "event":
                self.events.append(message["params"])
            # responses to other ids (pipelined callers) are dropped:
            # this client issues one request at a time

    def notify(self, method: str, **params: Any) -> None:
        """Fire-and-forget notification (no id, no response)."""
        payload = {"jsonrpc": "2.0", "method": method, "params": params}
        self.sock.sendall(json.dumps(payload).encode() + b"\n")

    def _read_message(self) -> Dict[str, Any]:
        line = self.file.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        return json.loads(line.decode())

    # --------------------------------------------------------------- events

    def next_event(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """The next pushed event, waiting for one if the buffer is empty."""
        if self.events:
            return self.events.popleft()
        old = self.sock.gettimeout()
        if timeout is not None:
            self.sock.settimeout(timeout)
        try:
            while True:
                message = self._read_message()
                if message.get("method") == "event":
                    return message["params"]
        finally:
            self.sock.settimeout(old)

    def drain_events(self) -> List[Dict[str, Any]]:
        """Buffered events only (no blocking read)."""
        out = list(self.events)
        self.events.clear()
        return out

    # --------------------------------------------------------- conveniences

    def ping(self) -> Dict[str, Any]:
        return self.call("ping")

    def create(self, program: str, **opts: Any) -> Dict[str, Any]:
        return self.call("create", program=program, **opts)

    def attach(self, session: str) -> Dict[str, Any]:
        return self.call("attach", session=session)

    def detach(self, session: str) -> Dict[str, Any]:
        return self.call("detach", session=session)

    def destroy(self, session: str) -> Dict[str, Any]:
        return self.call("destroy", session=session)

    def sessions(self) -> List[Dict[str, Any]]:
        return self.call("sessions")["sessions"]

    def execute(self, session: str, command: str) -> Dict[str, Any]:
        return self.call("execute", session=session, command=command)

    def script(self, session: str, commands: List[str]) -> List[Dict[str, Any]]:
        return self.call("script", session=session, commands=commands)["results"]

    def subscribe(self, session: str,
                  events: Optional[List[str]] = None) -> Dict[str, Any]:
        if events is None:
            return self.call("subscribe", session=session)
        return self.call("subscribe", session=session, events=events)

    def interrupt(self, session: str) -> Dict[str, Any]:
        return self.call("interrupt", session=session)

    def state(self, session: str) -> Dict[str, Any]:
        return self.call("state", session=session)

    def actors(self, session: str) -> List[Dict[str, Any]]:
        return self.call("actors", session=session)["actors"]

    def frames(self, session: str, actor: Optional[str] = None) -> List[Dict[str, Any]]:
        return self.call("frames", session=session, actor=actor)["frames"]

    def variables(self, session: str, actor: Optional[str] = None,
                  frame: int = 0) -> List[Dict[str, Any]]:
        return self.call("variables", session=session, actor=actor,
                         frame=frame)["variables"]

    def evaluate(self, session: str, expr: str) -> Dict[str, Any]:
        return self.call("evaluate", session=session, expr=expr)

    def breakpoints(self, session: str) -> List[Dict[str, Any]]:
        return self.call("breakpoints", session=session)["breakpoints"]

    def metrics(self, session: str) -> str:
        return self.call("metrics", session=session)["openmetrics"]

    def flight(self, session: str) -> Dict[str, Any]:
        return self.call("flight", session=session)["bundle"]

    def run_sharded(self, session: str) -> Dict[str, Any]:
        return self.call("run_sharded", session=session)

    def shutdown(self) -> Dict[str, Any]:
        return self.call("shutdown")


def scrape_metrics(host: str, port: int, path: str = "/metrics",
                   timeout: float = 10.0) -> str:
    """Plain HTTP GET against the daemon's scrape endpoint; returns the
    OpenMetrics body (raises on non-200)."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(f"GET {path} HTTP/1.1\r\nHost: {host}\r\n\r\n".encode())
        chunks = []
        while True:
            data = sock.recv(65536)
            if not data:
                break
            chunks.append(data)
    raw = b"".join(chunks)
    head, _, body = raw.partition(b"\r\n\r\n")
    status = head.split(b"\r\n", 1)[0].split()
    if len(status) < 2 or status[1] != b"200":
        raise ConnectionError(f"scrape failed: {head.decode('latin-1', 'replace')}")
    return body.decode()
