"""Run the debug daemon inside another process.

`python -m repro serve` owns the process with ``asyncio.run``; embedders
(the test suite, the serve bench, applications that want a debug port on
the side) instead want the daemon on a background thread with its own
event loop, plus a blocking start/stop surface::

    from repro.serve import DaemonThread

    with DaemonThread() as d:          # port 0: the OS picks one
        client = d.connect()
        sid = client.create("rle")["session"]
        ...
    # leaving the block drains the daemon gracefully

The thread mirrors ``asyncio.run``'s teardown (cancel and await
straggling tasks before closing the loop), so embedding leaks nothing.
"""

from __future__ import annotations

import asyncio
import threading

from .daemon import DebugDaemon


class DaemonThread:
    """One live daemon on a dedicated background-thread event loop."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, **kwargs):
        self.loop = asyncio.new_event_loop()
        self.daemon = DebugDaemon(host=host, port=port, **kwargs)
        self._started = threading.Event()
        self.thread = threading.Thread(
            target=self._run, name="repro-serve-daemon", daemon=True
        )
        self.thread.start()
        if not self._started.wait(20):
            raise RuntimeError("debug daemon failed to start")

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.daemon.start())
        self._started.set()
        self.loop.run_until_complete(self.daemon.serve_forever())
        # mirror asyncio.run's teardown: cancel and await stragglers
        # (connection writer tasks) before closing the loop
        pending = asyncio.all_tasks(self.loop)
        for task in pending:
            task.cancel()
        if pending:
            self.loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )
        self.loop.close()

    @property
    def port(self) -> int:
        return self.daemon.port

    @property
    def host(self) -> str:
        return self.daemon.host

    def connect(self, timeout: float = 30.0):
        """A blocking :class:`~repro.serve.client.DebugClient` bound to
        this daemon."""
        from .client import DebugClient

        return DebugClient(self.host, self.port, timeout=timeout)

    def stop(self) -> None:
        """Graceful drain; idempotent, safe after an in-band shutdown."""
        if self.thread.is_alive() and not self.daemon.draining:
            try:
                asyncio.run_coroutine_threadsafe(
                    self.daemon.shutdown(), self.loop
                ).result(30)
            except Exception:
                pass
        self.thread.join(20)

    def __enter__(self) -> "DaemonThread":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
