"""A thin Debug Adapter Protocol bridge over the daemon's sessions.

Enough of DAP for a stock front-end (VS Code with a trivial launch
config) to drive a dataflow machine: initialize / launch /
setBreakpoints / setFunctionBreakpoints / configurationDone / threads /
stackTrace / scopes / variables / continue / next / stepIn / pause /
evaluate / disconnect — plus the reverse-debugging pair the paper's
record-replay machinery makes possible: the standard ``reverseContinue``
request and a custom ``replayTo`` request (``{"target": "event 10"}``).

Mapping choices (the bridge is deliberately thin):

- *threads are actors* — each dataflow actor is presented as one DAP
  thread (thread ids are 1-based indexes into the sorted qualname list);
- *frameId = threadId * 1000 + frameIndex*, so scopes/variables requests
  recover the actor and frame without server-side handle tables;
- a stop anywhere is reported as a single ``stopped`` event with the
  stopping actor's thread id (``allThreadsStopped``: the kernel is
  cooperative, a stop parks the whole machine).
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional

from . import protocol as proto
from .sessions import SessionQuota

#: StopEvent.kind.value -> DAP "stopped" reason
_STOP_REASONS = {
    "breakpoint": "breakpoint",
    "function-breakpoint": "function breakpoint",
    "api-breakpoint": "breakpoint",
    "isa-breakpoint": "instruction breakpoint",
    "watchpoint": "data breakpoint",
    "register-watch": "data breakpoint",
    "step": "step",
    "paused": "pause",
    "violation": "exception",
    "deadlock": "exception",
    "error": "exception",
    "replay": "goto",
}


class DapBridge:
    """One DAP client connection bound to (at most) one session."""

    def __init__(self, daemon, conn):
        self.daemon = daemon
        self.conn = conn
        self.handle = None  # SessionHandle once launched
        self._seq = 0
        self._threads: List[str] = []  # index+1 == DAP threadId
        self._configured = asyncio.Event()
        self._terminated = False

    # ------------------------------------------------------------- plumbing

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _send(self, obj: Dict[str, Any]) -> None:
        obj["seq"] = self._next_seq()
        self.conn.push_local(proto.encode_dap(obj))

    def _send_threadsafe(self, obj: Dict[str, Any]) -> None:
        obj["seq"] = self._next_seq()
        self.conn.push(proto.encode_dap(obj))

    def _respond(self, request: Dict[str, Any], body: Any = None,
                 success: bool = True, message: Optional[str] = None) -> None:
        resp: Dict[str, Any] = {
            "type": "response",
            "request_seq": request.get("seq", 0),
            "command": request.get("command", ""),
            "success": success,
        }
        if body is not None:
            resp["body"] = body
        if message is not None:
            resp["message"] = message
        self._send(resp)

    def _event(self, name: str, body: Optional[Dict[str, Any]] = None,
               threadsafe: bool = False) -> None:
        obj: Dict[str, Any] = {"type": "event", "event": name}
        if body is not None:
            obj["body"] = body
        (self._send_threadsafe if threadsafe else self._send)(obj)

    # ------------------------------------------------------------ main loop

    async def serve(self, first: bytes) -> None:
        message = await proto.read_dap_message(self.conn.reader, prefix=first)
        while message is not None:
            if message.get("type") == "request":
                try:
                    await self._handle_request(message)
                except Exception as exc:  # noqa: BLE001 - isolation boundary
                    self._respond(message, success=False,
                                  message=f"{type(exc).__name__}: {exc}")
            if self._terminated:
                return
            message = await proto.read_dap_message(self.conn.reader)

    async def _handle_request(self, request: Dict[str, Any]) -> None:
        command = request.get("command", "")
        handler = getattr(self, f"_req_{command}", None)
        if handler is None:
            self._respond(request, success=False,
                          message=f"unsupported request {command!r}")
            return
        await handler(request, request.get("arguments") or {})

    async def _on_executor(self, fn, *args):
        return await self.daemon.loop.run_in_executor(self.handle.executor, fn, *args)

    def _spawn_run(self, command: str) -> None:
        """Run a (possibly long) run-control command WITHOUT blocking the
        DAP read loop — a ``pause`` request must stay deliverable while
        the machine executes.  The resulting stop reaches the client as
        an asynchronous ``stopped`` event via the fan-out."""

        async def runner():
            try:
                await self._on_executor(self.handle.execute, command)
            except Exception:
                pass  # surfaced through events / later requests

        self.daemon.loop.create_task(runner())

    # ------------------------------------------------------------- requests

    async def _req_initialize(self, request, args) -> None:
        self._respond(request, body={
            "supportsConfigurationDoneRequest": True,
            "supportsFunctionBreakpoints": True,
            "supportsConditionalBreakpoints": True,
            "supportsStepBack": True,  # reverseContinue via the journal
            "supportsEvaluateForHovers": True,
            "supportsTerminateRequest": True,
        })
        self._event("initialized")

    async def _req_launch(self, request, args) -> None:
        program = args.get("program", "rle")
        quota = SessionQuota.from_params(args.get("quota"))
        handle = await self.daemon.loop.run_in_executor(
            None,
            lambda: self.daemon.registry.create(
                program,
                bug=args.get("bug"),
                tier=args.get("tier", "auto"),
                values=args.get("values"),
                quota=quota,
                name=args.get("name"),
            ),
        )
        self.handle = handle
        self.conn.attached.add(handle.id)
        handle.attached += 1
        # pushed stops (from any thread) become DAP "stopped" events; the
        # subscription is dropped with the connection on disconnect
        sub = handle.subscribe(self._forward_stop)
        self.conn.subscriptions[handle.id] = sub
        self._respond(request, body={"session": handle.id})

    def _forward_stop(self, event: Dict[str, Any]) -> None:
        if event["type"] not in ("stop", "violation"):
            return
        data = event["data"]
        try:
            # safe here: this callback runs on the thread that executed
            # the command, so the service's RLock is reentrant for us,
            # and the machine is parked at the stop
            self._threads = [a["qualname"] for a in self.handle.service.actors()]
        except Exception:
            pass
        if data.get("kind") == "exited":
            self._event("terminated", threadsafe=True)
            self._event("exited", {"exitCode": 0}, threadsafe=True)
            return
        self._event(
            "stopped",
            {
                "reason": _STOP_REASONS.get(data.get("kind"), "pause"),
                "description": data.get("message", ""),
                "threadId": self._thread_id_for(data.get("actor")),
                "allThreadsStopped": True,
                "text": "\n".join(data.get("banner", [])),
            },
            threadsafe=True,
        )

    def _thread_id_for(self, qualname: Optional[str]) -> int:
        if qualname and qualname in self._threads:
            return self._threads.index(qualname) + 1
        return 1

    async def _req_setBreakpoints(self, request, args) -> None:
        source = args.get("source") or {}
        path = source.get("path") or source.get("name") or ""
        # the machine's filenames are basenames of Filter-C units
        filename = path.replace("\\", "/").rsplit("/", 1)[-1]
        wanted = args.get("breakpoints") or []
        # replace this source's breakpoints wholesale (DAP semantics)
        existing = await self._on_executor(self.handle.service.breakpoints)
        for bp in existing:
            if bp["kind"] == "source" and bp["what"].startswith(f"{filename}:"):
                await self._on_executor(self.handle.execute, f"delete {bp['id']}")
        placed = []
        for spec in wanted:
            line = spec.get("line")
            command = f"break {filename}:{line}"
            if spec.get("condition"):
                command += f" if {spec['condition']}"
            result = await self._on_executor(self.handle.execute, command)
            placed.append({
                "verified": result.ok,
                "line": line,
                "message": result.error,
            })
        self._respond(request, body={"breakpoints": placed})

    async def _req_setFunctionBreakpoints(self, request, args) -> None:
        placed = []
        for spec in args.get("breakpoints") or []:
            result = await self._on_executor(
                self.handle.execute, f"break {spec.get('name', '')}"
            )
            placed.append({"verified": result.ok, "message": result.error})
        self._respond(request, body={"breakpoints": placed})

    async def _req_configurationDone(self, request, args) -> None:
        self._respond(request)
        # start the program; the resulting stop arrives via _forward_stop
        self._spawn_run("run")

    async def _req_threads(self, request, args) -> None:
        actors = await self._on_executor(self.handle.service.actors)
        self._threads = [a["qualname"] for a in actors]
        self._respond(request, body={
            "threads": [
                {"id": i + 1, "name": f"{a['qualname']} ({a['kind']})"}
                for i, a in enumerate(actors)
            ]
        })

    async def _req_stackTrace(self, request, args) -> None:
        thread_id = int(args.get("threadId", 1))
        qualname = self._qualname(thread_id)
        frames = await self._on_executor(self.handle.service.frames, qualname)
        self._respond(request, body={
            "stackFrames": [
                {
                    "id": thread_id * 1000 + f["index"],
                    "name": f["name"],
                    "source": {"name": f["filename"], "path": f["filename"]},
                    "line": f["line"],
                    "column": 1,
                }
                for f in frames
            ],
            "totalFrames": len(frames),
        })

    def _qualname(self, thread_id: int) -> Optional[str]:
        if 1 <= thread_id <= len(self._threads):
            return self._threads[thread_id - 1]
        return None

    async def _req_scopes(self, request, args) -> None:
        frame_id = int(args.get("frameId", 1000))
        self._respond(request, body={
            "scopes": [{
                "name": "Locals",
                "variablesReference": frame_id,
                "expensive": False,
            }]
        })

    async def _req_variables(self, request, args) -> None:
        ref = int(args.get("variablesReference", 1000))
        thread_id, frame_index = divmod(ref, 1000)
        qualname = self._qualname(thread_id)
        variables = await self._on_executor(
            self.handle.service.variables, qualname, frame_index
        )
        self._respond(request, body={
            "variables": [
                {
                    "name": v["name"],
                    "value": v["value"],
                    "type": v["type"],
                    "variablesReference": 0,
                }
                for v in variables
            ]
        })

    async def _req_continue(self, request, args) -> None:
        # respond first (DAP contract), then run; the stop arrives as an
        # asynchronous "stopped" event through the fan-out
        self._respond(request, body={"allThreadsContinued": True})
        self._spawn_run("continue")

    async def _req_next(self, request, args) -> None:
        self._respond(request)
        self._spawn_run("next")

    async def _req_stepIn(self, request, args) -> None:
        self._respond(request)
        self._spawn_run("step")

    async def _req_stepOut(self, request, args) -> None:
        self._respond(request)
        self._spawn_run("finish")

    async def _req_pause(self, request, args) -> None:
        self.handle.interrupt()  # async-safe; not via the busy executor
        self._respond(request)

    async def _req_evaluate(self, request, args) -> None:
        result = await self._on_executor(
            self.handle.service.evaluate, args.get("expression", "")
        )
        if result.get("ok"):
            self._respond(request, body={
                "result": result["value"],
                "type": result["type"],
                "variablesReference": 0,
            })
        else:
            self._respond(request, success=False, message=result.get("error"))

    async def _req_reverseContinue(self, request, args) -> None:
        self._respond(request)
        self._spawn_run("reverse-continue")

    async def _req_replayTo(self, request, args) -> None:
        target = args.get("target", "end")
        result = await self._on_executor(self.handle.execute, f"replay to {target}")
        self._respond(request, body=result.to_dict(), success=result.ok,
                      message=result.error)

    async def _req_terminate(self, request, args) -> None:
        self._respond(request)
        self._event("terminated")

    async def _req_disconnect(self, request, args) -> None:
        if self.handle is not None:
            try:
                self.daemon.registry.destroy(self.handle.id)
            except KeyError:
                pass
            self.conn.subscriptions.pop(self.handle.id, None)
            self.conn.attached.discard(self.handle.id)
        self._respond(request)
        self._terminated = True
