"""The debug-server daemon: many wire-attached debugging sessions.

The paper's workflow is one developer, one gdb prompt, one machine.
This package serves the same machinery over a socket so that editors,
scripted clients and dashboards attach *concurrently*: one asyncio
daemon hosts many independent debug sessions — each wrapping its own
scheduler, runtime, debugger, replay journal, telemetry and RV state —
and speaks two protocols on one port:

- **line-delimited JSON-RPC** (:mod:`repro.serve.protocol`): create,
  attach and drive sessions, run any debugger command, and subscribe to
  pushed stop / violation / flight-dump event streams;
- a thin **Debug Adapter Protocol** bridge (:mod:`repro.serve.dap`):
  initialize / launch / setBreakpoints / continue / stackTrace /
  variables / stepIn plus the time-travel extensions ``replayTo`` and
  ``reverseContinue``, so a stock DAP front-end (VS Code) can drive a
  dataflow machine;
- plain **HTTP GET** for per-session OpenMetrics scrapes
  (``/sessions/<id>/metrics``), so ordinary Prometheus tooling monitors
  live debug sessions.

Sessions are isolated (one session's failure never takes the daemon or a
sibling down), quota-bounded (events, journal bytes, command wall-clock)
and reaped when idle.  Start one with ``python -m repro serve`` and talk
to it with :class:`repro.serve.client.DebugClient`.
"""

from .builders import KNOWN_PROGRAMS, build_program_cli
from .client import DebugClient, RpcError
from .daemon import DebugDaemon
from .embed import DaemonThread
from .protocol import (
    ERR_INTERNAL,
    ERR_INVALID_PARAMS,
    ERR_METHOD_NOT_FOUND,
    ERR_NO_SESSION,
    ERR_PARSE,
    ERR_QUOTA,
    ERR_SESSION_FAILED,
    ERR_SHUTTING_DOWN,
)
from .sessions import QuotaExceeded, SessionQuota, SessionRegistry

__all__ = [
    "DaemonThread",
    "DebugClient",
    "DebugDaemon",
    "KNOWN_PROGRAMS",
    "QuotaExceeded",
    "RpcError",
    "SessionQuota",
    "SessionRegistry",
    "build_program_cli",
    "ERR_INTERNAL",
    "ERR_INVALID_PARAMS",
    "ERR_METHOD_NOT_FOUND",
    "ERR_NO_SESSION",
    "ERR_PARSE",
    "ERR_QUOTA",
    "ERR_SESSION_FAILED",
    "ERR_SHUTTING_DOWN",
]
