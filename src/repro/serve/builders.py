"""Session factories: one fresh, fully-wired machine per debug session.

Every wire session owns a complete stack — scheduler, platform, runtime,
debugger, CLI command table, replay journal, telemetry, flight recorder —
built from scratch, so two sessions over the same program share *nothing*
(no breakpoint registry, no capability bits, no journal).  The same
factories back the interactive ``python -m repro --demo`` path, so the
daemon serves exactly what the prompt serves.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import ReproError

#: programs a wire client may name in ``create`` (closed set: the daemon
#: never loads caller-supplied files)
KNOWN_PROGRAMS = ("amodule", "rle", "h264")


def apply_tier(session, tier: str) -> None:
    """Force every live interpreter onto ``tier`` ("auto" is the default:
    compiled closures with debugger-triggered deoptimization; "vm" is the
    register-machine bytecode tier; "slow" is the per-statement resumable
    tier, useful as a differential oracle)."""
    from ..cminus.interp import VALID_TIERS

    if tier not in VALID_TIERS:
        raise ReproError(
            f"unknown interpreter tier {tier!r} (choose from {', '.join(VALID_TIERS)})"
        )
    runtime = session.dbg.runtime
    runtime.config.interp_tier = tier
    for actor in runtime.all_actors():
        interp = getattr(actor, "interp", None)
        if interp is not None:
            interp.tier = tier


def build_program_cli(
    name: str,
    bug: Optional[str] = None,
    tier: str = "auto",
    values: Optional[List[int]] = None,
) -> Tuple[object, object]:
    """Build a fresh demo machine with an attached dataflow CLI.

    Returns ``(cli, sink)``; the session hangs off
    ``cli.dataflow_handler.session`` and time travel works out of the box
    (the replay builder re-runs the same factory).
    """
    from ..core import DataflowSession, install_dataflow_commands
    from ..dbg import CommandCli, Debugger

    if name == "amodule":
        from ..apps.amodule import build_demo

        def fresh():
            sched, platform, runtime, source, sink = build_demo()
            dbg = Debugger(sched, runtime)
            session = DataflowSession(dbg, stop_on_init=True)
            apply_tier(session, tier)
            return session, sink

    elif name == "rle":
        from ..apps.rle.app import build_rle_pipeline

        feed = list(values) if values else [5, 5, 5, 2, 7, 7]

        def fresh():
            sched, runtime, sink = build_rle_pipeline(feed)
            dbg = Debugger(sched, runtime)
            session = DataflowSession(dbg, stop_on_init=True)
            apply_tier(session, tier)
            return session, sink

    elif name == "h264":
        from ..apps.h264.app import build_decoder
        from ..apps.h264.bugs import BUG_VARIANTS

        variant = None
        if bug is not None:
            variant = BUG_VARIANTS.get(bug)
            if variant is None:
                raise ReproError(
                    f"unknown bug variant {bug!r} (choose from {', '.join(BUG_VARIANTS)})"
                )

        def fresh():
            if variant is not None:
                sched, platform, runtime, source, sink, mbs = variant.build()
            else:
                sched, platform, runtime, source, sink, mbs = build_decoder(n_mbs=8)
            dbg = Debugger(sched, runtime)
            session = DataflowSession(dbg, stop_on_init=True)
            apply_tier(session, tier)
            return session, sink

    else:
        raise ReproError(
            f"unknown program {name!r} (choose from {', '.join(KNOWN_PROGRAMS)})"
        )

    session, sink = fresh()
    cli = CommandCli(session.dbg)
    install_dataflow_commands(cli, session)
    session.cli = cli
    # the demos are self-contained, so time travel works out of the box:
    # replay rebuilds the whole application from the same factory
    session.replay.register_builder(lambda: fresh()[0])
    return cli, sink


def build_sharded_cli(
    name: str = "rle",
    n_shards: int = 2,
    tier: str = "auto",
    values: Optional[List[int]] = None,
    record: bool = True,
):
    """Build a :class:`~repro.core.shards.ShardedRun` with a dataflow CLI
    attached to shard 0 (the coordinator view: ``info shards`` and every
    inspection command work there; run control goes through the sharded
    engine, and a wire suspend pauses the whole fabric at a consistent
    barrier).

    Returns ``(cli, sharded_run)``.
    """
    from ..core import DataflowSession, install_dataflow_commands
    from ..core.shards import ShardedRun
    from ..dbg import CommandCli, Debugger
    from ..sim.sharding import HostSpec, partition_program

    if name == "rle":
        from ..apps.rle.app import RLE_HOSTS, build_rle_pipeline, build_rle_program

        feed = list(values) if values else [5, 5, 5, 2, 7, 7, 1, 1, 9]
        plan = partition_program(
            build_rle_program(feed), n_shards, hosts=[HostSpec(*h) for h in RLE_HOSTS]
        )

        def build(ctx):
            sched, runtime, sink = build_rle_pipeline(feed, shard=ctx)
            session = DataflowSession(Debugger(sched, runtime))
            apply_tier(session, tier)
            return session

    elif name == "amodule":
        from ..apps.amodule.app import (
            AMODULE_HOSTS,
            build_amodule_program,
            build_demo,
        )

        feed = list(values) if values else [1, 2, 3, 4]
        plan = partition_program(
            build_amodule_program(attribute=1, max_steps=len(feed)),
            n_shards,
            hosts=[HostSpec(*h) for h in AMODULE_HOSTS],
        )

        def build(ctx):
            sched, _plat, runtime, _src, _sink = build_demo(feed, shard=ctx)
            session = DataflowSession(Debugger(sched, runtime))
            apply_tier(session, tier)
            return session

    else:
        raise ReproError(f"program {name!r} has no sharded build (rle/amodule)")

    run = ShardedRun(plan, build, record=record)
    coordinator = run.sessions[0]
    cli = CommandCli(coordinator.dbg)
    install_dataflow_commands(cli, coordinator)
    coordinator.cli = cli
    return cli, run
