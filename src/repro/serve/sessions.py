"""Daemon-side session lifecycle: handles, quotas, registry, reaping.

A wire session is one :class:`~repro.core.session.DataflowSession` (or a
:class:`~repro.core.shards.ShardedRun`) plus the bookkeeping a server
needs around it:

- **serialisation** — all blocking work for a session runs on its own
  single-thread executor, so concurrent connections to one session are
  ordered and two sessions never contend;
- **quotas** — max framework events, max journal bytes, cumulative
  command wall-clock; exceeding one yields a *structured* quota error
  (code 1002 with the quota name and observed value), and run-control
  commands are refused until the session is destroyed.  The wall-clock
  budget is enforced *mid-command* by a watchdog that uses the async-safe
  pause path (`Debugger.request_pause`), so a runaway ``continue`` stops
  at the next dispatch boundary instead of holding its worker forever;
- **event fan-out** — stops (which include RV violations) and flight-
  recorder dumps are pushed to every subscribed connection;
- **isolation + reaping** — one session's failure never unwinds the
  registry, and sessions idle past the deadline are closed by the
  daemon's reaper.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..errors import ReproError
from .builders import build_program_cli, build_sharded_cli

#: first words of commands that advance execution (the ones a quota-
#: exhausted session refuses; inspection stays available for post-mortem)
RUN_CONTROL = frozenset(
    {
        "run", "continue", "step", "next", "stepi", "finish", "until",
        "step_both", "replay", "reverse-continue",
    }
)


class QuotaExceeded(ReproError):
    """A per-session quota is exhausted.  Carries structured fields so
    the wire error names the quota instead of burying it in prose."""

    def __init__(self, quota: str, limit: float, used: float):
        super().__init__(
            f"session quota exceeded: {quota} (used {used:.0f} of {limit:.0f})"
        )
        self.quota = quota
        self.limit = limit
        self.used = used

    def to_data(self) -> Dict[str, Any]:
        return {"quota": self.quota, "limit": self.limit, "used": self.used}


@dataclass
class SessionQuota:
    """Per-session resource bounds; ``None`` means unlimited."""

    max_events: Optional[int] = None  # framework events processed
    max_journal_bytes: Optional[int] = None  # journal footprint estimate
    max_wall_ms: Optional[float] = None  # cumulative command wall-clock

    @classmethod
    def from_params(cls, params: Optional[Dict[str, Any]]) -> "SessionQuota":
        if not params:
            return cls()
        q = cls()
        for key in ("max_events", "max_journal_bytes", "max_wall_ms"):
            value = params.get(key)
            if value is not None:
                if not isinstance(value, (int, float)) or value <= 0:
                    raise ReproError(f"quota {key} must be a positive number")
                setattr(q, key, value)
        return q

    def to_dict(self) -> Dict[str, Any]:
        return {
            "max_events": self.max_events,
            "max_journal_bytes": self.max_journal_bytes,
            "max_wall_ms": self.max_wall_ms,
        }


def journal_bytes(session) -> int:
    """The session's journal footprint: exact compressed bytes for
    rotated segments, plus a flat per-record estimate for the resident
    tail (records are small fixed tuples; precision is not the point —
    the quota is a guard rail, not an invoice)."""
    replay = getattr(session, "replay", None)
    master = replay.master if replay is not None else None
    if master is None:
        return 0
    total = len(master.events) * 48
    segments = getattr(master, "segments", None)
    if segments is not None:
        total += segments.total_bytes
    return total


class SessionHandle:
    """One hosted session: machine + service + executor + subscribers."""

    def __init__(
        self,
        session_id: str,
        program: str,
        cli,
        quota: SessionQuota,
        sharded_run=None,
        name: Optional[str] = None,
    ):
        self.id = session_id
        self.name = name or session_id
        self.program = program
        self.cli = cli
        self.quota = quota
        self.sharded = sharded_run
        self.created = time.monotonic()
        self.last_used = self.created
        self.attached = 0
        self.closed = False
        #: set when a quota trips; names the quota (structured errors)
        self.quota_exhausted: Optional[QuotaExceeded] = None
        self.executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"session-{session_id}"
        )
        self._subs: Dict[int, Callable[[Dict[str, Any]], None]] = {}
        self._subs_lock = threading.Lock()
        self._sub_ids = itertools.count(1)
        self.events_pushed = 0
        # stops (breakpoints, RV violations, deadlocks, replay stops,
        # barrier pauses) flow through the service's adoption-surviving
        # subscription; flight dumps through the recorder's hook
        self.service.subscribe(self._on_stop)
        flight = getattr(self.session, "flight", None)
        if flight is not None and hasattr(flight, "on_dump"):
            flight.on_dump.append(self._on_flight_dump)

    # ------------------------------------------------------------- liveness

    @property
    def service(self):
        return self.cli.service

    @property
    def session(self):
        return self.cli.dataflow_handler.session

    def touch(self) -> None:
        self.last_used = time.monotonic()

    def idle_seconds(self) -> float:
        return time.monotonic() - self.last_used

    # ------------------------------------------------------------- fan-out

    def subscribe(self, fn: Callable[[Dict[str, Any]], None]) -> int:
        with self._subs_lock:
            handle = next(self._sub_ids)
            self._subs[handle] = fn
        return handle

    def unsubscribe(self, handle: int) -> None:
        with self._subs_lock:
            self._subs.pop(handle, None)

    def _publish(self, event: Dict[str, Any]) -> None:
        with self._subs_lock:
            subs = list(self._subs.values())
        for fn in subs:
            try:
                fn(event)
                self.events_pushed += 1
            except Exception:
                pass

    def _on_stop(self, ev) -> None:
        from ..core.service import stop_to_dict

        kind = "violation" if ev.kind.value == "violation" else "stop"
        self._publish({"type": kind, "data": stop_to_dict(ev)})

    def _on_flight_dump(self, path: str, reason: str) -> None:
        self._publish({"type": "flight-dump", "data": {"path": path, "reason": reason}})

    # -------------------------------------------------------------- quotas

    def _check_quota(self, command: Optional[str] = None) -> None:
        """Raise :class:`QuotaExceeded` if a bound is spent.  Once a
        quota trips, run-control commands stay refused (inspection and
        detach still work: the post-mortem must remain reachable)."""
        if self.quota_exhausted is not None:
            word = command.split(None, 1)[0] if command else None
            if word is None or word in RUN_CONTROL:
                raise self.quota_exhausted
            return
        q = self.quota
        svc = self.service
        if q.max_wall_ms is not None and svc.wall_ms >= q.max_wall_ms:
            self.quota_exhausted = QuotaExceeded("max_wall_ms", q.max_wall_ms, svc.wall_ms)
            raise self.quota_exhausted
        session = self.session
        if q.max_events is not None:
            used = session.capture.events_processed
            if used >= q.max_events:
                self.quota_exhausted = QuotaExceeded("max_events", q.max_events, used)
                raise self.quota_exhausted
        if q.max_journal_bytes is not None:
            used = journal_bytes(session)
            if used >= q.max_journal_bytes:
                self.quota_exhausted = QuotaExceeded(
                    "max_journal_bytes", q.max_journal_bytes, used
                )
                raise self.quota_exhausted

    # ------------------------------------------------------------ blocking ops
    # (every method below runs on the session's executor thread)

    def execute(self, line: str):
        """One command with quota envelope: pre-check, wall-clock
        watchdog armed across the command, post-check so the *next* call
        reports exhaustion even when this one slipped under the wire."""
        self.touch()
        self._check_quota(line.strip())
        timer = None
        if self.quota.max_wall_ms is not None:
            remaining = (self.quota.max_wall_ms - self.service.wall_ms) / 1000.0
            # the watchdog rides the async-safe pause path: a runaway
            # `continue` parks at the next dispatch boundary
            timer = threading.Timer(max(remaining, 0.001), self.service.interrupt)
            timer.daemon = True
            timer.start()
        try:
            result = self.service.execute(line, isolate=True)
        finally:
            if timer is not None:
                timer.cancel()
        try:
            self._check_quota()
        except QuotaExceeded:
            pass  # recorded in quota_exhausted; surfaced on the next call
        return result

    def run_sharded(self):
        """Advance the session's ShardedRun to the next stop (every shard
        parks at a consistent barrier).  Returns the coordinator-shard
        stop event dict plus fabric info."""
        from ..core.service import stop_to_dict

        self.touch()
        self._check_quota("run")
        if self.sharded is None:
            raise ReproError("session is not sharded (use execute)")
        run = self.sharded
        stop = run.run() if not run._loaded else run.cont()
        data: Dict[str, Any] = {"kind": stop.kind, "shard": stop.shard}
        if stop.event is not None:
            data["event"] = stop_to_dict(stop.event)
        return data

    def interrupt(self) -> None:
        """Async-safe: runs on the *caller's* thread, not the executor —
        that is the point (the executor is busy inside `continue`)."""
        self.service.interrupt()

    def metrics_text(self) -> str:
        """Per-session OpenMetrics exposition: the machine's telemetry
        snapshot plus the serve-layer gauges for this session."""
        from ..obs.openmetrics import to_openmetrics

        session = self.session
        registry = getattr(session.telemetry, "metrics", None)
        # telemetry may be off (the zero-cost default): the scrape still
        # succeeds with the serve-layer gauges alone
        text = to_openmetrics(registry) if registry is not None else "# EOF\n"
        extra = [
            "# TYPE repro_serve_session_commands counter",
            "# HELP repro_serve_session_commands Commands executed by this session.",
            f'repro_serve_session_commands_total{{session="{self.id}"}} {self.service.commands_run}',
            "# TYPE repro_serve_session_errors counter",
            "# HELP repro_serve_session_errors Commands that failed.",
            f'repro_serve_session_errors_total{{session="{self.id}"}} {self.service.errors}',
            "# TYPE repro_serve_session_events_pushed counter",
            "# HELP repro_serve_session_events_pushed Events fanned out to subscribers.",
            f'repro_serve_session_events_pushed_total{{session="{self.id}"}} {self.events_pushed}',
            "# TYPE repro_serve_session_wall_ms gauge",
            "# HELP repro_serve_session_wall_ms Cumulative command wall-clock (ms).",
            f'repro_serve_session_wall_ms{{session="{self.id}"}} {self.service.wall_ms:.3f}',
        ]
        # splice before the terminating EOF marker (which may be the
        # whole exposition when telemetry never ran)
        base = text.rstrip("\n").rsplit("\n", 1)
        if base[-1] == "# EOF":
            prefix = base[0] + "\n" if len(base) == 2 else ""
            return prefix + "\n".join(extra) + "\n# EOF\n"
        return text + "\n".join(extra) + "\n# EOF\n"

    def flight_bundle(self) -> Dict[str, Any]:
        self.touch()
        flight = getattr(self.session, "flight", None)
        if flight is None:
            raise ReproError("session has no flight recorder")
        return flight.bundle(reason="rpc")

    def describe(self) -> Dict[str, Any]:
        svc = self.service
        return {
            "id": self.id,
            "name": self.name,
            "program": self.program,
            "sharded": self.sharded is not None,
            "attached": self.attached,
            "idle_s": round(self.idle_seconds(), 3),
            "commands_run": svc.commands_run,
            "errors": svc.errors,
            "wall_ms": round(svc.wall_ms, 3),
            "events_processed": self.session.capture.events_processed,
            "journal_bytes": journal_bytes(self.session),
            "quota": self.quota.to_dict(),
            "quota_exhausted": (
                self.quota_exhausted.quota if self.quota_exhausted else None
            ),
        }

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._publish({"type": "closed", "data": {"session": self.id}})
        with self._subs_lock:
            self._subs.clear()
        self.executor.shutdown(wait=False)


class SessionRegistry:
    """All hosted sessions; thread-safe (RPC handlers + reaper touch it)."""

    def __init__(self, max_sessions: int = 256):
        self._lock = threading.Lock()
        self._sessions: Dict[str, SessionHandle] = {}
        self._ids = itertools.count(1)
        self.max_sessions = max_sessions
        self.created_total = 0
        self.reaped_total = 0

    def create(
        self,
        program: str,
        bug: Optional[str] = None,
        tier: str = "auto",
        values: Optional[List[int]] = None,
        sharded: bool = False,
        shards: int = 2,
        quota: Optional[SessionQuota] = None,
        name: Optional[str] = None,
    ) -> SessionHandle:
        with self._lock:
            if len(self._sessions) >= self.max_sessions:
                raise ReproError(
                    f"session limit reached ({self.max_sessions}); destroy one first"
                )
            session_id = f"s{next(self._ids)}"
        # machine construction happens outside the lock: builders run
        # framework elaboration and must not serialise sibling creates
        sharded_run = None
        if sharded:
            cli, sharded_run = build_sharded_cli(program, n_shards=shards, tier=tier,
                                                 values=values)
        else:
            cli, _sink = build_program_cli(program, bug=bug, tier=tier, values=values)
        handle = SessionHandle(
            session_id,
            program,
            cli,
            quota or SessionQuota(),
            sharded_run=sharded_run,
            name=name,
        )
        with self._lock:
            self._sessions[session_id] = handle
            self.created_total += 1
        return handle

    def get(self, session_id: str) -> SessionHandle:
        with self._lock:
            handle = self._sessions.get(session_id)
        if handle is None or handle.closed:
            raise KeyError(session_id)
        return handle

    def list(self) -> List[Dict[str, Any]]:
        with self._lock:
            handles = list(self._sessions.values())
        return [h.describe() for h in handles]

    def destroy(self, session_id: str) -> None:
        with self._lock:
            handle = self._sessions.pop(session_id, None)
        if handle is None:
            raise KeyError(session_id)
        handle.close()

    def reap_idle(self, max_idle_s: float) -> List[str]:
        """Close sessions nobody touched for ``max_idle_s``; returns the
        reaped ids.  Attached sessions are exempt — idleness is about
        abandonment, not contemplation."""
        with self._lock:
            stale = [
                h
                for h in self._sessions.values()
                if h.attached == 0 and h.idle_seconds() > max_idle_s
            ]
            for h in stale:
                self._sessions.pop(h.id, None)
                self.reaped_total += 1
        for h in stale:
            h.close()
        return [h.id for h in stale]

    def close_all(self) -> None:
        with self._lock:
            handles = list(self._sessions.values())
            self._sessions.clear()
        for h in handles:
            h.close()

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)
