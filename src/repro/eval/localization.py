"""SEC6-LOC: how many debugger interactions does it take to localize a
bug, with and without dataflow awareness?

The paper's qualitative analysis (§VI-F) argues the dataflow commands
shorten the hunt and suggests measuring "the time required to locate
different kinds of bugs [...] compared against more common methods like
source-level debuggers".  This module performs that measurement: for each
§VI bug variant it scripts two *honest* strategies against real debugger
sessions and counts every command issued:

- **dataflow** — uses the model-aware commands (`dataflow links`,
  `filter ... catch`, `info last_token`, `filter info state`);
- **plain** — restricted to classic source-level commands (break /
  continue / print / backtrace / info), emulating what a stock GDB user
  can do, including the "breakpoints at both ends of the link and a pen
  and paper count" the paper describes.

Both strategies must actually *find* the culprit (asserted), so the
interaction counts are comparable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..apps.h264 import decode_golden
from ..apps.h264.bugs import (
    build_corrupted_token,
    build_dropped_token,
    build_rate_mismatch,
)
from ..core import DataflowSession, install_dataflow_commands
from ..dbg import CommandCli, Debugger, StopKind


class _CountingCli:
    """Wraps a CLI and counts every command issued."""

    def __init__(self, cli: CommandCli):
        self.cli = cli
        self.count = 0
        self.transcript: List[str] = []

    def run(self, line: str) -> List[str]:
        self.count += 1
        out = self.cli.execute(line)
        self.transcript.append(f"(gdb) {line}")
        self.transcript.extend(out)
        return out


@dataclass
class LocalizationResult:
    scenario: str
    strategy: str
    interactions: int
    located: bool
    wall_seconds: float
    transcript: List[str]


def _session(build, *, dataflow: bool, **kwargs):
    sched, platform, runtime, source, sink, mbs = build(**kwargs)
    dbg = Debugger(sched, runtime)
    cli = CommandCli(dbg)
    if dataflow:
        session = DataflowSession(dbg, cli=cli, stop_on_init=True)
    else:
        session = None
    return _CountingCli(cli), dbg, sink, mbs, session


# ------------------------------------------------------- corrupted token


def _corrupted_dataflow(n_mbs: int = 8, corrupt_at: int = 5) -> Tuple[int, bool, List[str]]:
    c, dbg, sink, mbs, session = _session(
        build_corrupted_token, dataflow=True, n_mbs=n_mbs, corrupt_at=corrupt_at
    )
    dbg.run()  # stops after init
    bad_addr = 0x1400 + corrupt_at  # the observably-wrong macroblock
    c.run("filter red configure splitter")
    c.run(f"filter pipe catch Red2PipeCbMB_in if Addr == {bad_addr}")
    c.run("continue")
    out = c.run("filter pipe info last_token")
    located = any(line.startswith("#2 bh -> red") for line in out)
    # confirm the value is the wrapped one
    wrapped = sum(mbs[corrupt_at].residuals) & 0xFF
    located = located and any(str(wrapped) in line for line in out if line.startswith("#2"))
    return c.count, located, c.transcript


def _corrupted_plain(n_mbs: int = 8, corrupt_at: int = 5) -> Tuple[int, bool, List[str]]:
    """Source-level strategy: chase the wrong value upstream, one filter
    per (re)run, inspecting every macroblock until the bad one."""
    interactions = 0
    transcript: List[str] = []

    # pass 1: stop in pipe each macroblock, print the struct until the
    # observed Addr matches the broken output
    c, dbg, sink, mbs, _ = _session(
        build_corrupted_token, dataflow=False, n_mbs=n_mbs, corrupt_at=corrupt_at
    )
    bad_addr = 0x1400 + corrupt_at
    golden = decode_golden(mbs)
    c.run("break pipe.c:5")
    found = False
    for _ in range(n_mbs + 1):
        out = c.run("continue" if dbg.runtime.loaded else "run")
        if not any("Breakpoint" in line for line in out):
            break
        addr = int(c.run("print cbcr.Addr")[0].split(" = ")[1])
        izz = int(c.run("print cbcr.Izz")[0].split(" = ")[1])
        if addr == bad_addr:
            found = izz != golden[corrupt_at].cbcr_izz
            break
    interactions += c.count
    transcript += c.transcript

    # pass 2 (fresh run): the value was wrong already at pipe's input, so
    # inspect red the same way
    c, dbg, sink, mbs, _ = _session(
        build_corrupted_token, dataflow=False, n_mbs=n_mbs, corrupt_at=corrupt_at
    )
    c.run("break red.c:5")
    red_wrong = False
    for step in range(n_mbs + 1):
        out = c.run("continue" if dbg.runtime.loaded else "run")
        if not any("Breakpoint" in line for line in out):
            break
        mb = int(c.run("print pedf.data.mb_count")[0].split(" = ")[1])
        rsum = int(c.run("print rsum")[0].split(" = ")[1])
        if mb == corrupt_at:
            red_wrong = rsum != golden[corrupt_at].rsum
            break
    interactions += c.count
    transcript += c.transcript

    # pass 3 (fresh run): red only forwards bh's value — break inside bh's
    # accumulation and watch the 8-bit wraparound
    c, dbg, sink, mbs, _ = _session(
        build_corrupted_token, dataflow=False, n_mbs=n_mbs, corrupt_at=corrupt_at
    )
    c.run(f"break bh.c:10 if pedf.data.mb_count == {corrupt_at}")
    c.run("run")
    out = c.run("print sum8")
    wrapped = sum(mbs[corrupt_at].residuals) & 0xFF
    located = found and red_wrong and out[0].endswith(f"= {wrapped}")
    interactions += c.count
    transcript += c.transcript
    return interactions, located, transcript


# --------------------------------------------------------- rate mismatch


def _rate_dataflow(n_mbs: int = 24) -> Tuple[int, bool, List[str]]:
    c, dbg, sink, mbs, session = _session(build_rate_mismatch, dataflow=True, n_mbs=n_mbs)
    c.run("run")  # init stop (graph reconstructed)
    c.run("continue")  # runs to the deadlock
    out = c.run("dataflow links")
    located = any(
        line.startswith("pipe::Pipe_ipf_out->ipf::Pipe_cfg_in") and "20 token(s)" in line
        for line in out
    )
    return c.count, located, c.transcript


def _rate_plain(n_mbs: int = 24) -> Tuple[int, bool, List[str]]:
    """Without link awareness: inspect every blocked actor's backtrace,
    then instrument both ends of the suspicious link and count hits by
    hand (the paper's 'pen and paper' procedure), on a fresh run."""
    c, dbg, sink, mbs, _ = _session(build_rate_mismatch, dataflow=False, n_mbs=n_mbs)
    c.run("run")  # deadlock
    c.run("info actors")
    suspicious = None
    for actor in [a.qualname for a in dbg.actors() if getattr(a, "interp", None)]:
        c.run(f"actor {actor}")
        out = c.run("backtrace")
        # pipe is the one stuck inside its WORK method pushing
        if any("PipeFilter_work_function" in line for line in out):
            frame_line = dbg.current_frame().line if dbg.current_frame() else None
            if frame_line == 7:  # the Pipe_ipf_out push line
                suspicious = actor
    if suspicious is None:
        return c.count, False, c.transcript

    # fresh run: count pushes at pipe.c:7 and consumptions at ipf.c:5
    count_cli, dbg2, _, _, _ = _session(build_rate_mismatch, dataflow=False, n_mbs=n_mbs)
    count_cli.run("break pipe.c:7")
    count_cli.run("break ipf.c:5")
    pushes = pops = 0
    count_cli.run("run")
    while True:
        ev = dbg2.last_stop
        if ev.kind != StopKind.BREAKPOINT:
            break
        if ev.line == 7:
            pushes += 1
        else:
            pops += 1
        count_cli.run("continue")
    located = pushes >= 20 and pops == 0
    return c.count + count_cli.count, located, c.transcript + count_cli.transcript


# --------------------------------------------------------- dropped token


def _dropped_dataflow(n_mbs: int = 6) -> Tuple[int, bool, List[str]]:
    c, dbg, sink, mbs, session = _session(build_dropped_token, dataflow=True, n_mbs=n_mbs)
    c.run("run")  # init stop
    c.run("continue")  # deadlock
    c.run("sched status")
    out = c.run("filter ipred info state")
    blocked = any("blocked waiting for data: yes" in line for line in out)
    out = c.run("iface ipred::Hwcfg_in info")
    starved = any("0 queued" in line and f"popped {n_mbs - 1}" in line for line in out)
    return c.count, blocked and starved, c.transcript


def _dropped_plain(n_mbs: int = 6) -> Tuple[int, bool, List[str]]:
    c, dbg, sink, mbs, _ = _session(build_dropped_token, dataflow=False, n_mbs=n_mbs)
    c.run("run")  # deadlock
    c.run("info actors")
    blocked_at_hwcfg_read = False
    for actor in [a.qualname for a in dbg.actors() if getattr(a, "interp", None)]:
        c.run(f"actor {actor}")
        out = c.run("backtrace")
        if any("IpredFilter_work_function" in line for line in out):
            frame = dbg.current_frame()
            blocked_at_hwcfg_read = frame is not None and frame.line == 4  # Hwcfg_in read
    if not blocked_at_hwcfg_read:
        return c.count, False, c.transcript
    # fresh run: count how many configuration tokens hwcfg actually sent
    c2, dbg2, _, _, _ = _session(build_dropped_token, dataflow=False, n_mbs=n_mbs)
    c2.run("break hwcfg.c:11")  # the HwCfg_out push
    sends = 0
    c2.run("run")
    while dbg2.last_stop.kind == StopKind.BREAKPOINT:
        sends += 1
        c2.run("continue")
    located = sends == n_mbs - 1  # one fewer than macroblocks: hwcfg drops one
    return c.count + c2.count, located, c.transcript + c2.transcript


# ----------------------------------------------------------------- driver

SCENARIOS: Dict[str, Dict[str, Callable[[], Tuple[int, bool, List[str]]]]] = {
    "corrupted-token": {"dataflow": _corrupted_dataflow, "plain": _corrupted_plain},
    "rate-mismatch": {"dataflow": _rate_dataflow, "plain": _rate_plain},
    "dropped-token": {"dataflow": _dropped_dataflow, "plain": _dropped_plain},
}


def run_localization_comparison() -> List[LocalizationResult]:
    results: List[LocalizationResult] = []
    for scenario, strategies in SCENARIOS.items():
        for strategy, fn in strategies.items():
            t0 = time.perf_counter()
            interactions, located, transcript = fn()
            wall = time.perf_counter() - t0
            results.append(
                LocalizationResult(scenario, strategy, interactions, located, wall, transcript)
            )
    return results


def format_results(results: List[LocalizationResult]) -> List[str]:
    out = [f"{'scenario':<18} {'strategy':<10} {'interactions':>12} {'located':>8}"]
    for r in results:
        out.append(f"{r.scenario:<18} {r.strategy:<10} {r.interactions:>12} {str(r.located):>8}")
    return out
