"""Regeneration of the paper's figures 1–4 (as data, plus DOT text).

The paper's figures are architecture/graph drawings; "regenerating" them
means producing the same structural content from the running system:
node/edge sets, styling classes, memory hierarchy, token counts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..apps.amodule import ADL_SOURCE, CONTROLLER_SOURCE, FILTER_SOURCE
from ..apps.h264.bugs import build_rate_mismatch
from ..core import DataflowSession
from ..dbg import Debugger
from ..mind import compile_adl
from ..p2012.soc import P2012Platform, PlatformConfig
from ..pedf.runtime import PedfRuntime
from ..sim.kernel import Scheduler


# ---------------------------------------------------------------- FIG-1


def fig1_platform_report(
    n_clusters: int = 4, pes_per_cluster: int = 16, dma_words: int = 256
) -> Dict[str, object]:
    """Fig. 1: the P2012 architecture — topology + measured access costs.

    Returns the topology report augmented with a measured DMA round and
    the per-level link costs the runtime would use.
    """
    sched = Scheduler()
    platform = P2012Platform(
        sched, PlatformConfig(n_clusters=n_clusters, pes_per_cluster=pes_per_cluster)
    )
    report = platform.topology_report()

    # measure one host->fabric DMA transfer in simulated cycles
    done: List[int] = []

    def dma_proc():
        yield from platform.dmas[0].transfer(dma_words, dst=platform.l3)
        done.append(sched.now)

    sched.spawn(dma_proc(), "dma-measure")
    sched.run()
    report["measured"] = {
        "dma_transfer_words": dma_words,
        "dma_transfer_cycles": done[0],
        "link_cost_intra_cluster": platform.link_cost(
            platform.clusters[0].pes[0], platform.clusters[0].pes[1]
        ).push_cycles,
        "link_cost_inter_cluster": platform.link_cost(
            platform.clusters[0].pes[0], platform.clusters[-1].pes[0]
        ).push_cycles,
        "link_cost_host_fabric": platform.link_cost(
            platform.host, platform.clusters[0].pes[0]
        ).push_cycles,
    }
    return report


# ---------------------------------------------------------------- FIG-2


def fig2_amodule_graph() -> Tuple[str, Dict[str, int]]:
    """Fig. 2: the PEDF visual representation of AModule, reconstructed by
    the debugger from the MIND description's runtime init events.

    Returns (dot_text, structural counts).
    """
    sched = Scheduler()
    platform = P2012Platform(sched, PlatformConfig(n_clusters=2, pes_per_cluster=4))
    program = compile_adl(
        ADL_SOURCE,
        {"the_source.c": FILTER_SOURCE, "ctrl_source.c": CONTROLLER_SOURCE},
        program_name="AModule",
    )
    program.modules["AModule"].controller.max_steps = 0  # init only
    runtime = PedfRuntime(sched, platform, program)
    dbg = Debugger(sched, runtime)
    session = DataflowSession(dbg, stop_on_init=True)
    dbg.run()
    model = session.model
    counts = {
        "filters": len([a for a in model.actors.values() if a.kind == "filter"]),
        "controllers": len([a for a in model.actors.values() if a.kind == "controller"]),
        "control_links": len([l for l in model.links if l.kind == "control"]),
        "data_links": len([l for l in model.links if l.kind == "data"]),
        "external_ifaces_unbound": len(
            [
                c
                for a in model.actors.values()
                for c in list(a.inbound.values()) + list(a.outbound.values())
                if c.link is None
            ]
        ),
    }
    return session.graph_dot(), counts


# ---------------------------------------------------------------- FIG-3


def fig3_capture_report(n_mbs: int = 8) -> Dict[str, object]:
    """Fig. 3: the two-level debugging architecture — demonstrated by the
    capture statistics of a full decoder run: how many framework events
    of each kind flowed through the function-breakpoint layer, and that
    the debugger model mirrors the runtime exactly."""
    from ..apps.h264.app import build_decoder

    sched, platform, runtime, source, sink, mbs = build_decoder(n_mbs=n_mbs)
    dbg = Debugger(sched, runtime)
    session = DataflowSession(dbg)
    dbg.run()

    # cross-check: event-derived counters equal runtime ground truth
    mismatches = []
    for link in session.model.links:
        rt_link = next(
            (
                l
                for l in runtime.links
                if l.src is not None
                and l.dst is not None
                and l.src.qualname == link.src.qualname
                and l.dst.qualname == link.dst.qualname
            ),
            None,
        )
        if rt_link is None or rt_link.total_pushed != link.total_pushed:
            mismatches.append(link.name)
    return {
        "events_by_symbol": dict(sorted(runtime.bus.per_symbol.items())),
        "events_processed": session.capture.events_processed,
        "data_events_processed": session.capture.data_events_processed,
        "model_actors": len(session.model.actors),
        "model_links": len(session.model.links),
        "model_mismatches": mismatches,
        "decoded": len(sink.values),
    }


# ---------------------------------------------------------------- FIG-4


def fig4_h264_graph(n_mbs: int = 24) -> Tuple[str, Dict[str, int]]:
    """Fig. 4: the H.264 dataflow graph *in the stalled state*: the
    pipe→ipf link holds 20 tokens, hwcfg→pipe three, and the pred-module
    data links are empty.

    Returns (dot_text, per-link occupancy dict).
    """
    sched, platform, runtime, source, sink, mbs = build_rate_mismatch(n_mbs=n_mbs)
    dbg = Debugger(sched, runtime)
    session = DataflowSession(dbg)
    dbg.run()  # runs to the deadlock stop
    occupancy = {link.name: link.occupancy for link in session.model.links}
    return session.graph_dot(), occupancy
