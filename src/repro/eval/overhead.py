"""SEC5-OVH: debugger-intrusion overhead and the §V mitigations.

"Our frequent use of breakpoints introduces a slowdown in the
application.  This is mainly due to the breakpoints related to data
exchanges" — and two mitigations: (1) disabling the data-exchange
breakpoints until the critical part is reached, (2) framework
cooperation (actor-specific breakpoint locations).

The comparison decodes the same macroblock sequence under:

====================  =======================================================
``native``             no debugger attached at all
``attached-idle``      debugger attached, nothing armed (hook elision: the
                       interpreters skip instrumentation entirely)
``attached``           debugger attached, dataflow session, no data capture
                       ("none" — mitigation 1, fully off)
``control-only``       only control-token breakpoints ("control tokens do
                       not rely on the same breakpoints")
``actor-specific``     data capture on a single actor of interest
                       (mitigation 2: framework cooperation)
``full-capture``       every token movement captured
``full+record``        full capture plus token recording on a hot link
====================  =======================================================

Overhead is host-side (wall-clock): the *simulated* behaviour is
identical in every configuration — that invariant is asserted, mirroring
the paper's point that dataflow determinism hides debugger slowdown from
the application semantics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..apps.h264.app import build_decoder
from ..core import DataflowSession
from ..dbg import Debugger


@dataclass
class OverheadRow:
    config: str
    wall_seconds: float
    decoded: int
    data_events: int
    sim_cycles: int
    output_checksum: int

    def slowdown(self, baseline: "OverheadRow") -> float:
        if baseline.wall_seconds <= 0:
            return float("inf")
        return self.wall_seconds / baseline.wall_seconds


def _checksum(values: List[int]) -> int:
    acc = 0
    for v in values:
        acc = (acc * 1000003 + v) & 0xFFFFFFFF
    return acc


def _run_native(n_mbs: int) -> OverheadRow:
    sched, platform, runtime, source, sink, mbs = build_decoder(n_mbs=n_mbs)
    runtime.load()
    t0 = time.perf_counter()
    sched.run()
    wall = time.perf_counter() - t0
    return OverheadRow("native", wall, len(sink.values), 0, sched.now, _checksum(sink.values))


def _run_attached_idle(n_mbs: int) -> OverheadRow:
    """Debugger attached but *idle*: no dataflow session, no breakpoints.

    With hook elision this should sit within a whisker of ``native`` —
    the interpreters see a hook whose capability mask is zero and skip
    every ``on_statement``/``on_call``/``on_return`` call, and the
    scheduler's pre-dispatch hook stays disarmed."""
    sched, platform, runtime, source, sink, mbs = build_decoder(n_mbs=n_mbs)
    dbg = Debugger(sched, runtime)
    t0 = time.perf_counter()
    dbg.run()
    wall = time.perf_counter() - t0
    return OverheadRow(
        "attached-idle", wall, len(sink.values), 0, sched.now, _checksum(sink.values)
    )


def _run_with_session(n_mbs: int, config: str, mode, record_iface: Optional[str] = None) -> OverheadRow:
    sched, platform, runtime, source, sink, mbs = build_decoder(n_mbs=n_mbs)
    dbg = Debugger(sched, runtime)
    session = DataflowSession(dbg)
    if mode != "all":
        session.set_data_capture(mode)
    if record_iface is not None:
        session.records.enable(record_iface)
    t0 = time.perf_counter()
    dbg.run()
    wall = time.perf_counter() - t0
    return OverheadRow(
        config,
        wall,
        len(sink.values),
        session.capture.data_events_processed,
        sched.now,
        _checksum(sink.values),
    )


def run_overhead_comparison(n_mbs: int = 60) -> List[OverheadRow]:
    """Decode ``n_mbs`` macroblocks under every configuration.

    Expected shape (paper §V): full capture is the slowest; disabling the
    data-exchange breakpoints recovers most of the cost; actor-specific
    capture sits in between, close to the disabled case.
    """
    rows = [
        _run_native(n_mbs),
        _run_attached_idle(n_mbs),
        _run_with_session(n_mbs, "attached", "none"),
        _run_with_session(n_mbs, "control-only", "control-only"),
        _run_with_session(n_mbs, "actor-specific", ["pipe"]),
        _run_with_session(n_mbs, "full-capture", "all"),
        _run_with_session(n_mbs, "full+record", "all", record_iface="ipf::decoded_out"),
    ]
    # determinism invariant: every configuration decodes identically
    base = rows[0]
    for row in rows[1:]:
        if row.decoded != base.decoded or row.output_checksum != base.output_checksum:
            raise AssertionError(
                f"configuration {row.config!r} changed the program output — "
                "debugger intrusion must not alter dataflow semantics"
            )
    return rows


def format_rows(rows: List[OverheadRow]) -> List[str]:
    base = rows[0]
    out = [f"{'config':<16} {'wall[s]':>9} {'slowdown':>9} {'data-events':>12} {'decoded':>8}"]
    for row in rows:
        out.append(
            f"{row.config:<16} {row.wall_seconds:>9.4f} {row.slowdown(base):>8.2f}x "
            f"{row.data_events:>12} {row.decoded:>8}"
        )
    return out
