"""Experiment harnesses regenerating the paper's figures and claims.

One module per experiment family (see DESIGN.md's experiment index):

- :mod:`figures` — FIG-1 (platform topology), FIG-2 (AModule graph),
  FIG-3 (capture architecture statistics), FIG-4 (H.264 graph with the
  stalled token counts);
- :mod:`overhead` — SEC5-OVH: breakpoint overhead under the §V
  mitigation strategies;
- :mod:`localization` — SEC6-LOC: interaction counts to localize each
  §VI bug, dataflow-aware vs. plain source-level strategy.

Benches under ``benchmarks/`` are thin wrappers over these functions, so
every number they report is reproducible from library code.
"""

from .figures import fig1_platform_report, fig2_amodule_graph, fig3_capture_report, fig4_h264_graph
from .overhead import OverheadRow, run_overhead_comparison
from .localization import LocalizationResult, run_localization_comparison

__all__ = [
    "fig1_platform_report",
    "fig2_amodule_graph",
    "fig3_capture_report",
    "fig4_h264_graph",
    "OverheadRow",
    "run_overhead_comparison",
    "LocalizationResult",
    "run_localization_comparison",
]
