"""Deep machine-state snapshots: the restorable half of time travel.

A :class:`MachineState` is a full, deterministic, pickle-shaped capture
of everything that defines a dataflow machine at a dispatch boundary:

- the **kernel**: simulated clock, dispatch count, ready-queue order and
  the timed heap's ``(wake time, tie-break seq, process)`` entries
  (:meth:`~repro.sim.kernel.Scheduler.capture_state`);
- the **runtime**: token-seq counter, every link's queued tokens as
  ``(seq, canonical payload text)`` pairs, every actor's scheduling
  state / work counters / data store, every module's predicate values
  (:meth:`~repro.pedf.runtime.PedfRuntime.capture_state`);
- optionally the **interpreter frames** of each busy actor
  (:meth:`~repro.cminus.interp.Interpreter.capture_frames`).  Frames are
  *tier-variant* — the compiled tier keeps no Frame objects — so they
  are excluded from journal-recorded snapshots (journals must be
  byte-identical across tiers) and only used to fingerprint a specific
  live machine, e.g. a parked resident snapshot.

Two machines with equal ``MachineState`` are observationally identical
to the debugger: re-executing either from this boundary produces the
same event stream.  That is what makes a *resident* machine (a live
replayed session parked by the :class:`~repro.core.replay.ReplayManager`)
a restorable snapshot — actor coroutines cannot be pickled, but a parked
machine whose captured state still matches can be adopted and driven
forward, paying only the tail.

Everything here is duck-typed against the scheduler/runtime capture
methods so the sharded coordinator (sim layer) and the replay manager
(core layer) can both use it without import cycles.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Tuple

#: deep snapshot every N checkpoints (so every N * checkpoint-interval
#: completed dispatches with the defaults)
DEFAULT_SNAPSHOT_EVERY = 4


@dataclass(frozen=True)
class MachineState:
    """Deterministic deep capture of one machine at a dispatch boundary."""

    time: int
    dispatch: int
    next_seq: int
    #: ready-queue process names, dispatch order
    ready: Tuple[str, ...]
    #: sorted (wake_time, tie_seq, process name) entries of the timed heap
    timed: Tuple[Tuple[int, int, str], ...]
    #: (link name, ((token seq, canonical payload text), ...)) per link
    links: Tuple[Tuple[str, Tuple[Tuple[int, str], ...]], ...]
    #: (qualname, state, works_begun, works_done, step_no) per actor
    actors: Tuple[Tuple[str, str, int, int, int], ...]
    #: (qualname, ((var name, canonical value text), ...)) per actor
    data: Tuple[Tuple[str, Tuple[Tuple[str, str], ...]], ...]
    #: (module name, ((predicate name, value), ...)) per module
    predicates: Tuple[Tuple[str, Tuple[Tuple[str, bool], ...]], ...]
    #: (qualname, ((function name, current line), ...)) per busy actor —
    #: tier-variant, empty unless captured with ``include_frames``
    frames: Tuple[Tuple[str, Tuple[Tuple[str, int], ...]], ...] = field(default=())

    @property
    def tokens_in_flight(self) -> int:
        return sum(len(q) for _, q in self.links)

    def digest(self) -> str:
        """Short stable fingerprint for display and logs."""
        return hashlib.sha1(repr(self).encode()).hexdigest()[:12]

    def describe(self) -> str:
        return (
            f"snapshot @dispatch {self.dispatch} (t={self.time}, "
            f"next seq {self.next_seq}, {self.tokens_in_flight} token(s) in flight, "
            f"{len(self.ready)} ready, digest {self.digest()})"
        )


def capture_machine_state(
    scheduler: Any, runtime: Any, include_frames: bool = False
) -> MachineState:
    """Capture one machine's deep state (see the module docstring for
    what ``include_frames`` implies about tier invariance)."""
    kern = scheduler.capture_state()
    rt = runtime.capture_state(include_frames=include_frames)
    return MachineState(
        time=kern["time"],
        dispatch=kern["dispatch"],
        ready=kern["ready"],
        timed=kern["timed"],
        next_seq=rt["next_seq"],
        links=rt["links"],
        actors=rt["actors"],
        data=rt["data"],
        predicates=rt["predicates"],
        frames=rt["frames"],
    )
