"""The discrete-event scheduler.

Dispatch model
--------------

The kernel keeps two structures:

- a *ready deque* of processes runnable at the current simulated time, and
- a *timed heap* of ``(wake_time, seq, process)`` entries.

``run()`` repeatedly pops the next ready process and resumes its generator,
handling the request it yields.  When the ready deque drains, time advances
to the earliest timed entry.  When both are empty the run terminates:
either every process finished (``EXHAUSTED``) or some are still blocked on
events that nobody can ever notify (``DEADLOCK`` — surfaced, not raised, so
an attached debugger can inspect and even *untie* the deadlock by injecting
tokens).

Determinism
-----------

Dispatch order is fully deterministic: FIFO among ready processes, and
ties in the timed heap break on a monotone sequence number.  This mirrors
the deterministic communication property of dataflow programs the paper
relies on ("the execution semantic is not altered by the slowdown"
debuggers introduce).

Batched delays
--------------

Both Filter-C execution tiers *batch* per-statement costs: instead of one
``Delay(stmt_cost)`` per statement, an interpreter accumulates cost and
yields a single aggregated ``Delay`` at structural flush points (batch
threshold, blocking io/intrinsics, function exit).  Flush points depend
only on program structure — never on whether a debugger, breakpoint, or
stop interleaved — so the kernel-request stream, and therefore
``dispatch_count``, is *stop-invariant*: the replay journal can address a
moment as "dispatch N" and reach the very same machine state whether or
not the original run paused there, and whichever tier executed it.
"""

from __future__ import annotations

import enum
import heapq
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Generator, List, Optional, Tuple

from ..errors import DeadlockError, SimulationError
from .events import Event
from .process import Delay, Process, ProcessState, Suspend, WaitEvent, Yield
from .trace import TraceRecorder


class StopKind(enum.Enum):
    """Why ``Scheduler.run`` returned."""

    EXHAUSTED = "exhausted"  # every process terminated
    DEADLOCK = "deadlock"  # live processes remain, none can run
    SUSPENDED = "suspended"  # a process yielded Suspend (debugger stop)
    MAX_TIME = "max-time"  # until= horizon reached
    MAX_DISPATCHES = "max-dispatches"  # dispatch budget exhausted
    PROCESS_ERROR = "process-error"  # a process raised


@dataclass
class StopReason:
    """Result of a ``Scheduler.run`` call."""

    kind: StopKind
    time: int
    process: Optional[Process] = None  # suspending / failing process
    payload: Any = None  # Suspend.reason, exception, or blocked list

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        extra = f" proc={self.process.name}" if self.process else ""
        return f"<StopReason {self.kind.value} t={self.time}{extra}>"


class Scheduler:
    """Event-driven kernel with simulated cycle time."""

    def __init__(self, trace: Optional[TraceRecorder] = None):
        self.now: int = 0
        self._ready: Deque[Process] = deque()
        self._timed: List[Tuple[int, int, Process]] = []
        self._seq = 0
        self._next_pid = 0
        self.processes: List[Process] = []
        self.trace = trace
        self._dispatch_count = 0
        # Hook invoked before each process resume; may return a Suspend to
        # force a stop (used by debugger features that must preempt a
        # process externally, e.g. interrupt).  The hook only runs while
        # *armed*: assigning a hook arms it (back-compat), and an attached
        # debugger disarms it until a stop is actually pending so the
        # dispatch loop pays nothing for an idle debugger.
        self._pre_dispatch_hook: Optional[Callable[[Process], Optional[Suspend]]] = None
        self._pre_dispatch_armed = False
        # Hook invoked after each *completed* dispatch with the dispatch
        # count — the record/replay checkpoint tap.  Same arm/disarm
        # pattern: nothing is paid per dispatch while no journal is open.
        self._post_dispatch_hook: Optional[Callable[[int], None]] = None
        self._post_dispatch_armed = False

    @property
    def pre_dispatch_hook(self) -> Optional[Callable[[Process], Optional[Suspend]]]:
        return self._pre_dispatch_hook

    @pre_dispatch_hook.setter
    def pre_dispatch_hook(self, hook: Optional[Callable[[Process], Optional[Suspend]]]) -> None:
        self._pre_dispatch_hook = hook
        self._pre_dispatch_armed = hook is not None

    def set_pre_dispatch_armed(self, armed: bool) -> None:
        """Arm/disarm the pre-dispatch hook without detaching it."""
        self._pre_dispatch_armed = bool(armed) and self._pre_dispatch_hook is not None

    @property
    def post_dispatch_hook(self) -> Optional[Callable[[int], None]]:
        return self._post_dispatch_hook

    @post_dispatch_hook.setter
    def post_dispatch_hook(self, hook: Optional[Callable[[int], None]]) -> None:
        self._post_dispatch_hook = hook
        self._post_dispatch_armed = hook is not None

    @property
    def dispatch_count(self) -> int:
        """Completed logical dispatches so far.

        Debugger suspensions do not inflate this count: a process stretch
        that a mid-dispatch ``Suspend`` splits into several resumes counts
        as ONE dispatch (the one that finally reaches a real kernel
        request).  That makes the count identical between a debugged run
        full of interactive stops and a free run of the same program —
        the invariant record/replay checkpoints are keyed on.
        """
        return self._dispatch_count

    # ---------------------------------------------------------------- spawn

    def spawn(self, gen: Generator, name: str = "", owner: Any = None) -> Process:
        """Register a new process, runnable at the current time."""
        proc = Process(name=name or f"proc{self._next_pid}", gen=gen, owner=owner)
        proc.pid = self._next_pid
        self._next_pid += 1
        self.processes.append(proc)
        self._make_ready(proc)
        if self.trace is not None:
            self.trace.record(self.now, proc.name, "spawn")
        return proc

    def event(self, name: str = "") -> Event:
        """Create an event bound to this scheduler."""
        return Event(self, name)

    def freeze(self, proc: Process) -> None:
        """Withhold a process from dispatch until :meth:`thaw`.

        A READY process is pulled out of the queue immediately; TIMED and
        WAITING processes are intercepted when they would become ready.
        """
        if not proc.alive or proc.frozen:
            return
        proc.frozen = True
        if proc.state == ProcessState.READY:
            try:
                self._ready.remove(proc)
            except ValueError:
                pass
            proc.state = ProcessState.FROZEN
        if self.trace is not None:
            self.trace.record(self.now, proc.name, "freeze")

    def thaw(self, proc: Process) -> None:
        """Release a frozen process back into the scheduler."""
        if not proc.frozen:
            return
        proc.frozen = False
        if proc.state == ProcessState.FROZEN:
            self._make_ready(proc)
        if self.trace is not None:
            self.trace.record(self.now, proc.name, "thaw")

    def kill(self, proc: Process) -> None:
        """Terminate a process immediately (it never runs again)."""
        if not proc.alive:
            return
        if proc.state == ProcessState.WAITING and proc.waiting_on is not None:
            proc.waiting_on.remove_waiter(proc)
        proc.state = ProcessState.TERMINATED
        proc.gen.close()
        if self.trace is not None:
            self.trace.record(self.now, proc.name, "kill")

    # -------------------------------------------------------------- queries

    @property
    def live_processes(self) -> List[Process]:
        return [p for p in self.processes if p.alive]

    @property
    def blocked_processes(self) -> List[Process]:
        return [p for p in self.processes if p.state == ProcessState.WAITING]

    @property
    def frozen_processes(self) -> List[Process]:
        return [p for p in self.processes if p.state == ProcessState.FROZEN]

    def next_event_time(self) -> Optional[int]:
        """Earliest live timed-heap entry; None if nothing is scheduled.

        Used by the sharded coordinator to compute the lookahead promise a
        shard can extend to its peers after draining a quantum."""
        return min((t for t, _, p in self._timed if p.alive), default=None)

    def capture_state(self) -> Dict[str, Any]:
        """Deterministic kernel-side deep-state capture (the kernel's
        contribution to a :class:`~repro.sim.snapshot.MachineState`).

        Taken at a dispatch boundary this is stop-invariant: the ready
        queue, the sorted live timed-heap entries and the clock are pure
        functions of the dispatch count (interactive suspends re-queue
        the interrupted process at the front and do not count the
        dispatch, so no interleaving is observable)."""
        return {
            "time": self.now,
            "dispatch": self._dispatch_count,
            "ready": tuple(p.name for p in self._ready if p.alive),
            "timed": tuple(sorted((t, s, p.name) for t, s, p in self._timed if p.alive)),
        }

    # ------------------------------------------------------------- internal

    def _make_ready(self, proc: Process) -> None:
        proc.waiting_on = None
        if proc.frozen:
            # became runnable while frozen: park it until thawed
            proc.state = ProcessState.FROZEN
            return
        proc.state = ProcessState.READY
        self._ready.append(proc)

    def _make_ready_front(self, proc: Process) -> None:
        proc.waiting_on = None
        if proc.frozen:
            proc.state = ProcessState.FROZEN
            return
        proc.state = ProcessState.READY
        self._ready.appendleft(proc)

    def _wake(self, proc: Process) -> None:
        """Move a WAITING process back to the ready deque (event notified)."""
        if proc.state != ProcessState.WAITING:
            raise SimulationError(f"cannot wake {proc}: not waiting")
        self._make_ready(proc)
        if self.trace is not None:
            self.trace.record(self.now, proc.name, "wake")

    def _schedule_at(self, time: int, proc: Process) -> None:
        proc.state = ProcessState.TIMED
        self._seq += 1
        heapq.heappush(self._timed, (time, self._seq, proc))

    # ------------------------------------------------------------------ run

    def run(
        self,
        until: Optional[int] = None,
        max_dispatches: Optional[int] = None,
        raise_on_deadlock: bool = False,
    ) -> StopReason:
        """Dispatch processes until nothing can run or a stop is requested.

        ``until``          — absolute simulated-time horizon (inclusive).
        ``max_dispatches`` — budget of process resumptions for this call.
        ``raise_on_deadlock`` — raise :class:`DeadlockError` instead of
        returning a ``DEADLOCK`` stop reason.
        """
        budget = max_dispatches
        while True:
            if not self._ready:
                if not self._advance_time(until):
                    return self._final_stop(until, raise_on_deadlock)
                continue

            proc = self._ready.popleft()
            if not proc.alive:  # killed while queued: no hook, no budget
                continue

            # pinned ordering: alive-check -> hook -> budget -> dispatch
            # (a hook-forced stop must not consume dispatch budget)
            if self._pre_dispatch_armed:
                forced = self._pre_dispatch_hook(proc)
                if forced is not None:
                    self._make_ready_front(proc)
                    return StopReason(StopKind.SUSPENDED, self.now, proc, forced.reason)

            if budget is not None:
                if budget <= 0:
                    self._make_ready_front(proc)
                    return StopReason(StopKind.MAX_DISPATCHES, self.now, proc)
                budget -= 1

            stop = self._dispatch(proc)
            if stop is not None:
                return stop

    def _advance_time(self, until: Optional[int]) -> bool:
        """Pop the timed heap into the ready deque.  False if heap empty."""
        while self._timed:
            time, _, proc = self._timed[0]
            if not proc.alive:
                heapq.heappop(self._timed)
                continue
            if until is not None and time > until:
                return False
            heapq.heappop(self._timed)
            self.now = max(self.now, time)
            self._make_ready(proc)
            # drain every entry at the same timestamp for FIFO fairness
            while self._timed and self._timed[0][0] == time:
                _, _, nxt = heapq.heappop(self._timed)
                if nxt.alive:
                    self._make_ready(nxt)
            return True
        return False

    def _final_stop(self, until: Optional[int], raise_on_deadlock: bool) -> StopReason:
        if self._timed and until is not None:
            # stopped by the time horizon, not by starvation
            self.now = until
            return StopReason(StopKind.MAX_TIME, self.now)
        blocked = self.blocked_processes
        frozen = self.frozen_processes
        if blocked or frozen:
            names = [p.name for p in blocked] + [f"{p.name} (frozen)" for p in frozen]
            if raise_on_deadlock:
                raise DeadlockError(names)
            return StopReason(StopKind.DEADLOCK, self.now, payload=names)
        return StopReason(StopKind.EXHAUSTED, self.now)

    def _dispatch(self, proc: Process) -> Optional[StopReason]:
        """Resume one process and apply the request it yields."""
        self._dispatch_count += 1
        send_value, proc._send_value = proc._send_value, None
        try:
            request = proc.gen.send(send_value)
        except StopIteration as stop:
            proc.state = ProcessState.TERMINATED
            proc.result = stop.value
            if self.trace is not None:
                self.trace.record(self.now, proc.name, "terminate")
            if self._post_dispatch_armed:
                self._post_dispatch_hook(self._dispatch_count)
            return None
        except Exception as exc:  # noqa: BLE001 - surfaced to the caller
            proc.state = ProcessState.FAILED
            proc.exception = exc
            if self.trace is not None:
                # lazy detail: the repr is only rendered if the recorder
                # actually stores the record (not when it is full)
                self.trace.record(self.now, proc.name, "fail", lambda: repr(exc))
            return StopReason(StopKind.PROCESS_ERROR, self.now, proc, exc)

        if isinstance(request, Delay):
            if request.cycles == 0:
                self._make_ready(proc)
            else:
                self._schedule_at(self.now + request.cycles, proc)
        elif isinstance(request, Yield):
            self._make_ready(proc)
        elif isinstance(request, WaitEvent):
            proc.state = ProcessState.WAITING
            proc.waiting_on = request.event
            request.event.add_waiter(proc)
        elif isinstance(request, Suspend):
            # A mid-dispatch debugger stop splits one logical dispatch into
            # several generator resumes; undo the increment so the count
            # stays invariant under interactive stops (see dispatch_count).
            self._dispatch_count -= 1
            self._make_ready_front(proc)
            if self.trace is not None:
                self.trace.record(self.now, proc.name, "suspend", request.reason)
            return StopReason(StopKind.SUSPENDED, self.now, proc, request.reason)
        else:
            proc.state = ProcessState.FAILED
            err = SimulationError(f"process {proc.name} yielded invalid request {request!r}")
            proc.exception = err
            return StopReason(StopKind.PROCESS_ERROR, self.now, proc, err)
        if self._post_dispatch_armed:
            self._post_dispatch_hook(self._dispatch_count)
        return None
