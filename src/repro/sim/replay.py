"""Deterministic record/replay journal.

Dataflow programs have deterministic communication semantics, and the
kernel dispatches deterministically (FIFO ready queue, monotone tie-break
in the timed heap) — so a run is fully reproduced by re-executing it from
the start, *provided nothing external perturbs it*.  The journal records
everything needed to (a) navigate a finished or stopped execution by
position and (b) prove the re-execution really is identical:

- a compact **event log** — one entry per framework event (entry/exit of
  ``pedf_rt_*``), carrying the simulated time, the acting actor and, for
  data-exchange exits, the token's global sequence number.  The log
  doubles as a fingerprint stream: replaying compares each event against
  the recorded one (the determinism self-check).
- periodic **checkpoints** — digests taken every N completed dispatches:
  simulated time, next token seq, per-link occupancy as token-seq
  tuples.  A replay that matches every digest en route has provably
  rebuilt the same machine.
- sparse **deep state snapshots** — full :class:`~repro.sim.snapshot.
  MachineState` captures (kernel clock/heap/ready queue, link queues
  with payload texts, per-actor scheduling state) taken at checkpoint
  boundaries.  Replays verify them en route (a much stronger self-check
  than the digest), and the :class:`~repro.core.replay.ReplayManager`
  pairs them with *resident* replayed machines so ``replay to`` restores
  the nearest snapshot and re-executes only the tail.
- the **stop log** — where the user stopped, as event-log positions, so
  ``reverse-continue`` can land on the previous dataflow stop.
- the **alteration log** — debugger-side mutations (token insert / drop /
  poke, predicate overrides) with the event position they were applied
  at, re-applied at the same positions during replay.

Positions are *event indices* (1-based count of emitted framework
events), not dispatch counts or timestamps: the event stream is invariant
under interactive stops, and an index names an exact mid-dispatch machine
state (the moment just after that event's listeners ran).

Storage reuses :class:`~repro.sim.trace.TraceRecorder` (same dual
cap/ring policies, same O(1) per-kind indexing).  With ``segment_dir``
set, the journal instead keeps a sliding in-memory window and rotates
older events — side tables included — into compressed on-disk
:mod:`segments <repro.sim.segments>`; every query and the streaming
:meth:`ReplayJournal.iter_indexed` fall back to segments transparently,
so nothing is ever lost and memory stays bounded on unbounded runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..errors import ReplayError
from .segments import DEFAULT_SEGMENT_WINDOW, SegmentStore
from .trace import TraceRecord, TraceRecorder

#: event-log kind of a completed token production — the determinism
#: fingerprint stream ("symbol:phase", see ReplayJournal.add_event)
TOKEN_EVENT_KIND = "pedf_rt_push:exit"

DEFAULT_CHECKPOINT_INTERVAL = 64


@dataclass(frozen=True)
class Checkpoint:
    """Digest of the machine at a dispatch boundary."""

    index: int  # event-log position when taken
    dispatch: int  # kernel dispatch count when taken
    time: int  # simulated time
    next_seq: int  # runtime token-seq counter state
    #: (link name, (queued token seqs, oldest first)) for every link
    occupancy: Tuple[Tuple[str, Tuple[int, ...]], ...]

    def describe(self) -> str:
        held = sum(len(seqs) for _, seqs in self.occupancy)
        return (
            f"checkpoint @event {self.index} (dispatch {self.dispatch}, t={self.time}, "
            f"next seq {self.next_seq}, {held} token(s) in flight)"
        )


@dataclass(frozen=True)
class StopRecord:
    """One debugger stop, positioned on the event log."""

    index: int  # event-log position when the stop was recorded
    kind: str  # StopKind.value ("dataflow", "breakpoint", ...)
    message: str
    bp_id: Optional[int]
    time: int


@dataclass(frozen=True)
class AlterationRecord:
    """One execution alteration, positioned on the event log."""

    index: int  # event-log position when the alteration was applied
    kind: str  # "insert" | "drop" | "poke" | "set_pred"
    conn_spec: str  # "actor::iface" (or "module.pred" for set_pred)
    value_text: Optional[str]
    arg_index: Optional[int]


class ReplayJournal:
    """The recorded run: event log + checkpoints + stop/alteration logs."""

    def __init__(
        self,
        limit: Optional[int] = None,
        ring: bool = False,
        segment_dir: Optional[str] = None,
        window: int = DEFAULT_SEGMENT_WINDOW,
    ):
        if segment_dir is not None:
            # segment rotation bounds memory without losing anything, so
            # the lossy cap/ring policies are mutually exclusive with it
            limit, ring = None, False
        self.events = TraceRecorder(limit=limit, ring=ring)
        self.segments: Optional[SegmentStore] = (
            SegmentStore(segment_dir) if segment_dir is not None else None
        )
        self.window = max(2, window)
        self.checkpoints: List[Checkpoint] = []
        self.stops: List[StopRecord] = []
        self.alterations: List[AlterationRecord] = []
        #: token seq -> link name, noted at push/pop exits.  Not part of
        #: the fingerprint stream; it lets a post-hoc consumer attribute
        #: recorded token events to links.  Rotates into segments with
        #: the push event that minted the seq (see ``token_link``).
        self.token_links: Dict[int, str] = {}
        #: event position -> link name for *every* push/pop event (both
        #: phases).  Entries matter to the runtime-verification deriver:
        #: a push/pop entry with no matching exit is an actor blocked on
        #: that link, the raw material of the wait-for deadlock analysis.
        self.event_links: Dict[int, str] = {}
        #: event position -> target filter qualname for actor_start /
        #: actor_sync events, so scheduling counters (starts issued, sync
        #: targets) are reconstructible from the journal.
        self.event_targets: Dict[int, str] = {}
        #: event position -> canonical payload text, noted at push exits.
        #: The raw material of the *sharded* determinism contract:
        #: per-link ordered value streams are invariant under scheduling
        #: (Kahn), so they — unlike global seqs or timestamps — can be
        #: compared between a single-kernel run and a merge of per-shard
        #: journals.  Keyed by event position, not token seq: each shard
        #: numbers its own tokens, so seqs collide across journals while
        #: positions cannot.
        self.event_values: Dict[int, str] = {}
        #: dispatch count -> deep MachineState snapshot (sparse; see
        #: :mod:`repro.sim.snapshot`).  Small next to the event log, so
        #: kept in memory even when the log itself rotates.
        self.state_snapshots: Dict[int, Any] = {}
        self._snapshot_order: List[int] = []
        self._total = 0
        self._max_seq: Optional[int] = None
        self._cp_by_dispatch: Dict[int, Checkpoint] = {}

    # ------------------------------------------------------------ recording

    @property
    def total_events(self) -> int:
        """Lifetime event count (positions run 1..total_events)."""
        return self._total

    @property
    def max_seq_recorded(self) -> Optional[int]:
        """Largest token seq the event log ever carried (even if the
        carrying record was later evicted); None if no token yet."""
        return self._max_seq

    @property
    def evicted_events(self) -> int:
        """Events irrecoverably discarded by a cap/ring bound.  Always 0
        for segment-rotating journals — rotation is not loss."""
        return self.events.dropped

    def add_event(
        self, time: int, phase: str, symbol: str, actor: Optional[str], seq: Optional[int]
    ) -> int:
        """Append one framework event; returns its 1-based position."""
        self._total += 1
        if seq is not None and (self._max_seq is None or seq > self._max_seq):
            self._max_seq = seq
        self.events.record(time, actor or "", f"{symbol}:{phase}", seq)
        if self.segments is not None and len(self.events) >= self.window:
            self._rotate()
        return self._total

    def _rotate(self) -> None:
        """Move the oldest half-window of the in-memory log (and its side
        table entries) into a compressed on-disk segment."""
        n = len(self.events) // 2
        first = self._total - len(self.events) + 1
        records = self.events.drain_oldest(n)
        last = first + len(records) - 1
        links: Dict[int, str] = {}
        targets: Dict[int, str] = {}
        values: Dict[int, str] = {}
        tokens: Dict[int, str] = {}
        for pos in range(first, last + 1):
            link = self.event_links.pop(pos, None)
            if link is not None:
                links[pos] = link
            target = self.event_targets.pop(pos, None)
            if target is not None:
                targets[pos] = target
            value = self.event_values.pop(pos, None)
            if value is not None:
                values[pos] = value
        for rec in records:
            # a push exit mints its seq: the token->link note travels with it
            if rec.kind == TOKEN_EVENT_KIND and rec.detail is not None:
                link = self.token_links.pop(rec.detail, None)
                if link is not None:
                    tokens[rec.detail] = link
        self.segments.rotate(first, records, links, targets, values, tokens)

    def note_token_link(self, seq: Optional[int], link: Optional[str]) -> None:
        """Remember which link carried token ``seq`` (first note wins)."""
        if seq is not None and link:
            self.token_links.setdefault(seq, link)

    def note_event_value(self, index: int, value_text: Optional[str]) -> None:
        """Remember the canonical payload text pushed by the event at
        position ``index``.  Side table only — not fingerprint-compared."""
        if value_text is not None:
            self.event_values[index] = value_text

    def note_event_link(self, index: int, link: Optional[str]) -> None:
        """Remember which link a push/pop event (at position ``index``)
        operated on.  Side table only — not fingerprint-compared."""
        if link:
            self.event_links[index] = link

    def note_event_target(self, index: int, target: Optional[str]) -> None:
        """Remember the target filter of a scheduling event (actor_start
        / actor_sync) at position ``index``.  Side table only."""
        if target:
            self.event_targets[index] = target

    def add_checkpoint(self, cp: Checkpoint) -> None:
        self.checkpoints.append(cp)
        self._cp_by_dispatch[cp.dispatch] = cp

    def add_state_snapshot(self, dispatch: int, state: Any) -> None:
        """Attach a deep MachineState snapshot to a dispatch boundary."""
        if dispatch not in self.state_snapshots:
            self._snapshot_order.append(dispatch)
        self.state_snapshots[dispatch] = state

    def state_snapshot_at(self, dispatch: int) -> Optional[Any]:
        return self.state_snapshots.get(dispatch)

    def add_stop(self, record: StopRecord) -> None:
        self.stops.append(record)

    def add_alteration(self, record: AlterationRecord) -> None:
        self.alterations.append(record)

    # -------------------------------------------------------------- queries

    def record_at(self, index: int) -> Optional[TraceRecord]:
        """The stored event at 1-based ``index``; None if out of range or
        evicted by a cap/ring bound.  Falls back to on-disk segments when
        the journal rotates."""
        if not 1 <= index <= self._total:
            return None
        events = self.events
        stored = len(events)
        first = self._total - stored + 1  # oldest in-memory position
        if events.ring or self.segments is not None:
            if index >= first:
                return events.at(index - first)
            if self.segments is not None:
                seg = self.segments.segment_for(index)
                if seg is not None:
                    return self.segments.load(seg).record_at(index)
            return None
        if index > stored:
            return None
        return events.at(index - 1)

    def link_for_event(self, index: int) -> Optional[str]:
        """``event_links`` lookup that falls back to segments."""
        link = self.event_links.get(index)
        if link is None and self.segments is not None:
            seg = self.segments.segment_for(index)
            if seg is not None:
                return self.segments.load(seg).event_links.get(index)
        return link

    def target_for_event(self, index: int) -> Optional[str]:
        """``event_targets`` lookup that falls back to segments."""
        target = self.event_targets.get(index)
        if target is None and self.segments is not None:
            seg = self.segments.segment_for(index)
            if seg is not None:
                return self.segments.load(seg).event_targets.get(index)
        return target

    def value_for_event(self, index: int) -> Optional[str]:
        """``event_values`` lookup that falls back to segments."""
        value = self.event_values.get(index)
        if value is None and self.segments is not None:
            seg = self.segments.segment_for(index)
            if seg is not None:
                return self.segments.load(seg).event_values.get(index)
        return value

    def token_link(self, seq: int) -> Optional[str]:
        """``token_links`` lookup that falls back to segments (newest
        first — interactive lookups usually target recent tokens)."""
        link = self.token_links.get(seq)
        if link is None and self.segments is not None:
            for seg in reversed(self.segments.segments):
                link = self.segments.load(seg).token_links.get(seq)
                if link is not None:
                    return link
        return link

    def checkpoint_at_dispatch(self, dispatch: int) -> Optional[Checkpoint]:
        return self._cp_by_dispatch.get(dispatch)

    def nearest_checkpoint(self, index: int) -> Optional[Checkpoint]:
        """The last checkpoint taken at or before event position ``index``."""
        best: Optional[Checkpoint] = None
        for cp in self.checkpoints:
            if cp.index <= index:
                best = cp
            else:
                break
        return best

    def iter_indexed(self, kind: Optional[str] = None) -> Iterator[Tuple[int, TraceRecord]]:
        """Stream ``(position, record)`` over everything still available —
        on-disk segments first (one resident at a time), then the
        in-memory window — without materialising the whole journal."""
        if self.segments is not None:
            for pos, rec in self.segments.iter_records():
                if kind is None or rec.kind == kind:
                    yield pos, rec
        base = self._stored_base()
        for offset, rec in enumerate(self.events):
            if kind is None or rec.kind == kind:
                yield base + offset + 1, rec

    def token_stream(self, kind: str = TOKEN_EVENT_KIND) -> List[int]:
        """Global seq numbers of every recorded token production, in
        order — the run's determinism fingerprint."""
        if self.segments is None:
            return [rec.detail for rec in self.events.of_kind(kind) if rec.detail is not None]
        return [rec.detail for _, rec in self.iter_indexed(kind) if rec.detail is not None]

    def link_value_streams(
        self, kind: str = TOKEN_EVENT_KIND, partial: bool = False
    ) -> Dict[str, List[str]]:
        """Per-link ordered token payload streams (canonical texts).

        Requires the ``event_links`` / ``event_values`` side tables (both
        populated by :class:`~repro.core.replay.RunRecorder`).  This is
        the shard-invariant projection of the journal: merging each
        shard's streams reproduces the single-kernel streams exactly.

        A cap/ring-bounded journal that actually evicted events cannot
        produce complete streams; that raises unless ``partial=True``
        explicitly asks for the surviving window (a segment-rotating
        journal never evicts and always streams everything)."""
        if self.evicted_events and not partial:
            lo, hi = self.stored_range()
            raise ReplayError(
                f"link value streams are incomplete: the journal bound evicted "
                f"{self.evicted_events} of {self._total} event(s) (stored window "
                f"{lo}..{hi}); record with segment_dir=... to keep everything, "
                f"or pass partial=True for the surviving window"
            )
        streams: Dict[str, List[str]] = {}
        for i, rec in self.iter_indexed(kind):
            link = self.link_for_event(i)
            value = self.value_for_event(i)
            if link is None or value is None:
                continue
            streams.setdefault(link, []).append(value)
        return streams

    def _stored_base(self) -> int:
        """Position of the oldest in-memory event, minus one."""
        if self.events.ring or self.segments is not None:
            return self._total - len(self.events)
        return 0

    def stored_range(self) -> Tuple[int, int]:
        """The contiguous position range still *available* (in memory or
        in segments): positions outside it were irrecoverably evicted."""
        if self._total == 0:
            return (0, 0)
        if self.segments is not None:
            return (1, self._total)
        if self.events.ring:
            return (self._total - len(self.events) + 1, self._total)
        return (1, len(self.events))

    def index_for_seq(self, seq: int, kind: str = TOKEN_EVENT_KIND) -> Optional[int]:
        """Event position at which token ``seq`` was produced, or None if
        that position is not available (see :meth:`seq_status` for the
        evicted / never-recorded distinction)."""
        for i, rec in self.iter_indexed(kind):
            if rec.detail == seq:
                return i
        return None

    def seq_status(self, seq: int, kind: str = TOKEN_EVENT_KIND) -> Tuple[str, Optional[int]]:
        """Resolve a token seq to ``(status, index)``:

        - ``("found", index)`` — the production event is available;
        - ``("evicted", None)`` — it *was* recorded, but the journal
          bound discarded it (seq <= the largest seq ever logged and
          events were evicted);
        - ``("unknown", None)`` — no such token was ever recorded."""
        index = self.index_for_seq(seq, kind)
        if index is not None:
            return ("found", index)
        if (
            self.evicted_events
            and self._max_seq is not None
            and 0 <= seq <= self._max_seq
        ):
            return ("evicted", None)
        return ("unknown", None)

    def index_for_time(self, time: int) -> Optional[int]:
        """First available event position at simulated time >= ``time``."""
        for i, rec in self.iter_indexed():
            if rec.time >= time:
                return i
        return None

    def time_status(self, time: int) -> Tuple[str, Optional[int]]:
        """Resolve a timestamp to ``(status, index)``: ``found`` when the
        first event at/after ``time`` is provably available, ``evicted``
        when eviction makes the answer unknowable (sim time is monotone,
        so a ring journal is only trustworthy strictly *after* the oldest
        surviving record's time), ``unknown`` when the run never reached
        ``time``."""
        index = self.index_for_time(time)
        if self.evicted_events:
            if self.events.ring:
                lo, _ = self.stored_range()
                oldest = self.record_at(lo)
                # an evicted event may also match: times are nondecreasing,
                # so everything evicted happened at or before oldest.time
                if oldest is None or time <= oldest.time:
                    return ("evicted", None)
            elif index is None:
                # cap mode drops the *newest* events: no stored match says
                # nothing about the dropped tail
                return ("evicted", None)
        if index is None:
            return ("unknown", None)
        return ("found", index)

    @staticmethod
    def describe_record(rec: TraceRecord) -> str:
        seq = f" seq={rec.detail}" if rec.detail is not None else ""
        who = f" [{rec.process}]" if rec.process else ""
        return f"{rec.kind}{who} t={rec.time}{seq}"
