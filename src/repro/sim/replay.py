"""Deterministic record/replay journal.

Dataflow programs have deterministic communication semantics, and the
kernel dispatches deterministically (FIFO ready queue, monotone tie-break
in the timed heap) — so a run is fully reproduced by re-executing it from
the start, *provided nothing external perturbs it*.  The journal records
everything needed to (a) navigate a finished or stopped execution by
position and (b) prove the re-execution really is identical:

- a compact **event log** — one entry per framework event (entry/exit of
  ``pedf_rt_*``), carrying the simulated time, the acting actor and, for
  data-exchange exits, the token's global sequence number.  The log
  doubles as a fingerprint stream: replaying compares each event against
  the recorded one (the determinism self-check).
- periodic **checkpoints** — lightweight digests (not restorable state:
  actor coroutines cannot be snapshotted) taken every N completed
  dispatches: simulated time, next token seq, per-link occupancy as
  token-seq tuples.  A replay that matches every digest en route has
  provably rebuilt the same machine.
- the **stop log** — where the user stopped, as event-log positions, so
  ``reverse-continue`` can land on the previous dataflow stop.
- the **alteration log** — debugger-side mutations (token insert / drop /
  poke, predicate overrides) with the event position they were applied
  at, re-applied at the same positions during replay.

Positions are *event indices* (1-based count of emitted framework
events), not dispatch counts or timestamps: the event stream is invariant
under interactive stops, and an index names an exact mid-dispatch machine
state (the moment just after that event's listeners ran).

Storage reuses :class:`~repro.sim.trace.TraceRecorder` (same dual
cap/ring policies, same O(1) per-kind indexing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .trace import TraceRecord, TraceRecorder

#: event-log kind of a completed token production — the determinism
#: fingerprint stream ("symbol:phase", see ReplayJournal.add_event)
TOKEN_EVENT_KIND = "pedf_rt_push:exit"

DEFAULT_CHECKPOINT_INTERVAL = 64


@dataclass(frozen=True)
class Checkpoint:
    """Digest of the machine at a dispatch boundary (not restorable)."""

    index: int  # event-log position when taken
    dispatch: int  # kernel dispatch count when taken
    time: int  # simulated time
    next_seq: int  # runtime token-seq counter state
    #: (link name, (queued token seqs, oldest first)) for every link
    occupancy: Tuple[Tuple[str, Tuple[int, ...]], ...]

    def describe(self) -> str:
        held = sum(len(seqs) for _, seqs in self.occupancy)
        return (
            f"checkpoint @event {self.index} (dispatch {self.dispatch}, t={self.time}, "
            f"next seq {self.next_seq}, {held} token(s) in flight)"
        )


@dataclass(frozen=True)
class StopRecord:
    """One debugger stop, positioned on the event log."""

    index: int  # event-log position when the stop was recorded
    kind: str  # StopKind.value ("dataflow", "breakpoint", ...)
    message: str
    bp_id: Optional[int]
    time: int


@dataclass(frozen=True)
class AlterationRecord:
    """One execution alteration, positioned on the event log."""

    index: int  # event-log position when the alteration was applied
    kind: str  # "insert" | "drop" | "poke" | "set_pred"
    conn_spec: str  # "actor::iface" (or "module.pred" for set_pred)
    value_text: Optional[str]
    arg_index: Optional[int]


class ReplayJournal:
    """The recorded run: event log + checkpoints + stop/alteration logs."""

    def __init__(self, limit: Optional[int] = None, ring: bool = False):
        self.events = TraceRecorder(limit=limit, ring=ring)
        self.checkpoints: List[Checkpoint] = []
        self.stops: List[StopRecord] = []
        self.alterations: List[AlterationRecord] = []
        #: token seq -> link name, noted at push/pop exits.  Not part of
        #: the fingerprint stream; it lets a post-hoc consumer (the
        #: telemetry deriver) attribute recorded token events to links,
        #: which the event log alone cannot (it stores only the seq).
        self.token_links: Dict[int, str] = {}
        #: event position -> link name for *every* push/pop event (both
        #: phases).  Entries matter to the runtime-verification deriver:
        #: a push/pop entry with no matching exit is an actor blocked on
        #: that link, the raw material of the wait-for deadlock analysis.
        self.event_links: Dict[int, str] = {}
        #: event position -> target filter qualname for actor_start /
        #: actor_sync events, so scheduling counters (starts issued, sync
        #: targets) are reconstructible from the journal.
        self.event_targets: Dict[int, str] = {}
        #: event position -> canonical payload text, noted at push exits.
        #: The raw material of the *sharded* determinism contract:
        #: per-link ordered value streams are invariant under scheduling
        #: (Kahn), so they — unlike global seqs or timestamps — can be
        #: compared between a single-kernel run and a merge of per-shard
        #: journals.  Keyed by event position, not token seq: each shard
        #: numbers its own tokens, so seqs collide across journals while
        #: positions cannot.
        self.event_values: Dict[int, str] = {}
        self._total = 0
        self._cp_by_dispatch: Dict[int, Checkpoint] = {}

    # ------------------------------------------------------------ recording

    @property
    def total_events(self) -> int:
        """Lifetime event count (positions run 1..total_events)."""
        return self._total

    def add_event(
        self, time: int, phase: str, symbol: str, actor: Optional[str], seq: Optional[int]
    ) -> int:
        """Append one framework event; returns its 1-based position."""
        self._total += 1
        self.events.record(time, actor or "", f"{symbol}:{phase}", seq)
        return self._total

    def note_token_link(self, seq: Optional[int], link: Optional[str]) -> None:
        """Remember which link carried token ``seq`` (first note wins)."""
        if seq is not None and link:
            self.token_links.setdefault(seq, link)

    def note_event_value(self, index: int, value_text: Optional[str]) -> None:
        """Remember the canonical payload text pushed by the event at
        position ``index``.  Side table only — not fingerprint-compared."""
        if value_text is not None:
            self.event_values[index] = value_text

    def note_event_link(self, index: int, link: Optional[str]) -> None:
        """Remember which link a push/pop event (at position ``index``)
        operated on.  Side table only — not fingerprint-compared."""
        if link:
            self.event_links[index] = link

    def note_event_target(self, index: int, target: Optional[str]) -> None:
        """Remember the target filter of a scheduling event (actor_start
        / actor_sync) at position ``index``.  Side table only."""
        if target:
            self.event_targets[index] = target

    def add_checkpoint(self, cp: Checkpoint) -> None:
        self.checkpoints.append(cp)
        self._cp_by_dispatch[cp.dispatch] = cp

    def add_stop(self, record: StopRecord) -> None:
        self.stops.append(record)

    def add_alteration(self, record: AlterationRecord) -> None:
        self.alterations.append(record)

    # -------------------------------------------------------------- queries

    def record_at(self, index: int) -> Optional[TraceRecord]:
        """The stored event at 1-based ``index``; None if out of range or
        evicted by the bound (cap mode keeps the first ``limit`` events,
        ring mode the last)."""
        if not 1 <= index <= self._total:
            return None
        events = self.events
        stored = len(events)
        if events.ring:
            first = self._total - stored + 1  # oldest stored position
            if index < first:
                return None
            return events.at(index - first)
        if index > stored:
            return None
        return events.at(index - 1)

    def checkpoint_at_dispatch(self, dispatch: int) -> Optional[Checkpoint]:
        return self._cp_by_dispatch.get(dispatch)

    def nearest_checkpoint(self, index: int) -> Optional[Checkpoint]:
        """The last checkpoint taken at or before event position ``index``."""
        best: Optional[Checkpoint] = None
        for cp in self.checkpoints:
            if cp.index <= index:
                best = cp
            else:
                break
        return best

    def token_stream(self, kind: str = TOKEN_EVENT_KIND) -> List[int]:
        """Global seq numbers of every recorded token production, in
        order — the run's determinism fingerprint."""
        return [rec.detail for rec in self.events.of_kind(kind) if rec.detail is not None]

    def link_value_streams(self, kind: str = TOKEN_EVENT_KIND) -> Dict[str, List[str]]:
        """Per-link ordered token payload streams (canonical texts).

        Requires the ``event_links`` / ``event_values`` side tables (both
        populated by :class:`~repro.core.replay.RunRecorder`).  This is
        the shard-invariant projection of the journal: merging each
        shard's streams reproduces the single-kernel streams exactly."""
        streams: Dict[str, List[str]] = {}
        for i, rec in enumerate(self.events, start=self._stored_base() + 1):
            if rec.kind != kind:
                continue
            link = self.event_links.get(i)
            value = self.event_values.get(i)
            if link is None or value is None:
                continue
            streams.setdefault(link, []).append(value)
        return streams

    def _stored_base(self) -> int:
        """Position of the oldest stored event, minus one."""
        return self._total - len(self.events) if self.events.ring else 0

    def index_for_seq(self, seq: int, kind: str = TOKEN_EVENT_KIND) -> Optional[int]:
        """Event position at which token ``seq`` was produced."""
        for i, rec in enumerate(self.events, start=self._stored_base() + 1):
            if rec.kind == kind and rec.detail == seq:
                return i
        return None

    def index_for_time(self, time: int) -> Optional[int]:
        """First stored event position at simulated time >= ``time``."""
        for i, rec in enumerate(self.events, start=self._stored_base() + 1):
            if rec.time >= time:
                return i
        return None

    @staticmethod
    def describe_record(rec: TraceRecord) -> str:
        seq = f" seq={rec.detail}" if rec.detail is not None else ""
        who = f" [{rec.process}]" if rec.process else ""
        return f"{rec.kind}{who} t={rec.time}{seq}"
