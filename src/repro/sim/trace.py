"""Lightweight kernel trace, mainly for tests and the FIG-3 bench.

Two bounded policies (both O(1) per record, with a per-kind index so
``of_kind``/``count`` never scan the full record list):

- ``ring=False`` (default): keep the *first* ``limit`` records; once the
  limit is reached nothing is allocated at all — the hot path does one
  length test and bumps ``dropped``.
- ``ring=True``: a classic ring buffer keeping the *last* ``limit``
  records, evicting the oldest; ``dropped`` counts evictions.

``detail`` may be a zero-argument callable; it is only rendered when the
record is actually stored, so call sites can trace expensive formatted
strings (``lambda: repr(exc)``) for free on the fast path.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Iterator, List, NamedTuple, Optional


@dataclass(frozen=True)
class TraceRecord:
    time: int
    process: str
    kind: str
    detail: Any = None


class TraceSnapshot(NamedTuple):
    """A consistent point-in-time copy of a recorder's state.

    ``records`` are the stored records (oldest first), ``kind_counts``
    the lifetime per-kind totals and ``dropped`` the number of records
    the bound discarded — all taken together, so a caller never observes
    a records list from one moment paired with counters from another.
    """

    records: List[TraceRecord]
    kind_counts: Dict[str, int]
    dropped: int


class TraceRecorder:
    """Accumulates kernel events; cheap enough to leave on in tests."""

    __slots__ = ("limit", "ring", "dropped", "kind_counts", "_records", "_by_kind")

    def __init__(self, limit: Optional[int] = None, ring: bool = False):
        self.limit = limit
        self.ring = ring
        self.dropped = 0
        #: lifetime events seen per kind (including dropped/evicted ones)
        self.kind_counts: Dict[str, int] = {}
        self._records: Deque[TraceRecord] = deque()
        self._by_kind: Dict[str, Deque[TraceRecord]] = {}

    @property
    def records(self) -> List[TraceRecord]:
        """Stored records, oldest first."""
        return list(self._records)

    def __len__(self) -> int:
        """Stored record count (lifetime totals live in ``kind_counts``)."""
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        """Iterate the stored records, oldest first, without copying."""
        return iter(self._records)

    def at(self, index: int) -> TraceRecord:
        """The stored record at ``index`` (0-based, oldest first)."""
        return self._records[index]

    def snapshot(self) -> TraceSnapshot:
        """Atomically copy (records, kind_counts, dropped) — the public
        way to read a recorder's full state without poking internals."""
        return TraceSnapshot(list(self._records), dict(self.kind_counts), self.dropped)

    def record(self, time: int, process: str, kind: str, detail: Any = None) -> None:
        counts = self.kind_counts
        counts[kind] = counts.get(kind, 0) + 1
        limit = self.limit
        if limit is not None and len(self._records) >= limit:
            if not self.ring:
                # capped mode: drop the newest without building the record
                self.dropped += 1
                return
            if limit <= 0:
                self.dropped += 1
                return
            evicted = self._records.popleft()
            self._by_kind[evicted.kind].popleft()
            self.dropped += 1
        if callable(detail):
            detail = detail()
        rec = TraceRecord(time, process, kind, detail)
        self._records.append(rec)
        bucket = self._by_kind.get(kind)
        if bucket is None:
            bucket = self._by_kind[kind] = deque()
        bucket.append(rec)

    def drain_oldest(self, n: int) -> List[TraceRecord]:
        """Remove and return the ``n`` oldest stored records (in order).

        Unlike ring eviction this is *rotation*, not loss: the caller is
        expected to persist the drained records elsewhere (see
        :class:`~repro.sim.segments.SegmentStore`), so ``dropped`` is not
        incremented and ``kind_counts`` keeps its lifetime totals."""
        out: List[TraceRecord] = []
        for _ in range(min(n, len(self._records))):
            rec = self._records.popleft()
            self._by_kind[rec.kind].popleft()
            out.append(rec)
        return out

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """Stored records of one kind — O(matches), not O(all records)."""
        bucket = self._by_kind.get(kind)
        return list(bucket) if bucket else []

    def count(self, kind: str) -> int:
        """Currently stored records of one kind, O(1)."""
        bucket = self._by_kind.get(kind)
        return len(bucket) if bucket else 0

    def total(self, kind: str) -> int:
        """Lifetime events of one kind, including dropped/evicted, O(1)."""
        return self.kind_counts.get(kind, 0)

    def clear(self) -> None:
        self._records.clear()
        self._by_kind.clear()
        self.kind_counts.clear()
        self.dropped = 0
