"""Lightweight kernel trace, mainly for tests and the FIG-3 bench."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    time: int
    process: str
    kind: str
    detail: Any = None


class TraceRecorder:
    """Accumulates kernel events; cheap enough to leave on in tests."""

    def __init__(self, limit: Optional[int] = None):
        self.records: List[TraceRecord] = []
        self.limit = limit
        self.dropped = 0

    def record(self, time: int, process: str, kind: str, detail: Any = None) -> None:
        if self.limit is not None and len(self.records) >= self.limit:
            self.dropped += 1
            return
        self.records.append(TraceRecord(time, process, kind, detail))

    def of_kind(self, kind: str) -> List[TraceRecord]:
        return [r for r in self.records if r.kind == kind]

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0
