"""Compressed on-disk journal segments: bounded memory, unbounded runs.

A :class:`~repro.sim.replay.ReplayJournal` recorded with ``segment_dir``
keeps only a sliding in-memory window of the event log; once the window
fills, the oldest half rotates into a **segment** — one zlib-compressed
pickle holding the rotated records *and* the matching slices of every
side table (event links/targets/values, token links).  Nothing is lost:
positions stay 1-based and contiguous, queries fall back to segments
transparently, and the derivers stream segment by segment so a profile
or verdict over a multi-million-event run never materialises the whole
journal in memory.

Segments are immutable once written and named by their position range
(``seg-<first>-<last>.bin``), so a directory doubles as a durable,
order-reconstructible record of the run.  A tiny LRU (default: the two
most recently touched segments) keeps sequential streaming — the common
access pattern of ``rv.derive`` / ``derive_telemetry`` — at one
decompression per segment.
"""

from __future__ import annotations

import os
import pickle
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .trace import TraceRecord

#: in-memory event-log window before rotation kicks in
DEFAULT_SEGMENT_WINDOW = 4096

_FORMAT = 1


@dataclass(frozen=True)
class SegmentInfo:
    """One rotated chunk of the event log (positions ``first..last``)."""

    first: int  # 1-based position of the oldest record in the segment
    last: int  # 1-based position of the newest record
    path: str
    compressed_bytes: int

    @property
    def count(self) -> int:
        return self.last - self.first + 1


class SegmentData:
    """A decompressed segment: records + side-table slices."""

    __slots__ = ("first", "last", "records", "event_links", "event_targets",
                 "event_values", "token_links")

    def __init__(self, payload: Dict[str, Any]):
        self.first: int = payload["first"]
        self.last: int = payload["last"]
        self.records: List[TraceRecord] = [
            TraceRecord(*fields) for fields in payload["records"]
        ]
        self.event_links: Dict[int, str] = payload["event_links"]
        self.event_targets: Dict[int, str] = payload["event_targets"]
        self.event_values: Dict[int, str] = payload["event_values"]
        self.token_links: Dict[int, str] = payload["token_links"]

    def record_at(self, index: int) -> TraceRecord:
        return self.records[index - self.first]


class SegmentStore:
    """Writes, indexes and lazily re-loads a journal's rotated segments."""

    def __init__(self, directory: str, cache_size: int = 2):
        self.directory = directory
        self.segments: List[SegmentInfo] = []
        self._cache: "OrderedDict[str, SegmentData]" = OrderedDict()
        self._cache_size = max(1, cache_size)
        os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------- writing

    def rotate(
        self,
        first: int,
        records: List[TraceRecord],
        event_links: Dict[int, str],
        event_targets: Dict[int, str],
        event_values: Dict[int, str],
        token_links: Dict[int, str],
    ) -> SegmentInfo:
        """Persist ``records`` (positions ``first..first+len-1``) plus the
        side-table entries belonging to them.  The caller owns deleting
        the rotated entries from its in-memory tables."""
        if not records:
            raise ValueError("refusing to write an empty segment")
        last = first + len(records) - 1
        payload = {
            "format": _FORMAT,
            "first": first,
            "last": last,
            "records": [(r.time, r.process, r.kind, r.detail) for r in records],
            "event_links": event_links,
            "event_targets": event_targets,
            "event_values": event_values,
            "token_links": token_links,
        }
        blob = zlib.compress(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        path = os.path.join(self.directory, f"seg-{first:012d}-{last:012d}.bin")
        with open(path, "wb") as fh:
            fh.write(blob)
        info = SegmentInfo(first=first, last=last, path=path, compressed_bytes=len(blob))
        self.segments.append(info)
        return info

    # ------------------------------------------------------------- reading

    @property
    def total_stored(self) -> int:
        return sum(seg.count for seg in self.segments)

    @property
    def total_bytes(self) -> int:
        return sum(seg.compressed_bytes for seg in self.segments)

    def segment_for(self, index: int) -> Optional[SegmentInfo]:
        """The segment holding position ``index``, if any (binary search:
        segments are appended in position order and never overlap)."""
        lo, hi = 0, len(self.segments) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            seg = self.segments[mid]
            if index < seg.first:
                hi = mid - 1
            elif index > seg.last:
                lo = mid + 1
            else:
                return seg
        return None

    def load(self, seg: SegmentInfo) -> SegmentData:
        """Decompress a segment (LRU-cached)."""
        cached = self._cache.get(seg.path)
        if cached is not None:
            self._cache.move_to_end(seg.path)
            return cached
        with open(seg.path, "rb") as fh:
            payload = pickle.loads(zlib.decompress(fh.read()))
        data = SegmentData(payload)
        self._cache[seg.path] = data
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
        return data

    def iter_records(self) -> Iterator[Tuple[int, TraceRecord]]:
        """Stream ``(position, record)`` over every segment, oldest first,
        one decompressed segment resident at a time."""
        for seg in self.segments:
            data = self.load(seg)
            for offset, rec in enumerate(data.records):
                yield seg.first + offset, rec

    def describe(self) -> str:
        if not self.segments:
            return "0 segment(s)"
        return (
            f"{len(self.segments)} segment(s), events "
            f"{self.segments[0].first}..{self.segments[-1].last}, "
            f"{self.total_bytes} compressed byte(s) in {self.directory}"
        )
