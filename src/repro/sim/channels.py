"""Blocking bounded FIFO channel — the substrate of PEDF data links."""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Iterator, List, Optional

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Scheduler

from .process import WaitEvent


class Fifo:
    """Bounded FIFO with blocking (coroutine) put/get.

    ``put`` / ``get`` are generators meant to be driven with ``yield from``
    inside a simulation process.  Non-blocking variants (``try_put``,
    ``try_get``) and direct mutation helpers (``force_put``, ``remove_at``,
    ``replace_at``) exist for the debugger, which must be able to inspect
    and *alter* link contents from outside any process (paper §III,
    "Altering the Normal Execution").
    """

    def __init__(self, scheduler: "Scheduler", capacity: int = 0, name: str = ""):
        if capacity < 0:
            raise SimulationError(f"negative fifo capacity: {capacity}")
        self._scheduler = scheduler
        self.capacity = capacity  # 0 = unbounded
        self.name = name or f"fifo@{id(self):x}"
        self._items: Deque[Any] = deque()
        self._not_empty = scheduler.event(f"{self.name}.not_empty")
        self._not_full = scheduler.event(f"{self.name}.not_full")
        self.total_put = 0
        self.total_got = 0

    # ------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return self.capacity > 0 and len(self._items) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._items

    def peek(self, index: int = 0) -> Any:
        """Read the item at ``index`` without consuming it."""
        return self._items[index]

    def snapshot(self) -> List[Any]:
        """Copy of the queued items, oldest first."""
        return list(self._items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.snapshot())

    # ------------------------------------------------------ blocking access

    def put(self, item: Any):
        """Coroutine: block while full, then enqueue ``item``."""
        while self.full:
            yield WaitEvent(self._not_full)
        self._enqueue(item)

    def get(self):
        """Coroutine: block while empty, then dequeue the oldest item."""
        while self.empty:
            yield WaitEvent(self._not_empty)
        return self._dequeue()

    # -------------------------------------------------- non-blocking access

    def try_put(self, item: Any) -> bool:
        if self.full:
            return False
        self._enqueue(item)
        return True

    def try_get(self) -> Optional[Any]:
        if self.empty:
            return None
        return self._dequeue()

    # --------------------------------------------- debugger-side alteration

    def force_put(self, item: Any, index: Optional[int] = None) -> None:
        """Insert an item regardless of capacity (debugger injection).

        ``index`` positions the item within the queue (default: tail).
        Wakes any consumer blocked on the empty queue.
        """
        if index is None:
            self._items.append(item)
        else:
            self._items.insert(index, item)
        self.total_put += 1
        self._not_empty.notify()

    def remove_at(self, index: int) -> Any:
        """Delete and return the item at ``index`` (debugger deletion)."""
        items = list(self._items)
        item = items.pop(index)
        self._items = deque(items)
        self._not_full.notify()
        return item

    def replace_at(self, index: int, item: Any) -> Any:
        """Swap the item at ``index`` (debugger modification)."""
        old = self._items[index]
        self._items[index] = item
        return old

    # ------------------------------------------------------------ internals

    def _enqueue(self, item: Any) -> None:
        self._items.append(item)
        self.total_put += 1
        self._not_empty.notify()

    def _dequeue(self) -> Any:
        item = self._items.popleft()
        self.total_got += 1
        self._not_full.notify()
        return item

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cap = self.capacity or "inf"
        return f"<Fifo {self.name!r} {len(self._items)}/{cap}>"
