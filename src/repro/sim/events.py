"""Notification events processes can wait on."""

from __future__ import annotations

from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Scheduler
    from .process import Process


class Event:
    """A broadcast notification: every process waiting on it is woken.

    Unlike SystemC events, notifications are immediate (the woken processes
    become READY at the current simulated time) — delayed notification is
    expressed by the *notifying* process sleeping first, which keeps the
    kernel simple and the dispatch order easy to reason about.
    """

    def __init__(self, scheduler: "Scheduler", name: str = ""):
        self._scheduler = scheduler
        self.name = name or f"event@{id(self):x}"
        self._waiters: List["Process"] = []
        # number of notify() calls so far; used by tests and the trace layer
        self.notify_count = 0

    @property
    def waiters(self) -> tuple:
        """Snapshot of the processes currently blocked on this event."""
        return tuple(self._waiters)

    def add_waiter(self, proc: "Process") -> None:
        self._waiters.append(proc)

    def remove_waiter(self, proc: "Process") -> None:
        """Forget a waiter (used when a blocked process is killed)."""
        try:
            self._waiters.remove(proc)
        except ValueError:
            pass

    def notify(self) -> int:
        """Wake every waiter; returns the number of processes woken.

        Safe to call from outside process context (e.g. from the debugger
        injecting a token into a link to untie a deadlock).
        """
        self.notify_count += 1
        woken = self._waiters
        self._waiters = []
        for proc in woken:
            self._scheduler._wake(proc)
        return len(woken)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Event {self.name!r} waiters={len(self._waiters)}>"
