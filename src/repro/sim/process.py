"""Processes and the kernel requests they may yield.

A simulation process is a Python generator.  Each ``yield`` hands a
*request* to the scheduler:

``Delay(cycles)``
    Resume this process after ``cycles`` simulated cycles.  ``Delay(0)``
    re-queues the process behind the other ready processes at the current
    time (a "delta cycle" in SystemC terms).

``WaitEvent(event)``
    Block until ``event.notify()`` is called.

``Suspend(reason)``
    Pause the whole simulation: the scheduler stops dispatching and
    returns a :class:`~repro.sim.kernel.StopReason` to its caller, leaving
    this process first in line for the next ``run()``.  Used exclusively by
    the debugger hooks.

``Yield()``
    Equivalent to ``Delay(0)``; kept as a distinct type for trace clarity.

Nested coroutines compose with ``yield from``: a process may call a helper
generator (e.g. ``Fifo.put``) and every request it yields is forwarded to
the kernel transparently.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..errors import SimulationError


class ProcessState(enum.Enum):
    """Lifecycle of a simulation process."""

    READY = "ready"  # runnable at the current time
    WAITING = "waiting"  # blocked on an Event
    TIMED = "timed"  # sleeping until a future time
    FROZEN = "frozen"  # runnable but held back by the debugger
    TERMINATED = "terminated"  # generator exhausted
    FAILED = "failed"  # generator raised


@dataclass(frozen=True)
class Delay:
    """Request: resume after ``cycles`` simulated cycles (>= 0)."""

    cycles: int = 0

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise SimulationError(f"negative delay: {self.cycles}")


@dataclass(frozen=True)
class Yield:
    """Request: re-queue behind other ready processes (delta cycle)."""


@dataclass(frozen=True)
class WaitEvent:
    """Request: block until the given event is notified."""

    event: Any  # Event; typed as Any to avoid an import cycle


@dataclass(frozen=True)
class Suspend:
    """Request: pause the scheduler and surface ``reason`` to its caller.

    The suspended process remains READY, queued first, so the next
    ``Scheduler.run()`` resumes it at the statement after the yield.
    """

    reason: Any = None


@dataclass
class Process:
    """A cooperatively-scheduled coroutine registered with the scheduler."""

    name: str
    gen: Generator[Any, Any, Any]
    pid: int = -1
    state: ProcessState = ProcessState.READY
    waiting_on: Optional[Any] = None  # Event while WAITING
    result: Any = None  # generator return value once TERMINATED
    exception: Optional[BaseException] = None  # set when FAILED
    # arbitrary metadata slot used by upper layers (e.g. the PE or actor
    # this process models); the kernel itself never reads it
    owner: Any = None
    #: set by Scheduler.freeze — the process is withheld from dispatch
    #: until thawed (paper §III: "block the other execution paths until a
    #: latter investigation")
    frozen: bool = False
    _send_value: Any = field(default=None, repr=False)

    @property
    def alive(self) -> bool:
        return self.state not in (ProcessState.TERMINATED, ProcessState.FAILED)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Process {self.pid} {self.name!r} {self.state.value}>"
