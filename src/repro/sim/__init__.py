"""Discrete-event simulation kernel (SystemC-thread-like substrate).

The paper's prototype ran on the P2012 *functional simulator*, which
implements the platform's processors as cooperatively-scheduled SystemC
threads.  This package provides the equivalent substrate in pure Python:

- :class:`Scheduler` — the event-driven kernel, with a simulated cycle
  counter and a deterministic dispatch order.
- :class:`Process` — a cooperatively scheduled coroutine (a generator that
  yields kernel requests such as :class:`Delay` or :class:`WaitEvent`).
- :class:`Event` — a notification primitive processes may wait on.
- :class:`Fifo` — a bounded FIFO channel with blocking put/get, the
  building block of PEDF data links.

The kernel is *pausable*: any process may yield a :class:`Suspend` request,
which stops dispatching and returns control to the caller of
:meth:`Scheduler.run` without unwinding the process.  This is the mechanism
the interactive debugger uses to stop the platform "mid-statement" and later
resume it exactly where it stopped.
"""

from .kernel import Scheduler, StopReason, StopKind
from .process import Process, ProcessState, Delay, WaitEvent, Suspend, Yield
from .events import Event
from .channels import Fifo
from .trace import TraceRecorder, TraceRecord, TraceSnapshot
from .replay import AlterationRecord, Checkpoint, ReplayJournal, StopRecord

__all__ = [
    "Scheduler",
    "StopReason",
    "StopKind",
    "Process",
    "ProcessState",
    "Delay",
    "WaitEvent",
    "Suspend",
    "Yield",
    "Event",
    "Fifo",
    "TraceRecorder",
    "TraceRecord",
    "TraceSnapshot",
    "ReplayJournal",
    "Checkpoint",
    "StopRecord",
    "AlterationRecord",
]
