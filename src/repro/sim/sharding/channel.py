"""Cross-shard FIFO proxies: bounded timestamped queues between kernels.

A cut link ``A::o->B::i`` elaborates into three pieces:

- on the producer shard, a normal local link (same name, same capacity)
  whose consumer is an *egress pump* process draining it into the shared
  :class:`CrossShardChannel`;
- the channel itself: a bounded queue of ``(send_time, token)`` pairs plus
  a monotone *horizon* — the producer shard's promise that it will never
  send another token with a timestamp below it (the null message of
  conservative parallel discrete-event simulation);
- on the consumer shard, an *ingress pump* process replaying the queue
  into a local link (same name again) at — or as soon after as the
  consumer's clock allows — each token's send time.

The pumps are raw simulation processes: they never touch the framework
API, so they are invisible to capture, journals and telemetry.  Every
push/pop the application performs still happens on an ordinary
:class:`~repro.pedf.links.LinkInst`, which is why per-shard recording
keeps working unchanged.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Tuple

from ..process import Delay, WaitEvent

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel import Scheduler

#: effectively-infinite horizon for closed channels / finished shards
INFINITE_TIME = 1 << 62


class CrossShardChannel:
    """One cut link's shared queue, horizon and wakeup events."""

    def __init__(self, name: str, capacity: int = 0):
        self.name = name
        self.capacity = capacity  # 0 = unbounded, like Fifo
        self.queue: Deque[Tuple[int, Any]] = deque()
        #: lower bound on the timestamp of any future send (monotone)
        self.horizon = 0
        self.closed = False
        self.src_shard: Optional[int] = None
        self.dst_shard: Optional[int] = None
        self.total_forwarded = 0
        #: bounded log of the most recent forwards, as ``(ordinal,
        #: send_time)`` pairs (ordinal is 1-based FIFO position — the
        #: cross-shard token identity the observability plane keys on)
        self.recent: Deque[Tuple[int, int]] = deque(maxlen=16)
        self.high_water = 0
        self._data_avail = None  # consumer-shard Event
        self._space_avail = None  # producer-shard Event

    # ------------------------------------------------------------ attachment

    def attach_producer(self, scheduler: "Scheduler", shard_id: int) -> None:
        self.src_shard = shard_id
        self._space_avail = scheduler.event(f"xshard:{self.name}.space")

    def attach_consumer(self, scheduler: "Scheduler", shard_id: int) -> None:
        self.dst_shard = shard_id
        self._data_avail = scheduler.event(f"xshard:{self.name}.data")

    # --------------------------------------------------------------- queries

    @property
    def full(self) -> bool:
        return self.capacity > 0 and len(self.queue) >= self.capacity

    def head_time(self) -> Optional[int]:
        return self.queue[0][0] if self.queue else None

    def stats(self) -> Dict[str, Any]:
        """Deterministic forward statistics for the observability plane
        (flight-recorder bundles, ``info aggregate`` cross-checks)."""
        return {
            "link": self.name,
            "route": f"{self.src_shard}->{self.dst_shard}",
            "forwarded": self.total_forwarded,
            "in_flight": len(self.queue),
            "high_water": self.high_water,
            "horizon": "inf" if self.horizon >= INFINITE_TIME else self.horizon,
            "closed": self.closed,
            "recent": list(self.recent),
        }

    def describe(self) -> str:
        s = self.stats()
        return (
            f"channel {s['link']} [{s['route']}]: forwarded={s['forwarded']} "
            f"in_flight={s['in_flight']} high_water={s['high_water']} "
            f"horizon={s['horizon']}{' closed' if s['closed'] else ''}"
        )

    # ------------------------------------------------------------- producer

    def send(self, time: int, token: Any) -> None:
        """Forward one token with its producer-side timestamp."""
        self.queue.append((time, token))
        self.total_forwarded += 1
        self.recent.append((self.total_forwarded, time))
        if len(self.queue) > self.high_water:
            self.high_water = len(self.queue)
        if time > self.horizon:
            self.horizon = time
        if self._data_avail is not None:
            self._data_avail.notify()

    def commit_horizon(self, horizon: int) -> bool:
        """Raise the promise (null message).  Returns True on progress."""
        if horizon > self.horizon:
            self.horizon = horizon
            return True
        return False

    def close(self) -> None:
        """The producer will never send again (shard finished)."""
        if not self.closed:
            self.closed = True
            self.horizon = INFINITE_TIME
            if self._data_avail is not None:
                self._data_avail.notify()

    # ------------------------------------------------------------- consumer

    def pop(self) -> Any:
        _, token = self.queue.popleft()
        if self._space_avail is not None:
            self._space_avail.notify()
        return token


def egress_pump(scheduler: "Scheduler", fifo, channel: CrossShardChannel):
    """Producer-shard process: staging link -> channel, with backpressure."""
    while True:
        while channel.full:
            yield WaitEvent(channel._space_avail)
        token = yield from fifo.get()
        channel.send(scheduler.now, token)


def ingress_pump(scheduler: "Scheduler", fifo, channel: CrossShardChannel):
    """Consumer-shard process: channel -> local link, honouring send times.

    The conservative bound guarantees the consumer's clock never *passes*
    an undelivered token's timestamp by more than the +1 lookahead floor,
    so the pump only ever has to delay forward (never rewind)."""
    while True:
        while not channel.queue:
            if channel.closed:
                return
            yield WaitEvent(channel._data_avail)
        t = channel.head_time()
        if t is not None and t > scheduler.now:
            yield Delay(t - scheduler.now)
            continue  # re-check: the head may have been consumed meanwhile
        token = channel.pop()
        yield from fifo.put(token)


class ShardContext:
    """Everything one shard's elaboration needs to know about the cut.

    Handed to :class:`~repro.pedf.runtime.PedfRuntime`; drives which units
    elaborate locally and wires cut links to shared channels.  The
    ``channels`` dict is shared across all shards of a run (or holds
    pipe-backed adapters in the process-pool backend).
    """

    def __init__(self, shard_id: int, plan, channels: Optional[Dict[str, Any]] = None):
        self.shard_id = shard_id
        self.plan = plan
        self.channels: Dict[str, Any] = channels if channels is not None else {}
        #: (local staging LinkInst, channel) pairs, in elaboration order
        self.egress: List[Tuple[Any, Any]] = []
        self.ingress: List[Tuple[Any, Any]] = []

    def owns(self, unit: str) -> bool:
        return self.plan.shard_of(unit) == self.shard_id

    def channel(self, name: str, capacity: int) -> Any:
        ch = self.channels.get(name)
        if ch is None:
            ch = CrossShardChannel(name, capacity)
            self.channels[name] = ch
        return ch
