"""Per-channel conservative lookahead from influence reachability.

The naive null-message promise — "I will send nothing below
``max(now + 1, min(next event, min incoming horizon))``" — treats a
shard as one opaque blob: *any* input might instantly become *any*
output.  On a shard hosting several unrelated subgraphs that assumption
couples every egress channel to every ingress horizon, and two blocked
shards end up ratcheting each other forward one cycle per round (the
classic +1 crawl of conservative PDES).

This module sharpens the promise per egress channel using what the
elaborated graph already knows:

* **influence graph** — a unit-level digraph (units = modules / host
  actors) with an edge ``u -> v`` for every fully-local link from ``u``
  to ``v``, plus the reverse edge when the link has *finite* capacity
  (backpressure: a pop in ``v`` can unblock a producer in ``u``).
  Unbounded links propagate influence strictly forward.
* **reach(E)** — the units that can influence egress channel ``E``'s
  producer, i.e. the reverse closure of the influence graph from it.
* **deps(E)** — the ingress channels whose consumer unit lies in
  ``reach(E)``: the only external inputs that can ever cause a send.

The promise for ``E`` then ignores every event and horizon outside
``reach(E)``/``deps(E)``.  A source feeding a remote pipeline promises
its own next push time — not the +1 floor — so the consumer shard leaps
whole inter-arrival gaps per round.  And when ``reach(E)`` holds no
timed event, every dep is closed and drained, and nothing is staged,
``E`` can *never* carry another token: it is closed outright, freeing
the consumer shard of the bound entirely (quiescent-subgraph
retirement, generalising the dead-producer rule).

Timed events that cannot be attributed to a unit (platform engines, the
init process) count toward every channel — conservative, never unsafe.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..kernel import StopKind

#: spawn-name prefixes of the cross-shard pump processes
_INGRESS_PREFIX = "xshard.in@"
_EGRESS_PREFIX = "xshard.out@"


def unit_of_actor(actor) -> str:
    """The partitioning unit an elaborated actor belongs to."""
    module = getattr(actor, "module", None)
    if module is None:
        return actor.name  # host actor (source/sink)
    name = getattr(module, "name", module)  # ModuleInst or plain string
    return actor.name if name == "host" else name


class _ChannelPlan:
    __slots__ = ("link", "channel", "reach", "deps", "dep_links")

    def __init__(self, link, channel, reach: Set[str], deps: List[Any]):
        self.link = link  # producer-side staging LinkInst
        self.channel = channel
        self.reach = reach  # units that can influence the producer
        self.deps = deps  # ingress CrossShardChannels feeding reach


class ShardLookahead:
    """Computes per-egress promises / closures for one shard."""

    def __init__(self, runtime, ctx):
        self.ctx = ctx
        cross_links = {id(link) for link, _ in ctx.egress}
        cross_links.update(id(link) for link, _ in ctx.ingress)
        edges: Dict[str, Set[str]] = {}
        for link in runtime.links:
            if id(link) in cross_links:
                continue
            src_actor = getattr(link.src, "actor", None)
            dst_actor = getattr(link.dst, "actor", None)
            if src_actor is None or dst_actor is None:
                continue
            u, v = unit_of_actor(src_actor), unit_of_actor(dst_actor)
            edges.setdefault(u, set()).add(v)
            if link.capacity and link.capacity > 0:
                # finite fifo: consumer pops can unblock the producer
                edges.setdefault(v, set()).add(u)

        reverse: Dict[str, Set[str]] = {}
        for u, vs in edges.items():
            for v in vs:
                reverse.setdefault(v, set()).add(u)

        self.plans: List[_ChannelPlan] = []
        for link, channel in ctx.egress:
            u_e = unit_of_actor(link.src.actor)
            reach = self._closure(u_e, reverse)
            deps = [
                ich
                for ilink, ich in ctx.ingress
                if unit_of_actor(ilink.dst.actor) in reach
            ]
            self.plans.append(_ChannelPlan(link, channel, reach, deps))

    @staticmethod
    def _closure(start: str, reverse: Dict[str, Set[str]]) -> Set[str]:
        seen = {start}
        frontier = [start]
        while frontier:
            u = frontier.pop()
            for p in reverse.get(u, ()):
                if p not in seen:
                    seen.add(p)
                    frontier.append(p)
        return seen

    # ------------------------------------------------------------- the rules

    def _event_matters(self, proc, plan: _ChannelPlan, dep_names: Set[str]) -> bool:
        owner = getattr(proc, "owner", None)
        if owner is not None and hasattr(owner, "module"):
            return unit_of_actor(owner) in plan.reach
        name = getattr(proc, "name", "")
        if name.startswith(_INGRESS_PREFIX):
            # a pump mid-delivery: matters iff its channel feeds reach(E)
            return name[len(_INGRESS_PREFIX):] in dep_names
        if name.startswith(_EGRESS_PREFIX):
            return False  # egress pumps never hold timed events
        return True  # platform / unknown: conservative

    def assess(self, scheduler, stop_kind) -> List[Tuple[Any, Optional[int]]]:
        """Per open egress channel: ``(channel, promise)`` or
        ``(channel, None)`` when the channel can be closed for good."""
        now = scheduler.now
        quantum_drained = stop_kind in (StopKind.MAX_TIME, StopKind.DEADLOCK)
        timed = [(t, p) for t, _, p in scheduler._timed if p.alive]
        out: List[Tuple[Any, Optional[int]]] = []
        for plan in self.plans:
            ch = plan.channel
            if ch.closed:
                continue
            dep_names = {d.name for d in plan.deps}
            producer = getattr(getattr(plan.link, "src", None), "actor", None)
            producer_proc = getattr(producer, "process", None)
            staged = not plan.link.fifo.empty
            if (
                producer_proc is not None
                and not producer_proc.alive
                and not staged
            ):
                # the only process that pushes into the staging link is
                # gone and the staging fifo is drained: nothing left
                out.append((ch, None))
                continue
            pending = staged or ch.full or any(d.queue for d in plan.deps)
            if not quantum_drained or pending:
                # mid-quantum stop, or deliverable work on the doorstep:
                # sends at the current cycle are still possible
                out.append((ch, now))
                continue
            candidates = [
                t for t, p in timed if self._event_matters(p, plan, dep_names)
            ]
            open_deps = [d.horizon for d in plan.deps if not d.closed]
            candidates.extend(open_deps)
            if candidates:
                out.append((ch, max(now + 1, min(candidates))))
            else:
                # no timed event can reach the producer, every dep is
                # closed and drained, nothing staged: frozen subgraph
                out.append((ch, None))
        return out
