"""Per-shard journal merge and the canonical determinism fingerprint.

What can a sharded run promise to reproduce bit-for-bit?  Not the global
event interleaving: shards dispatch concurrently, so "token 17 then token
18" is meaningless across kernels, and global token seq numbers are
per-shard counters.  What *is* invariant — by the Kahn-network property
dataflow determinism rests on — is the ordered sequence of token values
carried by every individual link.  The canonical fingerprint is therefore
a digest over ``sorted(link name) -> [payload text, ...]``:

- a single-kernel run yields it from one journal
  (:meth:`~repro.sim.replay.ReplayJournal.link_value_streams`);
- a sharded run yields it by merging per-shard journals — every link's
  pushes live in exactly one shard (local links trivially; a cut link's
  pushes all happen on the producer shard, where the staging link carries
  the single-kernel link name), so the merge is a disjoint union;
- an unrecorded run (benchmarks, CI smoke) yields it from a lightweight
  :class:`PushStreamRecorder` bus tap.

All three must agree, byte for byte.  Tests and the CI shard-smoke job
gate on exactly that.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterable, List, Mapping

from ...errors import SimulationError


def stable_value_text(raw: Any) -> str:
    """Canonical text of a token payload (Filter-C ``Raw``): ints, bools,
    lists and dicts only, with dict keys emitted in sorted order so the
    text is independent of insertion order."""
    if isinstance(raw, bool):
        return "true" if raw else "false"
    if isinstance(raw, int):
        return str(raw)
    if isinstance(raw, list):
        return "[" + ",".join(stable_value_text(x) for x in raw) + "]"
    if isinstance(raw, dict):
        inner = ",".join(f"{k}={stable_value_text(raw[k])}" for k in sorted(raw))
        return "{" + inner + "}"
    return repr(raw)


class PushStreamRecorder:
    """Minimal per-link value-stream tap for unrecorded runs.

    Subscribes to ``pedf_rt_push`` exits on one runtime's bus; the
    subscription makes the bus *want* push events, so the §V elision fast
    path still materialises them even when no debugger capture is armed.
    """

    def __init__(self, runtime):
        self.streams: Dict[str, List[str]] = {}
        self._sub = runtime.bus.subscribe("pedf_rt_push", self._on_push, phase="exit")

    def _on_push(self, event):
        token = event.retval
        if token is None:
            return None
        link = event.args.get("link")
        if link:
            self.streams.setdefault(link, []).append(stable_value_text(token.value))
        return None

    def close(self) -> None:
        if self._sub is not None:
            self._sub.unsubscribe()
            self._sub = None


def merge_link_streams(parts: Iterable[Mapping[str, List[str]]]) -> Dict[str, List[str]]:
    """Disjoint union of per-shard link streams.

    A link appearing in two parts would mean two shards both produced on
    it — a partitioning bug, not a tie to break — so it is an error."""
    merged: Dict[str, List[str]] = {}
    for part in parts:
        for link, stream in part.items():
            if link in merged:
                raise SimulationError(
                    f"link {link!r} has producers in more than one shard"
                )
            merged[link] = list(stream)
    return merged


def stream_digest(values: Iterable[str]) -> str:
    """Short digest of one link's ordered value stream — the per-link
    unit the run-level fingerprint and the canonical telemetry
    projection both build on."""
    return hashlib.sha256("\x01".join(values).encode("utf-8")).hexdigest()[:16]


def fingerprint_streams(streams: Mapping[str, List[str]]) -> str:
    """SHA-256 over the canonical serialisation of the link streams."""
    h = hashlib.sha256()
    for link in sorted(streams):
        h.update(link.encode())
        h.update(b"\x00")
        for value in streams[link]:
            h.update(value.encode())
            h.update(b"\x01")
        h.update(b"\x02")
    return h.hexdigest()
