"""Process-pool shard backend: one OS process per shard, fork + pipes.

The in-process :class:`~repro.sim.sharding.ShardedScheduler` proves the
determinism contract but cannot buy wall-clock time — every shard kernel
still shares one interpreter lock.  This backend runs the *same*
conservative-lookahead protocol bulk-synchronously across forked
workers: each round the parent computes every shard's horizon bound,
ships pending cross-shard tokens + null messages down a pipe, lets all
workers crunch their quanta **in parallel**, then folds the replies
(promises, forwarded tokens, retirements) back into the channel state.

Token delivery is end-of-round rather than live, which can deliver a
token one quantum later than the in-process backend would.  Kahn
determinism makes that invisible to the canonical fingerprint: per-link
token *value* streams depend only on the program, never on arrival
times, so ``fingerprint()`` here is byte-identical to the single-kernel
and in-process-sharded runs (gated by tests and the CI smoke job).

Fork-only by design: shard sessions hold live generator coroutines,
which cannot be pickled for a spawn-style start — but a forked child
inherits the parent's code and builds its own shard from the plan, so
nothing but plain data ever crosses a pipe.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback
from typing import Any, Callable, Dict, List, Optional, Tuple

from ...errors import SimulationError
from ..kernel import StopKind
from .channel import INFINITE_TIME, ShardContext
from .lookahead import ShardLookahead
from .merge import PushStreamRecorder, fingerprint_streams, merge_link_streams
from .plan import ShardPlan

#: rounds with no clock, horizon or token movement before declaring a
#: protocol stall (should be unreachable: promises carry a +1 floor)
STALL_LIMIT = 8


# ---------------------------------------------------------------- worker side


def _shard_quantum(shard_id, session, ingress, egress, lookahead, payload):
    """Apply one round's inputs, run the kernel, report the outcome."""
    sched = session.dbg.scheduler
    for name, h in payload["horizons"].items():
        ingress[name].commit_horizon(h)
    for name in payload["close"]:
        if name in ingress:
            ingress[name].close()
    for name, toks in payload["tokens"].items():
        ch = ingress[name]
        for t, token in toks:
            ch.send(t, token)

    bound = payload["bound"]
    until = None if bound is None else max(bound, sched.now)
    stop = sched.run(until=until)

    if stop.kind == StopKind.SUSPENDED:
        raise SimulationError(
            "debugger suspend inside a process-pool worker: interactive "
            "stops need the in-process sharded backend"
        )
    if stop.kind in (StopKind.PROCESS_ERROR, StopKind.MAX_DISPATCHES):
        raise SimulationError(f"shard {shard_id} kernel stop: {stop}")

    open_ingress = [ch for ch in ingress.values() if not ch.closed]
    drained = all(not ch.queue for ch in open_ingress)
    if (
        stop.kind == StopKind.DEADLOCK
        and bound is not None
        and bound > sched.now
        and drained
    ):
        # nothing local schedulable, nothing below the bound can arrive:
        # free time advance (collapses the +1 horizon crawl)
        sched.now = bound

    out_tokens = {}
    for name, ch in egress.items():
        if ch.queue:
            batch = []
            while ch.queue:
                t = ch.head_time()
                batch.append((t, ch.pop()))
            out_tokens[name] = batch

    # per-channel reachability-refined promises; None = close for good
    retired = []
    promises = {}
    for ch, promise in lookahead.assess(sched, stop.kind):
        if promise is None:
            ch.close()
            retired.append(ch.name)
        else:
            promises[ch.name] = promise

    return {
        "stop": stop.kind.value,
        "now": sched.now,
        "next_event": sched.next_event_time(),
        "dispatches": sched.dispatch_count,
        "promises": promises,
        "out_tokens": out_tokens,
        "retired": retired,
        "ingress_empty": drained and all(not ch.queue for ch in ingress.values()),
    }


def _worker_main(conn, plan: ShardPlan, shard_id: int, builder) -> None:
    try:
        ctx = ShardContext(shard_id, plan, {})
        session = builder(ctx)
        recorder = PushStreamRecorder(session.dbg.runtime)
        session.dbg.load()
        lookahead = ShardLookahead(session.dbg.runtime, ctx)
        ingress = {ch.name: ch for _, ch in ctx.ingress}
        egress = {ch.name: ch for _, ch in ctx.egress}
        conn.send(("ready", {"ingress": sorted(ingress), "egress": sorted(egress)}))
        # CPU seconds spent on shard work — process_time so a timeshared
        # (fewer-cores-than-shards) box still reports each worker's own
        # compute, the basis of the critical-path speedup metric
        busy = 0.0
        while True:
            cmd, payload = conn.recv()
            if cmd == "quantum":
                t0 = time.process_time()
                reply = _shard_quantum(
                    shard_id, session, ingress, egress, lookahead, payload
                )
                busy += time.process_time() - t0
                conn.send(("stopped", reply))
            elif cmd == "finalize":
                t0 = time.process_time()
                for ch in ingress.values():
                    ch.close()
                stop = session.dbg.scheduler.run()
                busy += time.process_time() - t0
                outcome = session.dbg.runtime.classify_stop(stop)
                sinks = {
                    a.name: [t.value for t in a.received]
                    for a in session.dbg.runtime.all_actors()
                    if hasattr(a, "received")
                }
                conn.send(
                    (
                        "final",
                        {
                            "outcome": outcome,
                            "dispatches": session.dbg.scheduler.dispatch_count,
                            "now": session.dbg.scheduler.now,
                            "streams": dict(recorder.streams),
                            "sinks": sinks,
                            "busy": busy,
                        },
                    )
                )
            elif cmd == "exit":
                return
            else:  # pragma: no cover - protocol misuse
                raise SimulationError(f"unknown worker command {cmd!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:  # pragma: no cover - pipe already gone
            pass


# ---------------------------------------------------------------- parent side


class _ChannelState:
    """Parent-side mirror of one cross-shard channel."""

    __slots__ = ("name", "horizon", "closed", "pending", "src_shard", "dst_shard")

    def __init__(self, name: str):
        self.name = name
        self.horizon = 0
        self.closed = False
        self.pending: List[Tuple[int, Any]] = []  # undelivered (time, token)
        self.src_shard: Optional[int] = None
        self.dst_shard: Optional[int] = None


class ProcPoolRun:
    """Coordinate one sharded execution across forked worker processes.

    ``builder(ctx)`` runs *inside each worker* (inherited through fork,
    never pickled) and must return a per-shard ``DataflowSession`` built
    with ``shard=ctx`` — exactly the builder the in-process
    :class:`~repro.core.shards.ShardedRun` takes.
    """

    def __init__(self, plan: ShardPlan, builder: Callable[[ShardContext], Any]):
        self.plan = plan
        self.builder = builder
        self.rounds = 0
        self.outcomes: Dict[int, str] = {}
        self.sinks: Dict[str, List[Any]] = {}
        self.dispatch_counts: Dict[int, int] = {}
        self.busy_times: Dict[int, float] = {}  # per-shard in-worker seconds
        self._streams: Dict[str, List[str]] = {}
        self._collected: set = set()
        self._done = False
        self._ctx = mp.get_context("fork")
        self._workers: List[Any] = []
        self._conns: List[Any] = []
        self._channels: Dict[str, _ChannelState] = {}
        self._ingress_of: Dict[int, List[str]] = {}
        self._egress_of: Dict[int, List[str]] = {}

    # ------------------------------------------------------------- lifecycle

    def _start(self) -> None:
        for sid in range(self.plan.n_shards):
            parent_conn, child_conn = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, self.plan, sid, self.builder),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._workers.append(proc)
            self._conns.append(parent_conn)
        for sid, conn in enumerate(self._conns):
            kind, info = self._recv(sid)
            if kind != "ready":  # pragma: no cover - worker died in build
                raise SimulationError(f"shard {sid} failed to start: {info}")
            self._ingress_of[sid] = info["ingress"]
            self._egress_of[sid] = info["egress"]
            for name in info["ingress"]:
                self._channel(name).dst_shard = sid
            for name in info["egress"]:
                self._channel(name).src_shard = sid

    def _channel(self, name: str) -> _ChannelState:
        st = self._channels.get(name)
        if st is None:
            st = _ChannelState(name)
            self._channels[name] = st
        return st

    def _recv(self, sid: int):
        kind, payload = self._conns[sid].recv()
        if kind == "error":
            self.shutdown()
            raise SimulationError(f"shard {sid} worker failed:\n{payload}")
        return kind, payload

    def shutdown(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("exit", None))
            except Exception:
                pass
        for proc in self._workers:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
        self._conns, self._workers = [], []

    # ------------------------------------------------------------- execution

    def _bound_for(self, sid: int) -> Optional[int]:
        horizons = [
            self._channels[name].horizon
            for name in self._ingress_of[sid]
            if not self._channels[name].closed
        ]
        if not horizons:
            return None
        b = min(horizons)
        return None if b >= INFINITE_TIME else b

    def run(self) -> str:
        """Run to completion; returns the overall outcome ("exited" ...)."""
        self._start()
        try:
            return self._drive()
        finally:
            self.shutdown()

    def _drive(self) -> str:
        n = self.plan.n_shards
        active = set(range(n))
        reports: Dict[int, dict] = {}
        stall = 0
        while active:
            for sid in sorted(active):
                tokens = {}
                horizons = {}
                close = []
                for name in self._ingress_of[sid]:
                    st = self._channels[name]
                    if st.pending:
                        tokens[name] = st.pending
                        st.pending = []
                    horizons[name] = st.horizon
                    if st.closed:
                        close.append(name)
                self._conns[sid].send(
                    (
                        "quantum",
                        {
                            "bound": self._bound_for(sid),
                            "tokens": tokens,
                            "horizons": horizons,
                            "close": close,
                        },
                    )
                )
            progressed = bool(
                any(st.pending for st in self._channels.values())
            )
            for sid in sorted(active):
                kind, rep = self._recv(sid)
                prev = reports.get(sid)
                reports[sid] = rep
                if prev is None or rep["now"] > prev["now"] or rep["dispatches"] > prev["dispatches"]:
                    progressed = True
                for name, batch in rep["out_tokens"].items():
                    self._channels[name].pending.extend(batch)
                    progressed = True
                for name in rep["retired"]:
                    self._channels[name].closed = True
                    self._channels[name].horizon = INFINITE_TIME
                    progressed = True
                for name, h in rep["promises"].items():
                    st = self._channels[name]
                    if not st.closed and h > st.horizon:
                        st.horizon = h
                        progressed = True
                if rep["stop"] == StopKind.EXHAUSTED.value:
                    active.discard(sid)
                    self.outcomes[sid] = "exited"
                    self.dispatch_counts[sid] = rep["dispatches"]
                    for name in self._egress_of[sid]:
                        self._channels[name].closed = True
                        self._channels[name].horizon = INFINITE_TIME
                    progressed = True
            self.rounds += 1
            if active and self._quiet(active, reports):
                self._finalize(sorted(active))
                active = set()
                break
            stall = 0 if progressed else stall + 1
            if stall >= STALL_LIMIT:  # pragma: no cover - protocol bug net
                self.shutdown()
                raise SimulationError(
                    f"process-pool protocol stall after {self.rounds} rounds"
                )
        self._collect_remaining()
        self._done = True
        if any(o == "error" for o in self.outcomes.values()):
            return "error"
        if any(o == "deadlock" for o in self.outcomes.values()):
            return "deadlock"
        return "exited"

    def _quiet(self, active, reports) -> bool:
        for sid in active:
            rep = reports.get(sid)
            if rep is None or rep["stop"] != StopKind.DEADLOCK.value:
                return False
            if rep["next_event"] is not None or not rep["ingress_empty"]:
                return False
        # tokens bound for a finished shard can never be consumed — the
        # single-kernel analogue is a token parked on an unread link
        return not any(
            st.pending for st in self._channels.values() if st.dst_shard in active
        )

    def _finalize(self, sids) -> None:
        for sid in sids:
            self._conns[sid].send(("finalize", None))
        for sid in sids:
            kind, rep = self._recv(sid)
            self.outcomes[sid] = rep["outcome"]
            self.dispatch_counts[sid] = rep["dispatches"]
            self.busy_times[sid] = rep["busy"]
            self.sinks.update(rep["sinks"])
            self._merge_streams(sid, rep["streams"])

    def _collect_remaining(self) -> None:
        """Fetch streams from workers that exited early (EXHAUSTED)."""
        for sid in range(self.plan.n_shards):
            if sid in self.outcomes and sid not in self._collected:
                self._conns[sid].send(("finalize", None))
                kind, rep = self._recv(sid)
                self.sinks.update(rep["sinks"])
                self.dispatch_counts[sid] = rep["dispatches"]
                self.busy_times[sid] = rep["busy"]
                self._merge_streams(sid, rep["streams"])

    def _merge_streams(self, sid: int, streams: Dict[str, List[str]]) -> None:
        self._streams = merge_link_streams([self._streams, streams])
        self._collected.add(sid)

    # ----------------------------------------------------------- determinism

    def link_streams(self) -> Dict[str, List[str]]:
        if not self._done:
            raise SimulationError("process-pool run has not completed")
        return self._streams

    def fingerprint(self) -> str:
        return fingerprint_streams(self.link_streams())
