"""Island-partitioned sharded execution of the simulation kernel.

Splits a dataflow program into *islands* cut only at FIFO links, runs one
:class:`~repro.sim.kernel.Scheduler` per island group (shard), and keeps
the shards causally consistent with a conservative-lookahead horizon
protocol at the cut links.  Determinism is preserved in the only form
that is meaningful across kernels: every link's ordered token value
stream — and therefore the canonical run fingerprint — is byte-identical
to the single-kernel execution of the same program.
"""

from .channel import INFINITE_TIME, CrossShardChannel, ShardContext, egress_pump, ingress_pump
from .merge import (
    PushStreamRecorder,
    fingerprint_streams,
    merge_link_streams,
    stable_value_text,
    stream_digest,
)
from .plan import (
    CrossLink,
    HostSpec,
    ShardPlan,
    decl_ext_endpoint,
    enumerate_cross_links,
    partition_program,
)
from .lookahead import ShardLookahead, unit_of_actor
from .procpool import ProcPoolRun
from .sharded import Shard, ShardedScheduler, ShardedStop

__all__ = [
    "INFINITE_TIME",
    "CrossShardChannel",
    "ShardContext",
    "egress_pump",
    "ingress_pump",
    "PushStreamRecorder",
    "fingerprint_streams",
    "merge_link_streams",
    "stable_value_text",
    "stream_digest",
    "CrossLink",
    "HostSpec",
    "ShardPlan",
    "decl_ext_endpoint",
    "enumerate_cross_links",
    "partition_program",
    "ProcPoolRun",
    "Shard",
    "ShardLookahead",
    "unit_of_actor",
    "ShardedScheduler",
    "ShardedStop",
]
