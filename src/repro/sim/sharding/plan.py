"""Graph partitioning into shard islands, cut only at FIFO links.

A *unit* is the smallest indivisible piece of a PEDF program the
partitioner places: one module (its controller plus all of its filters —
they share intra-module control links that must never cross a shard) or
one host actor (a test-bench source/sink).  Islands are groups of units;
the default heuristic keys islands off the P2012 cluster mapping, because
the cluster is both the locality domain of the hardware (L1 links stay
inside it) and the axis along which applications already declare their
parallelism (``ModuleDecl.cluster``).

The assignment is user-overridable per unit, so a test can deliberately
split co-clustered modules across shards to exercise the cross-shard
machinery on fabric-to-fabric links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ...errors import SimulationError

HOST_UNIT_PREFIX = "host."


@dataclass(frozen=True)
class HostSpec:
    """A test-bench host actor the partitioner must place.

    ``direction`` is the host's role: a ``"source"`` feeds ``module``'s
    external input ``ext_iface``; a ``"sink"`` drains its output.
    """

    name: str
    module: str
    ext_iface: str
    direction: str  # "source" | "sink"


@dataclass
class ShardPlan:
    """A complete unit -> shard assignment."""

    n_shards: int
    assignment: Dict[str, int] = field(default_factory=dict)

    def shard_of(self, unit: str) -> int:
        try:
            return self.assignment[unit]
        except KeyError:
            raise SimulationError(f"shard plan has no unit {unit!r}")

    def units_of(self, shard: int) -> List[str]:
        return sorted(u for u, s in self.assignment.items() if s == shard)

    def describe(self) -> List[str]:
        lines = []
        for shard in range(self.n_shards):
            units = self.units_of(shard)
            lines.append(f"shard {shard}: {', '.join(units) if units else '(empty)'}")
        return lines


def partition_program(
    program,
    n_shards: int,
    *,
    hosts: Sequence[HostSpec] = (),
    override: Optional[Mapping[str, int]] = None,
) -> ShardPlan:
    """Island-partition a :class:`~repro.pedf.decls.ProgramDecl`.

    Heuristic: modules sharing a P2012 cluster form one island (their
    links are L1-local and cheap — cutting them would put the chattiest
    links on the slowest path); host actors form a final island of their
    own (host links already cross the L3/DMA boundary, so they are the
    natural cut points).  Islands are dealt to shards round-robin.

    ``override`` maps unit names (module name or host actor name) to
    explicit shard indices and wins over the heuristic.
    """
    if n_shards < 1:
        raise SimulationError(f"need at least one shard, got {n_shards}")
    # dense island ids: distinct declared clusters, in sorted order
    module_clusters: Dict[str, int] = {}
    for i, (name, mdecl) in enumerate(program.modules.items()):
        module_clusters[name] = mdecl.cluster if mdecl.cluster is not None else i
    distinct = sorted(set(module_clusters.values()))
    island_of_cluster = {c: i for i, c in enumerate(distinct)}
    host_island = len(distinct)

    assignment: Dict[str, int] = {}
    for name, cluster in module_clusters.items():
        assignment[name] = island_of_cluster[cluster] % n_shards
    for spec in hosts:
        assignment[spec.name] = host_island % n_shards
    if override:
        for unit, shard in override.items():
            if unit not in assignment:
                raise SimulationError(f"override names unknown unit {unit!r}")
            if not 0 <= shard < n_shards:
                raise SimulationError(f"override shard {shard} out of range for {unit!r}")
            assignment[unit] = shard
    return ShardPlan(n_shards=n_shards, assignment=assignment)


# --------------------------------------------------------- cross-link census


@dataclass(frozen=True)
class CrossLink:
    """One FIFO link whose endpoints live on different shards."""

    name: str  # identical to the single-kernel LinkInst name
    src_unit: str
    dst_unit: str
    src_shard: int
    dst_shard: int
    capacity: int


def decl_ext_endpoint(program, module_name: str, ext_iface: str):
    """Resolve a module's external interface to the inner actor endpoint
    it is aliased to, straight from the declaration (no elaboration).

    Returns an ``EndpointRef`` — the key property is that the *name* of a
    cross-shard link is computable on every shard without elaborating the
    remote side, so link names (and therefore journal streams) match the
    single-kernel run exactly.
    """
    mdecl = program.modules.get(module_name)
    if mdecl is None:
        raise SimulationError(f"no module {module_name!r}")
    for b in mdecl.bindings:
        if b.src.actor == "this" and b.src.iface == ext_iface:
            return b.dst
        if b.dst.actor == "this" and b.dst.iface == ext_iface:
            return b.src
    raise SimulationError(f"{module_name}.{ext_iface} is not aliased to an inner actor")


def decl_actor_kind(program, module_name: str, actor_name: str) -> str:
    mdecl = program.modules[module_name]
    if mdecl.controller is not None and mdecl.controller.name == actor_name:
        return "controller"
    if actor_name in mdecl.filters:
        return "filter"
    raise SimulationError(f"no actor {module_name}.{actor_name}")


def enumerate_cross_links(
    program,
    plan: ShardPlan,
    *,
    hosts: Sequence[HostSpec] = (),
    default_capacity: int = 16,
    host_capacities: Optional[Mapping[str, Optional[int]]] = None,
) -> List[CrossLink]:
    """List every link the plan cuts, with single-kernel link names.

    Used by the process-pool backend to pre-create one pipe per cut link,
    and by ``info shards`` / ``dot`` to describe the cut.
    """
    host_capacities = host_capacities or {}
    out: List[CrossLink] = []
    for b in program.bindings:
        s_shard = plan.shard_of(b.src.actor)
        d_shard = plan.shard_of(b.dst.actor)
        if s_shard == d_shard:
            continue
        src_ep = decl_ext_endpoint(program, b.src.actor, b.src.iface)
        dst_ep = decl_ext_endpoint(program, b.dst.actor, b.dst.iface)
        name = f"{src_ep.actor}::{src_ep.iface}->{dst_ep.actor}::{dst_ep.iface}"
        cap = b.capacity if b.capacity is not None else default_capacity
        out.append(CrossLink(name, b.src.actor, b.dst.actor, s_shard, d_shard, cap))
    for spec in hosts:
        h_shard = plan.shard_of(spec.name)
        m_shard = plan.shard_of(spec.module)
        if h_shard == m_shard:
            continue
        inner = decl_ext_endpoint(program, spec.module, spec.ext_iface)
        cap = host_capacities.get(spec.name)
        if cap is None:
            cap = default_capacity
        if spec.direction == "source":
            name = f"{spec.name}::out->{inner.actor}::{inner.iface}"
            out.append(CrossLink(name, spec.name, spec.module, h_shard, m_shard, cap))
        else:
            name = f"{inner.actor}::{inner.iface}->{spec.name}::in"
            out.append(CrossLink(name, spec.module, spec.name, m_shard, h_shard, cap))
    return out
