"""The sharded scheduler: conservative-lookahead coordination of kernels.

One :class:`~repro.sim.kernel.Scheduler` per shard; the coordinator
round-robins over them, bounding each quantum by the *minimum incoming
channel horizon* — the null-message protocol of conservative parallel
discrete-event simulation.  A shard may freely dispatch any event at or
below that bound: every cross-shard token that could affect it is either
already queued (and delivered by the ingress pump at its send time) or
promised to carry a later timestamp.

After a quantum drains (``MAX_TIME`` at the bound, or a kernel
``DEADLOCK`` meaning "blocked until something external arrives"), the
shard publishes a new horizon on each outgoing channel, computed by
:class:`~repro.sim.sharding.lookahead.ShardLookahead` from the events
and ingress horizons that can actually *reach* that channel's producer
through the local influence graph::

    promise(E) = max(now + 1,
                     min(next event in reach(E), min horizon of deps(E)))

The ``+1`` floor is the minimum lookahead: links always cost at least
one cycle, so even a zero-delay feedback loop (RLE's host->codec->host
ring) makes one cycle of global progress per round instead of
deadlocking the protocol.  When reach(E) holds no event and every dep
is closed and drained, E itself is closed — the consumer shard runs
unbounded from then on.

Termination cannot ride on horizons alone (they would crawl forever at
+1 on a truly deadlocked program), so the coordinator detects *global
quiescence* — every active shard kernel-blocked, every channel empty,
every timed heap empty — then closes all channels, lets the ingress pumps
retire, and classifies each shard's final stop through its runtime
(quiescent DEADLOCK = exited, the same rule the single-kernel debugger
applies).

Determinism: each shard's dispatch sequence is a pure function of its
quantum-bound sequence, which is a pure function of the plan and the
program.  A debugger ``Suspend`` in one shard returns control mid-pass
with every peer already *stopped at or before the barrier it would have
reached anyway*; resuming re-enters the very same quantum with the very
same bound, so breakpoints never perturb dispatch counts, journals or
fingerprints — the single-kernel stop-invariance contract, shard by
shard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..kernel import Scheduler, StopKind, StopReason
from ..snapshot import MachineState, capture_machine_state
from .channel import INFINITE_TIME, CrossShardChannel, ShardContext
from .lookahead import ShardLookahead


@dataclass
class Shard:
    """One shard's kernel + elaborated runtime + context."""

    index: int
    scheduler: Scheduler
    runtime: Any  # PedfRuntime
    ctx: ShardContext
    dbg: Any = None  # optional Debugger
    finished: bool = False
    outcome: str = ""  # "", "exited", "deadlock", "error"
    last_stop: Optional[StopReason] = None
    lookahead: Optional[ShardLookahead] = None  # built on first publish

    @property
    def now(self) -> int:
        return self.scheduler.now

    @property
    def dispatch_count(self) -> int:
        return self.scheduler.dispatch_count


@dataclass
class ShardedStop:
    """Why :meth:`ShardedScheduler.run` returned."""

    kind: str  # "suspended" | "exited" | "deadlock" | "error"
    shard: Optional[int] = None  # the shard that triggered the stop
    event: Any = None  # the shard debugger's StopEvent, if one exists
    detail: str = ""


class ShardedScheduler:
    """Drives N shard kernels under the conservative horizon protocol."""

    def __init__(
        self,
        shards: List[Shard],
        channels: Dict[str, CrossShardChannel],
        snapshots: bool = False,
    ):
        self.shards = list(shards)
        self.channels = dict(channels)
        self.rounds = 0
        self._cursor = 0  # shard index the next pass starts at (resume point)
        self.result: Optional[ShardedStop] = None
        #: when on, capture each shard's deep MachineState as its quantum
        #: drains at the conservative barrier — the sharded analogue of
        #: the single-kernel checkpoint snapshot.  Barrier states are a
        #: pure function of the plan and the program (quantum bounds are),
        #: so they double as a cross-run determinism artefact.
        self.snapshots_enabled = snapshots
        self.barrier_states: Dict[int, MachineState] = {}
        self.snapshots_taken = 0

    # -------------------------------------------------------------- queries

    def _incoming(self, shard: Shard) -> List[CrossShardChannel]:
        return [ch for _, ch in shard.ctx.ingress]

    def _outgoing(self, shard: Shard) -> List[CrossShardChannel]:
        return [ch for _, ch in shard.ctx.egress]

    def bound_for(self, shard: Shard) -> Optional[int]:
        """Inclusive time bound this shard may advance to; None = free."""
        horizons = [ch.horizon for ch in self._incoming(shard) if not ch.closed]
        if not horizons:
            return None
        b = min(horizons)
        return None if b >= INFINITE_TIME else b

    # ------------------------------------------------------------- protocol

    def _publish_horizons(self, shard: Shard, stop: StopReason) -> bool:
        """Null messages: per-channel reachability-refined promises."""
        if shard.lookahead is None:
            shard.lookahead = ShardLookahead(shard.runtime, shard.ctx)
        progressed = False
        for ch, promise in shard.lookahead.assess(shard.scheduler, stop.kind):
            if promise is None:
                ch.close()
                progressed = True
            elif ch.commit_horizon(promise):
                progressed = True
        return progressed

    def _close_outgoing(self, shard: Shard) -> None:
        for ch in self._outgoing(shard):
            ch.close()

    def _globally_quiet(self) -> bool:
        """No shard can ever dispatch again without external input."""
        for shard in self.shards:
            if shard.finished:
                continue
            stop = shard.last_stop
            if stop is None or stop.kind != StopKind.DEADLOCK:
                return False
            if shard.scheduler.next_event_time() is not None:
                return False
        return all(not ch.queue for ch in self.channels.values())

    # ------------------------------------------------------------ execution

    def run(self) -> ShardedStop:
        """Advance all shards until a debugger stop or global termination.

        Re-entrant: after a ``suspended`` return, calling ``run`` again
        resumes the interrupted quantum (same shard, same bound)."""
        shards = self.shards
        n = len(shards)
        while True:
            progressed = False
            start = self._cursor
            for k in range(n):
                idx = (start + k) % n
                shard = shards[idx]
                self._cursor = idx  # a mid-pass return resumes right here
                if shard.finished:
                    continue
                bound = self.bound_for(shard)
                before = (shard.scheduler.dispatch_count, shard.scheduler.now)
                stop = shard.scheduler.run(until=bound)
                shard.last_stop = stop
                if stop.kind == StopKind.SUSPENDED:
                    # peers are parked at (or before) their own barriers:
                    # a consistent global pause, by construction
                    return self._absorb(shard, stop, "suspended")
                if stop.kind in (StopKind.PROCESS_ERROR, StopKind.MAX_DISPATCHES):
                    shard.finished = True
                    shard.outcome = "error"
                    self._close_outgoing(shard)
                    return self._absorb(shard, stop, "error")
                if stop.kind == StopKind.EXHAUSTED:
                    shard.finished = True
                    shard.outcome = "exited"
                    self._close_outgoing(shard)
                    progressed = True
                    continue
                # MAX_TIME or DEADLOCK: publish the new promise
                if (
                    stop.kind == StopKind.DEADLOCK
                    and bound is not None
                    and bound > shard.scheduler.now
                    and all(not ch.queue for ch in self._incoming(shard))
                ):
                    # nothing local is schedulable and no peer token can
                    # arrive below the bound: free time advance (the same
                    # jump the kernel's MAX_TIME path performs), which
                    # collapses the +1 horizon crawl between real events
                    shard.scheduler.now = bound
                if self._publish_horizons(shard, stop):
                    progressed = True
                if self.snapshots_enabled:
                    # the shard is parked at its barrier: a consistent,
                    # dispatch-boundary point — capture its deep state
                    self.barrier_states[shard.index] = capture_machine_state(
                        shard.scheduler, shard.runtime
                    )
                    self.snapshots_taken += 1
                if (shard.scheduler.dispatch_count, shard.scheduler.now) != before:
                    progressed = True
            self._cursor = 0
            self.rounds += 1
            if all(s.finished for s in shards):
                return self._finish()
            if self._globally_quiet():
                return self._drain_and_finish()
            if not progressed:
                # should be unreachable: horizons are strictly monotone
                # (+1 floor) while any shard is unfinished
                return self._stalled()

    # ------------------------------------------------------------- finishing

    def _absorb(self, shard: Shard, stop: StopReason, kind: str) -> ShardedStop:
        """Route a kernel stop through the shard's debugger (when one is
        attached) so stop logs, journals and callbacks stay coherent."""
        event = None
        if shard.dbg is not None:
            event = shard.dbg.absorb_kernel_stop(stop)
        self.result = ShardedStop(kind, shard=shard.index, event=event)
        return self.result

    def _drain_and_finish(self) -> ShardedStop:
        """Global quiescence: close every channel, let ingress pumps
        retire, then classify each shard's final stop."""
        for ch in self.channels.values():
            ch.close()
        for shard in self.shards:
            if shard.finished:
                continue
            stop = shard.scheduler.run()
            shard.last_stop = stop
            shard.finished = True
            shard.outcome = shard.runtime.classify_stop(stop)
            if shard.dbg is not None:
                shard.dbg.absorb_kernel_stop(stop)
        return self._finish()

    def _finish(self) -> ShardedStop:
        for shard in self.shards:
            if not shard.outcome:
                shard.outcome = "exited"
        bad = [s for s in self.shards if s.outcome == "error"]
        if bad:
            self.result = ShardedStop("error", shard=bad[0].index)
        elif any(s.outcome == "deadlock" for s in self.shards):
            first = next(s for s in self.shards if s.outcome == "deadlock")
            self.result = ShardedStop("deadlock", shard=first.index)
        else:
            self.result = ShardedStop("exited")
        return self.result

    def _stalled(self) -> ShardedStop:
        detail = "; ".join(
            f"shard {s.index}: t={s.now} stop={s.last_stop and s.last_stop.kind.value}"
            for s in self.shards
        )
        self.result = ShardedStop("deadlock", detail=f"protocol stall: {detail}")
        return self.result

    # ----------------------------------------------------------- inspection

    def channel_stats(self) -> List[Dict[str, object]]:
        """Deterministic per-channel forward statistics (sorted by link
        name) — the cross-shard detail the flight recorder bundles and
        ``info aggregate`` cross-checks against journal-derived edges."""
        return [self.channels[name].stats() for name in sorted(self.channels)]

    def info_lines(self) -> List[str]:
        """``info shards``: per-shard counters and channel horizons."""
        lines: List[str] = []
        for shard in self.shards:
            n_actors = len(shard.runtime.all_actors())
            state = shard.outcome or "running"
            lines.append(
                f"shard {shard.index}: {n_actors} actor(s), t={shard.now}, "
                f"dispatches={shard.dispatch_count}, {state}"
            )
            for link, ch in shard.ctx.ingress:
                h = "closed" if ch.closed else str(ch.horizon)
                lines.append(
                    f"  <- {ch.name} (from shard {ch.src_shard}): "
                    f"horizon={h}, queued={len(ch.queue)}, forwarded={ch.total_forwarded}"
                )
            for link, ch in shard.ctx.egress:
                h = "closed" if ch.closed else str(ch.horizon)
                lines.append(
                    f"  -> {ch.name} (to shard {ch.dst_shard}): "
                    f"horizon={h}, queued={len(ch.queue)}, forwarded={ch.total_forwarded}"
                )
        lines.append(f"coordination rounds: {self.rounds}")
        if self.snapshots_enabled:
            digests = ", ".join(
                f"shard {idx}: {state.digest()}"
                for idx, state in sorted(self.barrier_states.items())
            )
            lines.append(
                f"barrier snapshots: {self.snapshots_taken} taken"
                + (f" ({digests})" if digests else "")
            )
        return lines
