"""A P2012 fabric cluster: PEs sharing an L1 memory."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .memory import Memory, MemoryLevel
from .pe import HardwareAccelerator, ProcessingElement


@dataclass
class Cluster:
    index: int
    l1: Memory
    pes: List[ProcessingElement] = field(default_factory=list)
    accelerators: List[HardwareAccelerator] = field(default_factory=list)

    @property
    def name(self) -> str:
        return f"cluster{self.index}"

    def free_pe(self) -> Optional[ProcessingElement]:
        for pe in self.pes:
            if not pe.busy:
                return pe
        return None

    def add_accelerator(self, name: str, controlling_pe: Optional[ProcessingElement] = None,
                        cycles_per_stmt: int = 1) -> HardwareAccelerator:
        acc = HardwareAccelerator(
            name=name,
            cluster=self,
            controlling_pe=controlling_pe or (self.pes[0] if self.pes else None),
            cycles_per_stmt=cycles_per_stmt,
        )
        self.accelerators.append(acc)
        return acc

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Cluster {self.index}: {len(self.pes)} PEs, {len(self.accelerators)} accels>"
