"""The assembled P2012 platform."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..errors import PlatformError
from ..sim.kernel import Scheduler
from .cluster import Cluster
from .dma import DmaController
from .memory import Memory, MemoryLevel
from .pe import ExecResource, HardwareAccelerator, HostCpu, ProcessingElement


@dataclass
class PlatformConfig:
    """Topology and latency parameters (defaults follow the shape of the
    P2012 white paper: 4 clusters of 16 STxP70 PEs; latencies grow by
    roughly an order of magnitude per level)."""

    n_clusters: int = 4
    pes_per_cluster: int = 16
    l1_kib: int = 256
    l2_kib: int = 1024
    l3_kib: int = 131072
    l1_read: int = 1
    l1_write: int = 1
    l2_read: int = 8
    l2_write: int = 8
    l3_read: int = 40
    l3_write: int = 40
    dma_setup: int = 24
    dma_per_word: int = 2
    n_dma: int = 2
    pe_cycles_per_stmt: int = 1
    host_cycles_per_stmt: int = 1
    accel_cycles_per_stmt: int = 1


@dataclass(frozen=True)
class LinkCost:
    """Where a link's buffer lives and what moving one token costs."""

    memory: Memory
    push_cycles: int
    pop_cycles: int
    dma: Optional[DmaController] = None  # set for DMA-assisted links

    @property
    def dma_assisted(self) -> bool:
        return self.dma is not None


class P2012Platform:
    """Builds the machine of Fig. 1 and maps actors onto it."""

    def __init__(self, scheduler: Scheduler, config: Optional[PlatformConfig] = None):
        self.scheduler = scheduler
        self.config = config or PlatformConfig()
        cfg = self.config
        if cfg.n_clusters < 1 or cfg.pes_per_cluster < 1:
            raise PlatformError("platform needs at least one cluster with one PE")

        self.host = HostCpu(name="host_arm", cycles_per_stmt=cfg.host_cycles_per_stmt)
        self.l2 = Memory("fabric_l2", MemoryLevel.L2, cfg.l2_kib, cfg.l2_read, cfg.l2_write)
        self.l3 = Memory("ext_l3", MemoryLevel.L3, cfg.l3_kib, cfg.l3_read, cfg.l3_write)
        self.clusters: List[Cluster] = []
        for c in range(cfg.n_clusters):
            l1 = Memory(f"cluster{c}_l1", MemoryLevel.L1, cfg.l1_kib, cfg.l1_read, cfg.l1_write)
            cluster = Cluster(index=c, l1=l1)
            for p in range(cfg.pes_per_cluster):
                cluster.pes.append(
                    ProcessingElement(
                        name=f"pe{c}.{p}",
                        cycles_per_stmt=cfg.pe_cycles_per_stmt,
                        cluster=cluster,
                        index=p,
                    )
                )
            self.clusters.append(cluster)
        self.dmas = [
            DmaController(scheduler, f"dma{i}", cfg.dma_setup, cfg.dma_per_word)
            for i in range(cfg.n_dma)
        ]
        self._dma_rr = 0

    # ---------------------------------------------------------- allocation

    def allocate_pe(self, cluster_index: Optional[int] = None) -> ProcessingElement:
        """Reserve a free PE (optionally pinned to one cluster)."""
        clusters = (
            [self.clusters[cluster_index]] if cluster_index is not None else self.clusters
        )
        for cluster in clusters:
            pe = cluster.free_pe()
            if pe is not None:
                return pe
        raise PlatformError(
            f"no free PE available (cluster={cluster_index if cluster_index is not None else 'any'})"
        )

    def allocate_accelerator(self, name: str, cluster_index: int = 0) -> HardwareAccelerator:
        cluster = self.clusters[cluster_index]
        return cluster.add_accelerator(name, cycles_per_stmt=self.config.accel_cycles_per_stmt)

    def next_dma(self) -> DmaController:
        dma = self.dmas[self._dma_rr % len(self.dmas)]
        self._dma_rr += 1
        return dma

    # -------------------------------------------------------------- routing

    def link_cost(self, src: ExecResource, dst: ExecResource) -> LinkCost:
        """Pick the memory a FIFO between ``src`` and ``dst`` lives in.

        Same cluster → L1; different fabric clusters → L2; host on either
        side → L3, DMA-assisted (Fig. 1: host-fabric exchanges are
        performed by DMA controllers with the L3 memory).
        """
        src_cluster = getattr(src, "cluster", None)
        dst_cluster = getattr(dst, "cluster", None)
        if isinstance(src, HostCpu) or isinstance(dst, HostCpu):
            return LinkCost(self.l3, self.l3.write_latency, self.l3.read_latency, self.next_dma())
        if src_cluster is not None and src_cluster is dst_cluster:
            l1 = src_cluster.l1
            return LinkCost(l1, l1.write_latency, l1.read_latency)
        return LinkCost(self.l2, self.l2.write_latency, self.l2.read_latency)

    # ------------------------------------------------------------ reporting

    @property
    def all_pes(self) -> List[ProcessingElement]:
        return [pe for c in self.clusters for pe in c.pes]

    @property
    def memories(self) -> List[Memory]:
        return [c.l1 for c in self.clusters] + [self.l2, self.l3]

    def topology_report(self) -> Dict[str, object]:
        """Structured description of the machine (the FIG-1 artefact)."""
        cfg = self.config
        return {
            "host": {"name": self.host.name, "cycles_per_stmt": self.host.cycles_per_stmt},
            "clusters": [
                {
                    "name": c.name,
                    "pes": len(c.pes),
                    "accelerators": [a.name for a in c.accelerators],
                    "l1": {"size_kib": c.l1.size_kib, "read": c.l1.read_latency, "write": c.l1.write_latency},
                }
                for c in self.clusters
            ],
            "l2": {"size_kib": self.l2.size_kib, "read": self.l2.read_latency, "write": self.l2.write_latency},
            "l3": {"size_kib": self.l3.size_kib, "read": self.l3.read_latency, "write": self.l3.write_latency},
            "dma": [
                {"name": d.name, "setup": d.setup_cycles, "per_word": d.cycles_per_word}
                for d in self.dmas
            ],
            "total_pes": cfg.n_clusters * cfg.pes_per_cluster,
        }

    def memory_traffic_report(self) -> Dict[str, Dict[str, int]]:
        return {
            m.name: {"reads": m.reads, "writes": m.writes} for m in self.memories
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<P2012 {len(self.clusters)}x{self.config.pes_per_cluster}PE "
            f"+host +{len(self.dmas)}dma>"
        )
