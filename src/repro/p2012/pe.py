"""Execution resources: PEs, the host CPU and hardware accelerators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import Cluster


@dataclass
class ExecResource:
    """Anything that can run an actor."""

    name: str
    #: simulated cycles per executed Filter-C statement
    cycles_per_stmt: int = 1
    #: the actor currently mapped onto this resource (set by the runtime)
    occupant: Any = None

    @property
    def kind(self) -> str:
        return type(self).__name__

    @property
    def busy(self) -> bool:
        return self.occupant is not None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        who = f" -> {self.occupant}" if self.occupant else ""
        return f"<{self.kind} {self.name}{who}>"


@dataclass
class ProcessingElement(ExecResource):
    """An STxP70 configurable processor inside a cluster."""

    cluster: Optional["Cluster"] = None
    index: int = 0


@dataclass
class HostCpu(ExecResource):
    """The general-purpose (ARM) host processor.

    Host code runs faster per statement than fabric PEs but pays DMA
    latency to reach fabric links.
    """

    cycles_per_stmt: int = 1


@dataclass
class HardwareAccelerator(ExecResource):
    """A synthesized filter wired into the fabric.

    PEDF filters are "intended to be synthesized into hardware
    accelerators"; an accelerator executes its WORK method with a lower
    per-statement cost and is controlled by the PE of its cluster.
    """

    cluster: Optional["Cluster"] = None
    controlling_pe: Optional[ProcessingElement] = None
    cycles_per_stmt: int = 1  # pipelined: cheaper than a PE's default
