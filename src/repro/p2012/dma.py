"""DMA controllers serializing host↔fabric transfers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..sim.process import Delay, WaitEvent

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.kernel import Scheduler
    from .memory import Memory


@dataclass
class DmaStats:
    transfers: int = 0
    words_moved: int = 0
    busy_cycles: int = 0


class DmaController:
    """One DMA engine.  Transfers are serialized: a request issued while
    the engine is busy waits for the previous ones to drain (modelled with
    a cycle-accurate "free at" horizon rather than a full request queue,
    which preserves ordering and contention without extra processes)."""

    def __init__(
        self,
        scheduler: "Scheduler",
        name: str = "dma0",
        setup_cycles: int = 24,
        cycles_per_word: int = 2,
    ):
        self._scheduler = scheduler
        self.name = name
        self.setup_cycles = setup_cycles
        self.cycles_per_word = cycles_per_word
        self.stats = DmaStats()
        self._free_at = 0  # simulated time the engine next becomes idle

    def transfer_cost(self, words: int) -> int:
        return self.setup_cycles + self.cycles_per_word * max(1, words)

    def transfer(self, words: int = 1, src: Optional["Memory"] = None, dst: Optional["Memory"] = None):
        """Coroutine: perform a transfer of ``words``; the caller blocks
        for queueing + transfer duration, mirroring a synchronous DMA
        completion wait."""
        now = self._scheduler.now
        start = max(now, self._free_at)
        duration = self.transfer_cost(words)
        self._free_at = start + duration
        self.stats.transfers += 1
        self.stats.words_moved += words
        self.stats.busy_cycles += duration
        if src is not None:
            src.read_cost(words)
        if dst is not None:
            dst.write_cost(words)
        wait = self._free_at - now
        if wait:
            yield Delay(wait)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"<DMA {self.name} setup={self.setup_cycles} perword={self.cycles_per_word}>"
