"""Latency-annotated memory levels."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class MemoryLevel(enum.Enum):
    L1 = "L1"  # shared within a cluster
    L2 = "L2"  # shared across the fabric
    L3 = "L3"  # external, host side (DMA-reached from the fabric)


@dataclass
class Memory:
    """One storage level; latencies are in simulated cycles per access."""

    name: str
    level: MemoryLevel
    size_kib: int
    read_latency: int
    write_latency: int
    reads: int = 0
    writes: int = 0

    def read_cost(self, words: int = 1) -> int:
        self.reads += words
        return self.read_latency * words

    def write_cost(self, words: int = 1) -> int:
        self.writes += words
        return self.write_latency * words

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    def reset_counters(self) -> None:
        self.reads = 0
        self.writes = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}({self.level.value}, {self.size_kib}KiB, r{self.read_latency}/w{self.write_latency})"
