"""Model of the STMicroelectronics/CEA *Platform 2012* (P2012) MPSoC.

The paper targets P2012's functional simulator: a host-side general purpose
ARM processor plus a *fabric* of clusters, each cluster containing STxP70
processing elements (PEs) that share an L1 memory.  Inter-cluster traffic
goes through the fabric L2; host↔fabric exchanges go through L3 via DMA
controllers (paper Fig. 1).  Hardware accelerators can be wired into the
fabric next to the PE that controls them.

This package models exactly that topology on top of :mod:`repro.sim`:

- :class:`Memory` — latency-annotated storage levels (L1/L2/L3);
- :class:`ProcessingElement`, :class:`Cluster`, :class:`HostCpu`,
  :class:`HardwareAccelerator` — execution resources actors map onto;
- :class:`DmaController` — a shared engine serializing host↔fabric
  transfers with setup latency and per-word cost;
- :class:`P2012Platform` — builds the whole machine, allocates PEs to
  actors, and answers "which memory does a link between these two
  resources live in, and at what cost?" — the question the PEDF runtime
  asks when it elaborates data links.
"""

from .memory import Memory, MemoryLevel
from .pe import ExecResource, HardwareAccelerator, HostCpu, ProcessingElement
from .cluster import Cluster
from .dma import DmaController, DmaStats
from .soc import LinkCost, P2012Platform, PlatformConfig

__all__ = [
    "Memory",
    "MemoryLevel",
    "ExecResource",
    "ProcessingElement",
    "HostCpu",
    "HardwareAccelerator",
    "Cluster",
    "DmaController",
    "DmaStats",
    "P2012Platform",
    "PlatformConfig",
    "LinkCost",
]
