"""The resumable Filter-C interpreter.

Execution is a *generator*: the interpreter yields kernel requests
(:class:`~repro.sim.process.Delay`, ``WaitEvent`` forwarded from the
environment, or ``Suspend`` produced by an attached debug hook) at every
statement boundary.  The enclosing simulation process forwards those to the
scheduler with ``yield from``, which is what lets the debugger pause an
actor in the middle of its WORK method and later resume it exactly there —
no unwinding, no re-execution.

Three collaborators plug in:

- :class:`Environment` — supplies ``pedf.io`` / ``pedf.data`` /
  ``pedf.attribute`` and the controller intrinsics.  The PEDF runtime
  implements it; :class:`NullEnvironment` supports plain programs.
- :class:`DebugHook` — notified before every statement, on every call and
  on every return; whatever ``Suspend`` it returns is yielded to the
  kernel.  The base debugger implements it; ``None`` means full speed.
- :class:`CostModel` — simulated cycles charged per statement (the
  platform layer refines it with memory latencies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import GeneratorType
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from ..errors import CMinusRuntimeError
from ..sim.process import Delay, Suspend
from . import ast
from .debuginfo import DebugInfo, FunctionSymbol
from .typesys import (
    BOOL,
    S32,
    STRING,
    ArrayType,
    BoolType,
    CType,
    IntType,
    StructType,
    VoidType,
    wrap_int,
)
from .values import Raw, Value, coerce, copy_raw, default_value, format_value


# --------------------------------------------------------------------- flow


class _Return(Exception):
    def __init__(self, value: Raw):
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


# ----------------------------------------------------------------- plug-ins


class Environment:
    """What the program's ``pedf.*`` accesses and intrinsics talk to.

    The generator methods may yield kernel requests (e.g. to block on an
    empty link) — the interpreter forwards them with ``yield from``.
    """

    def io_read(self, iface: str, index: int, ctype: CType):
        """Coroutine: consume/peek the ``index``-th token of this WORK
        invocation from input interface ``iface``; returns a raw value."""
        raise CMinusRuntimeError(f"pedf.io.{iface} not available in this environment")
        yield  # pragma: no cover

    def io_write(self, iface: str, index: int, value: Raw, ctype: CType):
        """Coroutine: push ``value`` as the ``index``-th token produced on
        output interface ``iface`` during this WORK invocation."""
        raise CMinusRuntimeError(f"pedf.io.{iface} not available in this environment")
        yield  # pragma: no cover

    def intrinsic(self, name: str, args: Sequence[Raw]):
        """Coroutine: execute a controller intrinsic; returns a raw value."""
        raise CMinusRuntimeError(f"intrinsic {name}() not available in this environment")
        yield  # pragma: no cover

    def data_get(self, name: str) -> Raw:
        raise CMinusRuntimeError(f"pedf.data.{name} not available in this environment")

    def data_set(self, name: str, value: Raw) -> None:
        raise CMinusRuntimeError(f"pedf.data.{name} not available in this environment")

    def attr_get(self, name: str) -> Raw:
        raise CMinusRuntimeError(f"pedf.attribute.{name} not available in this environment")

    def print_out(self, text: str) -> None:
        """Receive the output of the ``print`` builtin."""


class NullEnvironment(Environment):
    """Environment for plain (actor-less) programs; captures ``print``."""

    def __init__(self) -> None:
        self.printed: List[str] = []

    def print_out(self, text: str) -> None:
        self.printed.append(text)


class DebugHook:
    """Interface the debugger implements to observe/control execution.

    Each method may return ``None`` (keep going) or a kernel request —
    normally :class:`~repro.sim.process.Suspend` — which the interpreter
    yields before proceeding.

    :attr:`capabilities` is the hook-elision bitmask (paper §V: disabling
    instrumentation "would significantly improve performance during the
    non-interactive parts of the execution").  The debugger lowers bits
    whenever no breakpoint of the matching kind could possibly fire; the
    interpreter caches the mask (:meth:`Interpreter.refresh_hook_caps`)
    and then skips the callback entirely — the software analogue of GDB
    physically removing its trap instructions.  The default is
    ``CAP_ALL`` so hand-written hooks observe everything unless a
    debugger actively manages the mask.
    """

    CAP_STATEMENTS = 0x1
    CAP_CALLS = 0x2
    CAP_RETURNS = 0x4
    CAP_DATA = 0x8
    CAP_ALL = 0xF
    #: telemetry rides the same mask but is NOT part of CAP_ALL and is
    #: ignored by tier selection: it only asks the interpreter to count
    #: the simulated cycles it flushes (span cost attribution), which the
    #: compiled tier can honour without deoptimizing
    CAP_TELEMETRY = 0x10
    #: runtime-verification monitors armed (``repro.rv``).  Like
    #: CAP_TELEMETRY, outside CAP_ALL and ignored by tier selection: the
    #: monitors consume framework events, not statement callbacks, so the
    #: compiled tier keeps running compiled and the monitors-off cost on
    #: the statement path stays a single predicted branch
    CAP_RV = 0x20
    #: per-instruction observation on the VM tier (ISA breakpoints,
    #: register watchpoints, ``stepi``).  Outside CAP_ALL and ignored by
    #: tier selection — arming it never deoptimizes; it flips the VM
    #: dispatch loop into its instrumented prelude, which calls
    #: :meth:`on_instruction` before every instruction.  The bit is the
    #: ISA-level extension of the hook-elision bitmask: disarmed, the VM
    #: pays one local bool test per instruction
    CAP_ISA = 0x40
    #: attributed profiling (``repro.obs.prof``).  Outside CAP_ALL and
    #: ignored by tier selection — arming it never deoptimizes.  It
    #: implies cycle counting (the profiler charges the same flushed
    #: cycles telemetry cross-checks) and routes each flush through
    #: :attr:`profile_sink` so the cost can be attributed to the live
    #: (actor, call path, tier) at the moment of the flush
    CAP_PROFILE = 0x80

    capabilities: int = CAP_ALL
    #: callable ``(interp, cycles)`` invoked at every cost flush while
    #: CAP_PROFILE is armed (set by the profiler facade; the flush sites
    #: read the cached :attr:`Interpreter._profile` copy)
    profile_sink = None

    def on_statement(self, interp: "Interpreter", stmt: ast.Stmt) -> Optional[Suspend]:
        return None

    def on_call(self, interp: "Interpreter", frame: "Frame") -> Optional[Suspend]:
        return None

    def on_return(self, interp: "Interpreter", frame: "Frame", value: Raw) -> Optional[Suspend]:
        return None

    def on_trap(self, interp: "Interpreter") -> Optional[Suspend]:
        return Suspend("trap")

    def on_instruction(self, interp: "Interpreter", act) -> Optional[Suspend]:
        """Called before each VM instruction while CAP_ISA is armed;
        ``act`` is the :class:`~repro.cminus.vm.emulator.Activation`."""
        return None

    def on_isa_break(self, interp: "Interpreter", act) -> Optional[Suspend]:
        """A ``brk``/``brkc`` break instruction fired (hook attached;
        like :meth:`on_trap`, not capability-gated)."""
        return Suspend("brk")


@dataclass
class CostModel:
    """Simulated cycles charged per executed statement.

    ``batch_cycles`` is the Delay-coalescing threshold: statement costs
    accumulate in :attr:`Interpreter._pending` and are flushed to the
    kernel as one batched ``Delay`` once at least this many cycles are
    pending (and always before dataflow I/O, intrinsics and function
    exit, so observable ordering and sim-time totals are unchanged).
    ``batch_cycles=1`` restores one kernel request per statement.
    """

    default_stmt: int = 1
    call_overhead: int = 2
    batch_cycles: int = 64

    def stmt_cost(self, stmt: ast.Stmt) -> int:
        return self.default_stmt


#: accepted values of ``Interpreter.tier`` / ``RuntimeConfig.interp_tier``:
#: "auto" picks the fastest non-observing tier (closure), "vm" runs the
#: register-machine bytecode tier, "slow" always tree-walks
VALID_TIERS = ("auto", "vm", "slow")


# -------------------------------------------------------------------- frames


@dataclass
class Frame:
    """One activation record, visible to the debugger."""

    func: ast.FuncDef
    fsym: Optional[FunctionSymbol]
    depth: int
    line: int
    call_line: int = 0  # line in the *caller* where this call was made
    scopes: List[Dict[str, Value]] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.func.name

    @property
    def filename(self) -> str:
        return self.func.filename

    def lookup(self, name: str) -> Optional[Value]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    def variables(self) -> Dict[str, Value]:
        """Flattened view, innermost scope winning."""
        out: Dict[str, Value] = {}
        for scope in self.scopes:
            out.update(scope)
        return out

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"#{self.depth} {self.name} () at {self.filename}:{self.line}"


class CallState:
    """Bookkeeping the debugger reads to know where execution stands."""

    def __init__(self) -> None:
        self.statements_executed = 0
        self.calls_made = 0


# --------------------------------------------------------------- interpreter


class Interpreter:
    """Executes one compilation unit on behalf of one actor."""

    def __init__(
        self,
        program: ast.Program,
        debug_info: DebugInfo,
        env: Optional[Environment] = None,
        hook: Optional[DebugHook] = None,
        cost: Optional[CostModel] = None,
        timed: bool = True,
        name: str = "",
    ):
        self.program = program
        self.debug_info = debug_info
        self.env = env or NullEnvironment()
        self.hook = hook
        self.cost = cost or CostModel()
        self.timed = timed
        self.name = name or program.filename
        self.frames: List[Frame] = []
        self.globals: Dict[str, Value] = {}
        self.state = CallState()
        self._globals_ready = False
        #: tier override: "auto" picks the compiled tier whenever no
        #: statement/call/return hook could fire; "slow" always tree-walks
        self.tier = "auto"
        # batched-Delay accumulator (cycles charged but not yet yielded)
        self._pending = 0
        self._batch_limit = max(1, self.cost.batch_cycles)
        #: lifetime simulated cycles this interpreter has flushed to the
        #: kernel, counted only while CAP_TELEMETRY is armed — the span
        #: builder's busy-time cross-check
        self.cycles_flushed = 0
        self._count_cycles = False
        self._profile = None
        self._rv_armed = False
        self._isa_armed = False
        self._vm_trace = False
        # constant per-statement cost when the cost model is not refined;
        # None forces a stmt_cost() call per boundary
        self._stmt_cost_const: Optional[int] = (
            self.cost.default_stmt
            if type(self.cost).stmt_cost is CostModel.stmt_cost
            else None
        )
        self._compiled = None  # lazily built CompiledUnit (fast tier)
        self._compile_failed = False
        self._vm_unit = None  # lazily built VmUnit (bytecode tier)
        self._vm_failed = False
        #: simulated cycles attributed per executed VM opcode (keyed by
        #: opcode number), counted only while CAP_TELEMETRY is armed —
        #: never added to ``_pending``, so Delay streams stay tier-exact
        self.opcode_cycles: Dict[int, int] = {}
        # hook-elision fast-path flags, cached from hook.capabilities so the
        # per-statement checkpoint is one attribute test when disarmed
        self._want_stmt = True
        self._want_call = True
        self._want_ret = True
        self._fast_ok = False
        self._pure_fast = False
        self.refresh_hook_caps()

    def refresh_hook_caps(self) -> None:
        """Re-cache the hook's capability mask (call after changing either
        ``self.hook`` or ``hook.capabilities``).

        Also recomputes the tier-selection flags: ``_fast_ok`` is the
        compiled tier's green light and doubles as its **deoptimization
        flag** — arming a statement/call/return capability while compiled
        activations are live drops it to False, and every compiled block
        driver checks it at each statement boundary, falling back into
        this tree-walking interpreter mid-function.
        """
        caps = DebugHook.CAP_ALL if self.hook is None else self.hook.capabilities
        self._want_stmt = bool(caps & DebugHook.CAP_STATEMENTS)
        self._want_call = bool(caps & DebugHook.CAP_CALLS)
        self._want_ret = bool(caps & DebugHook.CAP_RETURNS)
        if self.hook is None:
            self._fast_ok = True
        else:
            self._fast_ok = not (
                caps
                & (DebugHook.CAP_STATEMENTS | DebugHook.CAP_CALLS | DebugHook.CAP_RETURNS)
            )
        # cycle counting is off when hook is None (caps defaults to
        # CAP_ALL, which includes neither the telemetry nor the profile
        # bit); the profiler needs the same flushed-cycle accounting
        self._count_cycles = bool(
            caps & (DebugHook.CAP_TELEMETRY | DebugHook.CAP_PROFILE)
        )
        # attributed-profiling sink, cached so a flush site pays a single
        # None test when profiling is disarmed (CAP_PROFILE must never
        # flip _fast_ok)
        self._profile = (
            self.hook.profile_sink
            if self.hook is not None and caps & DebugHook.CAP_PROFILE
            else None
        )
        # RV monitors observe framework events, never statements; the bit
        # is cached only so tooling can see it rode the same mask without
        # perturbing tier selection (CAP_RV must never flip _fast_ok)
        self._rv_armed = bool(caps & DebugHook.CAP_RV)
        # ISA-level observation flips the VM dispatch loop into its
        # instrumented prelude without deoptimizing (CAP_ISA must never
        # flip _fast_ok); telemetry rides the same prelude for per-opcode
        # cycle attribution
        self._isa_armed = bool(caps & DebugHook.CAP_ISA)
        self._vm_trace = self._isa_armed or self._count_cycles
        # fully-synchronous execution is only safe when nothing can observe
        # or suspend mid-region: no hook at all and untimed simulation
        self._pure_fast = self.hook is None and not self.timed

    # ------------------------------------------------------------- queries

    @property
    def frame(self) -> Optional[Frame]:
        return self.frames[-1] if self.frames else None

    def backtrace(self) -> List[Frame]:
        return list(reversed(self.frames))

    def capture_frames(self) -> Tuple[Tuple[str, int], ...]:
        """``(function name, current line)`` per live frame, outermost
        first — the interpreter's contribution to a deep machine-state
        snapshot.  Execution *position* lives in Python generator frames
        and cannot be pickled; this captures the observable summary used
        to fingerprint a parked resident machine.  Tier-variant: the
        compiled tier maintains no frames and returns ``()``."""
        return tuple((f.name, f.line) for f in self.frames)

    # --------------------------------------------------------------- entry

    def run_function(self, name: str, args: Sequence[Raw] = ()):
        """Coroutine: execute function ``name`` to completion.

        Returns the function's raw return value.  Drive it inside a
        simulation process (``yield from interp.run_function(...)``) or
        synchronously with :func:`run_sync`.
        """
        func = self.program.function(name)
        if func is None:
            raise CMinusRuntimeError(f"no function {name!r} in {self.program.filename}")
        if not self._globals_ready:
            yield from self._init_globals()
        self._pure_fast = self.hook is None and not self.timed
        if self._use_vm(func.name):
            from .vm.emulator import call_vm

            ret = yield from call_vm(self, func.name, list(args))
        elif self._use_fast(func.name):
            from .compile import call_compiled

            ret = yield from call_compiled(self, func.name, list(args))
        else:
            ret = yield from self._call_user(func, list(args), call_line=0)
        if self._pending:
            yield from self._flush_cost()
        return ret

    def _use_vm(self, name: str) -> bool:
        """Bytecode-tier selection: only when explicitly requested
        (``tier == "vm"``) and no statement/call/return hook is armed —
        entry-time descent falls through to ``_use_fast`` otherwise."""
        if self.tier != "vm" or not self._fast_ok:
            return False
        vu = self._vm_unit
        if vu is None:
            if self._vm_failed:
                return False
            try:
                from .vm.compiler import vm_unit

                vu = self._vm_unit = vm_unit(self.program)
            except Exception:  # compiler trouble must never break execution
                self._vm_failed = True
                return False
        return vu.supports(name)

    def _use_fast(self, name: str) -> bool:
        """Tier selection: compiled unless a statement/call/return hook is
        armed, the tier is forced slow, or the function failed to compile."""
        if not self._fast_ok or self.tier == "slow":
            return False
        cu = self._compiled
        if cu is None:
            if self._compile_failed:
                return False
            try:
                from .compile import compiled_unit

                cu = self._compiled = compiled_unit(self.program)
            except Exception:  # compiler trouble must never break execution
                self._compile_failed = True
                return False
        return cu.supports(name)

    def _init_globals(self):
        self._globals_ready = True
        for g in self.program.globals:
            raw = default_value(g.ctype)
            if g.init is not None:
                raw = coerce((yield from self._eval(g.init)), g.ctype)
            self.globals[g.name] = Value(g.ctype, raw)

    # ---------------------------------------------------------------- calls

    def _call_user(self, func: ast.FuncDef, args: List[Raw], call_line: int):
        if len(args) != len(func.params):
            raise CMinusRuntimeError(
                f"{func.name}() expects {len(func.params)} args, got {len(args)}"
            )
        frame = Frame(
            func=func,
            fsym=self.debug_info.functions.get(func.name),
            depth=len(self.frames),
            line=func.line,
            call_line=call_line,
        )
        params = {p.name: Value(p.ctype, coerce(a, p.ctype)) for p, a in zip(func.params, args)}
        frame.scopes.append(params)
        self.frames.append(frame)
        self.state.calls_made += 1
        hook = self.hook
        if hook is not None and self._want_call:
            req = hook.on_call(self, frame)
            if req is not None:
                yield req
        if self.timed and self.cost.call_overhead:
            self._pending += self.cost.call_overhead
        ret: Raw = 0 if not isinstance(func.ret, VoidType) else 0
        try:
            yield from self._exec_block(func.body, new_scope=True)
            if not isinstance(func.ret, VoidType):
                ret = default_value(func.ret)
        except _Return as r:
            ret = r.value if r.value is not None else 0
        hook = self.hook
        if hook is not None and self._want_ret:
            req = hook.on_return(self, frame, ret)
            self.frames.pop()
            if req is not None:
                yield req
        else:
            self.frames.pop()
        return ret

    # ----------------------------------------------------------- statements

    def _exec_block(self, block: ast.Block, new_scope: bool = True):
        frame = self.frames[-1]
        if new_scope:
            frame.scopes.append({})
        try:
            for stmt in block.body:
                yield from self._exec_stmt(stmt)
        finally:
            if new_scope:
                frame.scopes.pop()

    def _checkpoint(self, stmt: ast.Stmt):
        """Per-statement debugger + cost hook (the pause point).

        Statement costs are *charged* here but only *flushed* to the
        kernel (as one batched ``Delay``) once ``batch_cycles`` have
        accumulated; genuine blocking points flush eagerly via
        :meth:`_io_read` / :meth:`_io_write` / :meth:`_intrinsic`, and
        :meth:`run_function` flushes the remainder on exit.  The flush
        points are purely structural (never hook- or stop-dependent) so
        both execution tiers issue byte-identical kernel-request streams
        and dispatch counting stays stop-invariant for the replay
        journal.
        """
        frame = self.frames[-1]
        frame.line = stmt.line
        self.state.statements_executed += 1
        timed = self.timed
        if timed and self._pending >= self._batch_limit:
            p = self._pending
            self._pending = 0
            if self._count_cycles:
                self.cycles_flushed += p
                if self._profile is not None:
                    self._profile(self, p)
            yield Delay(p)
        hook = self.hook
        if hook is not None and self._want_stmt:
            req = hook.on_statement(self, stmt)
            if req is not None:
                yield req
        if timed:
            c = self._stmt_cost_const
            if c is None:
                c = self.cost.stmt_cost(stmt)
            self._pending += c

    def _flush_cost(self):
        """Yield the accumulated statement cost as one kernel request."""
        p = self._pending
        if p:
            self._pending = 0
            if self._count_cycles:
                self.cycles_flushed += p
                if self._profile is not None:
                    self._profile(self, p)
            yield Delay(p)

    # Environment access points shared by both tiers: every genuine
    # blocking point flushes pending cost first, so the kernel observes
    # time in the same order as token traffic regardless of batching.

    def _io_read(self, iface: str, index: int, ctype: Optional[CType]):
        if self._pending:
            yield from self._flush_cost()
        return (yield from self.env.io_read(iface, index, ctype))

    def _io_write(self, iface: str, index: int, value: Raw, ctype: Optional[CType]):
        if self._pending:
            yield from self._flush_cost()
        return (yield from self.env.io_write(iface, index, value, ctype))

    def _intrinsic(self, name: str, args: Sequence[Raw]):
        if self._pending:
            yield from self._flush_cost()
        return (yield from self.env.intrinsic(name, args))

    def _exec_stmt(self, stmt: ast.Stmt):
        if isinstance(stmt, ast.Block):
            yield from self._exec_block(stmt)
            return
        if isinstance(stmt, ast.If):
            yield from self._checkpoint(stmt)
            cond = yield from self._eval(stmt.cond)
            if cond:
                yield from self._exec_stmt(stmt.then)
            elif stmt.other is not None:
                yield from self._exec_stmt(stmt.other)
            return
        if isinstance(stmt, ast.While):
            yield from self._while_from_header(stmt)
            return
        if isinstance(stmt, ast.DoWhile):
            while True:
                try:
                    yield from self._exec_stmt(stmt.body)
                except _Break:
                    return
                except _Continue:
                    pass
                cont = yield from self._dowhile_cond(stmt)
                if not cont:
                    return
        if isinstance(stmt, ast.For):
            frame = self.frames[-1]
            frame.scopes.append({})
            try:
                if stmt.init is not None:
                    yield from self._exec_stmt(stmt.init)
                yield from self._for_from_header(stmt)
            finally:
                frame.scopes.pop()
            return
        if isinstance(stmt, ast.Decl):
            yield from self._checkpoint(stmt)
            raw = default_value(stmt.ctype)
            if stmt.init is not None:
                raw = coerce((yield from self._eval(stmt.init)), stmt.ctype)
            self.frames[-1].scopes[-1][stmt.name] = Value(stmt.ctype, raw)
            return
        if isinstance(stmt, ast.Assign):
            yield from self._checkpoint(stmt)
            yield from self._exec_assign(stmt)
            return
        if isinstance(stmt, ast.IncDec):
            yield from self._checkpoint(stmt)
            ref = yield from self._resolve_ref(stmt.target)
            old = self._ref_get(ref, stmt.target)
            delta = 1 if stmt.op == "++" else -1
            self._ref_set(ref, old + delta, stmt.target.ctype)
            return
        if isinstance(stmt, ast.ExprStmt):
            yield from self._checkpoint(stmt)
            yield from self._eval(stmt.expr)
            return
        if isinstance(stmt, ast.Return):
            yield from self._checkpoint(stmt)
            value: Raw = 0
            if stmt.value is not None:
                func = self.frames[-1].func
                value = coerce((yield from self._eval(stmt.value)), func.ret)
            raise _Return(value)
        if isinstance(stmt, ast.Break):
            yield from self._checkpoint(stmt)
            raise _Break()
        if isinstance(stmt, ast.Continue):
            yield from self._checkpoint(stmt)
            raise _Continue()
        raise CMinusRuntimeError(f"unknown statement {type(stmt).__name__}")  # pragma: no cover

    # Loop bodies from their per-iteration boundary.  These are both the
    # slow tier's implementation and the compiled tier's deoptimization
    # continuations: a compiled loop driver that finds hooks armed at an
    # iteration header delegates the rest of the loop here, mid-function.

    def _while_from_header(self, stmt: ast.While):
        while True:
            yield from self._checkpoint(stmt)
            cond = yield from self._eval(stmt.cond)
            if not cond:
                return
            try:
                yield from self._exec_stmt(stmt.body)
            except _Break:
                return
            except _Continue:
                continue

    def _dowhile_cond(self, stmt: ast.DoWhile):
        """One do/while condition boundary; returns whether to loop again."""
        yield from self._checkpoint(stmt)
        return (yield from self._eval(stmt.cond))

    def _dowhile_from_cond(self, stmt: ast.DoWhile):
        """Deopt continuation: resume a do/while at its condition check."""
        while True:
            cont = yield from self._dowhile_cond(stmt)
            if not cont:
                return
            try:
                yield from self._exec_stmt(stmt.body)
            except _Break:
                return
            except _Continue:
                pass

    def _for_from_header(self, stmt: ast.For):
        """The for loop from its header boundary (scope and init already
        in place — the caller owns the loop scope)."""
        while True:
            yield from self._checkpoint(stmt)
            if stmt.cond is not None:
                cond = yield from self._eval(stmt.cond)
                if not cond:
                    return
            try:
                yield from self._exec_stmt(stmt.body)
            except _Break:
                return
            except _Continue:
                pass
            if stmt.step is not None:
                yield from self._exec_stmt(stmt.step)

    def _exec_assign(self, stmt: ast.Assign):
        value = yield from self._eval(stmt.value)
        target = stmt.target
        # dataflow assignment: pushing a token
        if isinstance(target, ast.PedfIo):
            index = yield from self._eval(target.index)
            raw = coerce(value, target.ctype)
            yield from self._io_write(target.iface, index, raw, target.ctype)
            return
        ref = yield from self._resolve_ref(target)
        if stmt.op != "=":
            old = self._ref_get(ref, target)
            value = self._apply_binop(stmt.op[:-1], old, value, target.ctype, stmt.line)
        self._ref_set(ref, value, target.ctype)

    # ----------------------------------------------------------- references

    def _resolve_ref(self, expr: ast.Expr):
        """Coroutine resolving an lvalue to a (kind, ...) reference tuple."""
        if isinstance(expr, ast.Ident):
            slot = self.frames[-1].lookup(expr.name) or self.globals.get(expr.name)
            if slot is None:
                raise CMinusRuntimeError(f"undefined variable {expr.name!r}")
            return ("slot", slot)
        if isinstance(expr, ast.Index):
            base_ref = yield from self._resolve_ref(expr.base)
            container = self._ref_get(base_ref, expr.base)
            index = yield from self._eval(expr.index)
            if not isinstance(container, list):
                raise CMinusRuntimeError("indexing a non-array value")
            if not 0 <= index < len(container):
                raise CMinusRuntimeError(
                    f"array index {index} out of bounds [0, {len(container)}) "
                    f"at {self.frames[-1].filename}:{expr.line}"
                )
            return ("elem", container, index)
        if isinstance(expr, ast.Member):
            base_ref = yield from self._resolve_ref(expr.base)
            container = self._ref_get(base_ref, expr.base)
            if not isinstance(container, dict):
                raise CMinusRuntimeError("member access on a non-struct value")
            return ("field", container, expr.member)
        if isinstance(expr, ast.PedfData):
            return ("data", expr.name)
        raise CMinusRuntimeError(f"not an lvalue: {type(expr).__name__}")

    def _ref_get(self, ref, expr: ast.Expr) -> Raw:
        kind = ref[0]
        if kind == "slot":
            return ref[1].data
        if kind == "elem":
            return ref[1][ref[2]]
        if kind == "field":
            return ref[1][ref[2]]
        if kind == "data":
            return self.env.data_get(ref[1])
        raise CMinusRuntimeError(f"bad reference {ref!r}")  # pragma: no cover

    def _ref_set(self, ref, value: Raw, ctype: Optional[CType]) -> None:
        kind = ref[0]
        if kind == "slot":
            slot: Value = ref[1]
            slot.data = coerce(value, slot.ctype)
        elif kind == "elem":
            ref[1][ref[2]] = coerce(value, ctype) if ctype else value
        elif kind == "field":
            ref[1][ref[2]] = coerce(value, ctype) if ctype else value
        elif kind == "data":
            self.env.data_set(ref[1], value)
        else:  # pragma: no cover
            raise CMinusRuntimeError(f"bad reference {ref!r}")

    # ---------------------------------------------------------- expressions

    def _eval(self, expr: ast.Expr):
        """Coroutine evaluating an expression to a raw value."""
        if isinstance(expr, ast.NumberLit):
            return expr.value
        if isinstance(expr, ast.BoolLit):
            return expr.value
        if isinstance(expr, ast.StringLit):
            return expr.value
        if isinstance(expr, ast.Ident):
            slot = None
            if self.frames:
                slot = self.frames[-1].lookup(expr.name)
            if slot is None:
                slot = self.globals.get(expr.name)
            if slot is None:
                raise CMinusRuntimeError(f"undefined variable {expr.name!r}")
            return slot.data
        if isinstance(expr, ast.Unary):
            operand = yield from self._eval(expr.operand)
            return self._apply_unop(expr.op, operand, expr.ctype)
        if isinstance(expr, ast.Binary):
            if expr.op == "&&":
                left = yield from self._eval(expr.left)
                if not left:
                    return False
                right = yield from self._eval(expr.right)
                return bool(right)
            if expr.op == "||":
                left = yield from self._eval(expr.left)
                if left:
                    return True
                right = yield from self._eval(expr.right)
                return bool(right)
            left = yield from self._eval(expr.left)
            right = yield from self._eval(expr.right)
            return self._apply_binop(expr.op, left, right, expr.ctype, expr.line)
        if isinstance(expr, ast.Ternary):
            cond = yield from self._eval(expr.cond)
            branch = expr.then if cond else expr.other
            value = yield from self._eval(branch)
            if isinstance(expr.ctype, (IntType, BoolType)):
                return coerce(value, expr.ctype)
            return value
        if isinstance(expr, ast.Cast):
            value = yield from self._eval(expr.operand)
            return coerce(value, expr.target)
        if isinstance(expr, ast.Index):
            base = yield from self._eval(expr.base)
            index = yield from self._eval(expr.index)
            if not isinstance(base, list):
                raise CMinusRuntimeError("indexing a non-array value")
            if not 0 <= index < len(base):
                raise CMinusRuntimeError(
                    f"array index {index} out of bounds [0, {len(base)}) "
                    f"at {self.frames[-1].filename}:{expr.line}"
                )
            return base[index]
        if isinstance(expr, ast.Member):
            base = yield from self._eval(expr.base)
            if not isinstance(base, dict):
                raise CMinusRuntimeError("member access on a non-struct value")
            return base[expr.member]
        if isinstance(expr, ast.Call):
            return (yield from self._eval_call(expr))
        if isinstance(expr, ast.PedfIo):
            index = yield from self._eval(expr.index)
            return (yield from self._io_read(expr.iface, index, expr.ctype))
        if isinstance(expr, ast.PedfData):
            return self.env.data_get(expr.name)
        if isinstance(expr, ast.PedfAttr):
            return self.env.attr_get(expr.name)
        raise CMinusRuntimeError(f"unknown expression {type(expr).__name__}")  # pragma: no cover

    def _eval_call(self, expr: ast.Call):
        args: List[Raw] = []
        for a in expr.args:
            args.append((yield from self._eval(a)))
        name = expr.name
        if expr.is_builtin:
            if name == "abs":
                return wrap_int(abs(args[0]), S32)
            if name == "min":
                return wrap_int(min(args[0], args[1]), S32)
            if name == "max":
                return wrap_int(max(args[0], args[1]), S32)
            if name == "clip":
                x, lo, hi = args
                return wrap_int(max(lo, min(hi, x)), S32)
            if name == "print":
                parts = []
                for a, node in zip(args, expr.args):
                    if isinstance(node.ctype, StructType):
                        parts.append(format_value(node.ctype, a))
                    elif isinstance(a, bool):
                        parts.append("true" if a else "false")
                    else:
                        parts.append(str(a))
                self.env.print_out(" ".join(parts))
                return 0
            if name == "trap":
                if self.hook:
                    req = self.hook.on_trap(self)
                    if req is not None:
                        yield req
                return 0
            # controller intrinsic
            return (yield from self._intrinsic(name, args))
        func = self.program.function(name)
        if func is None:
            raise CMinusRuntimeError(f"call to undefined function {name!r}")
        call_line = self.frames[-1].line if self.frames else 0
        return (yield from self._call_user(func, args, call_line))

    # ------------------------------------------------------------ operators

    def _apply_unop(self, op: str, operand: Raw, ctype: Optional[CType]) -> Raw:
        if op == "!":
            return not operand
        if op == "~":
            result = ~int(operand)
        elif op == "-":
            result = -int(operand)
        else:  # '+'
            result = int(operand)
        if isinstance(ctype, IntType):
            return wrap_int(result, ctype)
        return wrap_int(result, S32)

    def _apply_binop(self, op: str, left: Raw, right: Raw, ctype: Optional[CType], line: int) -> Raw:
        if op in ("==", "!=", "<", ">", "<=", ">="):
            li, ri = int(left), int(right)
            return {
                "==": li == ri,
                "!=": li != ri,
                "<": li < ri,
                ">": li > ri,
                "<=": li <= ri,
                ">=": li >= ri,
            }[op]
        li, ri = int(left), int(right)
        if op == "+":
            result = li + ri
        elif op == "-":
            result = li - ri
        elif op == "*":
            result = li * ri
        elif op == "/":
            if ri == 0:
                raise CMinusRuntimeError(f"division by zero at line {line}")
            result = abs(li) // abs(ri) * (1 if (li >= 0) == (ri >= 0) else -1)
        elif op == "%":
            if ri == 0:
                raise CMinusRuntimeError(f"modulo by zero at line {line}")
            result = abs(li) % abs(ri) * (1 if li >= 0 else -1)
        elif op == "&":
            result = li & ri
        elif op == "|":
            result = li | ri
        elif op == "^":
            result = li ^ ri
        elif op == "<<":
            if ri < 0 or ri > 32:
                raise CMinusRuntimeError(f"shift amount {ri} out of range at line {line}")
            result = li << ri
        elif op == ">>":
            if ri < 0 or ri > 32:
                raise CMinusRuntimeError(f"shift amount {ri} out of range at line {line}")
            if isinstance(ctype, IntType) and not ctype.signed:
                result = (li & ((1 << ctype.bits) - 1)) >> ri
            else:
                result = li >> ri
        else:  # pragma: no cover
            raise CMinusRuntimeError(f"unknown operator {op!r}")
        if isinstance(ctype, IntType):
            return wrap_int(result, ctype)
        return wrap_int(result, S32)


# -------------------------------------------------------------- pure driver


def run_sync(gen: Generator, allow_delay: bool = True):
    """Drive an interpreter coroutine synchronously (no scheduler).

    ``Delay``/``Yield`` requests are skipped (time does not exist here);
    anything else — ``WaitEvent``, ``Suspend`` — means the computation
    would block or stop, which a synchronous caller cannot honour.
    """
    from ..sim.process import Delay as _Delay, Yield as _Yield

    try:
        req = next(gen)
        while True:
            if isinstance(req, (_Delay, _Yield)) and allow_delay:
                req = gen.send(None)
            else:
                raise CMinusRuntimeError(
                    f"expression cannot be evaluated synchronously (would {type(req).__name__})"
                )
    except StopIteration as stop:
        return stop.value


class PureEvaluator:
    """Side-effect-free expression evaluation against a stopped frame.

    Used by the debugger for ``print``, breakpoint conditions and
    watchpoints.  Dataflow I/O and intrinsics are forbidden (they would
    consume tokens or alter scheduling); ``pedf.data`` / ``pedf.attribute``
    reads are allowed because they are non-destructive.
    """

    class _PureEnv(Environment):
        def __init__(self, inner: Environment):
            self.inner = inner

        def io_read(self, iface, index, ctype):
            raise CMinusRuntimeError(
                f"cannot read pedf.io.{iface} in a debugger expression (it would consume a token); "
                "use the dataflow 'iface' commands to inspect links"
            )
            yield  # pragma: no cover

        def io_write(self, iface, index, value, ctype):
            raise CMinusRuntimeError(
                f"cannot write pedf.io.{iface} in a debugger expression (it would push a token); "
                "use 'iface ... insert' to inject tokens"
            )
            yield  # pragma: no cover

        def intrinsic(self, name, args):
            raise CMinusRuntimeError(f"cannot call intrinsic {name}() in a debugger expression")
            yield  # pragma: no cover

        def data_get(self, name):
            return self.inner.data_get(name)

        def data_set(self, name, value):
            raise CMinusRuntimeError(f"cannot write pedf.data.{name} in a pure expression")

        def attr_get(self, name):
            return self.inner.attr_get(name)

    def __init__(self, interp: Interpreter):
        self.interp = interp

    def eval(self, expr: ast.Expr) -> Raw:
        interp = self.interp
        saved_env, saved_hook, saved_timed = interp.env, interp.hook, interp.timed
        saved_pending = interp._pending  # a pure eval must not flush the
        interp.env = self._PureEnv(saved_env)  # stopped run's batched cost
        interp.hook = None
        interp.timed = False
        try:
            return run_sync(interp._eval(expr))
        finally:
            interp.env, interp.hook, interp.timed = saved_env, saved_hook, saved_timed
            interp._pending = saved_pending
