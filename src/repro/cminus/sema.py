"""Semantic analysis for Filter-C.

Resolves names, checks types, annotates every expression with its static
type (``Expr.ctype``) and emits the :class:`~repro.cminus.debuginfo.DebugInfo`
the debugger consumes.

An actor's compilation context — its interface/data/attribute signatures
and whether controller intrinsics are available — is supplied through an
:class:`ActorContext`, normally produced by the MIND compiler from the
architecture description.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import CMinusTypeError
from . import ast
from .debuginfo import DebugInfo, FunctionSymbol, LineTable, VariableSymbol
from .typesys import (
    BOOL,
    S32,
    STRING,
    U32,
    VOID,
    ArrayType,
    BoolType,
    CType,
    IntType,
    StringType,
    StructType,
    VoidType,
    assignable,
    common_type,
    is_integer,
    is_scalar,
)

# controller scheduling intrinsics (paper §IV-B) and shared helpers;
# (ret type, param types, variadic)
CONTROLLER_INTRINSICS: Dict[str, Tuple[CType, Tuple[CType, ...], bool]] = {
    "ACTOR_START": (VOID, (STRING,), False),
    "ACTOR_SYNC": (VOID, (STRING,), False),
    "ACTOR_FIRE": (VOID, (STRING,), False),
    "WAIT_FOR_ACTOR_INIT": (VOID, (), False),
    "WAIT_FOR_ACTOR_SYNC": (VOID, (), False),
    "STEP_COUNT": (U32, (), False),
    "PRED": (BOOL, (STRING,), False),
    "SET_PRED": (VOID, (STRING, BOOL), False),
    "MODULE_STOP": (VOID, (), False),
}

SHARED_BUILTINS: Dict[str, Tuple[CType, Tuple[CType, ...], bool]] = {
    "abs": (S32, (S32,), False),
    "min": (S32, (S32, S32), False),
    "max": (S32, (S32, S32), False),
    "clip": (S32, (S32, S32, S32), False),
    "print": (VOID, (), True),
    "trap": (VOID, (), False),  # programmatic breakpoint, like int3
}


@dataclass
class IfaceSig:
    """Signature of one dataflow interface, from the architecture."""

    name: str
    direction: str  # "input" | "output"
    ctype: CType


@dataclass
class ActorContext:
    """Compilation context of one actor (filter or controller — or any
    entity of another programming model supplying its own intrinsics)."""

    kind: str = "filter"  # "filter" | "controller" | "plain" | custom
    ifaces: Dict[str, IfaceSig] = field(default_factory=dict)
    data: Dict[str, CType] = field(default_factory=dict)
    attributes: Dict[str, CType] = field(default_factory=dict)
    actor_names: Optional[Set[str]] = None  # valid ACTOR_START targets
    structs: Dict[str, StructType] = field(default_factory=dict)
    #: model-specific intrinsics beyond the PEDF controller set:
    #: name -> (ret type, param types, validate-names?).  STRING params
    #: accept bare identifiers (rewritten to literals); when the third
    #: element is truthy it names the set of valid identifier values.
    extra_intrinsics: Dict[str, Tuple[CType, Tuple[CType, ...], Optional[Set[str]]]] = field(
        default_factory=dict
    )

    @property
    def allows_io(self) -> bool:
        return self.kind in ("filter", "controller")

    @property
    def allows_intrinsics(self) -> bool:
        return self.kind == "controller"


class SemanticAnalyzer:
    def __init__(self, program: ast.Program, context: Optional[ActorContext] = None, source: str = ""):
        self.program = program
        self.ctx = context or ActorContext(kind="plain")
        self.source = source
        self.filename = program.filename
        self.debug_info = DebugInfo()
        if source:
            self.debug_info.sources[self.filename] = source
        self._globals: Dict[str, VariableSymbol] = {}
        self._consts: Set[str] = set()
        self._funcs: Dict[str, ast.FuncDef] = {}
        self._scopes: List[Dict[str, CType]] = []
        self._cur_func: Optional[ast.FuncDef] = None
        self._cur_fsym: Optional[FunctionSymbol] = None
        self._loop_depth = 0

    # ------------------------------------------------------------- plumbing

    def error(self, message: str, node: ast.Node) -> CMinusTypeError:
        return CMinusTypeError(message, self.filename, node.line)

    # ----------------------------------------------------------------- main

    def analyze(self) -> DebugInfo:
        for sd in self.program.structs:
            st = StructType(name=sd.name, fields=tuple(sd.fields))
            self.debug_info.structs[sd.name] = st
        for name, st in self.ctx.structs.items():
            self.debug_info.structs.setdefault(name, st)

        for g in self.program.globals:
            if g.name in self._globals:
                raise self.error(f"global {g.name!r} redefined", g)
            if g.init is not None:
                it = self._type_of(g.init)
                if not assignable(g.ctype, it):
                    raise self.error(f"cannot initialize {g.ctype} global {g.name!r} from {it}", g)
            self._globals[g.name] = VariableSymbol(g.name, g.ctype, "global", g.line)
            if g.const:
                self._consts.add(g.name)
        self.debug_info.globals = dict(self._globals)

        for f in self.program.functions:
            if f.name in self._funcs:
                raise self.error(f"function {f.name!r} redefined", f)
            if (
                f.name in SHARED_BUILTINS
                or f.name in CONTROLLER_INTRINSICS
                or f.name in self.ctx.extra_intrinsics
            ):
                raise self.error(f"function {f.name!r} shadows a builtin", f)
            self._funcs[f.name] = f

        for f in self.program.functions:
            self._check_function(f)
        return self.debug_info

    # ------------------------------------------------------------ functions

    def _check_function(self, func: ast.FuncDef) -> None:
        self._cur_func = func
        fsym = FunctionSymbol(
            name=func.name,
            filename=self.filename,
            line=func.line,
            end_line=func.end_line,
            ret=func.ret,
        )
        self._cur_fsym = fsym
        self._scopes = [{}]
        seen = set()
        for p in func.params:
            if p.name in seen:
                raise self.error(f"duplicate parameter {p.name!r}", p)
            seen.add(p.name)
            if isinstance(p.ctype, VoidType):
                raise self.error(f"parameter {p.name!r} cannot be void", p)
            self._scopes[0][p.name] = p.ctype
            fsym.params.append(VariableSymbol(p.name, p.ctype, "param", p.line))
        self._check_block(func.body, new_scope=True)
        self.debug_info.functions[func.name] = fsym
        self._cur_func = None
        self._cur_fsym = None

    # ------------------------------------------------------------ statements

    def _check_block(self, block: ast.Block, new_scope: bool = True) -> None:
        if new_scope:
            self._scopes.append({})
        for stmt in block.body:
            self._check_stmt(stmt)
        if new_scope:
            self._scopes.pop()

    def _mark_line(self, stmt: ast.Stmt) -> None:
        self.debug_info.line_table.add(self.filename, stmt.line)

    def _check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt)
        elif isinstance(stmt, ast.Decl):
            self._mark_line(stmt)
            self._check_decl(stmt)
        elif isinstance(stmt, ast.Assign):
            self._mark_line(stmt)
            self._check_assign(stmt)
        elif isinstance(stmt, ast.IncDec):
            self._mark_line(stmt)
            t = self._check_lvalue(stmt.target, for_compound=True)
            if not is_integer(t):
                raise self.error(f"{stmt.op} requires an integer lvalue, got {t}", stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._mark_line(stmt)
            self._type_of(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._mark_line(stmt)
            self._check_cond(stmt.cond)
            self._check_stmt(stmt.then)
            if stmt.other is not None:
                self._check_stmt(stmt.other)
        elif isinstance(stmt, ast.While):
            self._mark_line(stmt)
            self._check_cond(stmt.cond)
            self._loop_depth += 1
            self._check_stmt(stmt.body)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.DoWhile):
            self._mark_line(stmt)
            self._loop_depth += 1
            self._check_stmt(stmt.body)
            self._loop_depth -= 1
            self._check_cond(stmt.cond)
        elif isinstance(stmt, ast.For):
            self._mark_line(stmt)
            self._scopes.append({})
            if stmt.init is not None:
                self._check_stmt(stmt.init)
            if stmt.cond is not None:
                self._check_cond(stmt.cond)
            if stmt.step is not None:
                self._check_stmt(stmt.step)
            self._loop_depth += 1
            self._check_stmt(stmt.body)
            self._loop_depth -= 1
            self._scopes.pop()
        elif isinstance(stmt, ast.Return):
            self._mark_line(stmt)
            assert self._cur_func is not None
            ret = self._cur_func.ret
            if stmt.value is None:
                if not isinstance(ret, VoidType):
                    raise self.error(f"return without value in {ret} function", stmt)
            else:
                vt = self._type_of(stmt.value)
                if isinstance(ret, VoidType):
                    raise self.error("return with value in void function", stmt)
                if not assignable(ret, vt):
                    raise self.error(f"cannot return {vt} from {ret} function", stmt)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            self._mark_line(stmt)
            if self._loop_depth == 0:
                kw = "break" if isinstance(stmt, ast.Break) else "continue"
                raise self.error(f"{kw} outside of a loop", stmt)
        else:  # pragma: no cover - parser produces no other nodes
            raise self.error(f"unknown statement {type(stmt).__name__}", stmt)

    def _check_decl(self, stmt: ast.Decl) -> None:
        if stmt.name in self._scopes[-1]:
            raise self.error(f"variable {stmt.name!r} redeclared in same scope", stmt)
        if isinstance(stmt.ctype, VoidType):
            raise self.error(f"variable {stmt.name!r} cannot be void", stmt)
        if isinstance(stmt.ctype, ArrayType) and stmt.ctype.size <= 0:
            raise self.error(f"array {stmt.name!r} must have positive size", stmt)
        if stmt.init is not None:
            it = self._type_of(stmt.init)
            if not assignable(stmt.ctype, it):
                raise self.error(f"cannot initialize {stmt.ctype} variable {stmt.name!r} from {it}", stmt)
        elif stmt.const:
            raise self.error(f"const variable {stmt.name!r} must be initialized", stmt)
        self._scopes[-1][stmt.name] = stmt.ctype
        if stmt.const:
            self._consts.add(f"{self._cur_func.name}:{stmt.name}")  # type: ignore[union-attr]
        if self._cur_fsym is not None:
            self._cur_fsym.locals.append(VariableSymbol(stmt.name, stmt.ctype, "local", stmt.line))

    def _check_assign(self, stmt: ast.Assign) -> None:
        tt = self._check_lvalue(stmt.target, for_compound=stmt.op != "=")
        vt = self._type_of(stmt.value)
        if stmt.op != "=":
            if not is_integer(tt):
                raise self.error(f"compound assignment requires integer target, got {tt}", stmt)
            if not (is_integer(vt) or isinstance(vt, BoolType)):
                raise self.error(f"compound assignment requires integer value, got {vt}", stmt)
        else:
            if not assignable(tt, vt):
                raise self.error(f"cannot assign {vt} to {tt}", stmt)

    def _check_cond(self, cond: ast.Expr) -> None:
        t = self._type_of(cond)
        if not is_scalar(t):
            raise self.error(f"condition must be scalar, got {t}", cond)

    # -------------------------------------------------------------- lvalues

    def _check_lvalue(self, expr: ast.Expr, for_compound: bool = False) -> CType:
        if isinstance(expr, ast.Ident):
            t = self._type_of(expr)
            if expr.binding == "func":
                raise self.error(f"cannot assign to function {expr.name!r}", expr)
            key = expr.name if expr.binding == "global" else f"{self._cur_func.name}:{expr.name}"  # type: ignore[union-attr]
            if expr.name in self._consts and expr.binding == "global" or key in self._consts:
                raise self.error(f"cannot assign to const {expr.name!r}", expr)
            return t
        if isinstance(expr, ast.Index):
            base_t = self._type_of(expr.base)
            self._require_lvalue_base(expr.base)
            it = self._type_of(expr.index)
            if not is_integer(it):
                raise self.error(f"array index must be integer, got {it}", expr)
            if not isinstance(base_t, ArrayType):
                raise self.error(f"cannot index non-array type {base_t}", expr)
            expr.ctype = base_t.elem
            return base_t.elem
        if isinstance(expr, ast.Member):
            base_t = self._type_of(expr.base)
            self._require_lvalue_base(expr.base)
            if not isinstance(base_t, StructType):
                raise self.error(f"cannot access member of non-struct type {base_t}", expr)
            ft = base_t.field_type(expr.member)
            if ft is None:
                raise self.error(f"struct {base_t.name} has no field {expr.member!r}", expr)
            expr.ctype = ft
            return ft
        if isinstance(expr, ast.PedfIo):
            if for_compound:
                raise self.error("compound assignment to a dataflow output is not allowed "
                                 "(tokens cannot be read back once pushed)", expr)
            sig = self._io_sig(expr)
            if sig.direction != "output":
                raise self.error(f"cannot write to input interface {expr.iface!r}", expr)
            expr.ctype = sig.ctype
            return sig.ctype
        if isinstance(expr, ast.PedfData):
            t = self._type_of(expr)
            return t
        if isinstance(expr, ast.PedfAttr):
            raise self.error(f"attribute {expr.name!r} is read-only", expr)
        raise self.error("expression is not an lvalue", expr)

    def _require_lvalue_base(self, base: ast.Expr) -> None:
        if not isinstance(base, (ast.Ident, ast.Index, ast.Member, ast.PedfData)):
            raise self.error("expression is not an lvalue", base)

    # ------------------------------------------------------------- expr types

    def _lookup_var(self, name: str) -> Optional[Tuple[str, CType]]:
        for scope in reversed(self._scopes):
            if name in scope:
                return ("local", scope[name])
        if self._globals.get(name) is not None:
            return ("global", self._globals[name].ctype)
        return None

    def _io_sig(self, node: ast.PedfIo) -> IfaceSig:
        if not self.ctx.allows_io:
            raise self.error("pedf.io is not available in this compilation context", node)
        sig = self.ctx.ifaces.get(node.iface)
        if sig is None:
            known = ", ".join(sorted(self.ctx.ifaces)) or "none"
            raise self.error(f"unknown interface {node.iface!r} (known: {known})", node)
        it = self._type_of(node.index)
        if not is_integer(it):
            raise self.error(f"io index must be integer, got {it}", node)
        return sig

    def _type_of(self, expr: ast.Expr) -> CType:
        t = self._compute_type(expr)
        expr.ctype = t
        return t

    def _compute_type(self, expr: ast.Expr) -> CType:
        if isinstance(expr, ast.NumberLit):
            return U32 if expr.value > S32.max else S32
        if isinstance(expr, ast.BoolLit):
            return BOOL
        if isinstance(expr, ast.StringLit):
            return STRING
        if isinstance(expr, ast.Ident):
            hit = self._lookup_var(expr.name)
            if hit is not None:
                expr.binding = hit[0]
                return hit[1]
            if expr.name in self._funcs:
                expr.binding = "func"
                raise self.error(f"function {expr.name!r} used as a value", expr)
            raise self.error(f"undeclared identifier {expr.name!r}", expr)
        if isinstance(expr, ast.Unary):
            ot = self._type_of(expr.operand)
            if expr.op == "!":
                if not is_scalar(ot):
                    raise self.error(f"! requires scalar operand, got {ot}", expr)
                return BOOL
            if not is_integer(ot):
                raise self.error(f"unary {expr.op} requires integer operand, got {ot}", expr)
            return common_type(ot, ot)
        if isinstance(expr, ast.Binary):
            return self._binary_type(expr)
        if isinstance(expr, ast.Ternary):
            self._check_cond(expr.cond)
            tt = self._type_of(expr.then)
            ot = self._type_of(expr.other)
            if is_integer(tt) and is_integer(ot):
                return common_type(tt, ot)
            if not assignable(tt, ot):
                raise self.error(f"ternary branches have incompatible types {tt} / {ot}", expr)
            return tt
        if isinstance(expr, ast.Cast):
            ot = self._type_of(expr.operand)
            if isinstance(expr.target, (IntType, BoolType)) and is_scalar(ot):
                return expr.target
            raise self.error(f"invalid cast from {ot} to {expr.target}", expr)
        if isinstance(expr, ast.Index):
            base_t = self._type_of(expr.base)
            it = self._type_of(expr.index)
            if not is_integer(it):
                raise self.error(f"array index must be integer, got {it}", expr)
            if not isinstance(base_t, ArrayType):
                raise self.error(f"cannot index non-array type {base_t}", expr)
            return base_t.elem
        if isinstance(expr, ast.Member):
            base_t = self._type_of(expr.base)
            if not isinstance(base_t, StructType):
                raise self.error(f"cannot access member of non-struct type {base_t}", expr)
            ft = base_t.field_type(expr.member)
            if ft is None:
                raise self.error(f"struct {base_t.name} has no field {expr.member!r}", expr)
            return ft
        if isinstance(expr, ast.Call):
            return self._call_type(expr)
        if isinstance(expr, ast.PedfIo):
            sig = self._io_sig(expr)
            if sig.direction != "input":
                raise self.error(f"cannot read from output interface {expr.iface!r} "
                                 "(tokens cannot be read back once pushed)", expr)
            return sig.ctype
        if isinstance(expr, ast.PedfData):
            if not self.ctx.allows_io:
                raise self.error("pedf.data is not available in this compilation context", expr)
            t = self.ctx.data.get(expr.name)
            if t is None:
                raise self.error(f"unknown private data {expr.name!r}", expr)
            return t
        if isinstance(expr, ast.PedfAttr):
            if not self.ctx.allows_io:
                raise self.error("pedf.attribute is not available in this compilation context", expr)
            t = self.ctx.attributes.get(expr.name)
            if t is None:
                raise self.error(f"unknown attribute {expr.name!r}", expr)
            return t
        raise self.error(f"unknown expression {type(expr).__name__}", expr)

    def _binary_type(self, expr: ast.Binary) -> CType:
        lt = self._type_of(expr.left)
        rt = self._type_of(expr.right)
        op = expr.op
        if op in ("&&", "||"):
            if not (is_scalar(lt) and is_scalar(rt)):
                raise self.error(f"{op} requires scalar operands", expr)
            return BOOL
        if op in ("==", "!="):
            if is_scalar(lt) and is_scalar(rt):
                return BOOL
            raise self.error(f"{op} requires scalar operands, got {lt} and {rt}", expr)
        if op in ("<", ">", "<=", ">="):
            if is_integer(lt) and is_integer(rt):
                return BOOL
            raise self.error(f"{op} requires integer operands, got {lt} and {rt}", expr)
        # arithmetic / bitwise / shift
        lt2 = S32 if isinstance(lt, BoolType) else lt
        rt2 = S32 if isinstance(rt, BoolType) else rt
        if not (is_integer(lt2) and is_integer(rt2)):
            raise self.error(f"{op} requires integer operands, got {lt} and {rt}", expr)
        if op in ("<<", ">>"):
            return common_type(lt2, lt2)
        return common_type(lt2, rt2)

    def _call_type(self, expr: ast.Call) -> CType:
        name = expr.name
        if name in self.ctx.extra_intrinsics:
            ret, param_types, valid_names = self.ctx.extra_intrinsics[name]
            expr.is_builtin = True
            self._check_extra_intrinsic_args(expr, param_types, valid_names)
            return ret
        if name in CONTROLLER_INTRINSICS:
            if not self.ctx.allows_intrinsics:
                raise self.error(f"intrinsic {name}() is only available in controller code", expr)
            ret, param_types, variadic = CONTROLLER_INTRINSICS[name]
            expr.is_builtin = True
            self._check_intrinsic_args(expr, param_types)
            return ret
        if name in SHARED_BUILTINS:
            ret, param_types, variadic = SHARED_BUILTINS[name]
            expr.is_builtin = True
            if variadic:
                for a in expr.args:
                    self._type_of(a)
            else:
                if len(expr.args) != len(param_types):
                    raise self.error(f"{name}() expects {len(param_types)} arguments, got {len(expr.args)}", expr)
                for a, pt in zip(expr.args, param_types):
                    at = self._type_of(a)
                    if not assignable(pt, at):
                        raise self.error(f"argument of {name}() has type {at}, expected {pt}", expr)
            return ret
        func = self._funcs.get(name)
        if func is None:
            raise self.error(f"call to undefined function {name!r}", expr)
        if len(expr.args) != len(func.params):
            raise self.error(
                f"{name}() expects {len(func.params)} arguments, got {len(expr.args)}", expr
            )
        for a, p in zip(expr.args, func.params):
            at = self._type_of(a)
            if not assignable(p.ctype, at):
                raise self.error(f"argument {p.name!r} of {name}() has type {at}, expected {p.ctype}", expr)
        return func.ret

    def _check_extra_intrinsic_args(
        self,
        expr: ast.Call,
        param_types: Tuple[CType, ...],
        valid_names: Optional[Set[str]],
    ) -> None:
        if len(expr.args) != len(param_types):
            raise self.error(
                f"{expr.name}() expects {len(param_types)} arguments, got {len(expr.args)}", expr
            )
        for i, (arg, pt) in enumerate(zip(expr.args, param_types)):
            if isinstance(pt, StringType):
                if isinstance(arg, ast.Ident) and self._lookup_var(arg.name) is None:
                    arg = ast.StringLit(line=arg.line, col=arg.col, value=arg.name)
                    expr.args[i] = arg
                at = self._type_of(arg)
                if not isinstance(at, StringType):
                    raise self.error(f"{expr.name}() argument {i + 1} must be a name", expr)
                if valid_names is not None and arg.value not in valid_names:  # type: ignore[union-attr]
                    known = ", ".join(sorted(valid_names))
                    raise self.error(
                        f"{expr.name}({arg.value!r}): unknown target (valid: {known})", expr  # type: ignore[union-attr]
                    )
            else:
                at = self._type_of(arg)
                if not assignable(pt, at):
                    raise self.error(
                        f"argument of {expr.name}() has type {at}, expected {pt}", expr
                    )

    def _check_intrinsic_args(self, expr: ast.Call, param_types: Tuple[CType, ...]) -> None:
        """Intrinsic actor-name arguments may be bare identifiers (the
        paper writes ``ACTOR_START(name)``); they are rewritten to string
        literals and validated against the module's actor list."""
        if len(expr.args) != len(param_types):
            raise self.error(
                f"{expr.name}() expects {len(param_types)} arguments, got {len(expr.args)}", expr
            )
        for i, (arg, pt) in enumerate(zip(expr.args, param_types)):
            if isinstance(pt, StringType):
                if isinstance(arg, ast.Ident) and self._lookup_var(arg.name) is None:
                    arg = ast.StringLit(line=arg.line, col=arg.col, value=arg.name)
                    expr.args[i] = arg
                at = self._type_of(arg)
                if not isinstance(at, StringType):
                    raise self.error(f"{expr.name}() argument {i + 1} must be an actor/predicate name", expr)
                if (
                    expr.name.startswith("ACTOR_")
                    and self.ctx.actor_names is not None
                    and arg.value not in self.ctx.actor_names  # type: ignore[union-attr]
                ):
                    known = ", ".join(sorted(self.ctx.actor_names))
                    raise self.error(
                        f"{expr.name}({arg.value!r}): unknown actor (module contains: {known})", expr  # type: ignore[union-attr]
                    )
            else:
                at = self._type_of(arg)
                if not assignable(pt, at):
                    raise self.error(f"argument of {expr.name}() has type {at}, expected {pt}", expr)


def analyze(
    program: ast.Program,
    context: Optional[ActorContext] = None,
    source: str = "",
) -> DebugInfo:
    """Type-check ``program`` and return its debug information."""
    return SemanticAnalyzer(program, context, source).analyze()
