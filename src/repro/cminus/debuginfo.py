"""DWARF-like debug information emitted by the Filter-C front end.

The paper (§V): "The only static information we rely on is provided through
the standard DWARF debug structures."  This module is our DWARF: line
tables, function symbols with parameter/local descriptions, struct type
descriptions, and global symbols.  The base debugger (``repro.dbg``) and
the dataflow extension (``repro.core``) consume *only* this — they never
peek inside the interpreter's private state beyond the documented frame
API.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .typesys import CType, StructType


@dataclass(frozen=True)
class VariableSymbol:
    name: str
    ctype: CType
    kind: str  # "param" | "local" | "global"
    decl_line: int = 0


@dataclass
class FunctionSymbol:
    name: str
    filename: str
    line: int  # first line of the definition
    end_line: int
    ret: CType
    params: List[VariableSymbol] = field(default_factory=list)
    locals: List[VariableSymbol] = field(default_factory=list)

    def variable(self, name: str) -> Optional[VariableSymbol]:
        for v in self.params + self.locals:
            if v.name == name:
                return v
        return None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        sig = ", ".join(f"{p.ctype} {p.name}" for p in self.params)
        return f"{self.ret} {self.name}({sig}) at {self.filename}:{self.line}"


class LineTable:
    """Executable source lines per file, for breakpoint placement."""

    def __init__(self) -> None:
        self._lines: Dict[str, List[int]] = {}

    def add(self, filename: str, line: int) -> None:
        lines = self._lines.setdefault(filename, [])
        idx = bisect.bisect_left(lines, line)
        if idx >= len(lines) or lines[idx] != line:
            lines.insert(idx, line)

    def files(self) -> List[str]:
        return sorted(self._lines)

    def lines(self, filename: str) -> List[int]:
        return list(self._lines.get(filename, []))

    def is_executable(self, filename: str, line: int) -> bool:
        lines = self._lines.get(filename, [])
        idx = bisect.bisect_left(lines, line)
        return idx < len(lines) and lines[idx] == line

    def resolve(self, filename: str, line: int) -> Optional[int]:
        """Snap to the first executable line at or after ``line`` (like GDB
        placing a breakpoint on a blank line)."""
        lines = self._lines.get(filename, [])
        idx = bisect.bisect_left(lines, line)
        return lines[idx] if idx < len(lines) else None

    def merge(self, other: "LineTable") -> None:
        for filename, lines in other._lines.items():
            for line in lines:
                self.add(filename, line)


@dataclass
class DebugInfo:
    """Everything the debugger may know statically about a compilation unit
    (or, after ``merge``, about the whole loaded application)."""

    functions: Dict[str, FunctionSymbol] = field(default_factory=dict)
    structs: Dict[str, StructType] = field(default_factory=dict)
    globals: Dict[str, VariableSymbol] = field(default_factory=dict)
    line_table: LineTable = field(default_factory=LineTable)
    sources: Dict[str, str] = field(default_factory=dict)  # filename -> text

    def function_at_line(self, filename: str, line: int) -> Optional[FunctionSymbol]:
        for f in self.functions.values():
            if f.filename == filename and f.line <= line <= f.end_line:
                return f
        return None

    def lookup_function(self, name: str) -> Optional[FunctionSymbol]:
        return self.functions.get(name)

    def match_functions(self, substring: str) -> List[FunctionSymbol]:
        """Symbols whose (possibly mangled) name contains ``substring``."""
        return [f for n, f in sorted(self.functions.items()) if substring in n]

    def merge(self, other: "DebugInfo") -> None:
        self.functions.update(other.functions)
        self.structs.update(other.structs)
        self.globals.update(other.globals)
        self.line_table.merge(other.line_table)
        self.sources.update(other.sources)

    def source_line(self, filename: str, line: int) -> Optional[str]:
        text = self.sources.get(filename)
        if text is None:
            return None
        lines = text.splitlines()
        if 1 <= line <= len(lines):
            return lines[line - 1]
        return None

    def source_window(self, filename: str, center: int, radius: int = 4) -> List[Tuple[int, str]]:
        """Numbered source lines around ``center`` (for the ``list`` cmd)."""
        text = self.sources.get(filename)
        if text is None:
            return []
        lines = text.splitlines()
        lo = max(1, center - radius)
        hi = min(len(lines), center + radius)
        return [(n, lines[n - 1]) for n in range(lo, hi + 1)]
