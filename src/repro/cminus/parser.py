"""Recursive-descent parser for Filter-C."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import CMinusSyntaxError
from . import ast
from .lexer import Token, TokenKind, tokenize
from .typesys import ArrayType, CType, StructType, type_by_name

# binary operator precedence, low to high; each tier is left-associative
_BINARY_TIERS: List[List[str]] = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", ">", "<=", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


class Parser:
    """One-pass parser; struct types must be declared before first use."""

    def __init__(
        self,
        source: str,
        filename: str = "<source>",
        structs: Optional[Dict[str, StructType]] = None,
    ):
        self.filename = filename
        self.toks = tokenize(source, filename)
        self.pos = 0
        # pre-seeded struct types (e.g. shared application-level token
        # structs declared in the architecture description)
        self.struct_types: Dict[str, StructType] = dict(structs or {})

    # ------------------------------------------------------------- plumbing

    @property
    def cur(self) -> Token:
        return self.toks[self.pos]

    def _peek(self, offset: int = 0) -> Token:
        i = min(self.pos + offset, len(self.toks) - 1)
        return self.toks[i]

    def error(self, message: str, tok: Optional[Token] = None) -> CMinusSyntaxError:
        tok = tok or self.cur
        return CMinusSyntaxError(message, self.filename, tok.line, tok.col)

    def _advance(self) -> Token:
        tok = self.cur
        if tok.kind != TokenKind.EOF:
            self.pos += 1
        return tok

    def _check(self, text: str) -> bool:
        return self.cur.text == text and self.cur.kind in (TokenKind.OP, TokenKind.KEYWORD)

    def _accept(self, text: str) -> Optional[Token]:
        if self._check(text):
            return self._advance()
        return None

    def _expect(self, text: str) -> Token:
        if not self._check(text):
            raise self.error(f"expected {text!r}, found {self.cur.text!r}")
        return self._advance()

    def _expect_ident(self) -> Token:
        if self.cur.kind != TokenKind.IDENT:
            raise self.error(f"expected identifier, found {self.cur.text!r}")
        return self._advance()

    # ---------------------------------------------------------------- types

    def _at_type(self, offset: int = 0) -> bool:
        tok = self._peek(offset)
        if tok.kind == TokenKind.KEYWORD and (type_by_name(tok.text) or tok.text in ("struct", "const")):
            return True
        return tok.kind == TokenKind.IDENT and tok.text in self.struct_types

    def _parse_type(self) -> CType:
        if self._accept("struct"):
            name_tok = self._expect_ident()
            st = self.struct_types.get(name_tok.text)
            if st is None:
                raise self.error(f"unknown struct {name_tok.text!r}", name_tok)
            return st
        tok = self._advance()
        builtin = type_by_name(tok.text)
        if builtin is not None:
            return builtin
        st = self.struct_types.get(tok.text)
        if st is not None:
            return st
        raise self.error(f"unknown type {tok.text!r}", tok)

    # ------------------------------------------------------------ top level

    def parse_program(self) -> ast.Program:
        prog = ast.Program(filename=self.filename, line=1, col=1)
        while self.cur.kind != TokenKind.EOF:
            if self._check("struct") and self._peek(1).kind == TokenKind.IDENT and self._peek(2).text == "{":
                prog.structs.append(self._parse_struct())
                continue
            const = bool(self._accept("const"))
            if not self._at_type():
                raise self.error(f"expected declaration, found {self.cur.text!r}")
            start = self.cur
            ctype = self._parse_type()
            name_tok = self._expect_ident()
            if self._check("("):
                if const:
                    raise self.error("functions cannot be const", start)
                prog.functions.append(self._parse_func(ctype, name_tok))
            else:
                prog.globals.append(self._parse_global(ctype, name_tok, const))
        return prog

    def _parse_struct(self) -> ast.StructDef:
        start = self._expect("struct")
        name_tok = self._expect_ident()
        if name_tok.text in self.struct_types:
            raise self.error(f"struct {name_tok.text!r} redefined", name_tok)
        self._expect("{")
        fields: List[Tuple[str, CType]] = []
        seen = set()
        while not self._check("}"):
            ftype = self._parse_type()
            fname = self._expect_ident().text
            if fname in seen:
                raise self.error(f"duplicate field {fname!r} in struct {name_tok.text}")
            seen.add(fname)
            if self._accept("["):
                size_tok = self._advance()
                if size_tok.kind != TokenKind.NUMBER:
                    raise self.error("array size must be a number literal", size_tok)
                self._expect("]")
                ftype = ArrayType(elem=ftype, size=size_tok.value)
            self._expect(";")
            fields.append((fname, ftype))
        self._expect("}")
        self._expect(";")
        st = StructType(name=name_tok.text, fields=tuple(fields))
        self.struct_types[name_tok.text] = st
        return ast.StructDef(line=start.line, col=start.col, name=name_tok.text, fields=fields)

    def _parse_global(self, ctype: CType, name_tok: Token, const: bool) -> ast.GlobalDecl:
        if self._accept("["):
            size_tok = self._advance()
            if size_tok.kind != TokenKind.NUMBER:
                raise self.error("array size must be a number literal", size_tok)
            self._expect("]")
            ctype = ArrayType(elem=ctype, size=size_tok.value)
        init = None
        if self._accept("="):
            init = self._parse_expr()
        self._expect(";")
        return ast.GlobalDecl(
            line=name_tok.line, col=name_tok.col, ctype=ctype, name=name_tok.text, init=init, const=const
        )

    def _parse_func(self, ret: CType, name_tok: Token) -> ast.FuncDef:
        self._expect("(")
        params: List[ast.Param] = []
        if not self._check(")"):
            if self._check("void") and self._peek(1).text == ")":
                self._advance()
            else:
                while True:
                    ptype = self._parse_type()
                    pname = self._expect_ident()
                    params.append(ast.Param(line=pname.line, col=pname.col, ctype=ptype, name=pname.text))
                    if not self._accept(","):
                        break
        self._expect(")")
        body = self._parse_block()
        end_line = self.toks[self.pos - 1].line if self.pos else name_tok.line
        return ast.FuncDef(
            line=name_tok.line,
            col=name_tok.col,
            ret=ret,
            name=name_tok.text,
            params=params,
            body=body,
            filename=self.filename,
            end_line=end_line,
        )

    # ------------------------------------------------------------ statements

    def _parse_block(self) -> ast.Block:
        start = self._expect("{")
        body: List[ast.Stmt] = []
        while not self._check("}"):
            if self.cur.kind == TokenKind.EOF:
                raise self.error("unexpected end of file in block")
            body.append(self._parse_stmt())
        self._expect("}")
        return ast.Block(line=start.line, col=start.col, body=body)

    def _parse_stmt(self) -> ast.Stmt:
        tok = self.cur
        if self._check("{"):
            return self._parse_block()
        if self._check("if"):
            return self._parse_if()
        if self._check("while"):
            return self._parse_while()
        if self._check("do"):
            return self._parse_do_while()
        if self._check("for"):
            return self._parse_for()
        if self._check("return"):
            self._advance()
            value = None if self._check(";") else self._parse_expr()
            self._expect(";")
            return ast.Return(line=tok.line, col=tok.col, value=value)
        if self._check("break"):
            self._advance()
            self._expect(";")
            return ast.Break(line=tok.line, col=tok.col)
        if self._check("continue"):
            self._advance()
            self._expect(";")
            return ast.Continue(line=tok.line, col=tok.col)
        if self._check("const") or self._at_type():
            stmt = self._parse_decl()
            self._expect(";")
            return stmt
        stmt = self._parse_simple_stmt()
        self._expect(";")
        return stmt

    def _parse_decl(self) -> ast.Decl:
        tok = self.cur
        const = bool(self._accept("const"))
        ctype = self._parse_type()
        name_tok = self._expect_ident()
        if self._accept("["):
            size_tok = self._advance()
            if size_tok.kind != TokenKind.NUMBER:
                raise self.error("array size must be a number literal", size_tok)
            self._expect("]")
            ctype = ArrayType(elem=ctype, size=size_tok.value)
        init = None
        if self._accept("="):
            init = self._parse_expr()
        return ast.Decl(line=tok.line, col=tok.col, ctype=ctype, name=name_tok.text, init=init, const=const)

    def _parse_simple_stmt(self) -> ast.Stmt:
        """Assignment, inc/dec, or a bare expression (typically a call)."""
        tok = self.cur
        expr = self._parse_expr()
        if self.cur.text in _ASSIGN_OPS and self.cur.kind == TokenKind.OP:
            op = self._advance().text
            value = self._parse_expr()
            return ast.Assign(line=tok.line, col=tok.col, target=expr, op=op, value=value)
        if self._check("++") or self._check("--"):
            op = self._advance().text
            return ast.IncDec(line=tok.line, col=tok.col, target=expr, op=op)
        return ast.ExprStmt(line=tok.line, col=tok.col, expr=expr)

    def _parse_if(self) -> ast.If:
        tok = self._expect("if")
        self._expect("(")
        cond = self._parse_expr()
        self._expect(")")
        then = self._parse_stmt()
        other = self._parse_stmt() if self._accept("else") else None
        return ast.If(line=tok.line, col=tok.col, cond=cond, then=then, other=other)

    def _parse_while(self) -> ast.While:
        tok = self._expect("while")
        self._expect("(")
        cond = self._parse_expr()
        self._expect(")")
        body = self._parse_stmt()
        return ast.While(line=tok.line, col=tok.col, cond=cond, body=body)

    def _parse_do_while(self) -> ast.DoWhile:
        tok = self._expect("do")
        body = self._parse_stmt()
        self._expect("while")
        self._expect("(")
        cond = self._parse_expr()
        self._expect(")")
        self._expect(";")
        return ast.DoWhile(line=tok.line, col=tok.col, body=body, cond=cond)

    def _parse_for(self) -> ast.For:
        tok = self._expect("for")
        self._expect("(")
        init: Optional[ast.Stmt] = None
        if not self._check(";"):
            init = self._parse_decl() if (self._check("const") or self._at_type()) else self._parse_simple_stmt()
        self._expect(";")
        cond = None if self._check(";") else self._parse_expr()
        self._expect(";")
        step = None if self._check(")") else self._parse_simple_stmt()
        self._expect(")")
        body = self._parse_stmt()
        return ast.For(line=tok.line, col=tok.col, init=init, cond=cond, step=step, body=body)

    # ----------------------------------------------------------- expressions

    def _parse_expr(self) -> ast.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self._accept("?"):
            then = self._parse_expr()
            self._expect(":")
            other = self._parse_expr()
            return ast.Ternary(line=cond.line, col=cond.col, cond=cond, then=then, other=other)
        return cond

    def _parse_binary(self, tier: int) -> ast.Expr:
        if tier >= len(_BINARY_TIERS):
            return self._parse_unary()
        left = self._parse_binary(tier + 1)
        ops = _BINARY_TIERS[tier]
        while self.cur.kind == TokenKind.OP and self.cur.text in ops:
            op = self._advance().text
            right = self._parse_binary(tier + 1)
            left = ast.Binary(line=left.line, col=left.col, op=op, left=left, right=right)
        return left

    def _parse_unary(self) -> ast.Expr:
        tok = self.cur
        if self.cur.kind == TokenKind.OP and self.cur.text in ("!", "~", "-", "+"):
            op = self._advance().text
            operand = self._parse_unary()
            return ast.Unary(line=tok.line, col=tok.col, op=op, operand=operand)
        # cast: '(' type ')' unary — disambiguated by one-token lookahead
        if self._check("(") and self._at_type(1) and self._peek(1).text != "(":
            # reject '(struct' handled by _at_type; ensure ')' after type
            save = self.pos
            self._advance()
            try:
                target = self._parse_type()
            except CMinusSyntaxError:
                self.pos = save
            else:
                if self._check(")"):
                    self._advance()
                    operand = self._parse_unary()
                    return ast.Cast(line=tok.line, col=tok.col, target=target, operand=operand)
                self.pos = save
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self._check("["):
                self._advance()
                index = self._parse_expr()
                self._expect("]")
                expr = ast.Index(line=expr.line, col=expr.col, base=expr, index=index)
            elif self._check("."):
                self._advance()
                member = self._expect_ident().text
                expr = ast.Member(line=expr.line, col=expr.col, base=expr, member=member)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self.cur
        if tok.kind == TokenKind.NUMBER:
            self._advance()
            return ast.NumberLit(line=tok.line, col=tok.col, value=tok.value)
        if tok.kind == TokenKind.CHAR:
            self._advance()
            return ast.NumberLit(line=tok.line, col=tok.col, value=tok.value)
        if tok.kind == TokenKind.STRING:
            self._advance()
            return ast.StringLit(line=tok.line, col=tok.col, value=tok.value)
        if tok.kind == TokenKind.KEYWORD and tok.text in ("true", "false"):
            self._advance()
            return ast.BoolLit(line=tok.line, col=tok.col, value=tok.text == "true")
        if self._check("("):
            self._advance()
            expr = self._parse_expr()
            self._expect(")")
            return expr
        if tok.kind == TokenKind.IDENT:
            if tok.text == "pedf" and self._peek(1).text == ".":
                return self._parse_pedf()
            self._advance()
            if self._check("("):
                return self._parse_call(tok)
            return ast.Ident(line=tok.line, col=tok.col, name=tok.text)
        raise self.error(f"unexpected token {tok.text!r} in expression")

    def _parse_call(self, name_tok: Token) -> ast.Call:
        self._expect("(")
        args: List[ast.Expr] = []
        if not self._check(")"):
            while True:
                args.append(self._parse_expr())
                if not self._accept(","):
                    break
        self._expect(")")
        return ast.Call(line=name_tok.line, col=name_tok.col, name=name_tok.text, args=args)

    def _parse_pedf(self) -> ast.Expr:
        tok = self._advance()  # 'pedf'
        self._expect(".")
        ns = self._expect_ident().text
        if ns not in ("io", "data", "attribute"):
            raise self.error(f"unknown pedf namespace {ns!r} (expected io/data/attribute)")
        self._expect(".")
        name = self._expect_ident().text
        if ns == "io":
            self._expect("[")
            index = self._parse_expr()
            self._expect("]")
            return ast.PedfIo(line=tok.line, col=tok.col, iface=name, index=index)
        if ns == "data":
            return ast.PedfData(line=tok.line, col=tok.col, name=name)
        return ast.PedfAttr(line=tok.line, col=tok.col, name=name)


def parse_expression(
    text: str,
    filename: str = "<expr>",
    structs: Optional[Dict[str, StructType]] = None,
) -> ast.Expr:
    """Parse a standalone expression (used by the debugger's ``print``,
    breakpoint conditions and watchpoints)."""
    p = Parser(text, filename, structs)
    expr = p._parse_expr()
    if p.cur.kind != TokenKind.EOF:
        raise p.error(f"trailing input after expression: {p.cur.text!r}")
    return expr


def parse_program(
    source: str,
    filename: str = "<source>",
    structs: Optional[Dict[str, StructType]] = None,
) -> ast.Program:
    """Parse a Filter-C compilation unit.

    ``structs`` pre-seeds externally-declared struct types so sources can
    use them (typedef-style) without redeclaring them.
    """
    return Parser(source, filename, structs).parse_program()
